// Cross-validate the two spur measurement pipelines (demodulation vs
// windowed-Goertzel spectral readout) on the noisy VCO transient, and dump
// node tone amplitudes to locate frequency-growing coupling paths.
#include <cstdio>

#include "circuit/sources.hpp"
#include "obs/events.hpp"
#include "rf/spur.hpp"
#include "testcases/vco.hpp"
#include "util/units.hpp"

using namespace snim;

int main() {
    obs::init_live_from_env();
    auto vco = testcases::build_vco();
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());
    auto& nl = model.netlist;
    auto* vsub = nl.find_as<circuit::VSource>("vsub");

    for (double fn : {2e6, 10e6}) {
        vsub->set_waveform(circuit::Waveform::sin(0.0, 0.356, fn));
        rf::OscOptions osc = testcases::vco_osc_options();
        osc.capture = std::max(8.0 / fn, 2.5 / fn);
        auto cap = rf::capture_oscillator(nl, osc);

        auto demod = rf::measure_spur(cap, fn);
        auto spec = rf::measure_spur_spectral(cap, fn);
        printf("fn=%.0fMHz fc=%.5gGHz amp=%.3f\n", fn / 1e6, cap.fc / 1e9,
               cap.amplitude);
        printf("  demod   : fdev=%.5g am=%.4g fmph=%.0f amph=%.0f  L/R %.1f / %.1f dBc\n",
               demod.freq_dev, demod.am_dev, demod.fm_phase * 180 / units::kPi,
               demod.am_phase * 180 / units::kPi, demod.left_dbc(), demod.right_dbc());
        printf("  spectral: fdev=%.5g           L/R %.1f / %.1f dBc\n", spec.freq_dev,
               spec.left_dbc(), spec.right_dbc());

        // Instantaneous-frequency drift check: first/last 10%% means.
        auto inst = rf::instantaneous_frequency(cap.wave, cap.fs, cap.mean);
        const size_t n = inst.size();
        double head = 0, tail = 0;
        for (size_t i = 0; i < n / 10; ++i) head += inst[i].second;
        for (size_t i = n - n / 10; i < n; ++i) tail += inst[i].second;
        printf("  inst-freq drift: head %.6g tail %.6g (delta %.4g)\n",
               head / (n / 10), tail / (n / 10), tail / (n / 10) - head / (n / 10));
    }
    return 0;
}
