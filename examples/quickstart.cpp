// Quickstart: the circuit-simulation core of snim in five minutes.
// Parses a SPICE-like netlist, runs OP / AC / transient, and prints what a
// first-time user needs to see.
#include <cstdio>

#include "circuit/spice_parser.hpp"
#include "circuit/spice_writer.hpp"
#include "numeric/vecops.hpp"
#include "obs/events.hpp"
#include "sim/ac.hpp"
#include "sim/op.hpp"
#include "sim/transfer.hpp"
#include "sim/transient.hpp"
#include "tech/generic180.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace snim;

int main() {
    obs::init_live_from_env();
    // A common-source amplifier with an RC load, written as SPICE text.
    const std::string deck = R"(quickstart: common-source amplifier
Vdd vdd 0 1.8
Vin in 0 dc 0.75 ac 1 sin(0.75 0.05 50meg)
Rd vdd out 2k
Cl out 0 200f
M1 out in 0 0 nch w=20u l=0.18u
.end
)";

    auto tech = tech::generic180();
    auto parsed = circuit::parse_spice(deck, &tech);
    circuit::Netlist& nl = parsed.netlist;
    printf("parsed \"%s\": %zu devices, %zu nodes\n\n", parsed.title.c_str(),
           nl.device_count(), nl.node_count());

    // --- DC operating point ------------------------------------------------
    auto xop = sim::operating_point(nl);
    printf("operating point:\n");
    for (const auto& name : {"in", "out", "vdd"})
        printf("  V(%-3s) = %.4f V\n", name, circuit::volt(xop, nl.existing_node(name)));

    // --- AC: gain vs frequency ---------------------------------------------
    auto freqs = logspace(1e6, 10e9, 9);
    auto tr = sim::transfer(nl, "vin", "out", freqs, xop);
    Table t({"f [Hz]", "gain [dB]"});
    for (size_t k = 0; k < freqs.size(); ++k)
        t.add_row({eng_format(freqs[k]), format("%.2f", tr.mag_db(k))});
    printf("\nAC gain in -> out:\n");
    t.print();

    // --- transient: a few periods of the 50 MHz input ----------------------
    sim::TranOptions topt;
    topt.tstop = 100e-9;
    topt.dt = 50e-12;
    auto res = sim::transient(nl, {"in", "out"}, topt);
    const auto& vout = res.wave("out");
    double vmin = 1e9, vmax = -1e9;
    for (double v : vout) {
        vmin = std::min(vmin, v);
        vmax = std::max(vmax, v);
    }
    printf("\ntransient (100 ns @ 50 MHz input): out swings %.3f .. %.3f V\n", vmin,
           vmax);

    // --- round-trip: write the netlist back out ----------------------------
    printf("\nnetlist as snim re-emits it:\n%s",
           circuit::write_spice(nl, parsed.title).c_str());
    return 0;
}
