// Full methodology walk-through on the 3 GHz LC-tank VCO test chip:
// build the impact model from layout + technology (Figure 2 flow),
// calibrate the oscillator and the per-path sensitivities, then compare the
// paper-style prediction (eqs. 2-3) against a brute-force transient at
// 10 MHz and print the per-device contribution table.
//
// The walk-through runs as a snim_bench scenario: the harness reseeds the
// default Rng, times the run, and leaves the full obs registry snapshot
// (phase tree + solver counters) readable afterwards.  The prediction /
// transient agreement is recorded as an accuracy metric against the paper's
// 2 dB claim and gates the exit status.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "circuit/sources.hpp"
#include "core/contribution.hpp"
#include "obs/bench.hpp"
#include "obs/events.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/vcd.hpp"
#include "sim/transient.hpp"
#include "testcases/vco.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace snim;

namespace {

void walk_through(obs::ScenarioContext& ctx) {
    printf("== building the VCO impact model (Figure 2 flow) ==\n");
    auto vco = testcases::build_vco();
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());
    printf("  substrate: %zu mesh nodes -> %zu ports (%.2f s)\n", model.mesh_nodes,
           model.substrate.port_names.size(), model.substrate_seconds);
    const auto* gnd = model.wire_stats_for("vgnd");
    if (gnd)
        printf("  ground net: %.1f squares of wiring, %.3g F to substrate\n",
               gnd->resistance_squares, gnd->capacitance_total);
    printf("  full model: %zu devices, %zu nodes\n", model.netlist.device_count(),
           model.netlist.node_count());

    core::AnalyzerOptions aopt;
    aopt.osc = testcases::vco_osc_options();
    core::ImpactAnalyzer analyzer(model, testcases::VcoTestcase::kNoiseSource,
                                  testcases::vco_noise_entries(), aopt);

    printf("\n== calibration ==\n");
    analyzer.calibrate();
    const auto& base = analyzer.baseline();
    printf("  fc = %.4f GHz, tank amplitude = %.3f V\n", base.fc / 1e9, base.amplitude);
    printf("  K_src = %.5g Hz/V (DC path sensitivity)\n", analyzer.k_src());

    analyzer.calibrate_paths();

    const double fn = 10e6;
    printf("\n== impact of a -5 dBm 10 MHz substrate tone ==\n");
    auto pred = analyzer.predict(fn);
    Table t({"path", "spur dBc (alone)", "kind"});
    for (const auto& p : pred.parts)
        t.add_row({p.label, format("%.1f", p.spur_dbc(pred.carrier_amp)),
                   p.capacitive ? "capacitive (lever x H)" : "resistive (DC)"});
    t.print();
    printf("  prediction: left %.1f dBc, right %.1f dBc (freq dev %.4g Hz)\n",
           pred.left_dbc(), pred.right_dbc(), pred.freq_dev);

    auto meas = analyzer.simulate(fn);
    printf("  transient : left %.1f dBc, right %.1f dBc (freq dev %.4g Hz)\n",
           meas.left_dbc(), meas.right_dbc(), meas.freq_dev);
    printf("  agreement : left %+.1f dB, right %+.1f dB\n",
           pred.left_dbc() - meas.left_dbc(), pred.right_dbc() - meas.right_dbc());

    obs::AccuracyMetric m;
    m.name = "prediction vs transient spur power";
    m.reference = "paper claim: within ~2 dB";
    m.tolerance_db = 2.0;
    m.points = 2;
    m.delta_db = std::max(std::abs(pred.left_dbc() - meas.left_dbc()),
                          std::abs(pred.right_dbc() - meas.right_dbc()));
    ctx.add_accuracy(std::move(m));

    // Ground bounce made visible: a short transient with the substrate tone
    // on, probing the non-ideal on-chip ground (the paper's key coupling
    // path: tap resistance x substrate current) next to the tank output.
    printf("\n== ground-bounce waveform (VCD export) ==\n");
    model.netlist.find_as<circuit::VSource>(testcases::VcoTestcase::kNoiseSource)
        ->set_waveform(circuit::Waveform::sin(0.0, aopt.noise_amplitude, fn));
    sim::TranOptions topt;
    topt.dt = aopt.osc.dt;
    topt.tstop = 20e-9;
    auto bounce = sim::transient(
        model.netlist,
        {testcases::VcoTestcase::kGroundNode, testcases::VcoTestcase::kOutP}, topt);
    std::vector<obs::WaveSignal> waves;
    for (size_t p = 0; p < bounce.probe_names.size(); ++p) {
        obs::WaveSignal w;
        w.name = bounce.probe_names[p];
        w.unit = "V";
        w.time = bounce.time;
        w.value = bounce.waves[p];
        waves.push_back(std::move(w));
    }
    obs::write_vcd("vco_ground_bounce.vcd", waves);
    double bmin = bounce.waves[0][0], bmax = bmin;
    for (double v : bounce.waves[0]) {
        bmin = std::min(bmin, v);
        bmax = std::max(bmax, v);
    }
    printf("  wrote vco_ground_bounce.vcd: %s + %s, %zu samples\n",
           testcases::VcoTestcase::kGroundNode, testcases::VcoTestcase::kOutP,
           bounce.time.size());
    printf("  %s bounce: %.3g Vpp around %.4g V\n", testcases::VcoTestcase::kGroundNode,
           bmax - bmin, 0.5 * (bmax + bmin));
}

} // namespace

int main() {
    obs::init_live_from_env();
    set_log_level(LogLevel::Info);

    obs::Scenario s;
    s.name = "example/vco_substrate_impact";
    s.description = "methodology walk-through on the 3 GHz LC-tank VCO";
    s.kind = "flow";
    s.repeat = 1;
    s.warmup = 0;
    s.run = walk_through;
    const auto result = obs::run_scenario(s, obs::BenchOptions{});

    // run_scenario leaves the registry snapshot intact: the full phase tree
    // and solver counters of everything above.  The JSON form is in
    // result.registry (what `snim_bench --out` would emit).
    printf("\n== where the time went (obs registry) ==\n");
    printf("  extraction  : %.2f s substrate + %.2f s interconnect\n",
           obs::phase_seconds("flow/substrate_extract"),
           obs::phase_seconds("flow/interconnect_extract"));
    printf("  transient   : %.2f s over %llu steps, %llu Newton iterations\n",
           obs::phase_seconds("sim/transient"),
           static_cast<unsigned long long>(obs::counter_value("sim/transient/steps")),
           static_cast<unsigned long long>(obs::phase_calls("sim/transient/newton")));
    printf("  sparse LU   : %llu factorizations, %.2f s\n",
           static_cast<unsigned long long>(obs::phase_calls("numeric/lu_factor")),
           obs::phase_seconds("numeric/lu_factor"));
    printf("  total       : %.2f s wall\n", result.runtime.median_s);

    for (const auto& m : result.accuracy)
        printf("  accuracy    : %s = %.2f dB (tolerance %.1f dB) %s\n",
               m.name.c_str(), m.delta_db, m.tolerance_db,
               m.pass() ? "ok" : "FAIL");

    const auto verdicts = obs::accuracy_verdicts({result});
    return obs::gate_passes(verdicts) ? 0 : 1;
}
