// Design-space study built on the Figure-10 idea: sweep the ground strap
// width and watch the substrate-noise sensitivity fall as the strap
// resistance drops -- the designer's actionable knob the paper closes with.
#include <cstdio>

#include "core/impact_model.hpp"
#include "obs/events.hpp"
#include "testcases/vco.hpp"
#include "util/table.hpp"

using namespace snim;
using testcases::VcoTestcase;

int main() {
    obs::init_live_from_env();
    printf("=== ground strap width study (the paper's design advice) ===\n\n");

    Table t({"strap width [um]", "ground wiring [squares]", "K_src [Hz/V]",
             "spur @10MHz [dBc]"});
    double prev_k = 0.0;
    for (double width : {1.0, 1.5, 2.0, 3.0}) {
        testcases::VcoOptions vopt;
        vopt.ground_strap_width = width;
        auto vco = testcases::build_vco(vopt);
        auto model = testcases::build_model(std::move(vco),
                                            testcases::vco_flow_options());
        const auto* st = model.wire_stats_for("vgnd");

        core::AnalyzerOptions aopt;
        aopt.osc = testcases::vco_osc_options();
        core::ImpactAnalyzer analyzer(model, VcoTestcase::kNoiseSource,
                                      testcases::vco_noise_entries(), aopt);
        analyzer.calibrate();
        auto pred = analyzer.predict(10e6);

        t.add_row({format("%.1f", width),
                   format("%.0f", st ? st->resistance_squares : 0.0),
                   format("%.4g", analyzer.k_src()),
                   format("%.1f", pred.right_dbc())});
        if (prev_k != 0.0)
            printf("  width step: sensitivity change %.1f dB\n",
                   20 * std::log10(std::fabs(analyzer.k_src() / prev_k)));
        prev_k = analyzer.k_src();
    }
    printf("\n");
    t.print();
    printf("\npaper: halving the ground resistance buys ~4.5-6 dB of immunity.\n");
    return 0;
}
