// The paper's Section-3 walk-through: the one-transistor measurement
// structure.  Builds the layout, runs the Figure-2 flow and probes how a
// substrate tone reaches the NMOS output -- including the waveform at every
// node of the coupling chain, which is the methodology's selling point.
#include <cstdio>

#include "circuit/mosfet.hpp"
#include "circuit/sources.hpp"
#include "core/report.hpp"
#include "layout/io.hpp"
#include "numeric/vecops.hpp"
#include "obs/events.hpp"
#include "sim/op.hpp"
#include "sim/transfer.hpp"
#include "testcases/nmos_structure.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace snim;
using testcases::NmosStructure;

int main() {
    obs::init_live_from_env();
    auto structure = testcases::build_nmos_structure();

    // The layout is an ordinary artifact: dump it for inspection.
    layout::save_layout(structure.layout, "nmos_structure.layout");
    printf("wrote nmos_structure.layout (%zu shapes)\n",
           structure.layout.flatten_shapes().size());

    core::FlowOptions fo;
    fo.substrate.mesh.focus = geom::Rect(-20, -20, 50, 30);
    fo.substrate.mesh.fine_pitch = 3.0;
    fo.substrate.mesh.margin = 40.0;
    auto model = testcases::build_model(std::move(structure), fo);
    printf("%s\n", core::report_model(model).to_string().c_str());

    auto& nl = model.netlist;
    auto xop = sim::operating_point(nl);
    auto* m1 = nl.find_as<circuit::Mosfet>(NmosStructure::kMosfet);
    const auto ss = m1->small_signal(xop);
    printf("NMOS bias: gmb = %.1f mS, gds = %.1f mS (paper ranges: 10-38 / "
           "2.8-22 mS)\n\n", ss.gmb * 1e3, ss.gds * 1e3);

    // The coupling chain, node by node, at 5 MHz.
    const std::vector<std::string> chain{
        "subdrive",                 // source behind its 50-ohm
        "sub_pad",                  // on-chip injection pad
        "subinj!sub",               // injection substrate contact
        NmosStructure::kBulk,       // device back-gate (substrate surface)
        "vgnd!sub1",                // MOS ground ring metal
        NmosStructure::kSourceNode, // transistor source (solid strap)
        NmosStructure::kOut,        // drain output
    };
    auto tr = sim::transfer_multi(nl, NmosStructure::kNoiseSource, chain, {5e6}, xop);
    Table t({"node", "|H| [dB]", "phase [deg]"});
    for (size_t i = 0; i < chain.size(); ++i) {
        t.add_row({chain[i], format("%.1f", units::db20(std::abs(tr[i].h[0]))),
                   format("%.0f", std::arg(tr[i].h[0]) * 180 / units::kPi)});
    }
    printf("transfer of the substrate tone along the coupling chain (5 MHz):\n");
    t.print();

    const double vbs = std::abs(tr[3].h[0] - tr[5].h[0]);
    printf("\nback-gate drive vbs/vsub = 1/%.0f; transfer to output = "
           "vbs * gmb/gds = %.1f dB\n",
           1.0 / vbs, units::db20(vbs * ss.gmb / ss.gds));
    return 0;
}
