# Empty compiler generated dependencies file for ground_width_study.
# This may be replaced when dependencies are built.
