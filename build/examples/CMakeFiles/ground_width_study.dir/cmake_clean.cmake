file(REMOVE_RECURSE
  "CMakeFiles/ground_width_study.dir/ground_width_study.cpp.o"
  "CMakeFiles/ground_width_study.dir/ground_width_study.cpp.o.d"
  "ground_width_study"
  "ground_width_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ground_width_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
