file(REMOVE_RECURSE
  "CMakeFiles/vco_substrate_impact.dir/vco_substrate_impact.cpp.o"
  "CMakeFiles/vco_substrate_impact.dir/vco_substrate_impact.cpp.o.d"
  "vco_substrate_impact"
  "vco_substrate_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vco_substrate_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
