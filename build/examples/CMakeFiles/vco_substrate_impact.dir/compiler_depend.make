# Empty compiler generated dependencies file for vco_substrate_impact.
# This may be replaced when dependencies are built.
