file(REMOVE_RECURSE
  "CMakeFiles/nmos_backgate_probe.dir/nmos_backgate_probe.cpp.o"
  "CMakeFiles/nmos_backgate_probe.dir/nmos_backgate_probe.cpp.o.d"
  "nmos_backgate_probe"
  "nmos_backgate_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmos_backgate_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
