# Empty compiler generated dependencies file for nmos_backgate_probe.
# This may be replaced when dependencies are built.
