file(REMOVE_RECURSE
  "CMakeFiles/fig7_spectrum.dir/fig7_spectrum.cpp.o"
  "CMakeFiles/fig7_spectrum.dir/fig7_spectrum.cpp.o.d"
  "fig7_spectrum"
  "fig7_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
