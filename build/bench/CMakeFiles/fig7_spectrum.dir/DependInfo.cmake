
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_spectrum.cpp" "bench/CMakeFiles/fig7_spectrum.dir/fig7_spectrum.cpp.o" "gcc" "bench/CMakeFiles/fig7_spectrum.dir/fig7_spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snim_testcases.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_mor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_package.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
