# Empty dependencies file for fig3_nmos_transfer.
# This may be replaced when dependencies are built.
