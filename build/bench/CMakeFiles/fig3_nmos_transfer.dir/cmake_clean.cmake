file(REMOVE_RECURSE
  "CMakeFiles/fig3_nmos_transfer.dir/fig3_nmos_transfer.cpp.o"
  "CMakeFiles/fig3_nmos_transfer.dir/fig3_nmos_transfer.cpp.o.d"
  "fig3_nmos_transfer"
  "fig3_nmos_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nmos_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
