file(REMOVE_RECURSE
  "CMakeFiles/fig9_contributions.dir/fig9_contributions.cpp.o"
  "CMakeFiles/fig9_contributions.dir/fig9_contributions.cpp.o.d"
  "fig9_contributions"
  "fig9_contributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_contributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
