# Empty compiler generated dependencies file for fig9_contributions.
# This may be replaced when dependencies are built.
