# Empty compiler generated dependencies file for table_vco_specs.
# This may be replaced when dependencies are built.
