file(REMOVE_RECURSE
  "CMakeFiles/table_vco_specs.dir/table_vco_specs.cpp.o"
  "CMakeFiles/table_vco_specs.dir/table_vco_specs.cpp.o.d"
  "table_vco_specs"
  "table_vco_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_vco_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
