file(REMOVE_RECURSE
  "CMakeFiles/runtime_table.dir/runtime_table.cpp.o"
  "CMakeFiles/runtime_table.dir/runtime_table.cpp.o.d"
  "runtime_table"
  "runtime_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
