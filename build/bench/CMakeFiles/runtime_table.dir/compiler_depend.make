# Empty compiler generated dependencies file for runtime_table.
# This may be replaced when dependencies are built.
