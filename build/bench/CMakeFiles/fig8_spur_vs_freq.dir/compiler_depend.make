# Empty compiler generated dependencies file for fig8_spur_vs_freq.
# This may be replaced when dependencies are built.
