file(REMOVE_RECURSE
  "CMakeFiles/fig8_spur_vs_freq.dir/fig8_spur_vs_freq.cpp.o"
  "CMakeFiles/fig8_spur_vs_freq.dir/fig8_spur_vs_freq.cpp.o.d"
  "fig8_spur_vs_freq"
  "fig8_spur_vs_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_spur_vs_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
