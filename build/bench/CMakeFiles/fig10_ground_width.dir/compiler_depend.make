# Empty compiler generated dependencies file for fig10_ground_width.
# This may be replaced when dependencies are built.
