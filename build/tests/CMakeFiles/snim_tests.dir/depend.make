# Empty dependencies file for snim_tests.
# This may be replaced when dependencies are built.
