
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/circuit_test.cpp" "tests/CMakeFiles/snim_tests.dir/circuit_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/circuit_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/snim_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/dsp_test.cpp" "tests/CMakeFiles/snim_tests.dir/dsp_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/dsp_test.cpp.o.d"
  "/root/repo/tests/geom_test.cpp" "tests/CMakeFiles/snim_tests.dir/geom_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/geom_test.cpp.o.d"
  "/root/repo/tests/interconnect_test.cpp" "tests/CMakeFiles/snim_tests.dir/interconnect_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/interconnect_test.cpp.o.d"
  "/root/repo/tests/layout_test.cpp" "tests/CMakeFiles/snim_tests.dir/layout_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/layout_test.cpp.o.d"
  "/root/repo/tests/mor_test.cpp" "tests/CMakeFiles/snim_tests.dir/mor_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/mor_test.cpp.o.d"
  "/root/repo/tests/noise_test.cpp" "tests/CMakeFiles/snim_tests.dir/noise_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/noise_test.cpp.o.d"
  "/root/repo/tests/numeric_test.cpp" "tests/CMakeFiles/snim_tests.dir/numeric_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/numeric_test.cpp.o.d"
  "/root/repo/tests/package_test.cpp" "tests/CMakeFiles/snim_tests.dir/package_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/package_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/snim_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/reduce_solve_test.cpp" "tests/CMakeFiles/snim_tests.dir/reduce_solve_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/reduce_solve_test.cpp.o.d"
  "/root/repo/tests/rf_test.cpp" "tests/CMakeFiles/snim_tests.dir/rf_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/rf_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/snim_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/substrate_test.cpp" "tests/CMakeFiles/snim_tests.dir/substrate_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/substrate_test.cpp.o.d"
  "/root/repo/tests/tech_test.cpp" "tests/CMakeFiles/snim_tests.dir/tech_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/tech_test.cpp.o.d"
  "/root/repo/tests/testcases_test.cpp" "tests/CMakeFiles/snim_tests.dir/testcases_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/testcases_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/snim_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/snim_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snim_testcases.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_mor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_package.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
