# Empty compiler generated dependencies file for snim_mor.
# This may be replaced when dependencies are built.
