file(REMOVE_RECURSE
  "libsnim_mor.a"
)
