file(REMOVE_RECURSE
  "CMakeFiles/snim_mor.dir/mor/elimination.cpp.o"
  "CMakeFiles/snim_mor.dir/mor/elimination.cpp.o.d"
  "CMakeFiles/snim_mor.dir/mor/macromodel.cpp.o"
  "CMakeFiles/snim_mor.dir/mor/macromodel.cpp.o.d"
  "CMakeFiles/snim_mor.dir/mor/reduce_solve.cpp.o"
  "CMakeFiles/snim_mor.dir/mor/reduce_solve.cpp.o.d"
  "libsnim_mor.a"
  "libsnim_mor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_mor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
