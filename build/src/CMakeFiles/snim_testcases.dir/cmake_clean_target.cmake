file(REMOVE_RECURSE
  "libsnim_testcases.a"
)
