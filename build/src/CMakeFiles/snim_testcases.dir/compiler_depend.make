# Empty compiler generated dependencies file for snim_testcases.
# This may be replaced when dependencies are built.
