file(REMOVE_RECURSE
  "CMakeFiles/snim_testcases.dir/testcases/nmos_structure.cpp.o"
  "CMakeFiles/snim_testcases.dir/testcases/nmos_structure.cpp.o.d"
  "CMakeFiles/snim_testcases.dir/testcases/vco.cpp.o"
  "CMakeFiles/snim_testcases.dir/testcases/vco.cpp.o.d"
  "libsnim_testcases.a"
  "libsnim_testcases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_testcases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
