
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/grid_index.cpp" "src/CMakeFiles/snim_geom.dir/geom/grid_index.cpp.o" "gcc" "src/CMakeFiles/snim_geom.dir/geom/grid_index.cpp.o.d"
  "/root/repo/src/geom/polygon.cpp" "src/CMakeFiles/snim_geom.dir/geom/polygon.cpp.o" "gcc" "src/CMakeFiles/snim_geom.dir/geom/polygon.cpp.o.d"
  "/root/repo/src/geom/rect.cpp" "src/CMakeFiles/snim_geom.dir/geom/rect.cpp.o" "gcc" "src/CMakeFiles/snim_geom.dir/geom/rect.cpp.o.d"
  "/root/repo/src/geom/transform.cpp" "src/CMakeFiles/snim_geom.dir/geom/transform.cpp.o" "gcc" "src/CMakeFiles/snim_geom.dir/geom/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
