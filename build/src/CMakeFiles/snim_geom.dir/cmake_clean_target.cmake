file(REMOVE_RECURSE
  "libsnim_geom.a"
)
