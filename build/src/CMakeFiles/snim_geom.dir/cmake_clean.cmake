file(REMOVE_RECURSE
  "CMakeFiles/snim_geom.dir/geom/grid_index.cpp.o"
  "CMakeFiles/snim_geom.dir/geom/grid_index.cpp.o.d"
  "CMakeFiles/snim_geom.dir/geom/polygon.cpp.o"
  "CMakeFiles/snim_geom.dir/geom/polygon.cpp.o.d"
  "CMakeFiles/snim_geom.dir/geom/rect.cpp.o"
  "CMakeFiles/snim_geom.dir/geom/rect.cpp.o.d"
  "CMakeFiles/snim_geom.dir/geom/transform.cpp.o"
  "CMakeFiles/snim_geom.dir/geom/transform.cpp.o.d"
  "libsnim_geom.a"
  "libsnim_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
