# Empty dependencies file for snim_geom.
# This may be replaced when dependencies are built.
