file(REMOVE_RECURSE
  "CMakeFiles/snim_tech.dir/tech/doping.cpp.o"
  "CMakeFiles/snim_tech.dir/tech/doping.cpp.o.d"
  "CMakeFiles/snim_tech.dir/tech/generic180.cpp.o"
  "CMakeFiles/snim_tech.dir/tech/generic180.cpp.o.d"
  "CMakeFiles/snim_tech.dir/tech/technology.cpp.o"
  "CMakeFiles/snim_tech.dir/tech/technology.cpp.o.d"
  "libsnim_tech.a"
  "libsnim_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
