# Empty dependencies file for snim_tech.
# This may be replaced when dependencies are built.
