file(REMOVE_RECURSE
  "libsnim_tech.a"
)
