
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/doping.cpp" "src/CMakeFiles/snim_tech.dir/tech/doping.cpp.o" "gcc" "src/CMakeFiles/snim_tech.dir/tech/doping.cpp.o.d"
  "/root/repo/src/tech/generic180.cpp" "src/CMakeFiles/snim_tech.dir/tech/generic180.cpp.o" "gcc" "src/CMakeFiles/snim_tech.dir/tech/generic180.cpp.o.d"
  "/root/repo/src/tech/technology.cpp" "src/CMakeFiles/snim_tech.dir/tech/technology.cpp.o" "gcc" "src/CMakeFiles/snim_tech.dir/tech/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
