# Empty compiler generated dependencies file for snim_dsp.
# This may be replaced when dependencies are built.
