file(REMOVE_RECURSE
  "libsnim_dsp.a"
)
