file(REMOVE_RECURSE
  "CMakeFiles/snim_dsp.dir/dsp/fft.cpp.o"
  "CMakeFiles/snim_dsp.dir/dsp/fft.cpp.o.d"
  "CMakeFiles/snim_dsp.dir/dsp/goertzel.cpp.o"
  "CMakeFiles/snim_dsp.dir/dsp/goertzel.cpp.o.d"
  "CMakeFiles/snim_dsp.dir/dsp/spectrum.cpp.o"
  "CMakeFiles/snim_dsp.dir/dsp/spectrum.cpp.o.d"
  "CMakeFiles/snim_dsp.dir/dsp/window.cpp.o"
  "CMakeFiles/snim_dsp.dir/dsp/window.cpp.o.d"
  "libsnim_dsp.a"
  "libsnim_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
