
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/snim_dsp.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/snim_dsp.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/goertzel.cpp" "src/CMakeFiles/snim_dsp.dir/dsp/goertzel.cpp.o" "gcc" "src/CMakeFiles/snim_dsp.dir/dsp/goertzel.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/CMakeFiles/snim_dsp.dir/dsp/spectrum.cpp.o" "gcc" "src/CMakeFiles/snim_dsp.dir/dsp/spectrum.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/CMakeFiles/snim_dsp.dir/dsp/window.cpp.o" "gcc" "src/CMakeFiles/snim_dsp.dir/dsp/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snim_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
