# Empty compiler generated dependencies file for snim_numeric.
# This may be replaced when dependencies are built.
