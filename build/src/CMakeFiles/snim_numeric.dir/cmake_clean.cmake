file(REMOVE_RECURSE
  "CMakeFiles/snim_numeric.dir/numeric/dense.cpp.o"
  "CMakeFiles/snim_numeric.dir/numeric/dense.cpp.o.d"
  "CMakeFiles/snim_numeric.dir/numeric/sparse.cpp.o"
  "CMakeFiles/snim_numeric.dir/numeric/sparse.cpp.o.d"
  "CMakeFiles/snim_numeric.dir/numeric/sparse_lu.cpp.o"
  "CMakeFiles/snim_numeric.dir/numeric/sparse_lu.cpp.o.d"
  "CMakeFiles/snim_numeric.dir/numeric/vecops.cpp.o"
  "CMakeFiles/snim_numeric.dir/numeric/vecops.cpp.o.d"
  "libsnim_numeric.a"
  "libsnim_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
