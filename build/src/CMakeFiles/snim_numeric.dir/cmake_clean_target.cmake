file(REMOVE_RECURSE
  "libsnim_numeric.a"
)
