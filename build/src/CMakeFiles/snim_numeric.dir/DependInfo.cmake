
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/dense.cpp" "src/CMakeFiles/snim_numeric.dir/numeric/dense.cpp.o" "gcc" "src/CMakeFiles/snim_numeric.dir/numeric/dense.cpp.o.d"
  "/root/repo/src/numeric/sparse.cpp" "src/CMakeFiles/snim_numeric.dir/numeric/sparse.cpp.o" "gcc" "src/CMakeFiles/snim_numeric.dir/numeric/sparse.cpp.o.d"
  "/root/repo/src/numeric/sparse_lu.cpp" "src/CMakeFiles/snim_numeric.dir/numeric/sparse_lu.cpp.o" "gcc" "src/CMakeFiles/snim_numeric.dir/numeric/sparse_lu.cpp.o.d"
  "/root/repo/src/numeric/vecops.cpp" "src/CMakeFiles/snim_numeric.dir/numeric/vecops.cpp.o" "gcc" "src/CMakeFiles/snim_numeric.dir/numeric/vecops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
