file(REMOVE_RECURSE
  "libsnim_substrate.a"
)
