file(REMOVE_RECURSE
  "CMakeFiles/snim_substrate.dir/substrate/analytic.cpp.o"
  "CMakeFiles/snim_substrate.dir/substrate/analytic.cpp.o.d"
  "CMakeFiles/snim_substrate.dir/substrate/extractor.cpp.o"
  "CMakeFiles/snim_substrate.dir/substrate/extractor.cpp.o.d"
  "CMakeFiles/snim_substrate.dir/substrate/mesh.cpp.o"
  "CMakeFiles/snim_substrate.dir/substrate/mesh.cpp.o.d"
  "CMakeFiles/snim_substrate.dir/substrate/ports.cpp.o"
  "CMakeFiles/snim_substrate.dir/substrate/ports.cpp.o.d"
  "libsnim_substrate.a"
  "libsnim_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
