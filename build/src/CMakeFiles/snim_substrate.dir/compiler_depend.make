# Empty compiler generated dependencies file for snim_substrate.
# This may be replaced when dependencies are built.
