file(REMOVE_RECURSE
  "libsnim_util.a"
)
