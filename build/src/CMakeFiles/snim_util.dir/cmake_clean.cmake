file(REMOVE_RECURSE
  "CMakeFiles/snim_util.dir/util/csv.cpp.o"
  "CMakeFiles/snim_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/snim_util.dir/util/error.cpp.o"
  "CMakeFiles/snim_util.dir/util/error.cpp.o.d"
  "CMakeFiles/snim_util.dir/util/log.cpp.o"
  "CMakeFiles/snim_util.dir/util/log.cpp.o.d"
  "CMakeFiles/snim_util.dir/util/rng.cpp.o"
  "CMakeFiles/snim_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/snim_util.dir/util/strings.cpp.o"
  "CMakeFiles/snim_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/snim_util.dir/util/table.cpp.o"
  "CMakeFiles/snim_util.dir/util/table.cpp.o.d"
  "CMakeFiles/snim_util.dir/util/units.cpp.o"
  "CMakeFiles/snim_util.dir/util/units.cpp.o.d"
  "libsnim_util.a"
  "libsnim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
