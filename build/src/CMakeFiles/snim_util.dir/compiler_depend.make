# Empty compiler generated dependencies file for snim_util.
# This may be replaced when dependencies are built.
