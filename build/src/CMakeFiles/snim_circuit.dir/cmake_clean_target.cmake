file(REMOVE_RECURSE
  "libsnim_circuit.a"
)
