
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/controlled.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/controlled.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/controlled.cpp.o.d"
  "/root/repo/src/circuit/device.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/device.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/device.cpp.o.d"
  "/root/repo/src/circuit/diode.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/diode.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/diode.cpp.o.d"
  "/root/repo/src/circuit/mosfet.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/mosfet.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/mosfet.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/passives.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/passives.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/passives.cpp.o.d"
  "/root/repo/src/circuit/sources.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/sources.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/sources.cpp.o.d"
  "/root/repo/src/circuit/spice_parser.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/spice_parser.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/spice_parser.cpp.o.d"
  "/root/repo/src/circuit/spice_writer.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/spice_writer.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/spice_writer.cpp.o.d"
  "/root/repo/src/circuit/varactor.cpp" "src/CMakeFiles/snim_circuit.dir/circuit/varactor.cpp.o" "gcc" "src/CMakeFiles/snim_circuit.dir/circuit/varactor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snim_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
