file(REMOVE_RECURSE
  "CMakeFiles/snim_circuit.dir/circuit/controlled.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/controlled.cpp.o.d"
  "CMakeFiles/snim_circuit.dir/circuit/device.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/device.cpp.o.d"
  "CMakeFiles/snim_circuit.dir/circuit/diode.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/diode.cpp.o.d"
  "CMakeFiles/snim_circuit.dir/circuit/mosfet.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/mosfet.cpp.o.d"
  "CMakeFiles/snim_circuit.dir/circuit/netlist.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/netlist.cpp.o.d"
  "CMakeFiles/snim_circuit.dir/circuit/passives.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/passives.cpp.o.d"
  "CMakeFiles/snim_circuit.dir/circuit/sources.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/sources.cpp.o.d"
  "CMakeFiles/snim_circuit.dir/circuit/spice_parser.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/spice_parser.cpp.o.d"
  "CMakeFiles/snim_circuit.dir/circuit/spice_writer.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/spice_writer.cpp.o.d"
  "CMakeFiles/snim_circuit.dir/circuit/varactor.cpp.o"
  "CMakeFiles/snim_circuit.dir/circuit/varactor.cpp.o.d"
  "libsnim_circuit.a"
  "libsnim_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
