# Empty dependencies file for snim_circuit.
# This may be replaced when dependencies are built.
