
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ac.cpp" "src/CMakeFiles/snim_sim.dir/sim/ac.cpp.o" "gcc" "src/CMakeFiles/snim_sim.dir/sim/ac.cpp.o.d"
  "/root/repo/src/sim/dc_sweep.cpp" "src/CMakeFiles/snim_sim.dir/sim/dc_sweep.cpp.o" "gcc" "src/CMakeFiles/snim_sim.dir/sim/dc_sweep.cpp.o.d"
  "/root/repo/src/sim/mna.cpp" "src/CMakeFiles/snim_sim.dir/sim/mna.cpp.o" "gcc" "src/CMakeFiles/snim_sim.dir/sim/mna.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/CMakeFiles/snim_sim.dir/sim/noise.cpp.o" "gcc" "src/CMakeFiles/snim_sim.dir/sim/noise.cpp.o.d"
  "/root/repo/src/sim/op.cpp" "src/CMakeFiles/snim_sim.dir/sim/op.cpp.o" "gcc" "src/CMakeFiles/snim_sim.dir/sim/op.cpp.o.d"
  "/root/repo/src/sim/transfer.cpp" "src/CMakeFiles/snim_sim.dir/sim/transfer.cpp.o" "gcc" "src/CMakeFiles/snim_sim.dir/sim/transfer.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/CMakeFiles/snim_sim.dir/sim/transient.cpp.o" "gcc" "src/CMakeFiles/snim_sim.dir/sim/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
