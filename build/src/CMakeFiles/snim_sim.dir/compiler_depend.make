# Empty compiler generated dependencies file for snim_sim.
# This may be replaced when dependencies are built.
