file(REMOVE_RECURSE
  "CMakeFiles/snim_sim.dir/sim/ac.cpp.o"
  "CMakeFiles/snim_sim.dir/sim/ac.cpp.o.d"
  "CMakeFiles/snim_sim.dir/sim/dc_sweep.cpp.o"
  "CMakeFiles/snim_sim.dir/sim/dc_sweep.cpp.o.d"
  "CMakeFiles/snim_sim.dir/sim/mna.cpp.o"
  "CMakeFiles/snim_sim.dir/sim/mna.cpp.o.d"
  "CMakeFiles/snim_sim.dir/sim/noise.cpp.o"
  "CMakeFiles/snim_sim.dir/sim/noise.cpp.o.d"
  "CMakeFiles/snim_sim.dir/sim/op.cpp.o"
  "CMakeFiles/snim_sim.dir/sim/op.cpp.o.d"
  "CMakeFiles/snim_sim.dir/sim/transfer.cpp.o"
  "CMakeFiles/snim_sim.dir/sim/transfer.cpp.o.d"
  "CMakeFiles/snim_sim.dir/sim/transient.cpp.o"
  "CMakeFiles/snim_sim.dir/sim/transient.cpp.o.d"
  "libsnim_sim.a"
  "libsnim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
