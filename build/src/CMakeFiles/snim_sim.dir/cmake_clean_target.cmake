file(REMOVE_RECURSE
  "libsnim_sim.a"
)
