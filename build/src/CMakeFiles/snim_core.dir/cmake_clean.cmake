file(REMOVE_RECURSE
  "CMakeFiles/snim_core.dir/core/classify.cpp.o"
  "CMakeFiles/snim_core.dir/core/classify.cpp.o.d"
  "CMakeFiles/snim_core.dir/core/contribution.cpp.o"
  "CMakeFiles/snim_core.dir/core/contribution.cpp.o.d"
  "CMakeFiles/snim_core.dir/core/impact_flow.cpp.o"
  "CMakeFiles/snim_core.dir/core/impact_flow.cpp.o.d"
  "CMakeFiles/snim_core.dir/core/impact_model.cpp.o"
  "CMakeFiles/snim_core.dir/core/impact_model.cpp.o.d"
  "CMakeFiles/snim_core.dir/core/report.cpp.o"
  "CMakeFiles/snim_core.dir/core/report.cpp.o.d"
  "libsnim_core.a"
  "libsnim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
