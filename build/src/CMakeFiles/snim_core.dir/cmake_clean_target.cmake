file(REMOVE_RECURSE
  "libsnim_core.a"
)
