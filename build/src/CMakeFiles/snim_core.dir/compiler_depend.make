# Empty compiler generated dependencies file for snim_core.
# This may be replaced when dependencies are built.
