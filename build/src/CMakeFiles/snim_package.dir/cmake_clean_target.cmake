file(REMOVE_RECURSE
  "libsnim_package.a"
)
