file(REMOVE_RECURSE
  "CMakeFiles/snim_package.dir/package/package.cpp.o"
  "CMakeFiles/snim_package.dir/package/package.cpp.o.d"
  "libsnim_package.a"
  "libsnim_package.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_package.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
