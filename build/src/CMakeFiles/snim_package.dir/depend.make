# Empty dependencies file for snim_package.
# This may be replaced when dependencies are built.
