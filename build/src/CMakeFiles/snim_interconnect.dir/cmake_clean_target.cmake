file(REMOVE_RECURSE
  "libsnim_interconnect.a"
)
