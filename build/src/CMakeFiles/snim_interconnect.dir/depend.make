# Empty dependencies file for snim_interconnect.
# This may be replaced when dependencies are built.
