file(REMOVE_RECURSE
  "CMakeFiles/snim_interconnect.dir/interconnect/extractor.cpp.o"
  "CMakeFiles/snim_interconnect.dir/interconnect/extractor.cpp.o.d"
  "CMakeFiles/snim_interconnect.dir/interconnect/fracture.cpp.o"
  "CMakeFiles/snim_interconnect.dir/interconnect/fracture.cpp.o.d"
  "libsnim_interconnect.a"
  "libsnim_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
