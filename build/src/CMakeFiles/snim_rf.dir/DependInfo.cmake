
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/oscillator.cpp" "src/CMakeFiles/snim_rf.dir/rf/oscillator.cpp.o" "gcc" "src/CMakeFiles/snim_rf.dir/rf/oscillator.cpp.o.d"
  "/root/repo/src/rf/phase_noise.cpp" "src/CMakeFiles/snim_rf.dir/rf/phase_noise.cpp.o" "gcc" "src/CMakeFiles/snim_rf.dir/rf/phase_noise.cpp.o.d"
  "/root/repo/src/rf/sensitivity.cpp" "src/CMakeFiles/snim_rf.dir/rf/sensitivity.cpp.o" "gcc" "src/CMakeFiles/snim_rf.dir/rf/sensitivity.cpp.o.d"
  "/root/repo/src/rf/spur.cpp" "src/CMakeFiles/snim_rf.dir/rf/spur.cpp.o" "gcc" "src/CMakeFiles/snim_rf.dir/rf/spur.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
