file(REMOVE_RECURSE
  "libsnim_rf.a"
)
