file(REMOVE_RECURSE
  "CMakeFiles/snim_rf.dir/rf/oscillator.cpp.o"
  "CMakeFiles/snim_rf.dir/rf/oscillator.cpp.o.d"
  "CMakeFiles/snim_rf.dir/rf/phase_noise.cpp.o"
  "CMakeFiles/snim_rf.dir/rf/phase_noise.cpp.o.d"
  "CMakeFiles/snim_rf.dir/rf/sensitivity.cpp.o"
  "CMakeFiles/snim_rf.dir/rf/sensitivity.cpp.o.d"
  "CMakeFiles/snim_rf.dir/rf/spur.cpp.o"
  "CMakeFiles/snim_rf.dir/rf/spur.cpp.o.d"
  "libsnim_rf.a"
  "libsnim_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
