# Empty compiler generated dependencies file for snim_rf.
# This may be replaced when dependencies are built.
