# Empty compiler generated dependencies file for snim_layout.
# This may be replaced when dependencies are built.
