file(REMOVE_RECURSE
  "CMakeFiles/snim_layout.dir/layout/connectivity.cpp.o"
  "CMakeFiles/snim_layout.dir/layout/connectivity.cpp.o.d"
  "CMakeFiles/snim_layout.dir/layout/io.cpp.o"
  "CMakeFiles/snim_layout.dir/layout/io.cpp.o.d"
  "CMakeFiles/snim_layout.dir/layout/layout.cpp.o"
  "CMakeFiles/snim_layout.dir/layout/layout.cpp.o.d"
  "libsnim_layout.a"
  "libsnim_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snim_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
