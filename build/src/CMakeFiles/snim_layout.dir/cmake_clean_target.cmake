file(REMOVE_RECURSE
  "libsnim_layout.a"
)
