// chaos_resume — kill-and-resume chaos harness for the checkpoint subsystem.
//
//   chaos_resume [--trials N] [--seed S] [--dir PATH] [--threads N]
//                [--steps N] [--every N]
//
// Each trial forks a child that runs a checkpointed transient on a mildly
// nonlinear RC+diode network, SIGKILLs it at a seeded-random point
// mid-run, resumes the run in the parent from whatever snapshot survived,
// and bit-compares the resumed waveforms (time axis, every probe, the
// accumulated averages) against a clean uninterrupted reference run.  Even
// trials wait for the first snapshot before killing (resume continues
// mid-run); odd trials kill after a random delay from process start, which
// sometimes lands before any snapshot exists (resume must then fall back
// to a bit-identical fresh start).  Any byte of divergence fails the
// trial; any failed trial fails the process (exit 1).  Same --seed, same
// kill points.
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "circuit/diode.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "sim/checkpoint.hpp"
#include "sim/transient.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace snim;

struct Args {
    long trials = 5;
    uint64_t seed = 1;
    std::string dir = "chaos_ckpt";
    int threads = 1;
    long steps = 20000;  // nominal transient steps per run
    long every = 250;    // checkpoint cadence, accepted steps
};

[[noreturn]] void usage(const char* msg = nullptr) {
    if (msg) std::fprintf(stderr, "chaos_resume: %s\n\n", msg);
    std::fputs(
        "usage: chaos_resume [options]\n"
        "  --trials N    kill-and-resume trials to run (default 5)\n"
        "  --seed S      RNG seed for the kill points (default 1)\n"
        "  --dir PATH    checkpoint directory (default chaos_ckpt)\n"
        "  --threads N   solver thread count (default 1)\n"
        "  --steps N     nominal transient steps per run (default 20000)\n"
        "  --every N     checkpoint every N accepted steps (default 250)\n",
        stderr);
    std::exit(2);
}

long parse_long(const char* flag, const char* value) {
    if (!value) usage(format("%s needs a value", flag).c_str());
    char* end = nullptr;
    const long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v < 0)
        usage(format("%s: bad number '%s'", flag, value).c_str());
    return v;
}

/// splitmix64 — tiny, seedable, good enough to scatter kill points.
uint64_t next_rand(uint64_t& state) {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void sleep_us(long us) {
    struct timespec ts;
    ts.tv_sec = us / 1000000;
    ts.tv_nsec = (us % 1000000) * 1000;
    nanosleep(&ts, nullptr);
}

bool file_exists(const std::string& path) {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/// The same network shape the checkpoint unit tests use: capacitor charge
/// history plus a diode linearisation point, so a snapshot carries real
/// per-device integration state, not just node voltages.
circuit::Netlist chaos_netlist() {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("in"), circuit::kGround,
                             circuit::Waveform::sin(0.4, 0.5, 100e6));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("mid"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("mid"), circuit::kGround, 2e-12);
    circuit::DiodeModel dm;
    dm.cj0 = 1e-13;
    nl.add<circuit::Diode>("d1", nl.node("mid"), nl.node("out"), dm);
    nl.add<circuit::Resistor>("r2", nl.node("out"), circuit::kGround, 10e3);
    nl.add<circuit::Capacitor>("c2", nl.node("out"), circuit::kGround, 1e-12);
    return nl;
}

const std::vector<std::string> kProbes{"mid", "out"};

sim::TranOptions chaos_options(const Args& a) {
    sim::TranOptions opt;
    opt.dt = 0.1e-9;
    opt.tstop = static_cast<double>(a.steps) * opt.dt;
    opt.record_start = opt.tstop * 0.25;
    opt.accumulate_average = true;
    opt.diag_bundle = false;
    return opt;
}

sim::TranOptions checkpointed_options(const Args& a) {
    sim::TranOptions opt = chaos_options(a);
    opt.checkpoint.dir = a.dir;
    opt.checkpoint.tag = "chaos";
    opt.checkpoint.every_steps = a.every;
    return opt;
}

/// Byte-for-byte waveform comparison; prints the first divergence found.
bool bitwise_equal(const sim::TranResult& a, const sim::TranResult& b) {
    if (a.time.size() != b.time.size() || a.waves.size() != b.waves.size() ||
        a.average.size() != b.average.size()) {
        std::fprintf(stderr,
                     "  shape mismatch: %zu vs %zu samples, %zu vs %zu probes\n",
                     a.time.size(), b.time.size(), a.waves.size(), b.waves.size());
        return false;
    }
    if (std::memcmp(a.time.data(), b.time.data(), a.time.size() * sizeof(double))) {
        std::fprintf(stderr, "  time axis diverged\n");
        return false;
    }
    for (size_t p = 0; p < a.waves.size(); ++p) {
        if (a.waves[p].size() != b.waves[p].size() ||
            std::memcmp(a.waves[p].data(), b.waves[p].data(),
                        a.waves[p].size() * sizeof(double))) {
            for (size_t k = 0; k < a.waves[p].size(); ++k)
                if (a.waves[p][k] != b.waves[p][k]) {
                    std::fprintf(stderr,
                                 "  probe '%s' diverged at sample %zu: "
                                 "%.17g vs %.17g\n",
                                 a.probe_names[p].c_str(), k, a.waves[p][k],
                                 b.waves[p][k]);
                    break;
                }
            return false;
        }
    }
    if (std::memcmp(a.average.data(), b.average.data(),
                    a.average.size() * sizeof(double))) {
        std::fprintf(stderr, "  accumulated averages diverged\n");
        return false;
    }
    return true;
}

void scrub_snapshots(const Args& a) {
    const std::string path = sim::checkpoint_path(a.dir, "chaos");
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

int run_trials(const Args& a) {
    ::mkdir(a.dir.c_str(), 0755);
    util::set_default_thread_count(a.threads);

    std::printf("chaos_resume: reference run (%ld steps, %d thread%s)...\n",
                a.steps, a.threads, a.threads == 1 ? "" : "s");
    circuit::Netlist ref_nl = chaos_netlist();
    const sim::TranResult reference = sim::transient(ref_nl, kProbes, chaos_options(a));

    const std::string ckpt_path = sim::checkpoint_path(a.dir, "chaos");
    uint64_t rng = a.seed;
    int failures = 0;
    for (long trial = 0; trial < a.trials; ++trial) {
        scrub_snapshots(a);
        // Even trials wait for the first snapshot so resume genuinely
        // continues mid-run; odd trials race from process start and may
        // kill before any snapshot lands (fresh-start resume path).
        const bool wait_for_ckpt = trial % 2 == 0;
        const long delay_us = static_cast<long>(next_rand(rng) % 50000);

        const pid_t child = fork();
        if (child < 0) {
            std::perror("chaos_resume: fork");
            return 2;
        }
        if (child == 0) {
            // Child: run the checkpointed transient to completion (unless
            // killed first).  _exit keeps the parent's stdio buffers from
            // being flushed twice.
            try {
                circuit::Netlist nl = chaos_netlist();
                sim::transient(nl, kProbes, checkpointed_options(a));
            } catch (...) {
                _exit(3);
            }
            _exit(0);
        }

        if (wait_for_ckpt) {
            // Poll until the first snapshot is published (or the child
            // finishes early — resume then replays the completed state).
            for (int spins = 0; spins < 200000; ++spins) {
                if (file_exists(ckpt_path)) break;
                if (waitpid(child, nullptr, WNOHANG) == child) break;
                sleep_us(100);
            }
        }
        sleep_us(delay_us);
        kill(child, SIGKILL);
        int status = 0;
        waitpid(child, &status, 0);
        const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
        const bool have_snapshot = file_exists(ckpt_path) ||
                                   file_exists(ckpt_path + ".prev");

        std::printf("trial %ld/%ld: %s after %ld us (%s), resuming...\n",
                    trial + 1, a.trials,
                    killed ? "SIGKILLed" : "child finished",
                    delay_us, have_snapshot ? "snapshot on disk" : "no snapshot yet");

        sim::TranOptions resume_opt = checkpointed_options(a);
        resume_opt.checkpoint.resume = true;
        circuit::Netlist nl = chaos_netlist();
        sim::TranResult resumed;
        try {
            resumed = sim::resume_transient(nl, kProbes, resume_opt);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "trial %ld: resume raised: %s\n", trial + 1, e.what());
            ++failures;
            continue;
        }
        if (bitwise_equal(reference, resumed)) {
            std::printf("trial %ld: PASS (bit-identical to the clean run)\n",
                        trial + 1);
        } else {
            std::fprintf(stderr, "trial %ld: FAIL (resumed run diverged)\n",
                         trial + 1);
            ++failures;
        }
    }
    scrub_snapshots(a);
    if (failures) {
        std::fprintf(stderr, "chaos_resume: %d of %ld trials FAILED\n", failures,
                     a.trials);
        return 1;
    }
    std::printf("chaos_resume: all %ld trials passed\n", a.trials);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--trials") a.trials = parse_long(argv[i], next), ++i;
        else if (arg == "--seed") a.seed = static_cast<uint64_t>(parse_long(argv[i], next)), ++i;
        else if (arg == "--threads") a.threads = static_cast<int>(parse_long(argv[i], next)), ++i;
        else if (arg == "--steps") a.steps = parse_long(argv[i], next), ++i;
        else if (arg == "--every") a.every = parse_long(argv[i], next), ++i;
        else if (arg == "--dir") {
            if (!next) usage("--dir needs a path");
            a.dir = next;
            ++i;
        } else {
            usage(format("unknown flag '%s'", arg.c_str()).c_str());
        }
    }
    if (a.trials <= 0) usage("--trials must be positive");
    if (a.steps <= 0 || a.every <= 0) usage("--steps/--every must be positive");
    try {
        return run_trials(a);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "chaos_resume: %s\n", e.what());
        return 2;
    }
}
