// snim_report — cross-run comparison front-end.
//
//   snim_report diff  OLD.json NEW.json [--tol-runtime PCT] [--tol-accuracy DB]
//                     [--tol-rss PCT] [--tol-counter PCT] [--limit N]
//                     [--fail-on-regress]
//   snim_report trend LEDGER.jsonl [--last N] [--html FILE]
//   snim_report show  RUN.json
//   snim_report budget RUN.json [OLD.json] [--limit N] [--fail-on-breach]
//                      [--fail-on-regress] [--tol-budget DB]
//
// `diff` aligns two BENCH_*.json reports by scenario and metric name
// (schema-4 accuracy-budget stages included), prints the ranked regression
// table, and — only under --fail-on-regress — exits 1 when any metric
// regressed beyond tolerance, which is how CI gates on it.  `trend` renders
// a snim_bench --ledger history as sparklines (text) or a self-contained
// HTML page with a collapsible phase flame view.  `show` pretty-prints a
// single report's manifest and scenarios.  `budget` prints one report's
// ranked accuracy-budget ledger (worst margin first) with the per-scenario
// solve-certificate summaries; with a second file it additionally diffs the
// budget stages against that baseline.  Exit codes: 0 ok, 1 gated
// regression/breach, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/compare.hpp"
#include "obs/json.hpp"
#include "obs/run_ledger.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace {

using namespace snim;
using namespace snim::obs;

[[noreturn]] void usage(const char* msg = nullptr) {
    if (msg) std::fprintf(stderr, "snim_report: %s\n\n", msg);
    std::fputs(
        "usage:\n"
        "  snim_report diff OLD.json NEW.json [options]\n"
        "      --tol-runtime PCT   runtime noise tolerance, percent (default 25)\n"
        "      --tol-accuracy DB   accuracy noise tolerance, dB (default 0.05)\n"
        "      --tol-rss PCT       peak-RSS noise tolerance, percent (default 30)\n"
        "      --tol-counter PCT   counter tolerance, percent (default 0)\n"
        "      --limit N           show at most N non-regression rows\n"
        "      --fail-on-regress   exit 1 when anything regressed beyond tolerance\n"
        "  snim_report trend LEDGER.jsonl [--last N] [--html FILE]\n"
        "  snim_report show RUN.json [--events]\n"
        "      --events            print the live event-journal tail and top\n"
        "                          sampled stacks instead of the summary\n"
        "  snim_report budget RUN.json [OLD.json] [options]\n"
        "      --limit N           show at most N unbreached budget rows\n"
        "      --fail-on-breach    exit 1 when any stage is over budget or a\n"
        "                          solve certificate recorded a breach\n"
        "      --tol-budget DB     margin noise tolerance for the baseline\n"
        "                          diff, dB (default 0.5)\n"
        "      --fail-on-regress   exit 1 when a budget margin regressed\n"
        "                          against OLD.json beyond tolerance\n",
        stderr);
    std::exit(2);
}

double parse_double(const char* flag, const char* value) {
    if (!value) usage(format("%s needs a value", flag).c_str());
    char* end = nullptr;
    const double v = std::strtod(value, &end);
    if (end == value || *end != '\0')
        usage(format("%s: bad number '%s'", flag, value).c_str());
    return v;
}

Json load_json(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) raise("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    // A report file from a killed run (or a partial download) must be a
    // named, non-zero-exit error — not a raw parse backtrace or a crash.
    try {
        return Json::parse(ss.str());
    } catch (const Error& e) {
        raise("'%s' is not a valid snim report (truncated or corrupt JSON): %s",
              path.c_str(), e.what());
    }
}

int cmd_diff(int argc, char** argv) {
    std::vector<std::string> files;
    DiffTolerances tol;
    size_t limit = 0;
    bool fail_on_regress = false;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--tol-runtime") tol.runtime_pct = parse_double(argv[i], next), ++i;
        else if (a == "--tol-accuracy") tol.accuracy_db = parse_double(argv[i], next), ++i;
        else if (a == "--tol-rss") tol.rss_pct = parse_double(argv[i], next), ++i;
        else if (a == "--tol-counter") tol.counter_pct = parse_double(argv[i], next), ++i;
        else if (a == "--tol-budget") tol.budget_db = parse_double(argv[i], next), ++i;
        else if (a == "--limit") limit = static_cast<size_t>(parse_double(argv[i], next)), ++i;
        else if (a == "--fail-on-regress") fail_on_regress = true;
        else if (!a.empty() && a[0] == '-') usage(format("unknown flag '%s'", a.c_str()).c_str());
        else files.push_back(a);
    }
    if (files.size() != 2) usage("diff needs exactly two report files");

    const ReportDiff d = diff_reports(load_json(files[0]), load_json(files[1]), tol);
    std::fputs(diff_table(d, limit).c_str(), stdout);
    if (diff_has_regression(d)) {
        if (fail_on_regress) {
            std::fputs("FAIL: regression beyond tolerance\n", stdout);
            return 1;
        }
        std::fputs("note: regression beyond tolerance "
                   "(pass --fail-on-regress to gate on it)\n",
                   stdout);
    }
    return 0;
}

int cmd_trend(int argc, char** argv) {
    std::string ledger_path, html_path;
    size_t last = 0;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--last") last = static_cast<size_t>(parse_double(argv[i], next)), ++i;
        else if (a == "--html") {
            if (!next) usage("--html needs a file name");
            html_path = next;
            ++i;
        } else if (!a.empty() && a[0] == '-') {
            usage(format("unknown flag '%s'", a.c_str()).c_str());
        } else if (ledger_path.empty()) {
            ledger_path = a;
        } else {
            usage("trend takes one ledger file");
        }
    }
    if (ledger_path.empty()) usage("trend needs a ledger file");

    std::vector<Json> entries = read_ledger(ledger_path);
    if (last > 0 && entries.size() > last)
        entries.erase(entries.begin(),
                      entries.begin() + static_cast<long>(entries.size() - last));

    std::fputs(trend_text(entries).c_str(), stdout);
    if (!html_path.empty()) {
        util::write_file_atomic(html_path, trend_html(entries));
        std::printf("HTML trend written to %s\n", html_path.c_str());
    }
    return 0;
}

int cmd_show(int argc, char** argv) {
    std::string path;
    bool events = false;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--events") events = true;
        else if (!a.empty() && a[0] == '-')
            usage(format("unknown flag '%s'", a.c_str()).c_str());
        else if (path.empty()) path = a;
        else usage("show takes one report file");
    }
    if (path.empty()) usage("show needs one report file");
    const Json report = load_json(path);
    if (events) {
        std::fputs(show_events(report).c_str(), stdout);
        return 0;
    }
    std::fputs(show_report(report).c_str(), stdout);
    return 0;
}

int cmd_budget(int argc, char** argv) {
    std::vector<std::string> files;
    DiffTolerances tol;
    size_t limit = 0;
    bool fail_on_breach = false;
    bool fail_on_regress = false;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (a == "--limit") limit = static_cast<size_t>(parse_double(argv[i], next)), ++i;
        else if (a == "--tol-budget") tol.budget_db = parse_double(argv[i], next), ++i;
        else if (a == "--fail-on-breach") fail_on_breach = true;
        else if (a == "--fail-on-regress") fail_on_regress = true;
        else if (!a.empty() && a[0] == '-') usage(format("unknown flag '%s'", a.c_str()).c_str());
        else files.push_back(a);
    }
    if (files.empty() || files.size() > 2)
        usage("budget needs a report file (plus at most one baseline)");

    const Json report = load_json(files[0]);
    std::fputs(budget_table(report, limit).c_str(), stdout);

    int rc = 0;
    if (files.size() == 2) {
        // Baseline comparison restricted to the budget/<stage> margins; the
        // full metric diff is `snim_report diff`'s job.
        const Json baseline = load_json(files[1]);
        ReportDiff d = diff_reports(baseline, report, tol);
        d.metrics.erase(std::remove_if(d.metrics.begin(), d.metrics.end(),
                                       [](const MetricDiff& m) {
                                           return m.metric.rfind("budget/", 0) != 0;
                                       }),
                        d.metrics.end());
        std::fputs("\nbudget vs baseline:\n", stdout);
        std::fputs(diff_table(d, limit).c_str(), stdout);
        if (diff_has_regression(d)) {
            if (fail_on_regress) {
                std::fputs("FAIL: budget margin regressed beyond tolerance\n", stdout);
                rc = 1;
            } else {
                std::fputs("note: budget margin regressed beyond tolerance "
                           "(pass --fail-on-regress to gate on it)\n",
                           stdout);
            }
        }
    }
    if (budget_has_breach(report)) {
        if (fail_on_breach) {
            std::fputs("FAIL: accuracy budget breached\n", stdout);
            rc = 1;
        } else {
            std::fputs("note: accuracy budget breached "
                       "(pass --fail-on-breach to gate on it)\n",
                       stdout);
        }
    }
    return rc;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "diff") return cmd_diff(argc - 2, argv + 2);
        if (cmd == "trend") return cmd_trend(argc - 2, argv + 2);
        if (cmd == "show") return cmd_show(argc - 2, argv + 2);
        if (cmd == "budget") return cmd_budget(argc - 2, argv + 2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "snim_report: %s\n", e.what());
        return 2;
    }
    usage(format("unknown command '%s'", cmd.c_str()).c_str());
}
