// Figure 7: power spectrum at the VCO output in the presence of a -5 dBm
// 10 MHz substrate tone -- spurs at fc +/- fnoise on both sides of the
// local oscillator, plus the VCO headline specs of Section 4 (fc ~ 3 GHz,
// core current ~ 5 mA at 1.8 V, phase noise ~ -100 dBc/Hz @ 100 kHz).
#include <cstdio>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "dsp/spectrum.hpp"
#include "rf/phase_noise.hpp"
#include "rf/spur.hpp"
#include "sim/ac.hpp"
#include "sim/op.hpp"
#include "testcases/vco.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace snim;
using testcases::VcoTestcase;

int main() {
    printf("=== Figure 7: VCO output spectrum with a -5 dBm 10 MHz substrate tone ===\n\n");

    auto vco = testcases::build_vco();
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());
    auto& nl = model.netlist;

    // --- headline specs (Section 4) --------------------------------------
    // Core current from the DC operating point: current delivered by vddsrc.
    auto xop = sim::operating_point(nl);
    auto* vdd = nl.find_as<circuit::VSource>("vddsrc");
    const double icore = vdd->current(xop);

    const double fn = 10e6;
    nl.find_as<circuit::VSource>(VcoTestcase::kNoiseSource)
        ->set_waveform(circuit::Waveform::sin(0.0, 0.356, fn));

    rf::OscOptions osc = testcases::vco_osc_options();
    osc.capture = 1.0e-6; // 10 noise periods for a clean FFT picture
    auto cap = rf::capture_oscillator(nl, osc);

    printf("VCO: fc = %.4f GHz (paper: ~3 GHz), tank amplitude %.2f V\n",
           cap.fc / 1e9, cap.amplitude);
    printf("     core current = %.2f mA at 1.8 V (paper: 5 mA)\n", icore * 1e3);

    // Tank Q from an AC sweep for the Leeson phase-noise estimate.
    {
        auto xop2 = sim::operating_point(nl);
        auto* ltank = nl.find_as<circuit::Inductor>("ltank");
        const double q_ind =
            units::kTwoPi * cap.fc * ltank->inductance() / ltank->series_res();
        rf::LeesonInputs li;
        li.fc = cap.fc;
        li.q_loaded = 0.6 * q_ind; // loaded by devices and fixed-cap losses
        li.psig_dbm = units::dbm_from_amplitude(cap.amplitude);
        const double pn = rf::leeson_phase_noise(li, 100e3);
        printf("     phase noise (Leeson, Q=%.1f) = %.1f dBc/Hz @ 100 kHz "
               "(paper: -100 dBc/Hz)\n\n",
               li.q_loaded, pn);
        (void)xop2;
    }

    // --- spur measurement (both estimators) -------------------------------
    auto demod = rf::measure_spur(cap, fn);
    auto spectral = rf::measure_spur_spectral(cap, fn);

    Table t({"tone", "freq [GHz]", "demod [dBc]", "spectral [dBc]"});
    t.add_row({"carrier", format("%.4f", cap.fc / 1e9), "0.0", "0.0"});
    t.add_row({"left spur (fc-fn)", format("%.4f", (cap.fc - fn) / 1e9),
               format("%.1f", demod.left_dbc()), format("%.1f", spectral.left_dbc())});
    t.add_row({"right spur (fc+fn)", format("%.4f", (cap.fc + fn) / 1e9),
               format("%.1f", demod.right_dbc()), format("%.1f", spectral.right_dbc())});
    t.print();
    printf("\nFM freq deviation %.4g Hz; left/right asymmetry %.2f dB "
           "(paper: 'a small difference ... caused by negligible AM')\n",
           demod.freq_dev, demod.right_dbc() - demod.left_dbc());

    // --- the Figure-7 picture: FFT spectrum around the carrier ------------
    auto spec = dsp::amplitude_spectrum(cap.wave, cap.fs);
    CsvWriter csv({"freq_GHz", "dbc"});
    AsciiPlot plot("Figure 7: spectrum around the carrier", "f [GHz]", "dBc");
    PlotSeries series{"spectrum", {}, {}, '*'};
    for (size_t k = 0; k < spec.freq.size(); ++k) {
        if (std::fabs(spec.freq[k] - cap.fc) > 4 * fn) continue;
        const double dbc = units::db20(std::max(spec.amp[k], 1e-12) / cap.amplitude);
        csv.add_row({spec.freq[k] / 1e9, dbc});
        if (dbc > -90) {
            series.x.push_back(spec.freq[k] / 1e9);
            series.y.push_back(dbc);
        }
    }
    plot.add(series);
    plot.print();
    csv.save("fig7_spectrum.csv");
    printf("\nwrote fig7_spectrum.csv\n");
    return 0;
}
