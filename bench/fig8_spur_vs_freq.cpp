// Figure 8: total spur power at fc +/- fnoise versus noise frequency for
// several tuning voltages, comparing the methodology prediction ("SIM") to
// the brute-force transient ("MEAS", the silicon stand-in).
//
// Paper: linear relation between spur power and log(fnoise) -- resistive
// coupling followed by FM -- with simulation matching measurement within
// 2 dB over 1-15 MHz.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "circuit/sources.hpp"
#include "core/classify.hpp"
#include "core/impact_model.hpp"
#include "numeric/vecops.hpp"
#include "obs/parallel.hpp"
#include "testcases/vco.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace snim;
using testcases::VcoTestcase;

int main() {
    printf("=== Figure 8: spur power at fc +/- fnoise vs noise frequency ===\n\n");

    const std::vector<double> vtunes{0.0, 0.9};
    const std::vector<double> f_pred{1e6, 2e6, 3e6, 5e6, 8e6, 15e6};
    const std::vector<double> f_meas{2e6, 5e6, 15e6};

    struct CornerOut {
        double fc = 0.0;
        double k_src = 0.0;
        std::vector<double> pred_dbm, left_dbc, right_dbc; // per f_pred point
        std::vector<double> meas_dbm; // NaN where fnoise is not in f_meas
    };
    std::vector<CornerOut> corners(vtunes.size());

    // The vtune corners are independent flows fanned out over SNIM_THREADS
    // workers, each rebuilding its own model.  All printing and CSV output
    // happens below, serially in vtune order, so stdout and the CSV are
    // bit-identical for every thread count.
    obs::parallel_tasks(0, vtunes.size(), [&](size_t ci) {
        auto vco = testcases::build_vco();
        auto model =
            testcases::build_model(std::move(vco), testcases::vco_flow_options());
        model.netlist.find_as<circuit::VSource>(VcoTestcase::kVtuneSource)
            ->set_waveform(circuit::Waveform::dc(vtunes[ci]));

        core::AnalyzerOptions aopt;
        aopt.osc = testcases::vco_osc_options();
        core::ImpactAnalyzer analyzer(model, VcoTestcase::kNoiseSource,
                                      testcases::vco_noise_entries(), aopt);
        analyzer.calibrate();

        CornerOut& out = corners[ci];
        out.fc = analyzer.baseline().fc;
        out.k_src = analyzer.k_src();
        for (double fn : f_pred) {
            auto pred = analyzer.predict(fn);
            out.pred_dbm.push_back(pred.total_dbm());
            out.left_dbc.push_back(pred.left_dbc());
            out.right_dbc.push_back(pred.right_dbc());
            const bool measured =
                std::find(f_meas.begin(), f_meas.end(), fn) != f_meas.end();
            out.meas_dbm.push_back(measured
                                       ? analyzer.simulate(fn).total_dbm()
                                       : std::numeric_limits<double>::quiet_NaN());
        }
    });

    CsvWriter csv({"vtune", "fnoise_Hz", "pred_dbm", "meas_dbm"});
    AsciiPlot plot("Figure 8: total spur power vs fnoise", "fnoise [Hz]", "dBm");
    plot.set_log_x(true);
    double max_err = 0.0;

    for (size_t ci = 0; ci < vtunes.size(); ++ci) {
        const double vt = vtunes[ci];
        const CornerOut& out = corners[ci];
        printf("Vtune = %.1f V: fc = %.4f GHz, K_src = %.4g Hz/V\n", vt,
               out.fc / 1e9, out.k_src);

        Table t({"fnoise [MHz]", "SIM total [dBm]", "SIM L/R [dBc]", "MEAS total [dBm]",
                 "err [dB]"});
        PlotSeries sim{format("sim vt=%.1f", vt), {}, {}, vt == 0.0 ? '*' : '+'};
        PlotSeries meas{format("meas vt=%.1f", vt), {}, {}, vt == 0.0 ? 'o' : 'x'};
        for (size_t k = 0; k < f_pred.size(); ++k) {
            const double fn = f_pred[k];
            sim.x.push_back(fn);
            sim.y.push_back(out.pred_dbm[k]);

            std::string meas_cell = "-";
            std::string err_cell = "-";
            if (!std::isnan(out.meas_dbm[k])) {
                meas.x.push_back(fn);
                meas.y.push_back(out.meas_dbm[k]);
                const double err = out.pred_dbm[k] - out.meas_dbm[k];
                max_err = std::max(max_err, std::fabs(err));
                meas_cell = format("%.1f", out.meas_dbm[k]);
                err_cell = format("%+.1f", err);
                csv.add_row({vt, fn, out.pred_dbm[k], out.meas_dbm[k]});
            } else {
                csv.add_row(std::vector<std::string>{format("%g", vt), format("%g", fn),
                                                     format("%.2f", out.pred_dbm[k]),
                                                     ""});
            }
            t.add_row({format("%.1f", fn / 1e6), format("%.1f", out.pred_dbm[k]),
                       format("%.1f/%.1f", out.left_dbc[k], out.right_dbc[k]), meas_cell,
                       err_cell});
        }
        t.print();

        const double slope = core::db_slope_per_decade(f_pred, out.pred_dbm);
        printf("spur-power slope = %.1f dB/decade (paper: -20, resistive + FM)\n\n",
               slope);
        plot.add(sim);
        plot.add(meas);
    }
    // Include measured points only if both vtunes produced them.
    plot.print();
    csv.save("fig8_spur_vs_freq.csv");
    printf("max |SIM - MEAS| = %.1f dB (paper: <= 2 dB)\n", max_err);
    printf("wrote fig8_spur_vs_freq.csv\n");
    return 0;
}
