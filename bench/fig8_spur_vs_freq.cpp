// Figure 8: total spur power at fc +/- fnoise versus noise frequency for
// several tuning voltages, comparing the methodology prediction ("SIM") to
// the brute-force transient ("MEAS", the silicon stand-in).
//
// Paper: linear relation between spur power and log(fnoise) -- resistive
// coupling followed by FM -- with simulation matching measurement within
// 2 dB over 1-15 MHz.
#include <cstdio>

#include "circuit/sources.hpp"
#include "core/classify.hpp"
#include "core/impact_model.hpp"
#include "numeric/vecops.hpp"
#include "testcases/vco.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace snim;
using testcases::VcoTestcase;

int main() {
    printf("=== Figure 8: spur power at fc +/- fnoise vs noise frequency ===\n\n");

    auto vco = testcases::build_vco();
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());

    const std::vector<double> vtunes{0.0, 0.9};
    const std::vector<double> f_pred{1e6, 2e6, 3e6, 5e6, 8e6, 15e6};
    const std::vector<double> f_meas{2e6, 5e6, 15e6};

    CsvWriter csv({"vtune", "fnoise_Hz", "pred_dbm", "meas_dbm"});
    AsciiPlot plot("Figure 8: total spur power vs fnoise", "fnoise [Hz]", "dBm");
    plot.set_log_x(true);
    double max_err = 0.0;

    for (double vt : vtunes) {
        model.netlist.find_as<circuit::VSource>(VcoTestcase::kVtuneSource)
            ->set_waveform(circuit::Waveform::dc(vt));

        core::AnalyzerOptions aopt;
        aopt.osc = testcases::vco_osc_options();
        core::ImpactAnalyzer analyzer(model, VcoTestcase::kNoiseSource,
                                      testcases::vco_noise_entries(), aopt);
        analyzer.calibrate();
        printf("Vtune = %.1f V: fc = %.4f GHz, K_src = %.4g Hz/V\n", vt,
               analyzer.baseline().fc / 1e9, analyzer.k_src());

        Table t({"fnoise [MHz]", "SIM total [dBm]", "SIM L/R [dBc]", "MEAS total [dBm]",
                 "err [dB]"});
        PlotSeries sim{format("sim vt=%.1f", vt), {}, {}, vt == 0.0 ? '*' : '+'};
        PlotSeries meas{format("meas vt=%.1f", vt), {}, {}, vt == 0.0 ? 'o' : 'x'};
        std::vector<double> pred_dbm_series;
        for (double fn : f_pred) {
            auto pred = analyzer.predict(fn);
            pred_dbm_series.push_back(pred.total_dbm());
            sim.x.push_back(fn);
            sim.y.push_back(pred.total_dbm());

            const bool measured =
                std::find(f_meas.begin(), f_meas.end(), fn) != f_meas.end();
            std::string meas_cell = "-";
            std::string err_cell = "-";
            if (measured) {
                auto m = analyzer.simulate(fn);
                const double mdbm = m.total_dbm();
                meas.x.push_back(fn);
                meas.y.push_back(mdbm);
                const double err = pred.total_dbm() - mdbm;
                max_err = std::max(max_err, std::fabs(err));
                meas_cell = format("%.1f", mdbm);
                err_cell = format("%+.1f", err);
                csv.add_row({vt, fn, pred.total_dbm(), mdbm});
            } else {
                csv.add_row(std::vector<std::string>{format("%g", vt), format("%g", fn),
                                                     format("%.2f", pred.total_dbm()),
                                                     ""});
            }
            t.add_row({format("%.1f", fn / 1e6), format("%.1f", pred.total_dbm()),
                       format("%.1f/%.1f", pred.left_dbc(), pred.right_dbc()), meas_cell,
                       err_cell});
        }
        t.print();

        const double slope = core::db_slope_per_decade(f_pred, pred_dbm_series);
        printf("spur-power slope = %.1f dB/decade (paper: -20, resistive + FM)\n\n",
               slope);
        plot.add(sim);
        plot.add(meas);
    }
    // Include measured points only if both vtunes produced them.
    plot.print();
    csv.save("fig8_spur_vs_freq.csv");
    printf("max |SIM - MEAS| = %.1f dB (paper: <= 2 dB)\n", max_err);
    printf("wrote fig8_spur_vs_freq.csv\n");
    return 0;
}
