// Section 4 table: the VCO's headline specifications -- tuning curve
// (small-signal tank resonance vs Vtune), KVCO, core current and tank Q.
// Resonance-based, so it runs in seconds (no oscillator transients).
#include <cstdio>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "numeric/vecops.hpp"
#include "rf/phase_noise.hpp"
#include "sim/ac.hpp"
#include "sim/op.hpp"
#include "testcases/vco.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace snim;
using testcases::VcoTestcase;

namespace {

/// Tank resonance frequency and loaded Q from a differential AC sweep.
std::pair<double, double> resonance(circuit::Netlist& nl,
                                    const std::vector<double>& xop) {
    std::vector<double> freqs = linspace(2.0e9, 4.0e9, 161);
    auto ac = sim::ac_sweep(nl, freqs, xop);
    std::vector<double> mag;
    const auto op_ = nl.existing_node("outp");
    const auto on_ = nl.existing_node("outn");
    for (size_t k = 0; k < freqs.size(); ++k)
        mag.push_back(std::abs(ac.at(k, op_) - ac.at(k, on_)));
    size_t kmax = 0;
    for (size_t k = 1; k < mag.size(); ++k)
        if (mag[k] > mag[kmax]) kmax = k;
    double q = 0.0;
    try {
        q = rf::q_from_resonance(freqs, mag);
    } catch (const Error&) {
        q = 0.0; // peak at the sweep edge
    }
    return {freqs[kmax], q};
}

} // namespace

int main() {
    printf("=== Section 4: VCO specifications (tuning curve, Q, current) ===\n\n");

    auto vco = testcases::build_vco();
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());
    auto& nl = model.netlist;
    nl.add<circuit::ISource>("probe", nl.existing_node("outn"),
                             nl.existing_node("outp"), circuit::Waveform::dc(0.0),
                             circuit::AcSpec{1e-3, 0.0});
    auto* vt = nl.find_as<circuit::VSource>(VcoTestcase::kVtuneSource);
    auto* vdd = nl.find_as<circuit::VSource>("vddsrc");

    Table t({"Vtune [V]", "f_res [GHz]", "loaded Q", "core I [mA]"});
    CsvWriter csv({"vtune", "fres_GHz", "q", "icore_mA"});
    std::vector<double> vts = linspace(0.0, 1.8, 7);
    std::vector<double> fres;
    for (double v : vts) {
        vt->set_waveform(circuit::Waveform::dc(v));
        auto xop = sim::operating_point(nl);
        auto [f0, q] = resonance(nl, xop);
        fres.push_back(f0);
        const double icore = vdd->current(xop);
        t.add_row({format("%.2f", v), format("%.3f", f0 / 1e9), format("%.1f", q),
                   format("%.2f", icore * 1e3)});
        csv.add_row({v, f0 / 1e9, q, icore * 1e3});
    }
    t.print();
    csv.save("table_vco_specs.csv");

    const double range = fres.back() - fres.front();
    printf("\ntuning range: %.3f - %.3f GHz (%.0f MHz); average KVCO = %.0f MHz/V\n",
           fres.front() / 1e9, fres.back() / 1e9, std::fabs(range) / 1e6,
           std::fabs(range) / 1.8 / 1e6);
    printf("paper: fc ~ 3 GHz, 5 mA core at 1.8 V, -100 dBc/Hz @ 100 kHz\n");
    printf("wrote table_vco_specs.csv\n");
    return 0;
}
