// Figure 10: impact on (1) the real VCO and (2) a layout with the ground
// interconnect resistance halved (lines widened by a factor of two).
//
// Paper: an ideal halving would give 6 dB; the re-extracted widened layout
// yields ~4.5 dB because widening also changes coupling capacitance and the
// geometry.  The classical-flow ablation (ideal, zero-resistance
// interconnect) is included as the paper's implicit baseline comparison.
#include <cstdio>

#include "circuit/sources.hpp"
#include "core/impact_model.hpp"
#include "numeric/vecops.hpp"
#include "obs/parallel.hpp"
#include "testcases/vco.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace snim;
using testcases::VcoTestcase;

namespace {

struct Variant {
    const char* name;
    double strap_width;
    bool ideal_interconnect;
};

} // namespace

int main() {
    printf("=== Figure 10: impact vs ground-interconnect resistance ===\n\n");

    const std::vector<double> freqs = logspace(1e6, 15e6, 5);
    const Variant variants[] = {
        {"real VCO", 1.0, false},
        {"ground lines widened 2x", 2.0, false},
        {"ideal interconnect (classical flow)", 1.0, true},
    };
    constexpr size_t kVariants = std::size(variants);

    // Each variant is an independent re-extraction + calibration, fanned out
    // over SNIM_THREADS workers; printing and the CSV stay serial below, in
    // declaration order, so output is bit-identical for every thread count.
    std::vector<std::vector<double>> series_dbm(kVariants);
    std::vector<double> wire_squares(kVariants, 0.0);
    std::vector<double> k_src(kVariants, 0.0);
    obs::parallel_tasks(0, kVariants, [&](size_t ci) {
        const auto& variant = variants[ci];
        testcases::VcoOptions vopt;
        vopt.ground_strap_width = variant.strap_width;
        auto vco = testcases::build_vco(vopt);
        auto fo = testcases::vco_flow_options();
        fo.interconnect.extract_resistance = !variant.ideal_interconnect;
        auto model = testcases::build_model(std::move(vco), fo);
        const auto* st = model.wire_stats_for("vgnd");
        wire_squares[ci] = st ? st->resistance_squares : 0.0;

        core::AnalyzerOptions aopt;
        aopt.osc = testcases::vco_osc_options();
        core::ImpactAnalyzer analyzer(model, VcoTestcase::kNoiseSource,
                                      testcases::vco_noise_entries(), aopt);
        analyzer.calibrate();
        k_src[ci] = analyzer.k_src();

        for (double fn : freqs) series_dbm[ci].push_back(analyzer.predict(fn).total_dbm());
    });

    CsvWriter csv({"variant", "fnoise_Hz", "total_dbm"});
    AsciiPlot plot("Figure 10: spur power, real vs widened ground lines",
                   "fnoise [Hz]", "dBm");
    plot.set_log_x(true);

    const char markers[] = {'*', 'o', 'x'};
    for (size_t ci = 0; ci < kVariants; ++ci) {
        const auto& variant = variants[ci];
        for (size_t k = 0; k < freqs.size(); ++k)
            csv.add_row(std::vector<std::string>{variant.name, format("%g", freqs[k]),
                                                 format("%.2f", series_dbm[ci][k])});
        plot.add({variant.name, freqs, series_dbm[ci], markers[ci % 3]});
        printf("%-38s K_src = %9.4g Hz/V, ground wiring %.0f squares\n", variant.name,
               k_src[ci], wire_squares[ci]);
    }

    Table t({"fnoise [MHz]", "real [dBm]", "widened 2x [dBm]", "delta [dB]",
             "ideal wire [dBm]"});
    double avg_delta = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k) {
        const double delta = series_dbm[0][k] - series_dbm[1][k];
        avg_delta += delta;
        t.add_row({format("%.1f", freqs[k] / 1e6), format("%.1f", series_dbm[0][k]),
                   format("%.1f", series_dbm[1][k]), format("%+.1f", delta),
                   format("%.1f", series_dbm[2][k])});
    }
    avg_delta /= static_cast<double>(freqs.size());
    printf("\n");
    t.print();
    printf("\naverage reduction from widening the ground lines 2x: %.1f dB "
           "(paper: ~4.5 dB, ideal halving 6 dB)\n", avg_delta);
    plot.print();
    csv.save("fig10_ground_width.csv");
    printf("wrote fig10_ground_width.csv\n");
    return 0;
}
