// The snim_bench scenario bodies.
//
// Figure scenarios wrap the same flow entry points the one-off fig*.cpp
// benches use and attach accuracy metrics: dB deltas of the freshly computed
// series against the paper-reference CSVs at the repo root, with the paper's
// own tolerances (2 dB for the VCO figures, 1 dB for the NMOS structure).
// Under --quick the sweeps are subsampled (the computed points stay on the
// exact full-sweep grid so they land on reference keys); the model, mesh and
// solver settings are never trimmed — accuracy deltas must stay comparable
// between quick and full runs.
//
// Kernel scenarios isolate the numeric hot paths (sparse LU, CG substrate
// reduction, MOR elimination, transient stepping, FFT) with runtime-only
// telemetry; their random inputs come from the default-seeded Rng so
// `snim_bench --seed` makes runs bit-identical.
#include "scenarios.hpp"

#include <cmath>
#include <cstring>

#include "circuit/mosfet.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "core/accuracy.hpp"
#include "core/contribution.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectrum.hpp"
#include "mor/elimination.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/vecops.hpp"
#include "obs/bench.hpp"
#include "obs/trace.hpp"
#include "rf/phase_noise.hpp"
#include "sim/ac.hpp"
#include "sim/assembly.hpp"
#include "sim/mna.hpp"
#include "sim/op.hpp"
#include "sim/transfer.hpp"
#include "sim/transient.hpp"
#include "substrate/extractor.hpp"
#include "tech/doping.hpp"
#include "tech/generic180.hpp"
#include "testcases/nmos_structure.hpp"
#include "testcases/vco.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace snim::bench_scenarios {

namespace {

using testcases::NmosStructure;
using testcases::VcoTestcase;

/// Indices 0, n-1 and an even spread in between: quick runs stay on the
/// full sweep's grid so every computed point matches a reference key.
std::vector<double> subsample(const std::vector<double>& full, size_t count) {
    if (count >= full.size()) return full;
    std::vector<double> out;
    for (size_t i = 0; i < count; ++i)
        out.push_back(full[i * (full.size() - 1) / (count - 1)]);
    return out;
}

core::FlowOptions nmos_flow_options() {
    core::FlowOptions fo;
    fo.substrate.mesh.focus = geom::Rect(-20, -20, 50, 30);
    fo.substrate.mesh.fine_pitch = 3.0;
    fo.substrate.mesh.margin = 40.0;
    return fo;
}

// --- figure scenarios -----------------------------------------------------

void run_fig3(obs::ScenarioContext& ctx) {
    auto structure = testcases::build_nmos_structure();
    auto model = testcases::build_model(std::move(structure), nmos_flow_options());
    auto& nl = model.netlist;
    auto* vg = nl.find_as<circuit::VSource>(NmosStructure::kGateSource);
    auto* m1 = nl.find_as<circuit::Mosfet>(NmosStructure::kMosfet);

    const double fprobe = 5e6;
    const auto biases = subsample(linspace(0.7, 1.6, 10), ctx.quick ? 4 : 10);
    std::vector<double> sim_db, hand_db;
    for (double bias : biases) {
        vg->set_waveform(circuit::Waveform::dc(bias));
        auto xop = sim::operating_point(nl);
        const auto ss = m1->small_signal(xop);
        auto tr = sim::transfer_multi(
            nl, NmosStructure::kNoiseSource,
            {NmosStructure::kOut, NmosStructure::kBulk, NmosStructure::kSourceNode},
            {fprobe}, xop);
        const auto h_out = tr[0].h[0];
        const auto h_vbs = tr[1].h[0] - tr[2].h[0];
        sim_db.push_back(units::db20(std::abs(h_out)));
        hand_db.push_back(units::db20(std::abs(h_vbs) * ss.gmb / ss.gds));
    }
    ctx.add_accuracy(core::reference_delta(
        "substrate->output transfer sim_db",
        core::load_reference_series("fig3_nmos_transfer.csv", "vg", "sim_db"),
        "fig3_nmos_transfer.csv", 1.0, biases, sim_db));
    ctx.add_accuracy(core::paired_delta("simulation vs hand calculation",
                                        "paper claim: <= 1 dB", 1.0, hand_db, sim_db));
}

void run_vco_specs(obs::ScenarioContext& ctx) {
    auto vco = testcases::build_vco();
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());
    auto& nl = model.netlist;
    nl.add<circuit::ISource>("probe", nl.existing_node("outn"), nl.existing_node("outp"),
                             circuit::Waveform::dc(0.0), circuit::AcSpec{1e-3, 0.0});
    auto* vt = nl.find_as<circuit::VSource>(VcoTestcase::kVtuneSource);

    const auto vtunes = subsample(linspace(0.0, 1.8, 7), ctx.quick ? 3 : 7);
    std::vector<double> fres_db;
    for (double v : vtunes) {
        vt->set_waveform(circuit::Waveform::dc(v));
        auto xop = sim::operating_point(nl);
        const auto freqs = linspace(2.0e9, 4.0e9, 161);
        auto ac = sim::ac_sweep(nl, freqs, xop);
        const auto op_ = nl.existing_node("outp");
        const auto on_ = nl.existing_node("outn");
        size_t kmax = 0;
        double best = 0.0;
        for (size_t k = 0; k < freqs.size(); ++k) {
            const double mag = std::abs(ac.at(k, op_) - ac.at(k, on_));
            if (mag > best) {
                best = mag;
                kmax = k;
            }
        }
        fres_db.push_back(units::db20(freqs[kmax] / 1e9));
    }
    auto ref = core::load_reference_series("table_vco_specs.csv", "vtune", "fres_GHz");
    for (auto& v : ref.values) v = units::db20(v);
    ctx.add_accuracy(core::reference_delta("tank resonance 20log10(f_res/1GHz)",
                                           ref, "table_vco_specs.csv", 2.0, vtunes,
                                           fres_db));
}

void run_fig7(obs::ScenarioContext& ctx) {
    auto vco = testcases::build_vco();
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());
    auto& nl = model.netlist;

    const double fn = 10e6;
    nl.find_as<circuit::VSource>(VcoTestcase::kNoiseSource)
        ->set_waveform(circuit::Waveform::sin(0.0, 0.356, fn));
    rf::OscOptions osc = testcases::vco_osc_options();
    osc.capture = 1.0e-6; // must equal the reference run: identical FFT bins
    osc.checkpoint.tag = "fig7";
    auto cap = rf::capture_oscillator(nl, osc);

    if (!ctx.wave_dir.empty()) {
        // The raw capture rides into the wave dump so kill-and-resume checks
        // can bit-compare the probe waveform, not just the derived metrics.
        obs::WaveSignal probe;
        probe.name = "vco_diff";
        probe.unit = "V";
        probe.time.resize(cap.wave.size());
        for (size_t k = 0; k < cap.wave.size(); ++k)
            probe.time[k] = osc.settle + static_cast<double>(k) / cap.fs;
        probe.value = cap.wave;
        ctx.dump_waves("fig7_vco_spectrum.probes", {probe});
    }

    auto spec = dsp::amplitude_spectrum(cap.wave, cap.fs);
    std::vector<double> keys, dbc;
    for (size_t k = 0; k < spec.freq.size(); ++k) {
        if (std::fabs(spec.freq[k] - cap.fc) > 4 * fn) continue;
        const double v = units::db20(std::max(spec.amp[k], 1e-12) / cap.amplitude);
        if (v <= -80.0) continue; // skip noise-floor bins: nulls are not figures
        keys.push_back(spec.freq[k] / 1e9);
        dbc.push_back(v);
    }
    ctx.add_accuracy(core::reference_delta(
        "spectrum dBc per FFT bin (> -80 dBc)",
        core::load_reference_series("fig7_spectrum.csv", "freq_GHz", "dbc"),
        "fig7_spectrum.csv", 2.0, keys, dbc, 1e-4));
    (void)ctx;
}

void run_fig8(obs::ScenarioContext& ctx) {
    const std::vector<double> vtunes = ctx.quick ? std::vector<double>{0.9}
                                                 : std::vector<double>{0.0, 0.9};
    const std::vector<double> f_pred{1e6, 2e6, 3e6, 5e6, 8e6, 15e6};
    // Each vtune point is an independent sweep corner: a solver failure in
    // one skips (and annotates) that corner instead of losing the whole
    // figure.  Corners fan out over ctx.threads workers, each rebuilding
    // its own flow so nothing shared is mutated; metrics merge back in
    // vtune order, bit-identical for every thread count.
    ctx.run_corners(vtunes.size(), [&](obs::ScenarioContext& corner, size_t ci) {
        const double vt = vtunes[ci];
        const std::string vt_label = format("%g", vt);
        corner.guard_corner(format("fig8 vtune=%s", vt_label.c_str()), [&] {
            auto vco = testcases::build_vco();
            auto model =
                testcases::build_model(std::move(vco), testcases::vco_flow_options());
            model.netlist.find_as<circuit::VSource>(VcoTestcase::kVtuneSource)
                ->set_waveform(circuit::Waveform::dc(vt));
            core::AnalyzerOptions aopt;
            aopt.osc = testcases::vco_osc_options();
            // Per-corner checkpoint tag: a killed fig8 sweep resumes at the
            // first corner whose snapshots are incomplete.
            aopt.osc.checkpoint.tag = format("fig8_vt%s", vt_label.c_str());
            core::ImpactAnalyzer analyzer(model, VcoTestcase::kNoiseSource,
                                          testcases::vco_noise_entries(), aopt);
            analyzer.calibrate();

            std::vector<double> pred_dbm;
            for (double f : f_pred) pred_dbm.push_back(analyzer.predict(f).total_dbm());
            corner.add_accuracy(core::reference_delta(
                format("prediction total dBm (vtune=%s)", vt_label.c_str()),
                core::load_reference_series("fig8_spur_vs_freq.csv", "fnoise_Hz",
                                            "pred_dbm", "vtune", vt_label),
                "fig8_spur_vs_freq.csv", 2.0, f_pred, pred_dbm));

            if (!corner.quick) {
                // The brute-force "measurement" stand-in at the cheapest
                // measured frequency; the full 2/5/15 MHz set is the fig8
                // bench's job.
                const double fmeas = 15e6;
                const double meas = analyzer.simulate(fmeas).total_dbm();
                corner.add_accuracy(core::reference_delta(
                    format("transient total dBm (vtune=%s)", vt_label.c_str()),
                    core::load_reference_series("fig8_spur_vs_freq.csv", "fnoise_Hz",
                                                "meas_dbm", "vtune", vt_label),
                    "fig8_spur_vs_freq.csv", 2.0, {fmeas}, {meas}));
            }
        });
    });
}

void run_fig9(obs::ScenarioContext& ctx) {
    testcases::VcoOptions vopt;
    vopt.vtune = 0.0;
    auto vco = testcases::build_vco(vopt);
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());

    auto entries = testcases::vco_noise_entries();
    // Quick: only the two dominant (resistive) paths.  Their leave-one-out
    // sensitivities are measured path by path, so dropping the minor entries
    // does not change the retained columns.
    if (ctx.quick) entries.resize(2);

    core::AnalyzerOptions aopt;
    aopt.osc = testcases::vco_osc_options();
    aopt.osc.checkpoint.tag = "fig9";
    core::ImpactAnalyzer analyzer(model, VcoTestcase::kNoiseSource, entries, aopt);
    analyzer.calibrate();
    analyzer.calibrate_paths();

    const auto freqs = subsample(logspace(1e6, 15e6, 6), ctx.quick ? 2 : 6);
    auto report = core::contribution_sweep(analyzer, freqs);
    for (const auto& e : report.entries)
        ctx.add_accuracy(core::reference_delta(
            format("%s contribution dBc", e.label.c_str()),
            core::load_reference_series("fig9_contributions.csv", "fnoise [MHz]",
                                        e.label + " [dBc]"),
            "fig9_contributions.csv", 2.0, freqs, e.spur_dbc));
}

void run_fig10(obs::ScenarioContext& ctx) {
    struct Variant {
        const char* name;
        double strap_width;
        bool ideal_interconnect;
    };
    std::vector<Variant> variants{{"real VCO", 1.0, false},
                                  {"ground lines widened 2x", 2.0, false}};
    if (!ctx.quick)
        variants.push_back({"ideal interconnect (classical flow)", 1.0, true});

    const auto freqs = subsample(logspace(1e6, 15e6, 5), ctx.quick ? 2 : 5);
    // Each design variant rebuilds the full flow; a failed corner is
    // skipped and annotated, the remaining variants still land.  Variants
    // fan out over ctx.threads workers, merged back in declaration order.
    ctx.run_corners(variants.size(), [&](obs::ScenarioContext& corner, size_t ci) {
        const auto& variant = variants[ci];
        corner.guard_corner(format("fig10 %s", variant.name), [&] {
            testcases::VcoOptions vopt;
            vopt.ground_strap_width = variant.strap_width;
            auto vco = testcases::build_vco(vopt);
            auto fo = testcases::vco_flow_options();
            fo.interconnect.extract_resistance = !variant.ideal_interconnect;
            auto model = testcases::build_model(std::move(vco), fo);

            core::AnalyzerOptions aopt;
            aopt.osc = testcases::vco_osc_options();
            aopt.osc.checkpoint.tag = format("fig10_c%zu", ci);
            core::ImpactAnalyzer analyzer(model, VcoTestcase::kNoiseSource,
                                          testcases::vco_noise_entries(), aopt);
            analyzer.calibrate();

            std::vector<double> dbm;
            for (double f : freqs) dbm.push_back(analyzer.predict(f).total_dbm());
            corner.add_accuracy(core::reference_delta(
                format("total dBm (%s)", variant.name),
                core::load_reference_series("fig10_ground_width.csv", "fnoise_Hz",
                                            "total_dbm", "variant", variant.name),
            "fig10_ground_width.csv", 2.0, freqs, dbm));
        });
    });
}

// --- kernel scenarios -----------------------------------------------------

void run_sparse_lu(obs::ScenarioContext&) {
    const size_t n = 1024;
    Rng rng; // default-seeded: --seed makes the system matrix reproducible
    Triplets<double> t(n);
    for (size_t i = 0; i < n; ++i) t.add(i, i, 5.0 + rng.uniform(0, 1));
    for (size_t i = 0; i < n; ++i)
        for (int k = 0; k < 4; ++k)
            t.add(i, static_cast<size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
                  rng.uniform(-1, 1));
    SparseCSC<double> a(t);
    std::vector<double> b(n, 1.0);
    SparseLU<double> lu(a);
    volatile double sink = lu.solve(b)[0];
    (void)sink;
}

void run_mor_elimination(obs::ScenarioContext&) {
    const int n = 24;
    mor::RcNetwork net;
    net.node_count = static_cast<size_t>(n) * n;
    auto id = [n](int x, int y) { return y * n + x; };
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x) {
            if (x + 1 < n) net.add_g(id(x, y), id(x + 1, y), 1.0);
            if (y + 1 < n) net.add_g(id(x, y), id(x, y + 1), 1.0);
        }
    const std::vector<int> ports{id(0, 0), id(n - 1, 0), id(0, n - 1), id(n - 1, n - 1)};
    auto reduced = mor::eliminate_internal(net, ports);
    volatile size_t sink = reduced.node_count;
    (void)sink;
}

void run_substrate_cg(obs::ScenarioContext&) {
    substrate::ExtractOptions opt;
    opt.mesh.fine_pitch = 10.0;
    opt.mesh.focus = geom::Rect(0, 0, 200, 200);
    opt.mesh.margin = 50.0;
    std::vector<substrate::PortSpec> ports(2);
    ports[0].name = "a";
    ports[0].region.add(geom::Rect(10, 10, 30, 30));
    ports[1].name = "b";
    ports[1].region.add(geom::Rect(150, 150, 170, 170));
    auto model = substrate::extract_substrate(geom::Rect(0, 0, 200, 200),
                                              tech::DopingProfile::high_ohmic(), ports,
                                              opt);
    volatile size_t sink = model.mesh_node_count;
    (void)sink;
}

void run_transient_ladder(obs::ScenarioContext& ctx) {
    const int stages = 50;
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("n0"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 1.0, 1e9));
    for (int i = 0; i < stages; ++i) {
        nl.add<circuit::Resistor>(format("r%d", i), nl.node(format("n%d", i)),
                                  nl.node(format("n%d", i + 1)), 10.0);
        nl.add<circuit::Capacitor>(format("c%d", i), nl.node(format("n%d", i + 1)),
                                   circuit::kGround, 1e-12);
    }
    sim::TranOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 10e-9; // 1000 steps
    opt.checkpoint.tag = "kernel_transient";
    auto res = sim::transient(nl, {format("n%d", stages)}, opt);
    if (!ctx.wave_dir.empty()) {
        obs::WaveSignal probe;
        probe.name = res.probe_names[0];
        probe.unit = "V";
        probe.time = res.time;
        probe.value = res.waves[0];
        ctx.dump_waves("kernel_transient.probes", {probe});
    }
    volatile double sink = res.waves[0].back();
    (void)sink;
}

void run_assemble_kernel(obs::ScenarioContext&) {
    // Shaped like the paper testcases: a long linear RC interconnect ladder
    // (the static majority) driven by a source, with a handful of MOSFETs
    // whose stamps move every Newton iteration.  Measures the full re-stamp
    // (`clear + assemble_tran`, phase bench/assemble_full) against the
    // incremental TranAssembler (phase bench/assemble_incremental) over the
    // same iterate sequence, raising if any pass is not bit-identical — the
    // kernel doubles as an integrity check of the overlay contract.
    const int stages = 40;
    circuit::Netlist nl;
    const tech::Technology t = tech::generic180();
    const tech::MosModelCard nch = t.mos_model("nch");
    nl.add<circuit::VSource>("vin", nl.node("n0"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 1.0, 1e9));
    nl.add<circuit::VSource>("vdd", nl.node("vdd"), circuit::kGround,
                             circuit::Waveform::dc(1.8));
    for (int i = 0; i < stages; ++i) {
        nl.add<circuit::Resistor>(format("r%d", i), nl.node(format("n%d", i)),
                                  nl.node(format("n%d", i + 1)), 10.0);
        nl.add<circuit::Capacitor>(format("c%d", i), nl.node(format("n%d", i + 1)),
                                   circuit::kGround, 1e-13);
    }
    for (int m = 0; m < 6; ++m) {
        // Gate taps spread along the ladder; drains loaded by vdd resistors.
        nl.add<circuit::Resistor>(format("rd%d", m), nl.node("vdd"),
                                  nl.node(format("d%d", m)), 1e3);
        nl.add<circuit::Mosfet>(format("m%d", m), nl.node(format("d%d", m)),
                                nl.node(format("n%d", 5 + 6 * m)), circuit::kGround,
                                circuit::kGround, nch, circuit::MosGeometry{});
    }
    nl.finalize();
    const size_t n = nl.unknown_count();
    const double gmin = 1e-12;

    circuit::RealStamper full(n);
    circuit::RealStamper inc(n);
    full.enable_compiled_assembly();
    inc.enable_compiled_assembly();
    sim::TranAssembler asmb(nl, inc, gmin);

    circuit::TranParams tp;
    tp.dt = 10e-12;
    tp.order = 2;
    std::vector<double> x(n, 0.0);
    Rng rng;
    const int attempts = 400, iters = 3;
    for (int a = 0; a < attempts; ++a) {
        tp.time = (a + 1) * tp.dt;
        {
            obs::ScopedTimer t1("bench/assemble_incremental");
            asmb.begin_attempt(x, tp);
        }
        for (int it = 0; it < iters; ++it) {
            for (size_t i = 0; i < n; ++i)
                x[i] = 0.9 * x[i] + 0.05 * rng.uniform(0, 1);
            {
                obs::ScopedTimer t1("bench/assemble_incremental");
                asmb.assemble(x, tp);
            }
            {
                obs::ScopedTimer t2("bench/assemble_full");
                full.clear();
                sim::assemble_tran(nl, full, x, tp, gmin);
            }
            if (std::memcmp(inc.csc().values().data(), full.csc().values().data(),
                            inc.csc().values().size() * sizeof(double)) != 0 ||
                std::memcmp(inc.rhs().data(), full.rhs().data(),
                            n * sizeof(double)) != 0)
                raise("kernel/assemble: incremental assembly diverged from the "
                      "full pass at attempt %d iteration %d", a, it);
        }
        // Commit so companion stamps move between attempts like a real run.
        asmb.commit(x, tp);
    }
}

void run_fft(obs::ScenarioContext&) {
    const size_t n = 1 << 16;
    Rng rng;
    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(-1, 1);
    auto spec = dsp::fft_real(x);
    volatile double sink = spec[0].real();
    (void)sink;
}

obs::Scenario figure(const char* name, const char* description,
                     void (*body)(obs::ScenarioContext&)) {
    obs::Scenario s;
    s.name = name;
    s.description = description;
    s.kind = "figure";
    s.repeat = 1;
    s.warmup = 0;
    s.run = body;
    return s;
}

obs::Scenario kernel(const char* name, const char* description,
                     void (*body)(obs::ScenarioContext&), int repeat, int quick_repeat) {
    obs::Scenario s;
    s.name = name;
    s.description = description;
    s.kind = "kernel";
    s.repeat = repeat;
    s.quick_repeat = quick_repeat;
    s.warmup = 1;
    s.run = body;
    return s;
}

} // namespace

void register_builtin_scenarios() {
    using obs::register_scenario;
    register_scenario(figure("fig3_nmos_transfer",
                             "substrate -> NMOS output transfer vs bias (Figure 3)",
                             run_fig3));
    register_scenario(figure("table_vco_specs",
                             "VCO tuning curve via AC tank resonance (Section 4)",
                             run_vco_specs));
    register_scenario(figure("fig7_vco_spectrum",
                             "VCO output spectrum under a -5 dBm 10 MHz substrate tone",
                             run_fig7));
    register_scenario(figure("fig8_spur_vs_freq",
                             "spur power vs noise frequency, prediction vs transient",
                             run_fig8));
    register_scenario(figure("fig9_contributions",
                             "per-device contribution ranking (Figure 9)", run_fig9));
    register_scenario(figure("fig10_ground_width",
                             "impact vs ground interconnect resistance (Figure 10)",
                             run_fig10));
    register_scenario(kernel("kernel/sparse_lu",
                             "sparse LU factor+solve, 1024x1024 random system",
                             run_sparse_lu, 5, 3));
    register_scenario(kernel("kernel/mor_elimination",
                             "MOR node elimination of a 24x24 resistive grid",
                             run_mor_elimination, 5, 3));
    register_scenario(kernel("kernel/substrate_cg",
                             "substrate extraction incl. CG reduction, 200x200 um",
                             run_substrate_cg, 3, 2));
    register_scenario(kernel("kernel/transient",
                             "transient stepping of a 50-stage RLC ladder (1000 steps)",
                             run_transient_ladder, 3, 2));
    register_scenario(kernel("kernel/assemble",
                             "full vs incremental transient assembly, RC ladder + "
                             "6 MOSFETs (400 attempts x 3 iterations)",
                             run_assemble_kernel, 5, 3));
    register_scenario(kernel("kernel/fft", "real FFT, 65536 points", run_fft, 5, 3));
}

} // namespace snim::bench_scenarios
