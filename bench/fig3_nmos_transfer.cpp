// Figure 3 + Section 3 numbers: transfer of a substrate tone to the RF NMOS
// output versus bias, compared against the "hand calculation"
// vbs/vsub * gmb / gds, plus the substrate-to-back-gate voltage division and
// the role of the ground-wire resistance (the paper's factor ~2).
//
// Paper reference points: transfer -45 .. -52 dB over bias, simulation vs
// hand calculation within 1 dB, vbs division 1/652, gmb 10-38 mS,
// gds 2.8-22 mS, junction-cap crossover 5-19 GHz.
#include <cstdio>

#include "circuit/mosfet.hpp"
#include "circuit/sources.hpp"
#include "numeric/vecops.hpp"
#include "sim/op.hpp"
#include "sim/transfer.hpp"
#include "testcases/nmos_structure.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace snim;
using testcases::NmosStructure;

namespace {

core::FlowOptions nmos_flow_options() {
    core::FlowOptions fo;
    fo.substrate.mesh.focus = geom::Rect(-20, -20, 50, 30);
    fo.substrate.mesh.fine_pitch = 3.0;
    fo.substrate.mesh.margin = 40.0;
    return fo;
}

struct BiasPoint {
    double vg;
    double gmb, gds;
    double sim_db;  // AC simulation: |v(out)/vsub|
    double hand_db; // vbs/vsub * gmb/gds
    double f3db;    // junction-cap crossover
};

} // namespace

int main() {
    printf("=== Figure 3: substrate -> NMOS output transfer vs bias ===\n\n");

    auto structure = testcases::build_nmos_structure();
    auto model = testcases::build_model(std::move(structure), nmos_flow_options());
    printf("model: %zu devices, substrate mesh %zu nodes -> %zu ports\n\n",
           model.netlist.device_count(), model.mesh_nodes,
           model.substrate.port_names.size());

    auto& nl = model.netlist;
    auto* vg = nl.find_as<circuit::VSource>(NmosStructure::kGateSource);
    auto* m1 = nl.find_as<circuit::Mosfet>(NmosStructure::kMosfet);

    const double fprobe = 5e6; // within the paper's DC-15 MHz band
    std::vector<BiasPoint> points;
    double division = 0.0;
    for (double bias : linspace(0.7, 1.6, 10)) {
        vg->set_waveform(circuit::Waveform::dc(bias));
        auto xop = sim::operating_point(nl);
        const auto ss = m1->small_signal(xop);

        auto tr = sim::transfer_multi(
            nl, NmosStructure::kNoiseSource,
            {NmosStructure::kOut, NmosStructure::kBulk, NmosStructure::kSourceNode},
            {fprobe}, xop);
        const auto h_out = tr[0].h[0];
        const auto h_vbs = tr[1].h[0] - tr[2].h[0];
        division = std::abs(h_vbs);

        BiasPoint p;
        p.vg = bias;
        p.gmb = ss.gmb;
        p.gds = ss.gds;
        p.sim_db = units::db20(std::abs(h_out));
        p.hand_db = units::db20(std::abs(h_vbs) * ss.gmb / ss.gds);
        p.f3db = ss.gmb / (units::kTwoPi * (ss.cdb + ss.csb));
        points.push_back(p);
    }

    Table t({"Vg [V]", "gmb [mS]", "gds [mS]", "sim [dB]", "hand calc [dB]",
             "err [dB]", "f3dB [GHz]"});
    CsvWriter csv({"vg", "gmb_mS", "gds_mS", "sim_db", "hand_db", "f3db_GHz"});
    double max_err = 0.0;
    for (const auto& p : points) {
        const double err = p.sim_db - p.hand_db;
        max_err = std::max(max_err, std::fabs(err));
        t.add_row({format("%.2f", p.vg), format("%.1f", p.gmb * 1e3),
                   format("%.1f", p.gds * 1e3), format("%.1f", p.sim_db),
                   format("%.1f", p.hand_db), format("%+.2f", err),
                   format("%.1f", p.f3db / 1e9)});
        csv.add_row({p.vg, p.gmb * 1e3, p.gds * 1e3, p.sim_db, p.hand_db, p.f3db / 1e9});
    }
    t.print();
    csv.save("fig3_nmos_transfer.csv");

    printf("\nsubstrate -> back-gate voltage division vbs/vsub = 1/%.0f "
           "(paper: 1/652)\n", 1.0 / division);
    printf("max |sim - hand| = %.2f dB (paper: <= 1 dB)\n", max_err);

    // --- the interconnect-resistance effect (paper: factor ~2) ------------
    // The paper: the resistance from the NMOS ground ring to the off-chip
    // ground raises the back-gate voltage division by almost a factor two.
    // Same mechanism here: vbs scales with the ring-wire resistance, so
    // halving it (wire width x2) halves the division; removing it entirely
    // (the classical ideal-interconnect flow) collapses the back-gate drive.
    auto division_with = [&](double wire_width, bool extract_r) {
        testcases::NmosStructureOptions o;
        o.ground_wire_width = wire_width;
        auto st = testcases::build_nmos_structure(o);
        core::FlowOptions fo = nmos_flow_options();
        fo.interconnect.extract_resistance = extract_r;
        auto m = testcases::build_model(std::move(st), fo);
        auto* vg2 = m.netlist.find_as<circuit::VSource>(NmosStructure::kGateSource);
        vg2->set_waveform(circuit::Waveform::dc(1.0));
        auto xop2 = sim::operating_point(m.netlist);
        auto tr2 = sim::transfer_multi(m.netlist, NmosStructure::kNoiseSource,
                                       {NmosStructure::kBulk,
                                        NmosStructure::kSourceNode},
                                       {fprobe}, xop2);
        return std::abs(tr2[0].h[0] - tr2[1].h[0]);
    };
    const double division_half = division_with(1.6, true);
    const double division_ideal = division_with(0.8, false);
    printf("\nground-wire resistance effect on the back-gate division:\n");
    printf("  real wire            : vbs/vsub = 1/%.0f\n", 1.0 / division);
    printf("  wire widened 2x      : vbs/vsub = 1/%.0f\n", 1.0 / division_half);
    printf("  ideal interconnect   : vbs/vsub = 1/%.0f  (classical flow)\n",
           1.0 / division_ideal);
    printf("  real / widened ratio = %.2f (paper: the wire resistance raises "
           "the division by 'almost a factor two')\n",
           division / division_half);

    AsciiPlot plot("Figure 3: substrate -> NMOS output transfer", "Vg [V]", "dB");
    PlotSeries sim{"simulated", {}, {}, '*'};
    PlotSeries hand{"hand calc", {}, {}, 'o'};
    for (const auto& p : points) {
        sim.x.push_back(p.vg);
        sim.y.push_back(p.sim_db);
        hand.x.push_back(p.vg);
        hand.y.push_back(p.hand_db);
    }
    plot.add(sim);
    plot.add(hand);
    plot.print();
    return 0;
}
