// google-benchmark microbenchmarks for the numerical kernels behind the
// flow: sparse LU, CG-based substrate reduction, node elimination,
// transient stepping and FFT.
#include <benchmark/benchmark.h>

#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "dsp/fft.hpp"
#include "mor/elimination.hpp"
#include "numeric/sparse_lu.hpp"
#include "sim/assembly.hpp"
#include "sim/mna.hpp"
#include "sim/transient.hpp"
#include "substrate/extractor.hpp"
#include "tech/generic180.hpp"
#include "util/rng.hpp"

using namespace snim;

namespace {

Triplets<double> random_system(size_t n, int extra_per_row, uint64_t seed) {
    Rng rng(seed);
    Triplets<double> t(n);
    for (size_t i = 0; i < n; ++i) t.add(i, i, 5.0 + rng.uniform(0, 1));
    for (size_t i = 0; i < n; ++i)
        for (int k = 0; k < extra_per_row; ++k)
            t.add(i, static_cast<size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
                  rng.uniform(-1, 1));
    return t;
}

void BM_SparseLU(benchmark::State& state) {
    const size_t n = static_cast<size_t>(state.range(0));
    auto t = random_system(n, 4, 42);
    SparseCSC<double> a(t);
    std::vector<double> b(n, 1.0);
    for (auto _ : state) {
        SparseLU<double> lu(a);
        benchmark::DoNotOptimize(lu.solve(b));
    }
    state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SparseLU)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void BM_SubstrateReduction(benchmark::State& state) {
    const double pitch = static_cast<double>(state.range(0));
    substrate::ExtractOptions opt;
    opt.mesh.fine_pitch = pitch;
    opt.mesh.focus = geom::Rect(0, 0, 200, 200);
    opt.mesh.margin = 50.0;
    std::vector<substrate::PortSpec> ports(2);
    ports[0].name = "a";
    ports[0].region.add(geom::Rect(10, 10, 30, 30));
    ports[1].name = "b";
    ports[1].region.add(geom::Rect(150, 150, 170, 170));
    size_t mesh_nodes = 0;
    for (auto _ : state) {
        auto model = substrate::extract_substrate(
            geom::Rect(0, 0, 200, 200), tech::DopingProfile::high_ohmic(), ports, opt);
        mesh_nodes = model.mesh_node_count;
        benchmark::DoNotOptimize(model);
    }
    state.counters["mesh_nodes"] = static_cast<double>(mesh_nodes);
}
BENCHMARK(BM_SubstrateReduction)->Arg(20)->Arg(10)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_NodeElimination(benchmark::State& state) {
    // 2-D resistive grid, 4 corner ports.
    const int n = static_cast<int>(state.range(0));
    mor::RcNetwork net;
    net.node_count = static_cast<size_t>(n * n);
    auto id = [n](int x, int y) { return y * n + x; };
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x) {
            if (x + 1 < n) net.add_g(id(x, y), id(x + 1, y), 1.0);
            if (y + 1 < n) net.add_g(id(x, y), id(x, y + 1), 1.0);
        }
    const std::vector<int> ports{id(0, 0), id(n - 1, 0), id(0, n - 1), id(n - 1, n - 1)};
    for (auto _ : state) {
        benchmark::DoNotOptimize(mor::eliminate_internal(net, ports));
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_NodeElimination)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_TransientStep(benchmark::State& state) {
    // RLC ladder sized by the argument; measures cost per transient step.
    const int stages = static_cast<int>(state.range(0));
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("n0"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 1.0, 1e9));
    for (int i = 0; i < stages; ++i) {
        nl.add<circuit::Resistor>(format("r%d", i), nl.node(format("n%d", i)),
                                  nl.node(format("n%d", i + 1)), 10.0);
        nl.add<circuit::Capacitor>(format("c%d", i), nl.node(format("n%d", i + 1)),
                                   circuit::kGround, 1e-12);
    }
    sim::TranOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 10e-9; // 1000 steps
    for (auto _ : state) {
        auto res = sim::transient(nl, {format("n%d", stages)}, opt);
        benchmark::DoNotOptimize(res);
    }
    state.counters["steps"] = 1000;
}
BENCHMARK(BM_TransientStep)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_Assemble(benchmark::State& state) {
    // Transient system assembly on an RC ladder + MOSFET netlist: arg 0
    // measures the full re-stamp (clear + assemble_tran), arg 1 the
    // incremental TranAssembler path (baseline restore + nonlinear overlay).
    const bool incremental = state.range(0) != 0;
    const int stages = 40;
    circuit::Netlist nl;
    const tech::Technology t = tech::generic180();
    const tech::MosModelCard nch = t.mos_model("nch");
    nl.add<circuit::VSource>("vin", nl.node("n0"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 1.0, 1e9));
    nl.add<circuit::VSource>("vdd", nl.node("vdd"), circuit::kGround,
                             circuit::Waveform::dc(1.8));
    for (int i = 0; i < stages; ++i) {
        nl.add<circuit::Resistor>(format("r%d", i), nl.node(format("n%d", i)),
                                  nl.node(format("n%d", i + 1)), 10.0);
        nl.add<circuit::Capacitor>(format("c%d", i), nl.node(format("n%d", i + 1)),
                                   circuit::kGround, 1e-13);
    }
    for (int m = 0; m < 6; ++m) {
        nl.add<circuit::Resistor>(format("rd%d", m), nl.node("vdd"),
                                  nl.node(format("d%d", m)), 1e3);
        nl.add<circuit::Mosfet>(format("m%d", m), nl.node(format("d%d", m)),
                                nl.node(format("n%d", 5 + 6 * m)), circuit::kGround,
                                circuit::kGround, nch, circuit::MosGeometry{});
    }
    nl.finalize();
    const size_t n = nl.unknown_count();
    const double gmin = 1e-12;
    circuit::RealStamper s(n);
    s.enable_compiled_assembly();
    sim::TranAssembler asmb(nl, s, gmin);
    circuit::TranParams tp;
    tp.dt = 10e-12;
    tp.time = tp.dt;
    tp.order = 2;
    std::vector<double> x(n, 0.1);
    if (incremental) {
        asmb.assemble(x, tp); // learning pass
        asmb.begin_attempt(x, tp);
    }
    for (auto _ : state) {
        if (incremental) {
            asmb.assemble(x, tp);
        } else {
            s.clear();
            sim::assemble_tran(nl, s, x, tp, gmin);
        }
        benchmark::DoNotOptimize(s.csc().values().data());
    }
    state.counters["unknowns"] = static_cast<double>(n);
}
BENCHMARK(BM_Assemble)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_Fft(benchmark::State& state) {
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(7);
    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(-1, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dsp::fft_real(x));
    }
    state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384)->Arg(262144)->Complexity();

} // namespace

BENCHMARK_MAIN();
