// Ablation: why the paper's wafer choice matters.  The same injector /
// guard-ring / probe arrangement is extracted on (a) the paper's high-ohmic
// 20 ohm cm substrate, (b) a twin-well version with a conductive surface
// layer (this repo's generic180 default), and (c) a low-ohmic epi wafer.
//
// Observed physics (classic substrate-coupling results): on high-ohmic
// material the noise dives deep under the guard ring and resurfaces, so
// attenuation SATURATES with distance -- rings have limited reach and
// layout details dominate, the paper's motivation.  On an epi wafer with a
// grounded backside the heavily doped bulk soaks up the noise and
// attenuation keeps improving with distance.
#include <cstdio>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "geom/polygon.hpp"
#include "mor/macromodel.hpp"
#include "sim/op.hpp"
#include "substrate/extractor.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace snim;

namespace {

struct Wafer {
    const char* name;
    tech::DopingProfile profile;
};

/// Surface potential at increasing distance from the injector, relative to
/// the injected voltage, with a grounded guard ring between them.
std::vector<double> attenuation_profile(const tech::DopingProfile& profile,
                                        const std::vector<double>& distances) {
    substrate::ExtractOptions opt;
    opt.mesh.fine_pitch = 8.0;
    opt.mesh.focus = geom::Rect(-20, -20, 320, 40);
    opt.mesh.margin = 60.0;

    std::vector<substrate::PortSpec> ports;
    substrate::PortSpec inj;
    inj.name = "sub";
    inj.region.add(geom::Rect(0, 0, 20, 20));
    inj.contact_resistance = 1.0;
    ports.push_back(inj);

    substrate::PortSpec ring;
    ring.name = "gr";
    ring.region = geom::Region(geom::make_ring(geom::Rect(40, -20, 90, 40), 8.0));
    ring.contact_resistance = 0.5;
    ports.push_back(ring);

    for (size_t k = 0; k < distances.size(); ++k) {
        substrate::PortSpec probe;
        probe.name = "p" + std::to_string(k);
        probe.kind = substrate::PortKind::Probe;
        probe.region.add(geom::Rect(distances[k], 5, distances[k] + 10, 15));
        ports.push_back(probe);
    }

    auto model = substrate::extract_substrate(geom::Rect(-20, -20, 320, 40), profile,
                                              ports, opt);
    circuit::Netlist nl;
    mor::instantiate(model.reduced, nl, model.port_names, "s:");
    nl.add<circuit::VSource>("vsub", nl.existing_node("sub"), circuit::kGround,
                             circuit::Waveform::dc(1.0));
    nl.add<circuit::Resistor>("rgr", nl.existing_node("gr"), circuit::kGround, 0.5);
    auto x = sim::operating_point(nl);

    std::vector<double> out;
    for (size_t k = 0; k < distances.size(); ++k)
        out.push_back(circuit::volt(x, nl.existing_node("p" + std::to_string(k))));
    return out;
}

} // namespace

int main() {
    printf("=== Ablation: substrate type (high-ohmic vs twin-well vs epi) ===\n\n");

    const std::vector<double> distances{110, 160, 220, 290};
    const Wafer wafers[] = {
        {"high-ohmic 20 ohm cm", tech::DopingProfile::high_ohmic(20.0, 250.0)},
        {"twin-well (generic180)",
         tech::DopingProfile({{1.2, 0.15}, {248.8, 20.0}}, false)},
        {"epi (p- on p+ bulk)", tech::DopingProfile::epi()},
    };

    std::vector<std::string> headers{"distance [um]"};
    for (const auto& w : wafers) headers.push_back(std::string(w.name) + " [dB]");
    Table t(headers);
    CsvWriter csv(headers);

    std::vector<std::vector<double>> all;
    for (const auto& w : wafers) all.push_back(attenuation_profile(w.profile, distances));

    for (size_t k = 0; k < distances.size(); ++k) {
        std::vector<std::string> row{format("%.0f", distances[k])};
        std::vector<std::string> crow{format("%.0f", distances[k])};
        for (const auto& series : all) {
            row.push_back(format("%.1f", units::db20(std::max(series[k], 1e-12))));
            crow.push_back(format("%.2f", units::db20(std::max(series[k], 1e-12))));
        }
        t.add_row(row);
        csv.add_row(crow);
    }
    t.print();
    csv.save("ablation_substrate.csv");

    for (size_t w = 0; w < 3; ++w) {
        const double spread =
            units::db20(all[w].front()) - units::db20(all[w].back());
        printf("%-26s attenuation spread over distance: %.1f dB\n", wafers[w].name,
               spread);
    }
    printf("\non the high-ohmic wafers the attenuation saturates with distance\n"
           "(noise passes under the ring through the deep bulk): guard rings\n"
           "have limited reach and the wiring/layout details dominate -- the\n"
           "situation the paper's methodology exists to analyse.  The grounded\n"
           "epi bulk instead keeps absorbing noise with distance.\n");
    return 0;
}
