// Figure 9: contributions of the separate devices in the VCO to the overall
// impact (Vtune = 0 V, Pnoise = -5 dBm), versus noise frequency.
//
// Paper findings reproduced here:
//   * the on-chip ground interconnect dominates;
//   * the NMOS back-gate path is also resistive+FM (-20 dB/dec) but well
//     below the ground path (paper: ~20 dB);
//   * the inductor path is capacitive coupling followed by FM -> flat with
//     frequency;
//   * PMOS / varactor n-well paths are lowest.
#include <cstdio>

#include "circuit/sources.hpp"
#include "core/contribution.hpp"
#include "numeric/vecops.hpp"
#include "testcases/vco.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace snim;
using testcases::VcoTestcase;

int main() {
    printf("=== Figure 9: per-device contributions (Vtune = 0, -5 dBm) ===\n\n");

    testcases::VcoOptions vopt;
    vopt.vtune = 0.0;
    auto vco = testcases::build_vco(vopt);
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());

    core::AnalyzerOptions aopt;
    aopt.osc = testcases::vco_osc_options();
    core::ImpactAnalyzer analyzer(model, VcoTestcase::kNoiseSource,
                                  testcases::vco_noise_entries(), aopt);
    analyzer.calibrate();
    analyzer.calibrate_paths();

    const auto freqs = logspace(1e6, 15e6, 6);
    auto report = core::contribution_sweep(analyzer, freqs);

    std::vector<std::string> headers{"fnoise [MHz]"};
    for (const auto& e : report.entries) headers.push_back(e.label + " [dBc]");
    Table t(headers);
    CsvWriter csv(headers);
    for (size_t k = 0; k < freqs.size(); ++k) {
        std::vector<std::string> row{format("%.1f", freqs[k] / 1e6)};
        std::vector<std::string> crow{format("%g", freqs[k])};
        for (const auto& e : report.entries) {
            row.push_back(format("%.1f", e.spur_dbc[k]));
            crow.push_back(format("%.2f", e.spur_dbc[k]));
        }
        t.add_row(row);
        csv.add_row(crow);
    }
    t.print();
    csv.save("fig9_contributions.csv");

    printf("\nmechanism classification per path:\n");
    for (const auto& e : report.entries)
        printf("  %-20s %s\n", e.label.c_str(), e.mechanism.describe().c_str());

    const auto& dom = report.dominant();
    printf("\ndominant path: %s (paper: ground interconnect)\n", dom.label.c_str());
    printf("margin over the runner-up: %.1f dB (paper: ~20 dB over the back-gate)\n",
           report.dominance_margin_db());

    AsciiPlot plot("Figure 9: per-device spur contributions", "fnoise [Hz]", "dBc");
    plot.set_log_x(true);
    const char markers[] = {'*', 'o', '+', 'x', '#'};
    for (size_t i = 0; i < report.entries.size(); ++i) {
        PlotSeries s{report.entries[i].label, report.fnoise, report.entries[i].spur_dbc,
                     markers[i % 5]};
        plot.add(s);
    }
    plot.print();
    printf("wrote fig9_contributions.csv\n");
    return 0;
}
