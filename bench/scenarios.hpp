// Built-in snim_bench scenarios: the six paper-figure reproductions (with
// accuracy metrics against the committed reference CSVs) plus the numeric
// kernels behind the flow.  Call once before obs::match_scenarios().
#pragma once

namespace snim::bench_scenarios {

void register_builtin_scenarios();

} // namespace snim::bench_scenarios
