// snim_bench: unified benchmark & accuracy-telemetry driver.
//
//   snim_bench --list
//   snim_bench --quick --out BENCH_pr2.json --trace pr2.trace.json
//   snim_bench --quick --baseline BENCH_pr2.json --fail-on-regress 10
//
// Runs the registered scenarios (paper figures with accuracy metrics against
// the reference CSVs, plus numeric kernels), prints per-scenario runtime
// statistics and accuracy deltas, optionally emits the BENCH_*.json report
// and a Chrome trace, and gates against a baseline report.  Exit status:
// 0 gate passes, 1 a scenario regressed or missed its accuracy tolerance,
// 2 usage error.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench.hpp"
#include "obs/events.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"
#include "obs/run_ledger.hpp"
#include "obs/trace_export.hpp"
#include "obs/watchdog.hpp"
#include "scenarios.hpp"
#include "sim/checkpoint.hpp"
#include "sim/diagnostics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace snim;

struct Args {
    bool list = false;
    bool quick = false;
    bool check_determinism = false;
    int repeat = 0;
    int threads = 0;
    double fail_pct = 10.0;
    uint64_t seed = obs::BenchOptions{}.seed;
    std::string filter;
    std::string out_path;
    std::string trace_path;
    std::string baseline_path;
    std::string wave_dir;
    std::string diag_dir;
    std::string checkpoint_dir;
    std::string checkpoint_every;
    bool resume = false;
    std::string ledger_path;
    std::string log_level;
    std::string events_path;
    std::string profile_path;
    std::string watchdog_spec;
    bool status = false;    // --status: force the live TTY line on
    bool no_status = false; // --no-status: force it off
};

void usage(std::FILE* to) {
    std::fputs(
        "usage: snim_bench [options]\n"
        "  --list                 list registered scenarios and exit\n"
        "  --filter SUBSTR[,..]   run only scenarios whose name contains one\n"
        "                         of the comma-separated substrings\n"
        "  --quick                trimmed sweeps, fewer repetitions, no warmup\n"
        "  --repeat N             override the per-scenario repetition count\n"
        "  --seed N               default-Rng seed (runs are deterministic per seed)\n"
        "  --threads N            worker threads for parallel sweep corners\n"
        "                         (default: SNIM_THREADS, else 1; results are\n"
        "                         bit-identical for every value)\n"
        "  --check-determinism    run every scenario twice and require identical\n"
        "                         accuracy metrics\n"
        "  --out FILE             write the BENCH_*.json report\n"
        "  --trace FILE           write a Chrome trace (chrome://tracing, Perfetto)\n"
        "  --baseline FILE        gate runtimes against a previous BENCH_*.json\n"
        "  --fail-on-regress PCT  median-runtime regression threshold (default 10)\n"
        "  --dump-waves DIR       write per-scenario probe waveforms and solver-\n"
        "                         health channels as VCD + CSV into DIR\n"
        "  --diag-dir DIR         write Newton-failure diagnosis bundles\n"
        "                         (snim_diag_*.json) into DIR instead of cwd\n"
        "  --checkpoint-dir DIR   snapshot every transient's state into DIR\n"
        "                         (crash-consistent, double-buffered; one file\n"
        "                         per scenario corner)\n"
        "  --checkpoint-every SPEC  snapshot cadence: '2s' = every 2 wall-clock\n"
        "                         seconds, plain N = every N accepted steps\n"
        "                         (default 5s)\n"
        "  --resume               continue from the snapshots in --checkpoint-dir;\n"
        "                         finished corners replay instantly, a corner\n"
        "                         killed mid-transient resumes bit-identically\n"
        "  --ledger FILE          append a one-line run summary (manifest +\n"
        "                         per-scenario runtime/accuracy/RSS) to the\n"
        "                         JSONL ledger; render with `snim_report trend`\n"
        "  --log-level LEVEL      debug|info|warn|quiet (default: SNIM_LOG, else warn)\n"
        "  --events FILE          stream the live event journal as JSONL to FILE\n"
        "                         (stderr or - select stderr); also SNIM_EVENTS\n"
        "  --profile FILE         sample phase stacks (~200 Hz) and write folded\n"
        "                         stacks for flamegraph.pl to FILE; also SNIM_PROFILE\n"
        "  --watchdog SPEC        stall_s[,hang_s[,abort]] — warn after stall_s\n"
        "                         quiet seconds, bundle (and optionally abort)\n"
        "                         after hang_s; also SNIM_WATCHDOG\n"
        "  --status / --no-status force the live one-line progress display on or\n"
        "                         off (default: on when stderr is a terminal and\n"
        "                         any live telemetry is active)\n",
        to);
}

bool parse_args(int argc, char** argv, Args& a) {
    auto need_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) raise("%s needs a value", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") a.list = true;
        else if (arg == "--quick") a.quick = true;
        else if (arg == "--check-determinism") a.check_determinism = true;
        else if (arg == "--filter") a.filter = need_value(i, "--filter");
        else if (arg == "--repeat") a.repeat = std::atoi(need_value(i, "--repeat"));
        else if (arg == "--threads") a.threads = std::atoi(need_value(i, "--threads"));
        else if (arg == "--seed") a.seed = std::strtoull(need_value(i, "--seed"), nullptr, 0);
        else if (arg == "--out") a.out_path = need_value(i, "--out");
        else if (arg == "--trace") a.trace_path = need_value(i, "--trace");
        else if (arg == "--baseline") a.baseline_path = need_value(i, "--baseline");
        else if (arg == "--fail-on-regress") a.fail_pct = std::atof(need_value(i, "--fail-on-regress"));
        else if (arg == "--dump-waves") a.wave_dir = need_value(i, "--dump-waves");
        else if (arg == "--diag-dir") a.diag_dir = need_value(i, "--diag-dir");
        else if (arg == "--checkpoint-dir") a.checkpoint_dir = need_value(i, "--checkpoint-dir");
        else if (arg == "--checkpoint-every") a.checkpoint_every = need_value(i, "--checkpoint-every");
        else if (arg == "--resume") a.resume = true;
        else if (arg == "--ledger") a.ledger_path = need_value(i, "--ledger");
        else if (arg == "--log-level") a.log_level = need_value(i, "--log-level");
        else if (arg == "--events") a.events_path = need_value(i, "--events");
        else if (arg == "--profile") a.profile_path = need_value(i, "--profile");
        else if (arg == "--watchdog") a.watchdog_spec = need_value(i, "--watchdog");
        else if (arg == "--status") a.status = true;
        else if (arg == "--no-status") a.no_status = true;
        else if (arg == "--help" || arg == "-h") { usage(stdout); std::exit(0); }
        else raise("unknown option '%s'", arg.c_str());
    }
    if (a.repeat < 0) raise("--repeat must be positive");
    if (a.threads < 0) raise("--threads must be >= 0");
    if (a.fail_pct <= 0) raise("--fail-on-regress must be a positive percentage");
    if (!a.log_level.empty() && !parse_log_level(a.log_level))
        raise("--log-level wants debug|info|warn|quiet, got '%s'",
              a.log_level.c_str());
    if (a.resume && a.checkpoint_dir.empty())
        raise("--resume needs --checkpoint-dir");
    if (!a.checkpoint_every.empty() && a.checkpoint_dir.empty())
        raise("--checkpoint-every needs --checkpoint-dir");
    return true;
}

/// "2s" / "1.5s" -> wall-clock seconds; plain "500" -> accepted steps.
sim::CheckpointOptions parse_checkpoint_args(const Args& a) {
    sim::CheckpointOptions ck;
    ck.dir = a.checkpoint_dir;
    ck.resume = a.resume;
    if (!a.checkpoint_every.empty()) {
        char* end = nullptr;
        const double v = std::strtod(a.checkpoint_every.c_str(), &end);
        if (end == a.checkpoint_every.c_str() || v <= 0.0)
            raise("--checkpoint-every wants '<seconds>s' or '<steps>', got '%s'",
                  a.checkpoint_every.c_str());
        if (std::strcmp(end, "s") == 0)
            ck.every_s = v;
        else if (*end == '\0')
            ck.every_steps = static_cast<long>(v);
        else
            raise("--checkpoint-every wants '<seconds>s' or '<steps>', got '%s'",
                  a.checkpoint_every.c_str());
    }
    return ck;
}

obs::WatchdogOptions parse_watchdog_spec(const std::string& spec) {
    obs::WatchdogOptions opt;
    char* end = nullptr;
    opt.stall_s = std::strtod(spec.c_str(), &end);
    if (end == spec.c_str() || opt.stall_s <= 0.0)
        raise("--watchdog wants stall_s[,hang_s[,abort]], got '%s'", spec.c_str());
    if (*end == ',') {
        const char* rest = end + 1;
        opt.hang_s = std::strtod(rest, &end);
        if (end == rest) opt.hang_s = 0.0;
        if (*end == ',' && std::strcmp(end + 1, "abort") == 0)
            opt.abort_on_hang = true;
    }
    return opt;
}

/// Live single-line status on stderr, rewritten in place on each heartbeat.
void tty_status_observer(const obs::HeartbeatInfo& hb) {
    char line[160];
    int n;
    if (hb.total > 0) {
        n = std::snprintf(line, sizeof(line),
                          "\r[%s] %5.1f%%  %llu/%llu  eta %.0fs  rss %.0f MB",
                          hb.phase.c_str(), hb.percent,
                          static_cast<unsigned long long>(hb.done),
                          static_cast<unsigned long long>(hb.total),
                          hb.eta_s < 0 ? 0.0 : hb.eta_s,
                          static_cast<double>(hb.rss_bytes) / (1024.0 * 1024.0));
    } else {
        n = std::snprintf(line, sizeof(line), "\r[%s] %llu done  rss %.0f MB",
                          hb.phase.c_str(),
                          static_cast<unsigned long long>(hb.done),
                          static_cast<double>(hb.rss_bytes) / (1024.0 * 1024.0));
    }
    if (n < 0) return;
    // Pad to overwrite the previous (possibly longer) line.
    while (n < 78 && n + 1 < static_cast<int>(sizeof(line))) line[n++] = ' ';
    std::fwrite(line, 1, static_cast<size_t>(n), stderr);
    std::fflush(stderr);
}

void clear_tty_status() {
    std::fprintf(stderr, "\r%78s\r", "");
    std::fflush(stderr);
}

obs::Json read_json_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) raise("cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return obs::Json::parse(buf.str());
}

void print_scenario_result(const obs::ScenarioResult& r) {
    std::printf("  %-28s %2d rep  min %8.3fs  median %8.3fs  p95 %8.3fs\n",
                r.name.c_str(), r.repetitions, r.runtime.min_s,
                r.runtime.median_s, r.runtime.p95_s);
    for (const auto& m : r.accuracy)
        std::printf("    %-44s %6.2f dB (tol %.1f, %llu pts) %s\n",
                    m.name.c_str(), m.delta_db, m.tolerance_db,
                    static_cast<unsigned long long>(m.points),
                    m.pass() ? "ok" : "FAIL");
}

int run(const Args& a) {
    bench_scenarios::register_builtin_scenarios();

    const auto scenarios = obs::match_scenarios(a.filter);
    if (a.list) {
        for (const auto* s : obs::all_scenarios())
            std::printf("%-28s [%s]  %s\n", s->name.c_str(), s->kind.c_str(),
                        s->description.c_str());
        return 0;
    }
    if (scenarios.empty()) raise("no scenario matches filter '%s'", a.filter.c_str());

    obs::BenchOptions opt;
    opt.quick = a.quick;
    opt.repeat_override = a.repeat;
    opt.seed = a.seed;
    opt.wave_dir = a.wave_dir;
    opt.threads = a.threads;
    // Also raise the process default so AC sweeps inside scenarios pick the
    // same width without plumbing it through every options struct.
    if (a.threads > 0) util::set_default_thread_count(a.threads);
    if (!a.diag_dir.empty()) sim::set_default_diag_dir(a.diag_dir);
    // Checkpointing installs as a process default: scenarios stamp their own
    // per-corner tags on top, so a killed sweep resumes at the first
    // unfinished corner.  The dir is created here because transient()
    // downgrades snapshot-write failures to warnings — a missing directory
    // would otherwise silently disable checkpointing.
    if (!a.checkpoint_dir.empty()) {
        ::mkdir(a.checkpoint_dir.c_str(), 0755);
        sim::set_default_checkpoint(parse_checkpoint_args(a));
    }
    if (!a.wave_dir.empty()) ::mkdir(a.wave_dir.c_str(), 0755);

    // Live telemetry: the env pieces (SNIM_EVENTS/SNIM_PROFILE/SNIM_WATCHDOG/
    // SNIM_LASTGASP) first, then the explicit flags on top.
    obs::init_live_from_env();
    if (!a.log_level.empty()) set_log_level(*parse_log_level(a.log_level));
    if (!a.events_path.empty()) obs::set_event_stream_path(a.events_path);
    if (!a.profile_path.empty()) obs::start_profiler({});
    if (!a.watchdog_spec.empty())
        obs::start_watchdog(parse_watchdog_spec(a.watchdog_spec));
    const bool live = obs::events_active() || obs::profiler_running();
    const bool tty_status =
        !a.no_status && (a.status || (live && isatty(STDERR_FILENO)));
    if (tty_status) obs::set_heartbeat_observer(tty_status_observer);

    // One manifest for the whole invocation, installed before the scenario
    // loop so every artifact (report, traces, VCDs, diag bundles) carries
    // the same run id and config digest.
    obs::set_current_manifest(obs::make_run_manifest(
        "snim_bench", obs::bench_config_digest(opt), opt.seed,
        util::ThreadPool(opt.threads).thread_count()));

    std::vector<obs::ScenarioResult> results;
    for (const auto* s : scenarios) {
        std::printf("[%zu/%zu] %s ...\n", results.size() + 1, scenarios.size(),
                    s->name.c_str());
        std::fflush(stdout);
        auto r = obs::run_scenario(*s, opt);
        if (a.check_determinism) {
            // The literal reproducibility check: a second full run must land
            // on bit-identical accuracy metrics.  run_scenario already
            // asserts this *across repetitions*; this asserts it across runs.
            auto r2 = obs::run_scenario(*s, opt);
            if (r2.accuracy.size() != r.accuracy.size())
                raise("scenario '%s': accuracy metric count differs between runs",
                      s->name.c_str());
            for (size_t i = 0; i < r.accuracy.size(); ++i)
                if (r.accuracy[i].delta_db != r2.accuracy[i].delta_db ||
                    r.accuracy[i].points != r2.accuracy[i].points)
                    raise("scenario '%s': metric '%s' differs between runs "
                          "(%.17g vs %.17g) — determinism is broken",
                          s->name.c_str(), r.accuracy[i].name.c_str(),
                          r.accuracy[i].delta_db, r2.accuracy[i].delta_db);
        }
        if (tty_status) clear_tty_status();
        print_scenario_result(r);
        results.push_back(std::move(r));
    }
    if (tty_status) {
        obs::set_heartbeat_observer({});
        clear_tty_status();
    }

    // Freeze the profiler before report/trace emission so both embed the
    // same counts, then write the folded stacks for flamegraph.pl.
    if (!a.profile_path.empty()) {
        obs::stop_profiler();
        obs::write_folded(a.profile_path, obs::profiler_snapshot());
        std::printf("wrote %s (feed to flamegraph.pl or speedscope)\n",
                    a.profile_path.c_str());
    }

    if (!a.out_path.empty()) {
        obs::write_bench_report(a.out_path, obs::bench_report_json(results, opt));
        std::printf("wrote %s\n", a.out_path.c_str());
    }
    if (!a.ledger_path.empty()) {
        obs::append_ledger(a.ledger_path, obs::ledger_entry_from_report(
                                              obs::bench_report_json(results, opt)));
        std::printf("appended run to %s\n", a.ledger_path.c_str());
    }
    if (!a.trace_path.empty()) {
        std::vector<obs::TraceLane> lanes;
        for (const auto& r : results) lanes.push_back(r.lane);
        obs::Json trace = obs::chrome_trace_json(lanes);
        // Sampled folded stacks ride along under a custom top-level key;
        // Chrome/Perfetto ignore keys they don't know.
        if (const obs::FoldedProfile p = obs::profiler_snapshot(); p.samples > 0)
            trace.as_object().emplace("snimProfile", obs::profile_json(p));
        obs::write_json_file(a.trace_path, trace);
        std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                    a.trace_path.c_str());
    }

    std::vector<obs::Verdict> verdicts;
    if (!a.baseline_path.empty())
        verdicts = obs::compare_to_baseline(read_json_file(a.baseline_path),
                                            results, a.fail_pct);
    else
        verdicts = obs::accuracy_verdicts(results);
    std::fputs(obs::verdict_table(verdicts).c_str(), stdout);

    if (!obs::gate_passes(verdicts)) {
        std::fputs("GATE: FAIL\n", stdout);
        return 1;
    }
    std::fputs("GATE: PASS\n", stdout);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    Args a;
    try {
        parse_args(argc, argv, a);
    } catch (const Error& e) {
        std::fprintf(stderr, "snim_bench: %s\n", e.what());
        usage(stderr);
        return 2;
    }
    try {
        const int rc = run(a);
        obs::shutdown_live();
        return rc;
    } catch (const Error& e) {
        std::fprintf(stderr, "snim_bench: %s\n", e.what());
        obs::shutdown_live();
        return 1;
    }
}
