// snim_bench: unified benchmark & accuracy-telemetry driver.
//
//   snim_bench --list
//   snim_bench --quick --out BENCH_pr2.json --trace pr2.trace.json
//   snim_bench --quick --baseline BENCH_pr2.json --fail-on-regress 10
//
// Runs the registered scenarios (paper figures with accuracy metrics against
// the reference CSVs, plus numeric kernels), prints per-scenario runtime
// statistics and accuracy deltas, optionally emits the BENCH_*.json report
// and a Chrome trace, and gates against a baseline report.  Exit status:
// 0 gate passes, 1 a scenario regressed or missed its accuracy tolerance,
// 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench.hpp"
#include "obs/run_ledger.hpp"
#include "obs/trace_export.hpp"
#include "scenarios.hpp"
#include "sim/diagnostics.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace snim;

struct Args {
    bool list = false;
    bool quick = false;
    bool check_determinism = false;
    int repeat = 0;
    int threads = 0;
    double fail_pct = 10.0;
    uint64_t seed = obs::BenchOptions{}.seed;
    std::string filter;
    std::string out_path;
    std::string trace_path;
    std::string baseline_path;
    std::string wave_dir;
    std::string diag_dir;
    std::string ledger_path;
};

void usage(std::FILE* to) {
    std::fputs(
        "usage: snim_bench [options]\n"
        "  --list                 list registered scenarios and exit\n"
        "  --filter SUBSTR[,..]   run only scenarios whose name contains one\n"
        "                         of the comma-separated substrings\n"
        "  --quick                trimmed sweeps, fewer repetitions, no warmup\n"
        "  --repeat N             override the per-scenario repetition count\n"
        "  --seed N               default-Rng seed (runs are deterministic per seed)\n"
        "  --threads N            worker threads for parallel sweep corners\n"
        "                         (default: SNIM_THREADS, else 1; results are\n"
        "                         bit-identical for every value)\n"
        "  --check-determinism    run every scenario twice and require identical\n"
        "                         accuracy metrics\n"
        "  --out FILE             write the BENCH_*.json report\n"
        "  --trace FILE           write a Chrome trace (chrome://tracing, Perfetto)\n"
        "  --baseline FILE        gate runtimes against a previous BENCH_*.json\n"
        "  --fail-on-regress PCT  median-runtime regression threshold (default 10)\n"
        "  --dump-waves DIR       write per-scenario probe waveforms and solver-\n"
        "                         health channels as VCD + CSV into DIR\n"
        "  --diag-dir DIR         write Newton-failure diagnosis bundles\n"
        "                         (snim_diag_*.json) into DIR instead of cwd\n"
        "  --ledger FILE          append a one-line run summary (manifest +\n"
        "                         per-scenario runtime/accuracy/RSS) to the\n"
        "                         JSONL ledger; render with `snim_report trend`\n",
        to);
}

bool parse_args(int argc, char** argv, Args& a) {
    auto need_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) raise("%s needs a value", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") a.list = true;
        else if (arg == "--quick") a.quick = true;
        else if (arg == "--check-determinism") a.check_determinism = true;
        else if (arg == "--filter") a.filter = need_value(i, "--filter");
        else if (arg == "--repeat") a.repeat = std::atoi(need_value(i, "--repeat"));
        else if (arg == "--threads") a.threads = std::atoi(need_value(i, "--threads"));
        else if (arg == "--seed") a.seed = std::strtoull(need_value(i, "--seed"), nullptr, 0);
        else if (arg == "--out") a.out_path = need_value(i, "--out");
        else if (arg == "--trace") a.trace_path = need_value(i, "--trace");
        else if (arg == "--baseline") a.baseline_path = need_value(i, "--baseline");
        else if (arg == "--fail-on-regress") a.fail_pct = std::atof(need_value(i, "--fail-on-regress"));
        else if (arg == "--dump-waves") a.wave_dir = need_value(i, "--dump-waves");
        else if (arg == "--diag-dir") a.diag_dir = need_value(i, "--diag-dir");
        else if (arg == "--ledger") a.ledger_path = need_value(i, "--ledger");
        else if (arg == "--help" || arg == "-h") { usage(stdout); std::exit(0); }
        else raise("unknown option '%s'", arg.c_str());
    }
    if (a.repeat < 0) raise("--repeat must be positive");
    if (a.threads < 0) raise("--threads must be >= 0");
    if (a.fail_pct <= 0) raise("--fail-on-regress must be a positive percentage");
    return true;
}

obs::Json read_json_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) raise("cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return obs::Json::parse(buf.str());
}

void print_scenario_result(const obs::ScenarioResult& r) {
    std::printf("  %-28s %2d rep  min %8.3fs  median %8.3fs  p95 %8.3fs\n",
                r.name.c_str(), r.repetitions, r.runtime.min_s,
                r.runtime.median_s, r.runtime.p95_s);
    for (const auto& m : r.accuracy)
        std::printf("    %-44s %6.2f dB (tol %.1f, %llu pts) %s\n",
                    m.name.c_str(), m.delta_db, m.tolerance_db,
                    static_cast<unsigned long long>(m.points),
                    m.pass() ? "ok" : "FAIL");
}

int run(const Args& a) {
    bench_scenarios::register_builtin_scenarios();

    const auto scenarios = obs::match_scenarios(a.filter);
    if (a.list) {
        for (const auto* s : obs::all_scenarios())
            std::printf("%-28s [%s]  %s\n", s->name.c_str(), s->kind.c_str(),
                        s->description.c_str());
        return 0;
    }
    if (scenarios.empty()) raise("no scenario matches filter '%s'", a.filter.c_str());

    obs::BenchOptions opt;
    opt.quick = a.quick;
    opt.repeat_override = a.repeat;
    opt.seed = a.seed;
    opt.wave_dir = a.wave_dir;
    opt.threads = a.threads;
    // Also raise the process default so AC sweeps inside scenarios pick the
    // same width without plumbing it through every options struct.
    if (a.threads > 0) util::set_default_thread_count(a.threads);
    if (!a.diag_dir.empty()) sim::set_default_diag_dir(a.diag_dir);

    // One manifest for the whole invocation, installed before the scenario
    // loop so every artifact (report, traces, VCDs, diag bundles) carries
    // the same run id and config digest.
    obs::set_current_manifest(obs::make_run_manifest(
        "snim_bench", obs::bench_config_digest(opt), opt.seed,
        util::ThreadPool(opt.threads).thread_count()));

    std::vector<obs::ScenarioResult> results;
    for (const auto* s : scenarios) {
        std::printf("[%zu/%zu] %s ...\n", results.size() + 1, scenarios.size(),
                    s->name.c_str());
        std::fflush(stdout);
        auto r = obs::run_scenario(*s, opt);
        if (a.check_determinism) {
            // The literal reproducibility check: a second full run must land
            // on bit-identical accuracy metrics.  run_scenario already
            // asserts this *across repetitions*; this asserts it across runs.
            auto r2 = obs::run_scenario(*s, opt);
            if (r2.accuracy.size() != r.accuracy.size())
                raise("scenario '%s': accuracy metric count differs between runs",
                      s->name.c_str());
            for (size_t i = 0; i < r.accuracy.size(); ++i)
                if (r.accuracy[i].delta_db != r2.accuracy[i].delta_db ||
                    r.accuracy[i].points != r2.accuracy[i].points)
                    raise("scenario '%s': metric '%s' differs between runs "
                          "(%.17g vs %.17g) — determinism is broken",
                          s->name.c_str(), r.accuracy[i].name.c_str(),
                          r.accuracy[i].delta_db, r2.accuracy[i].delta_db);
        }
        print_scenario_result(r);
        results.push_back(std::move(r));
    }

    if (!a.out_path.empty()) {
        obs::write_bench_report(a.out_path, obs::bench_report_json(results, opt));
        std::printf("wrote %s\n", a.out_path.c_str());
    }
    if (!a.ledger_path.empty()) {
        obs::append_ledger(a.ledger_path, obs::ledger_entry_from_report(
                                              obs::bench_report_json(results, opt)));
        std::printf("appended run to %s\n", a.ledger_path.c_str());
    }
    if (!a.trace_path.empty()) {
        std::vector<obs::TraceLane> lanes;
        for (const auto& r : results) lanes.push_back(r.lane);
        obs::write_chrome_trace(a.trace_path, lanes);
        std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                    a.trace_path.c_str());
    }

    std::vector<obs::Verdict> verdicts;
    if (!a.baseline_path.empty())
        verdicts = obs::compare_to_baseline(read_json_file(a.baseline_path),
                                            results, a.fail_pct);
    else
        verdicts = obs::accuracy_verdicts(results);
    std::fputs(obs::verdict_table(verdicts).c_str(), stdout);

    if (!obs::gate_passes(verdicts)) {
        std::fputs("GATE: FAIL\n", stdout);
        return 1;
    }
    std::fputs("GATE: PASS\n", stdout);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    Args a;
    try {
        parse_args(argc, argv, a);
    } catch (const Error& e) {
        std::fprintf(stderr, "snim_bench: %s\n", e.what());
        usage(stderr);
        return 2;
    }
    try {
        return run(a);
    } catch (const Error& e) {
        std::fprintf(stderr, "snim_bench: %s\n", e.what());
        return 1;
    }
}
