// Section 6 runtime note: the paper reports ~35 minutes on a 2005 HP-UX
// server (20 min extraction + 15 min simulation) for the Figure-10 results.
// This bench reproduces the same breakdown on the reproduction — every
// number in the table is read back from the obs registry, not from ad-hoc
// stopwatches, so the same data is available from any instrumented run
// (SNIM_OBS=json gives the machine-readable form).
#include <cstdio>

#include "circuit/sources.hpp"
#include "core/impact_model.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "testcases/vco.hpp"
#include "util/table.hpp"

using namespace snim;

int main() {
    printf("=== Section 6 runtime: extraction + impact simulation ===\n\n");
    obs::set_enabled(true);

    core::ImpactModel model = [] {
        obs::ScopedTimer t("bench/testcase_build");
        auto vco = testcases::build_vco();
        t.stop();
        obs::ScopedTimer e("bench/extract");
        return testcases::build_model(std::move(vco), testcases::vco_flow_options());
    }();

    core::AnalyzerOptions aopt;
    aopt.osc = testcases::vco_osc_options();
    core::ImpactAnalyzer analyzer(model, testcases::VcoTestcase::kNoiseSource,
                                  testcases::vco_noise_entries(), aopt);
    {
        obs::ScopedTimer t("bench/calibrate");
        analyzer.calibrate();
    }
    {
        obs::ScopedTimer t("bench/predict");
        for (double fn : {1e6, 3e6, 10e6, 15e6}) analyzer.predict(fn);
    }
    {
        obs::ScopedTimer t("bench/reference_transient");
        analyzer.simulate(10e6);
    }

    // The paper-style breakdown, every duration read from the registry.
    auto seconds = [](const char* phase) { return obs::phase_seconds(phase); };
    const double total = seconds("bench/testcase_build") + seconds("bench/extract") +
                         seconds("bench/calibrate") + seconds("bench/predict") +
                         seconds("bench/reference_transient");
    Table t({"stage", "this repo [s]", "paper (2005 HP-UX L2000/4)"});
    t.add_row({"testcase generation", format("%.2f", seconds("bench/testcase_build")),
               "-"});
    t.add_row({"extraction (substrate+interconnect)",
               format("%.2f", seconds("bench/extract")), "~20 min"});
    t.add_row({"oscillator calibration (3 runs)",
               format("%.2f", seconds("bench/calibrate")), "-"});
    t.add_row({"methodology prediction (4 freqs)",
               format("%.3f", seconds("bench/predict")), "part of 15 min"});
    t.add_row({"reference transient (1 freq)",
               format("%.2f", seconds("bench/reference_transient")), "part of 15 min"});
    t.add_row({"total", format("%.1f", total), "~35 min"});
    t.print();

    printf("\nmodel size: %zu mesh nodes -> %zu substrate ports, %zu devices, "
           "%zu circuit nodes\n",
           model.mesh_nodes, model.substrate.port_names.size(),
           model.netlist.device_count(), model.netlist.node_count());

    // Where the time actually goes, from the same registry: the solver-level
    // phase breakdown the paper could not show.
    printf("\n");
    fputs(obs::report_text().c_str(), stdout);
    return 0;
}
