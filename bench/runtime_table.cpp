// Section 6 runtime note: the paper reports ~35 minutes on a 2005 HP-UX
// server (20 min extraction + 15 min simulation) for the Figure-10 results.
// This bench reproduces the same breakdown on the reproduction — the whole
// flow runs as a snim_bench scenario, and every number in the table is read
// back from the scenario's registry snapshot, not from ad-hoc stopwatches,
// so the same data is available from any instrumented run (SNIM_OBS=json or
// `snim_bench --out` give the machine-readable form).
#include <cstdio>
#include <cstring>
#include <optional>

#include "circuit/sources.hpp"
#include "core/impact_model.hpp"
#include "obs/bench.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "testcases/vco.hpp"
#include "util/table.hpp"

using namespace snim;

int main(int argc, char** argv) {
    obs::BenchOptions bopt;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0) bopt.quick = true;

    printf("=== Section 6 runtime: extraction + impact simulation ===\n\n");

    std::optional<core::ImpactModel> model;
    obs::Scenario s;
    s.name = "runtime_table";
    s.description = "Section 6 runtime breakdown (extraction + impact simulation)";
    s.kind = "flow";
    s.repeat = 1;
    s.warmup = 0;
    s.run = [&](obs::ScenarioContext& ctx) {
        model.reset();
        {
            obs::ScopedTimer t("bench/testcase_build");
            auto vco = testcases::build_vco();
            t.stop();
            obs::ScopedTimer e("bench/extract");
            model.emplace(
                testcases::build_model(std::move(vco), testcases::vco_flow_options()));
        }
        core::AnalyzerOptions aopt;
        aopt.osc = testcases::vco_osc_options();
        core::ImpactAnalyzer analyzer(*model, testcases::VcoTestcase::kNoiseSource,
                                      testcases::vco_noise_entries(), aopt);
        {
            obs::ScopedTimer t("bench/calibrate");
            analyzer.calibrate();
        }
        {
            obs::ScopedTimer t("bench/predict");
            for (double fn : {1e6, 3e6, 10e6, 15e6}) analyzer.predict(fn);
        }
        if (!ctx.quick) {
            obs::ScopedTimer t("bench/reference_transient");
            analyzer.simulate(10e6);
        }
    };
    const auto result = obs::run_scenario(s, bopt);

    // The paper-style breakdown, every duration read from the registry
    // snapshot run_scenario leaves intact.
    auto seconds = [](const char* phase) { return obs::phase_seconds(phase); };
    const double total = seconds("bench/testcase_build") + seconds("bench/extract") +
                         seconds("bench/calibrate") + seconds("bench/predict") +
                         seconds("bench/reference_transient");
    Table t({"stage", "this repo [s]", "paper (2005 HP-UX L2000/4)"});
    t.add_row({"testcase generation", format("%.2f", seconds("bench/testcase_build")),
               "-"});
    t.add_row({"extraction (substrate+interconnect)",
               format("%.2f", seconds("bench/extract")), "~20 min"});
    t.add_row({"oscillator calibration (3 runs)",
               format("%.2f", seconds("bench/calibrate")), "-"});
    t.add_row({"methodology prediction (4 freqs)",
               format("%.3f", seconds("bench/predict")), "part of 15 min"});
    t.add_row({"reference transient (1 freq)",
               bopt.quick ? "skipped (--quick)"
                          : format("%.2f", seconds("bench/reference_transient")),
               "part of 15 min"});
    t.add_row({"total", format("%.1f", total), "~35 min"});
    t.print();

    printf("\nscenario wall time: %.2f s (median over %d repetition%s)\n",
           result.runtime.median_s, result.repetitions,
           result.repetitions == 1 ? "" : "s");
    printf("model size: %zu mesh nodes -> %zu substrate ports, %zu devices, "
           "%zu circuit nodes\n",
           model->mesh_nodes, model->substrate.port_names.size(),
           model->netlist.device_count(), model->netlist.node_count());

    // Where the time actually goes, from the same registry: the solver-level
    // phase breakdown the paper could not show.
    printf("\n");
    fputs(obs::report_text().c_str(), stdout);
    return 0;
}
