// Section 6 runtime note: the paper reports ~35 minutes on a 2005 HP-UX
// server (20 min extraction + 15 min simulation) for the Figure-10 results.
// This bench reproduces the same breakdown on the reproduction.
#include <chrono>
#include <cstdio>

#include "circuit/sources.hpp"
#include "core/impact_model.hpp"
#include "testcases/vco.hpp"
#include "util/table.hpp"

using namespace snim;
using Clock = std::chrono::steady_clock;

namespace {
double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}
} // namespace

int main() {
    printf("=== Section 6 runtime: extraction + impact simulation ===\n\n");

    auto t0 = Clock::now();
    auto vco = testcases::build_vco();
    const double t_build = seconds_since(t0);

    t0 = Clock::now();
    auto model = testcases::build_model(std::move(vco), testcases::vco_flow_options());
    const double t_extract = seconds_since(t0);

    core::AnalyzerOptions aopt;
    aopt.osc = testcases::vco_osc_options();
    core::ImpactAnalyzer analyzer(model, testcases::VcoTestcase::kNoiseSource,
                                  testcases::vco_noise_entries(), aopt);
    t0 = Clock::now();
    analyzer.calibrate();
    const double t_calibrate = seconds_since(t0);

    t0 = Clock::now();
    for (double fn : {1e6, 3e6, 10e6, 15e6}) analyzer.predict(fn);
    const double t_predict = seconds_since(t0);

    t0 = Clock::now();
    analyzer.simulate(10e6);
    const double t_transient = seconds_since(t0);

    Table t({"stage", "this repo [s]", "paper (2005 HP-UX L2000/4)"});
    t.add_row({"testcase generation", format("%.2f", t_build), "-"});
    t.add_row({"extraction (substrate+interconnect)", format("%.2f", t_extract),
               "~20 min"});
    t.add_row({"oscillator calibration (3 runs)", format("%.2f", t_calibrate), "-"});
    t.add_row({"methodology prediction (4 freqs)", format("%.3f", t_predict),
               "part of 15 min"});
    t.add_row({"reference transient (1 freq)", format("%.2f", t_transient),
               "part of 15 min"});
    t.add_row({"total", format("%.1f", t_build + t_extract + t_calibrate + t_predict +
                                            t_transient),
               "~35 min"});
    t.print();
    printf("\nmodel size: %zu mesh nodes -> %zu substrate ports, %zu devices, "
           "%zu circuit nodes\n",
           model.mesh_nodes, model.substrate.port_names.size(),
           model.netlist.device_count(), model.netlist.node_count());
    return 0;
}
