#include "core/impact_flow.hpp"

#include <cmath>

#include "layout/connectivity.hpp"
#include "mor/macromodel.hpp"
#include "obs/trace.hpp"
#include "sim/checkpoint.hpp"
#include "sim/diagnostics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace snim::core {

const interconnect::NetStats* ImpactModel::wire_stats_for(const std::string& net) const {
    for (const auto& s : wire_stats)
        if (equals_nocase(s.name, net)) return &s;
    return nullptr;
}

void validate_flow_options(const FlowOptions& opt) {
    if (opt.surface_patches < 1)
        raise("FlowOptions.surface_patches must be >= 1 (got %d)",
              opt.surface_patches);
    const auto& m = opt.substrate.mesh;
    if (!(m.fine_pitch > 0.0))
        raise("FlowOptions.substrate.mesh.fine_pitch must be > 0 (got %g)",
              m.fine_pitch);
    if (!(m.growth >= 1.0))
        raise("FlowOptions.substrate.mesh.growth must be >= 1 (got %g)", m.growth);
    if (!(m.max_pitch >= m.fine_pitch))
        raise("FlowOptions.substrate.mesh.max_pitch (%g) must be >= fine_pitch (%g)",
              m.max_pitch, m.fine_pitch);
    if (m.max_cells_per_axis < 1)
        raise("FlowOptions.substrate.mesh.max_cells_per_axis must be >= 1 (got %d)",
              m.max_cells_per_axis);
    if (opt.substrate.drop_tol < 0.0)
        raise("FlowOptions.substrate.drop_tol must be >= 0 (got %g)",
              opt.substrate.drop_tol);
    if (!(opt.interconnect.touch_resistance > 0.0))
        raise("FlowOptions.interconnect.touch_resistance must be > 0 (got %g)",
              opt.interconnect.touch_resistance);
    if (opt.interconnect.cap_floor < 0.0)
        raise("FlowOptions.interconnect.cap_floor must be >= 0 (got %g)",
              opt.interconnect.cap_floor);
    if (!(opt.interconnect.cut_pitch > 0.0))
        raise("FlowOptions.interconnect.cut_pitch must be > 0 (got %g)",
              opt.interconnect.cut_pitch);
    if (opt.threads < 0)
        raise("FlowOptions.threads must be >= 0 (got %d)", opt.threads);
    if (opt.resume_from_checkpoint && opt.checkpoint_dir.empty())
        raise("FlowOptions.resume_from_checkpoint needs checkpoint_dir to be set");
    if (opt.checkpoint_every_steps < 0)
        raise("FlowOptions.checkpoint_every_steps must be >= 0 (got %ld)",
              opt.checkpoint_every_steps);
    if (!(std::isfinite(opt.checkpoint_every_s) && opt.checkpoint_every_s >= 0.0))
        raise("FlowOptions.checkpoint_every_s must be finite and >= 0 (got %g)",
              opt.checkpoint_every_s);
    if (!opt.checkpoint_dir.empty() && opt.checkpoint_dir == opt.diag_dir)
        raise("FlowOptions.checkpoint_dir must differ from diag_dir ('%s'): "
              "snapshot rotation would clobber diagnosis bundles",
              opt.diag_dir.c_str());
}

void digest_options(obs::ConfigDigest& d, const FlowOptions& opt) {
    const substrate::MeshOptions& m = opt.substrate.mesh;
    d.add("flow.substrate.mesh.fine_pitch", m.fine_pitch);
    d.add("flow.substrate.mesh.growth", m.growth);
    d.add("flow.substrate.mesh.max_pitch", m.max_pitch);
    d.add("flow.substrate.mesh.focus",
          std::vector<double>{m.focus.x0, m.focus.y0, m.focus.x1, m.focus.y1});
    d.add("flow.substrate.mesh.z_steps", m.z_steps);
    d.add("flow.substrate.mesh.margin", m.margin);
    d.add("flow.substrate.mesh.max_cells_per_axis", m.max_cells_per_axis);
    d.add("flow.substrate.drop_tol", opt.substrate.drop_tol);
    d.add("flow.substrate.unreduced_fallback", opt.substrate.unreduced_fallback);
    d.add("flow.interconnect.extract_resistance", opt.interconnect.extract_resistance);
    d.add("flow.interconnect.extract_capacitance", opt.interconnect.extract_capacitance);
    d.add("flow.interconnect.touch_resistance", opt.interconnect.touch_resistance);
    d.add("flow.interconnect.cap_floor", opt.interconnect.cap_floor);
    d.add("flow.interconnect.cut_pitch", opt.interconnect.cut_pitch);
    d.add("flow.interconnect.substrate_node_set",
          static_cast<bool>(opt.interconnect.substrate_node));
    d.add("flow.surface_patches", opt.surface_patches);
    d.add("flow.auto_tap_ports", opt.auto_tap_ports);
    d.add("flow.observe", opt.observe);
    // checkpoint_dir / resume_from_checkpoint / cadence are excluded on
    // purpose: checkpointing never changes results, and a resumed run must
    // produce the same digest as the run that wrote the snapshot.
}

ImpactModel build_impact_model(FlowInputs inputs, const FlowOptions& opt) {
    SNIM_ASSERT(inputs.layout != nullptr && inputs.tech != nullptr,
                "flow needs layout and technology");
    validate_flow_options(opt);
    if (opt.observe) obs::set_enabled(true);
    if (!opt.diag_dir.empty()) sim::set_default_diag_dir(opt.diag_dir);
    if (opt.threads > 0) util::set_default_thread_count(opt.threads);
    if (!opt.checkpoint_dir.empty()) {
        sim::CheckpointOptions ck;
        ck.dir = opt.checkpoint_dir;
        ck.resume = opt.resume_from_checkpoint;
        ck.every_s = opt.checkpoint_every_s;
        ck.every_steps = opt.checkpoint_every_steps;
        sim::set_default_checkpoint(ck);
    }
    // Adopt the enclosing run's identity (a bench scenario already set one)
    // or establish this flow as its own run.
    {
        obs::ConfigDigest digest;
        digest_options(digest, opt);
        obs::ensure_current_manifest("impact_flow", digest, default_rng_seed(),
                                     util::default_thread_count());
    }
    obs::ScopedTimer obs_flow("flow/build_impact_model", obs::Timing::WhenEnabled,
                              obs::Rss::Track);
    const layout::Layout& lay = *inputs.layout;
    const tech::Technology& tech = *inputs.tech;

    // --- layout preparation ------------------------------------------------
    const auto shapes = lay.flatten_shapes();
    const auto labels = lay.flatten_labels();
    const auto nets = layout::extract_connectivity(shapes, labels, tech);
    const geom::Rect area = lay.bbox();
    SNIM_ASSERT(!area.empty(), "layout is empty");

    // --- substrate ports ----------------------------------------------------
    std::vector<substrate::PortSpec> ports = inputs.substrate_ports;
    if (opt.auto_tap_ports) {
        // Taps only; wells are passed explicitly so their names match
        // schematic nodes.
        for (auto& p : substrate::ports_from_layout(shapes, nets, labels, tech)) {
            if (p.kind == substrate::PortKind::Resistive) ports.push_back(std::move(p));
        }
    }

    // Surface-potential patches: coupling targets for wire capacitance.
    const int s = std::max(1, opt.surface_patches);
    const double px = area.width() / s;
    const double py = area.height() / s;
    std::vector<std::string> patch_names;
    for (int iy = 0; iy < s; ++iy) {
        for (int ix = 0; ix < s; ++ix) {
            substrate::PortSpec spec;
            spec.name = format("surf:%d_%d", ix, iy);
            spec.kind = substrate::PortKind::Probe;
            const double cx = area.x0 + (ix + 0.5) * px;
            const double cy = area.y0 + (iy + 0.5) * py;
            // Footprint ~ one fine mesh cell so the probe does not laterally
            // short the surface.
            const double probe_w = std::min(px, 2.0 * opt.substrate.mesh.fine_pitch);
            const double probe_h = std::min(py, 2.0 * opt.substrate.mesh.fine_pitch);
            spec.region.add(geom::Rect::centered(cx, cy, probe_w, probe_h));
            patch_names.push_back(spec.name);
            ports.push_back(std::move(spec));
        }
    }

    // --- substrate extraction ----------------------------------------------
    // The extractors record their own flow/substrate_extract and
    // flow/interconnect_extract phases; the *_seconds fields mirror those
    // registry entries for API compatibility.
    ImpactModel out;
    out.substrate = substrate::extract_substrate(area, tech.substrate(), ports,
                                                 opt.substrate);
    out.substrate_seconds = out.substrate.extract_seconds;
    out.mesh_nodes = out.substrate.mesh_node_count;
    if (out.substrate.mor_fallback) {
        // The flow still produces a usable (exact, just unreduced) model;
        // the counter lets sweep reports flag the degraded corner.
        obs::count("flow/degraded_builds");
        log_warn("impact model: substrate reduction degraded to the unreduced "
                 "mesh (%zu nodes) — simulation will be slower",
                 out.mesh_nodes);
    }

    // --- interconnect extraction --------------------------------------------
    interconnect::ExtractOptions ic_opt = opt.interconnect;
    if (!ic_opt.substrate_node) {
        ic_opt.substrate_node = [area, s, px, py, patch_names](const geom::Rect& foot,
                                                               const std::string&) {
            const auto c = foot.center();
            int ix = static_cast<int>((c.x - area.x0) / px);
            int iy = static_cast<int>((c.y - area.y0) / py);
            ix = std::clamp(ix, 0, s - 1);
            iy = std::clamp(iy, 0, s - 1);
            return patch_names[static_cast<size_t>(iy * s + ix)];
        };
    }
    auto ic = interconnect::extract_interconnect(shapes, nets, tech, inputs.pins, ic_opt);
    out.wire_stats = std::move(ic.stats);
    out.interconnect_seconds = ic.extract_seconds;

    // --- stitching ------------------------------------------------------------
    // Substrate macromodel first (creates the port-named nodes), then the
    // wiring (shares tap ports / surface patches by name), then the
    // schematic (shares pin nodes), then the package.
    {
        obs::ScopedTimer obs_stitch("flow/stitch", obs::Timing::WhenEnabled,
                                    obs::Rss::Track);
        mor::instantiate(out.substrate.reduced, out.netlist, out.substrate.port_names,
                         "sub:");
        out.netlist.absorb(std::move(ic.netlist), "", {});
        out.netlist.absorb(std::move(inputs.schematic), "", {});
        inputs.package.instantiate(out.netlist);
    }
    if (obs::enabled()) {
        obs::count("flow/builds");
        obs::record_value("flow/model_devices",
                          static_cast<double>(out.netlist.device_count()));
        obs::record_value("flow/model_nodes",
                          static_cast<double>(out.netlist.node_count()));
    }

    log_info("impact model: %zu devices, %zu nodes (mesh %zu -> %zu ports)",
             out.netlist.device_count(), out.netlist.node_count(), out.mesh_nodes,
             out.substrate.port_names.size());
    return out;
}

} // namespace snim::core
