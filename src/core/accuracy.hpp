// Accuracy extraction for the bench harness: loads the paper-reference CSVs
// committed at the repo root (fig3_nmos_transfer.csv ... table_vco_specs.csv)
// and scores a freshly computed series against them as a dB delta — the
// machine-readable form of the paper's "simulation within 2 dB of
// measurement" claims.
#pragma once

#include <string>
#include <vector>

#include "obs/bench.hpp"

namespace snim::core {

/// Finds a reference data file: tries SNIM_DATA_DIR (when set), then the
/// current directory, then up to three parent directories (benches usually
/// run from build/bench).  Raises when the file cannot be found.
std::string find_reference_file(const std::string& filename);

/// A (key, value) series from a reference CSV: `key_col` and `value_col`
/// are column names; rows may optionally be restricted to those whose
/// `filter_col` cell equals `filter_value`.  Rows with an empty value cell
/// are skipped (the figure-8 CSV leaves MEAS blank at prediction-only
/// frequencies).
struct RefSeries {
    std::vector<double> keys;
    std::vector<double> values;
};

RefSeries load_reference_series(const std::string& filename, const std::string& key_col,
                                const std::string& value_col,
                                const std::string& filter_col = "",
                                const std::string& filter_value = "");

/// Accuracy metric: max |values[i] - reference| over computed points whose
/// key matches a reference key within relative tolerance `key_rel_tol`
/// (absolute for keys near zero).  Raises when no point matches — a silent
/// zero-point comparison would read as a pass.
obs::AccuracyMetric reference_delta(std::string metric_name, const RefSeries& ref,
                                    std::string reference_label, double tolerance_db,
                                    const std::vector<double>& keys,
                                    const std::vector<double>& values,
                                    double key_rel_tol = 1e-3);

/// Same, values already paired one-to-one (no key matching).
obs::AccuracyMetric paired_delta(std::string metric_name, std::string reference_label,
                                 double tolerance_db, const std::vector<double>& ref,
                                 const std::vector<double>& got);

} // namespace snim::core
