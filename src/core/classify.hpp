// Coupling / modulation mechanism classification from frequency series --
// the reasoning of the paper's Section 6: resistive coupling has
// frequency-flat |H|, FM spurs fall 20 dB/decade, AM spurs are flat, and
// capacitive coupling adds +20 dB/decade to |H|.
#pragma once

#include <string>
#include <vector>

namespace snim::core {

enum class CouplingKind { Resistive, Capacitive, Mixed };
enum class ModulationKind { FM, AM, Mixed };

struct MechanismReport {
    CouplingKind coupling = CouplingKind::Mixed;
    ModulationKind modulation = ModulationKind::Mixed;
    double h_slope_db_per_dec = 0.0;    // slope of 20log10|H| vs log10 f
    double spur_slope_db_per_dec = 0.0; // slope of spur dB vs log10 f
    std::string describe() const;
};

/// Least-squares slope of `db_values` against log10(freqs) [dB/decade].
double db_slope_per_decade(const std::vector<double>& freqs,
                           const std::vector<double>& db_values);

/// Classifies from the transfer magnitudes and the spur amplitudes (both in
/// dB) over the same frequency grid.
MechanismReport classify_mechanism(const std::vector<double>& freqs,
                                   const std::vector<double>& h_db,
                                   const std::vector<double>& spur_db);

std::string to_string(CouplingKind k);
std::string to_string(ModulationKind m);

} // namespace snim::core
