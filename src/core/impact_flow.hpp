// The paper's contribution: the substrate-noise impact simulation flow of
// Figure 2.  Layout + technology are run through the substrate extractor,
// the interconnect extractor and the circuit netlist; a package model is
// added; the stitched result is the complete impact model on which the
// impact simulator (sim/ + rf/) predicts waveforms at every node.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "interconnect/extractor.hpp"
#include "obs/provenance.hpp"
#include "layout/layout.hpp"
#include "package/package.hpp"
#include "substrate/extractor.hpp"
#include "substrate/ports.hpp"
#include "tech/technology.hpp"

namespace snim::core {

struct FlowOptions {
    substrate::ExtractOptions substrate;
    interconnect::ExtractOptions interconnect;
    /// Lateral grid of substrate surface-potential patches used as the
    /// coupling targets of wire capacitances (per axis).
    int surface_patches = 3;
    /// Automatically derive resistive tap ports from layout subtap shapes.
    bool auto_tap_ports = true;
    /// Turn on the obs registry for this flow (equivalent to SNIM_OBS=1):
    /// per-stage phases (flow/substrate_extract, flow/interconnect_extract,
    /// flow/stitch) and extraction counters are recorded and can be read
    /// back via obs::phase_stats / obs::report_json.
    bool observe = false;
    /// When non-empty, Newton-failure diagnosis bundles (snim_diag_*.json)
    /// from every solve on the resulting impact model are written here:
    /// forwarded to sim::set_default_diag_dir(), which op/transient consult
    /// when their own TranOptions/OpOptions::diag_dir is empty.
    std::string diag_dir;
    /// Default worker-thread count for every parallel sweep run on the
    /// resulting impact model (AC sweeps, bench corner fan-out); forwarded
    /// to util::set_default_thread_count().  0 keeps the current default
    /// (the SNIM_THREADS environment override, else 1).  Sweep results are
    /// bit-identical for every thread count.
    int threads = 0;
    /// When non-empty, every transient run on the resulting impact model
    /// snapshots its state here (crash-consistent, double-buffered);
    /// forwarded to sim::set_default_checkpoint().  Like diag_dir/threads,
    /// checkpointing is operational and excluded from the config digest:
    /// a checkpointed run is bit-identical to an uncheckpointed one.
    std::string checkpoint_dir;
    /// Resume from the snapshots in checkpoint_dir: transients whose
    /// checkpoint file carries a matching config digest continue (or replay
    /// instantly when complete); mismatched digests refuse with an error.
    bool resume_from_checkpoint = false;
    /// Snapshot cadence: wall-clock seconds and/or accepted-step count
    /// (either 0 disables that trigger; both 0 with a checkpoint_dir set
    /// falls back to the sim default of one snapshot every 5 s).
    double checkpoint_every_s = 0.0;
    long checkpoint_every_steps = 0;
};

/// Validates every FlowOptions field, raising an error that names the
/// offending field (surface_patches >= 1, mesh pitches positive, ...).
/// build_impact_model() calls this before any extraction work starts.
void validate_flow_options(const FlowOptions& opt);

/// Feeds every FlowOptions field — including the nested substrate mesh and
/// interconnect extraction options — into a provenance config digest under
/// "flow.*" names.  The interconnect substrate_node callback is hashed as a
/// presence bit (callables have no stable value identity).  Environment
/// (threads) and output paths (diag_dir) are excluded: they do not change
/// results.
void digest_options(obs::ConfigDigest& d, const FlowOptions& opt);

struct FlowInputs {
    const layout::Layout* layout = nullptr;
    const tech::Technology* tech = nullptr;
    /// Device-level schematic; its node names must match the pin node
    /// names for stitching.
    circuit::Netlist schematic;
    /// Where schematic nodes attach to the drawn wiring.
    std::vector<interconnect::WirePin> pins;
    package::PackageModel package;
    /// Extra substrate ports: noise injection contacts, device back-gate
    /// probes, well interfaces named after schematic nodes.
    std::vector<substrate::PortSpec> substrate_ports;
};

struct ImpactModel {
    /// The complete stitched system model.
    circuit::Netlist netlist;
    substrate::SubstrateModel substrate;
    std::vector<interconnect::NetStats> wire_stats;
    double substrate_seconds = 0.0;
    double interconnect_seconds = 0.0;
    size_t mesh_nodes = 0;

    const interconnect::NetStats* wire_stats_for(const std::string& net) const;
};

/// Runs extraction and stitching; consumes `inputs.schematic`.
ImpactModel build_impact_model(FlowInputs inputs, const FlowOptions& opt = {});

} // namespace snim::core
