#include "core/contribution.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::core {

const ContributionSeries& ContributionReport::dominant() const {
    SNIM_ASSERT(!entries.empty(), "empty contribution report");
    size_t best = 0;
    double best_avg = -1e300;
    for (size_t i = 0; i < entries.size(); ++i) {
        double avg = 0.0;
        for (double v : entries[i].spur_dbc) avg += v;
        avg /= static_cast<double>(entries[i].spur_dbc.size());
        if (avg > best_avg) {
            best_avg = avg;
            best = i;
        }
    }
    return entries[best];
}

double ContributionReport::dominance_margin_db() const {
    SNIM_ASSERT(entries.size() >= 2, "need at least two entries for a margin");
    std::vector<double> avgs;
    for (const auto& e : entries) {
        double avg = 0.0;
        for (double v : e.spur_dbc) avg += v;
        avgs.push_back(avg / static_cast<double>(e.spur_dbc.size()));
    }
    std::sort(avgs.rbegin(), avgs.rend());
    return avgs[0] - avgs[1];
}

ContributionReport contribution_sweep(ImpactAnalyzer& analyzer,
                                      const std::vector<double>& freqs) {
    SNIM_ASSERT(!freqs.empty(), "empty frequency sweep");
    SNIM_ASSERT(analyzer.paths_calibrated(),
                "contribution sweep needs calibrate_paths()");
    ContributionReport out;
    out.fnoise = freqs;
    out.entries.resize(analyzer.entries().size());
    for (size_t i = 0; i < analyzer.entries().size(); ++i) {
        out.entries[i].label = analyzer.entries()[i].label;
        out.entries[i].fnoise = freqs;
    }

    for (double f : freqs) {
        const auto pred = analyzer.predict(f);
        out.total_dbm.push_back(pred.total_dbm());
        const auto h = analyzer.entry_transfers(f);
        for (size_t i = 0; i < pred.parts.size(); ++i) {
            out.entries[i].spur_dbc.push_back(pred.parts[i].spur_dbc(pred.carrier_amp));
            out.entries[i].h_db.push_back(
                units::db20(std::max(std::abs(h[i]), 1e-30)));
        }
    }

    if (freqs.size() >= 2) {
        for (auto& e : out.entries)
            e.mechanism = classify_mechanism(freqs, e.h_db, e.spur_dbc);
    }
    return out;
}

} // namespace snim::core
