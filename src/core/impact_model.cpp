#include "core/impact_model.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "sim/op.hpp"
#include "sim/transfer.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace snim::core {

double ImpactPrediction::Part::spur_dbc(double carrier) const {
    const double amp = std::max(fm_spur_amp, am_spur_amp);
    return units::db20(std::max(amp, 1e-30) / carrier);
}

double ImpactPrediction::left_dbc() const {
    return units::db20(std::max(left_amp, 1e-30) / carrier_amp);
}

double ImpactPrediction::right_dbc() const {
    return units::db20(std::max(right_amp, 1e-30) / carrier_amp);
}

double ImpactPrediction::total_dbm(double rload) const {
    const double p = (left_amp * left_amp + right_amp * right_amp) / (2.0 * rload);
    return 10.0 * std::log10(std::max(p, 1e-300) / 1e-3);
}

ImpactAnalyzer::ImpactAnalyzer(ImpactModel& model, std::string noise_source,
                               std::vector<NoiseEntry> entries, AnalyzerOptions opt)
    : model_(model),
      source_(std::move(noise_source)),
      entries_(std::move(entries)),
      opt_(std::move(opt)) {
    SNIM_ASSERT(!entries_.empty(), "impact analysis needs at least one entry");
    SNIM_ASSERT(model_.netlist.find_as<circuit::VSource>(source_) != nullptr,
                "noise source '%s' must be a V source", source_.c_str());
}

const rf::OscCapture& ImpactAnalyzer::baseline() const {
    SNIM_ASSERT(calibrated_, "call calibrate() first");
    return baseline_;
}

void ImpactAnalyzer::set_noise_dc(double value) {
    model_.netlist.find_as<circuit::VSource>(source_)->set_waveform(
        circuit::Waveform::dc(value));
}

void ImpactAnalyzer::set_noise_sin(double amp, double freq) {
    model_.netlist.find_as<circuit::VSource>(source_)->set_waveform(
        circuit::Waveform::sin(0.0, amp, freq));
}

std::vector<circuit::Device*> ImpactAnalyzer::coupling_devices(const NoiseEntry& e) {
    std::vector<circuit::Device*> out;
    std::vector<circuit::NodeId> claim;
    for (const auto& n : e.coupling_nodes)
        claim.push_back(model_.netlist.existing_node(n));
    for (const auto& d : model_.netlist.devices()) {
        bool match = false;
        for (const auto& prefix : e.coupling_prefixes) {
            if (starts_with_nocase(d->name(), prefix)) {
                match = true;
                break;
            }
        }
        if (!match && !claim.empty() && starts_with_nocase(d->name(), "sub:")) {
            for (const auto id : d->nodes()) {
                if (std::find(claim.begin(), claim.end(), id) != claim.end()) {
                    match = true;
                    break;
                }
            }
        }
        if (match) out.push_back(d.get());
    }
    return out;
}

rf::OscOptions ImpactAnalyzer::osc_tagged(const std::string& suffix) const {
    rf::OscOptions osc = opt_.osc;
    // Every capture in a calibration sequence shares one checkpoint dir, and
    // several of them run with IDENTICAL transient options (the +dv and -dv
    // sensitivity pair, for one), so the config digest alone cannot tell
    // their snapshots apart -- the file name must.
    const std::string base =
        osc.checkpoint.tag.empty() ? std::string("osc") : osc.checkpoint.tag;
    osc.checkpoint.tag = base + "." + suffix;
    return osc;
}

std::pair<double, double> ImpactAnalyzer::dc_path_sensitivity(const std::string& tag) {
    set_noise_dc(opt_.dv_dc);
    const auto plus = rf::capture_oscillator(model_.netlist, osc_tagged(tag + ".p"));
    set_noise_dc(-opt_.dv_dc);
    const auto minus = rf::capture_oscillator(model_.netlist, osc_tagged(tag + ".m"));
    set_noise_dc(0.0);
    const double k = (plus.fc - minus.fc) / (2.0 * opt_.dv_dc);
    const double g =
        (plus.amplitude - minus.amplitude) / (2.0 * opt_.dv_dc * baseline_.amplitude);
    return {k, g};
}

void ImpactAnalyzer::calibrate() {
    set_noise_dc(0.0);
    log_info("impact: baseline oscillator run");
    baseline_ = rf::capture_oscillator(model_.netlist, osc_tagged("cal0"));
    log_info("impact: fc = %.6g Hz, amplitude = %.4g V", baseline_.fc,
             baseline_.amplitude);

    auto [k, g] = dc_path_sensitivity("cal");
    k_src_ = k;
    g_src_ = g;
    log_info("impact: K_src = %.5g Hz/V, G_src = %.4g 1/V", k_src_, g_src_);

    sim::OpOptions oo;
    oo.gmin = opt_.osc.gmin;
    xop_ = sim::operating_point(model_.netlist, oo);
    calibrated_ = true;
}

rf::OscCapture ImpactAnalyzer::capture_noisy(double fnoise, double min_periods) {
    rf::OscOptions osc = osc_tagged(format("sim_%g", fnoise));
    osc.capture = std::max(osc.capture, min_periods / fnoise);
    return rf::capture_oscillator(model_.netlist, osc);
}

void ImpactAnalyzer::calibrate_paths() {
    SNIM_ASSERT(calibrated_, "call calibrate() first");
    paths_.clear();

    // Leave-one-out DC sensitivities.  A path with short_prefixes is
    // ablated by shorting those wire resistances ONLY (the ground path:
    // removing its taps would unground the substrate); otherwise its
    // coupling devices are disabled.
    for (size_t ei = 0; ei < entries_.size(); ++ei) {
        const auto& e = entries_[ei];
        std::vector<circuit::Device*> devices;
        if (e.short_prefixes.empty()) devices = coupling_devices(e);
        std::vector<std::pair<circuit::Resistor*, double>> shorted;
        for (const auto& prefix : e.short_prefixes) {
            for (const auto& d : model_.netlist.devices()) {
                if (!starts_with_nocase(d->name(), prefix)) continue;
                if (auto* r = dynamic_cast<circuit::Resistor*>(d.get())) {
                    shorted.emplace_back(r, r->resistance());
                    r->set_resistance(1e-4);
                }
            }
        }
        log_info("impact: path '%s' -> %zu coupling devices, %zu shorted resistors",
                 e.label.c_str(), devices.size(), shorted.size());
        for (auto* d : devices) d->set_disabled(true);
        // The ablated netlist intentionally spans the full conductance range
        // (1e-4 ohm shorted taps against gmin anchors), so the global
        // condition estimate collapses by construction.  Suspend the rcond
        // certificate floor for the leave-one-out runs; the backward-error
        // gate still certifies every solve.
        const double rcond_floor = opt_.osc.certify.rcond_min;
        opt_.osc.certify.rcond_min = 0.0;
        const auto [k_wo, g_wo] = dc_path_sensitivity(format("wo%zu", ei));
        opt_.osc.certify.rcond_min = rcond_floor;
        for (auto* d : devices) d->set_disabled(false);
        for (auto& [r, value] : shorted) r->set_resistance(value);

        PathSensitivity p;
        p.label = e.label;
        p.k_res = k_src_ - k_wo;
        p.g_res = g_src_ - g_wo;
        paths_.push_back(p);
        log_info("impact: K(%s) = %.5g Hz/V (leave-one-out)", e.label.c_str(), p.k_res);
    }

    // Capacitive paths (no DC footprint): measure the oscillator lever
    // d f / d(entry variable) by perturbing the path's lever source at DC.
    const double kref = std::fabs(k_src_);
    std::unordered_map<std::string, double> lever_cache;
    for (size_t i = 0; i < paths_.size(); ++i) {
        if (std::fabs(paths_[i].k_res) >= opt_.resistive_threshold * kref) continue;
        paths_[i].capacitive = true;
        const std::string& src = entries_[i].lever_source;
        if (src.empty()) continue;
        auto it = lever_cache.find(src);
        if (it == lever_cache.end()) {
            auto* v = model_.netlist.find_as<circuit::VSource>(src);
            SNIM_ASSERT(v != nullptr, "lever source '%s' is not a V source", src.c_str());
            const double v0 = v->waveform().dc_value();
            v->set_waveform(circuit::Waveform::dc(v0 + opt_.lever_dv));
            const auto plus = rf::capture_oscillator(
                model_.netlist, osc_tagged(format("lever%zu.p", i)));
            v->set_waveform(circuit::Waveform::dc(v0 - opt_.lever_dv));
            const auto minus = rf::capture_oscillator(
                model_.netlist, osc_tagged(format("lever%zu.m", i)));
            v->set_waveform(circuit::Waveform::dc(v0));
            const double lever = (plus.fc - minus.fc) / (2.0 * opt_.lever_dv);
            it = lever_cache.emplace(src, lever).first;
            log_info("impact: lever(%s) = %.5g Hz/V", src.c_str(), lever);
        }
        paths_[i].lever = it->second;
    }
}

std::complex<double> ImpactAnalyzer::entry_transfer(
    size_t entry, double fnoise, const std::vector<const circuit::Device*>* exclude) {
    const auto& e = entries_[entry];
    SNIM_ASSERT(!e.observe_nodes.empty(), "entry '%s' has no observation node",
                e.label.c_str());
    const auto tr = sim::transfer_multi(model_.netlist, source_, e.observe_nodes,
                                        {fnoise}, xop_, exclude);
    std::complex<double> h = tr[0].h[0];
    if (e.observe_nodes.size() > 1) h -= tr[1].h[0];
    return h;
}

std::vector<std::complex<double>> ImpactAnalyzer::entry_transfers(double fnoise) {
    SNIM_ASSERT(calibrated_, "call calibrate() first");
    std::vector<std::complex<double>> out;
    out.reserve(entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i)
        out.push_back(entry_transfer(i, fnoise, nullptr));
    return out;
}

std::complex<double> ImpactAnalyzer::isolated_entry_transfer(size_t entry,
                                                             double fnoise) {
    // All OTHER paths' coupling devices removed so only this path injects.
    std::vector<const circuit::Device*> exclude;
    for (size_t o = 0; o < entries_.size(); ++o) {
        if (o == entry) continue;
        for (auto* d : coupling_devices(entries_[o])) {
            if (std::find(exclude.begin(), exclude.end(), d) == exclude.end())
                exclude.push_back(d);
        }
    }
    return entry_transfer(entry, fnoise, exclude.empty() ? nullptr : &exclude);
}

ImpactPrediction ImpactAnalyzer::predict(double fnoise) {
    SNIM_ASSERT(calibrated_, "call calibrate() first");
    SNIM_ASSERT(fnoise > 0, "noise frequency must be positive");

    ImpactPrediction out;
    out.fnoise = fnoise;
    out.fc = baseline_.fc;
    out.carrier_amp = baseline_.amplitude;
    const double a = opt_.noise_amplitude;

    // Resistive total: frequency-flat deviation -> beta ~ 1/fn.  The
    // capacitive paths sit tens of dB below the resistive mechanism in the
    // studied band (the paper's central finding); they are reported as
    // parts but deliberately not folded into the total, whose accuracy
    // rests on the well-conditioned DC path sensitivity.
    const std::complex<double> beta(k_src_ * a / fnoise, 0.0);
    const std::complex<double> m(g_src_ * a, 0.0);

    out.freq_dev = std::abs(beta) * fnoise;
    out.am_dev = std::abs(m) * out.carrier_amp;
    out.right_amp = 0.5 * out.carrier_amp * std::abs(m + beta);
    out.left_amp = 0.5 * out.carrier_amp * std::abs(std::conj(m) - std::conj(beta));

    for (size_t i = 0; i < paths_.size(); ++i) {
        const auto& p = paths_[i];
        ImpactPrediction::Part part;
        part.label = p.label;
        part.capacitive = p.capacitive;
        double beta_p;
        if (p.capacitive) {
            // Only this path's coupling active: the isolated transfer is
            // the direct capacitive pickup, free of ground-bounce ride.
            const auto h = isolated_entry_transfer(i, fnoise);
            beta_p = std::fabs(p.lever) * std::abs(h) * a / fnoise;
        } else {
            beta_p = std::fabs(p.k_res) * a / fnoise;
        }
        part.fm_spur_amp = 0.5 * out.carrier_amp * beta_p;
        part.am_spur_amp = 0.5 * out.carrier_amp * std::fabs(p.g_res) * a;
        out.parts.push_back(part);
    }
    return out;
}

rf::SpurResult ImpactAnalyzer::simulate(double fnoise) {
    SNIM_ASSERT(calibrated_, "call calibrate() first");
    SNIM_ASSERT(fnoise > 0, "noise frequency must be positive");
    set_noise_sin(opt_.noise_amplitude, fnoise);
    auto cap = capture_noisy(fnoise, opt_.capture_periods);
    set_noise_dc(0.0);
    return rf::measure_spur(cap, fnoise);
}

rf::SpurResult ImpactAnalyzer::simulate_spectral(double fnoise) {
    SNIM_ASSERT(calibrated_, "call calibrate() first");
    SNIM_ASSERT(fnoise > 0, "noise frequency must be positive");
    set_noise_sin(opt_.noise_amplitude, fnoise);
    auto cap = capture_noisy(fnoise, std::max(8.5, opt_.capture_periods));
    set_noise_dc(0.0);
    return rf::measure_spur_spectral(cap, fnoise);
}

} // namespace snim::core
