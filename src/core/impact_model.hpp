// The impact simulator: two independent estimates of substrate-noise spurs
// on an oscillator victim.
//
//  * simulate(): brute-force time domain -- noise source on, full transient,
//    FM/AM demodulation (the paper's "impact simulator" output; our stand-in
//    for the silicon measurement is the independent spectral readout of the
//    same engine).
//  * predict(): the paper's eqs. (2)/(3): resistive coupling is frequency-
//    flat, so one DC path-sensitivity K_src = d f_osc / d V_noise captures
//    every resistive entry with all circuit "ride" ratios exact, giving
//    FM spurs proportional to 1/fnoise.  Capacitive paths are measured by
//    leave-one-out ablation at a reference frequency and extrapolated flat.
//
// Per-entry contributions (Figure 9) come from leave-one-out ablation: the
// entry's coupling devices are disabled and the drop in K_src (or in the
// demodulated sidebands at the reference frequency) is its contribution.
#pragma once

#include <complex>

#include "core/impact_flow.hpp"
#include "rf/spur.hpp"

namespace snim::core {

/// A noise entry: one physical coupling path into the victim.
struct NoiseEntry {
    std::string label; // "ground interconnect", "NMOS back-gate", ...
    /// Observation nodes: the entry variable is V(observe_nodes[0]) minus
    /// V(observe_nodes[1]) when a second node is given (relative coordinate
    /// that cancels common-mode ground bounce), else the absolute voltage.
    std::vector<std::string> observe_nodes;
    /// For capacitive paths: a V source whose DC perturbation measures the
    /// oscillator's lever for this entry variable (e.g. the board-side
    /// tuning source measures d f / d(vtune - vgnd)).  Empty -> the path is
    /// quantified by its DC leave-one-out sensitivity only.
    std::string lever_source;
    /// Coupling-element identification for ablation: substrate macromodel
    /// devices ("sub:*") touching these nodes belong to this path...
    std::vector<std::string> coupling_nodes;
    /// ...as do devices whose name starts with one of these prefixes
    /// (extracted wire capacitances are named "c:<net>#k").
    std::vector<std::string> coupling_prefixes;
    /// Resistors with these name prefixes are SHORTED (not removed) for
    /// this path's ablation.  This is how the ground-interconnect path is
    /// isolated: the paper's mechanism is the voltage drop over the wire's
    /// parasitic resistance, so its ablation is the ideal (0 ohm) wire --
    /// removing the taps instead would unground the substrate and distort
    /// every other path.
    std::vector<std::string> short_prefixes;
};

/// One coupling path's calibrated strength.
struct PathSensitivity {
    std::string label;
    /// DC path sensitivity drop: K_res = K_src(full) - K_src(without path)
    /// [Hz/V].  Meaningful for resistive paths.
    double k_res = 0.0;
    /// AM counterpart [1/V].
    double g_res = 0.0;
    /// Oscillator lever d f / d(entry variable) [Hz/V] measured through the
    /// path's lever source (capacitive paths).
    double lever = 0.0;
    /// True when the path has no DC footprint and is quantified by
    /// lever * |H_rel(f)| instead of K_res.
    bool capacitive = false;
};

struct ImpactPrediction {
    double fnoise = 0.0;
    double fc = 0.0;
    double carrier_amp = 0.0;
    double freq_dev = 0.0; // predicted peak frequency deviation [Hz]
    double am_dev = 0.0;   // predicted peak envelope deviation [V]

    struct Part {
        std::string label;
        double fm_spur_amp = 0.0; // V peak at the sidebands, this path alone
        double am_spur_amp = 0.0;
        bool capacitive = false;
        double spur_dbc(double carrier) const;
    };
    std::vector<Part> parts;

    double left_amp = 0.0;  // combined sideband at fc - fnoise [V peak]
    double right_amp = 0.0; // combined sideband at fc + fnoise [V peak]

    double left_dbc() const;
    double right_dbc() const;
    double total_dbm(double rload = 50.0) const;
};

struct AnalyzerOptions {
    rf::OscOptions osc;
    /// DC perturbation of the noise source for the path sensitivity [V].
    double dv_dc = 0.356;
    /// Amplitude of the noise source used by simulate(); predict() scales
    /// to the same drive.
    double noise_amplitude = 0.356; // -5 dBm available power from 50 ohm
    /// Capture length for simulate(), in noise periods.
    double capture_periods = 3.0;
    /// A path whose |K_res| is below this fraction of the total K_src is
    /// considered capacitive and quantified by lever * |H_rel(f)|.
    double resistive_threshold = 0.03;
    /// DC perturbation applied to lever sources [V].
    double lever_dv = 0.02;
};

class ImpactAnalyzer {
public:
    /// `noise_source` names the V source driving the injection contact; its
    /// waveform is managed by this class.
    ImpactAnalyzer(ImpactModel& model, std::string noise_source,
                   std::vector<NoiseEntry> entries, AnalyzerOptions opt);

    /// Baseline oscillator + total DC path sensitivity.  Required before
    /// predict()/simulate().
    void calibrate();
    bool calibrated() const { return calibrated_; }

    /// Per-path leave-one-out calibration (needed for prediction Parts and
    /// the Figure-9 style contribution analysis): two DC oscillator runs
    /// per path plus two per distinct lever source.
    void calibrate_paths();
    bool paths_calibrated() const { return !paths_.empty(); }

    /// Fast methodology prediction (paper eqs. 2-3) at `fnoise`.
    ImpactPrediction predict(double fnoise);

    /// Reference "measurement": transient with the noise source active,
    /// demodulated at fnoise.
    rf::SpurResult simulate(double fnoise);
    /// Same transient read out spectrally (independent estimator; used as
    /// the stand-in for the paper's spectrum-analyzer measurement).
    rf::SpurResult simulate_spectral(double fnoise);

    /// AC transfer from the noise source to each entry variable (relative
    /// node combination) at `fnoise`, full coupled model.
    std::vector<std::complex<double>> entry_transfers(double fnoise);
    /// Same transfer with every OTHER path's coupling devices removed:
    /// the direct pickup of one path in isolation.
    std::complex<double> isolated_entry_transfer(size_t entry, double fnoise);

    const rf::OscCapture& baseline() const;
    double k_src() const { return k_src_; }
    double g_src() const { return g_src_; }
    const std::vector<PathSensitivity>& paths() const { return paths_; }
    const std::vector<NoiseEntry>& entries() const { return entries_; }
    const AnalyzerOptions& options() const { return opt_; }

private:
    void set_noise_dc(double value);
    void set_noise_sin(double amp, double freq);
    std::vector<circuit::Device*> coupling_devices(const NoiseEntry& e);
    std::complex<double> entry_transfer(size_t entry, double fnoise,
                                        const std::vector<const circuit::Device*>* exclude);
    /// Copy of opt_.osc with `suffix` appended to the checkpoint tag, so
    /// every capture in a calibration sequence snapshots to its own file.
    rf::OscOptions osc_tagged(const std::string& suffix) const;
    /// K_src/G_src measurement with the current enable/disable state.  `tag`
    /// distinguishes the checkpoint files of the +dv/-dv pair from other
    /// sensitivity pairs run in the same process.
    std::pair<double, double> dc_path_sensitivity(const std::string& tag);
    rf::OscCapture capture_noisy(double fnoise, double min_periods);

    ImpactModel& model_;
    std::string source_;
    std::vector<NoiseEntry> entries_;
    AnalyzerOptions opt_;
    bool calibrated_ = false;
    rf::OscCapture baseline_;
    double k_src_ = 0.0;
    double g_src_ = 0.0;
    std::vector<PathSensitivity> paths_;
    std::vector<double> xop_;
};

} // namespace snim::core
