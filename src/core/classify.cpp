#include "core/classify.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace snim::core {

double db_slope_per_decade(const std::vector<double>& freqs,
                           const std::vector<double>& db_values) {
    SNIM_ASSERT(freqs.size() == db_values.size() && freqs.size() >= 2,
                "slope needs >= 2 points");
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = static_cast<double>(freqs.size());
    for (size_t i = 0; i < freqs.size(); ++i) {
        SNIM_ASSERT(freqs[i] > 0, "frequencies must be positive");
        const double x = std::log10(freqs[i]);
        sx += x;
        sy += db_values[i];
        sxx += x * x;
        sxy += x * db_values[i];
    }
    const double denom = n * sxx - sx * sx;
    SNIM_ASSERT(std::fabs(denom) > 1e-12, "degenerate frequency grid");
    return (n * sxy - sx * sy) / denom;
}

MechanismReport classify_mechanism(const std::vector<double>& freqs,
                                   const std::vector<double>& h_db,
                                   const std::vector<double>& spur_db) {
    MechanismReport out;
    out.h_slope_db_per_dec = db_slope_per_decade(freqs, h_db);
    out.spur_slope_db_per_dec = db_slope_per_decade(freqs, spur_db);

    // Coupling from the transfer slope.
    if (out.h_slope_db_per_dec < 6.0) {
        out.coupling = CouplingKind::Resistive;
    } else if (out.h_slope_db_per_dec > 14.0) {
        out.coupling = CouplingKind::Capacitive;
    } else {
        out.coupling = CouplingKind::Mixed;
    }

    // Modulation from the residual slope: FM contributes -20 dB/dec on top
    // of the coupling slope, AM contributes 0.
    const double residual = out.spur_slope_db_per_dec - out.h_slope_db_per_dec;
    if (residual < -14.0) {
        out.modulation = ModulationKind::FM;
    } else if (residual > -6.0) {
        out.modulation = ModulationKind::AM;
    } else {
        out.modulation = ModulationKind::Mixed;
    }
    return out;
}

std::string to_string(CouplingKind k) {
    switch (k) {
        case CouplingKind::Resistive: return "resistive";
        case CouplingKind::Capacitive: return "capacitive";
        case CouplingKind::Mixed: return "mixed";
    }
    return "?";
}

std::string to_string(ModulationKind m) {
    switch (m) {
        case ModulationKind::FM: return "FM";
        case ModulationKind::AM: return "AM";
        case ModulationKind::Mixed: return "mixed";
    }
    return "?";
}

std::string MechanismReport::describe() const {
    return format("%s coupling followed by %s (|H| slope %.1f dB/dec, spur slope "
                  "%.1f dB/dec)",
                  to_string(coupling).c_str(), to_string(modulation).c_str(),
                  h_slope_db_per_dec, spur_slope_db_per_dec);
}

} // namespace snim::core
