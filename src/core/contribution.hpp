// Per-device contribution analysis (the paper's Figure 9): sweeps the noise
// frequency and reports each entry's FM/AM spur separately so the designer
// sees which device must be shielded or resized.
#pragma once

#include "core/classify.hpp"
#include "core/impact_model.hpp"

namespace snim::core {

struct ContributionSeries {
    std::string label;
    std::vector<double> fnoise;
    std::vector<double> spur_dbc;    // dominant-path spur, dBc vs carrier
    std::vector<double> h_db;        // 20log10|H| at each frequency
    MechanismReport mechanism;       // classified over the sweep
};

struct ContributionReport {
    std::vector<double> fnoise;
    std::vector<ContributionSeries> entries;
    std::vector<double> total_dbm;   // combined spur power per frequency
    /// Entry with the highest average spur level.
    const ContributionSeries& dominant() const;
    /// dB gap between the strongest and the runner-up entry (averaged).
    double dominance_margin_db() const;
};

/// Runs predict() over `freqs` and splits the result per entry.  The
/// analyzer must be calibrated.
ContributionReport contribution_sweep(ImpactAnalyzer& analyzer,
                                      const std::vector<double>& freqs);

} // namespace snim::core
