#include "core/report.hpp"

#include <set>

#include "circuit/mosfet.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "util/strings.hpp"

namespace snim::core {

ModelReport report_model(const ImpactModel& model) {
    ModelReport r;
    const auto& nl = model.netlist;
    r.devices = nl.device_count();
    r.nodes = nl.node_count();
    r.substrate_ports = model.substrate.port_names.size();
    r.mesh_nodes = model.mesh_nodes;

    std::set<circuit::NodeId> touched;
    for (const auto& d : nl.devices()) {
        for (auto id : d->nodes())
            if (id >= 0) touched.insert(id);
        if (dynamic_cast<const circuit::Resistor*>(d.get())) {
            ++r.resistors;
        } else if (dynamic_cast<const circuit::Capacitor*>(d.get())) {
            ++r.capacitors;
        } else if (dynamic_cast<const circuit::Inductor*>(d.get())) {
            ++r.inductors;
        } else if (dynamic_cast<const circuit::Mosfet*>(d.get())) {
            ++r.mosfets;
        } else if (dynamic_cast<const circuit::VSource*>(d.get()) ||
                   dynamic_cast<const circuit::ISource*>(d.get())) {
            ++r.sources;
        } else {
            ++r.others;
        }
    }
    for (size_t i = 0; i < nl.node_count(); ++i) {
        if (!touched.count(static_cast<circuit::NodeId>(i)))
            r.floating_nodes.push_back(nl.node_name(static_cast<circuit::NodeId>(i)));
    }
    for (const auto& s : model.wire_stats) {
        r.total_wire_squares += s.resistance_squares;
        r.total_wire_cap += s.capacitance_total;
    }
    return r;
}

std::string ModelReport::to_string() const {
    std::string out;
    out += format("impact model: %zu devices on %zu nodes\n", devices, nodes);
    out += format("  R=%zu C=%zu L=%zu MOS=%zu sources=%zu other=%zu\n", resistors,
                  capacitors, inductors, mosfets, sources, others);
    out += format("  substrate: %zu mesh nodes reduced to %zu ports\n", mesh_nodes,
                  substrate_ports);
    out += format("  wiring: %.0f squares, %s to substrate\n", total_wire_squares,
                  eng_format(total_wire_cap).c_str());
    if (floating_nodes.empty()) {
        out += "  connectivity: no floating nodes\n";
    } else {
        out += format("  WARNING: %zu floating node(s):", floating_nodes.size());
        for (const auto& n : floating_nodes) out += " " + n;
        out += "\n";
    }
    return out;
}

} // namespace snim::core
