// Sign-off style report of an impact model: device histogram, per-net wire
// statistics, substrate port inventory and basic sanity checks.  The paper
// frames the methodology as enabling "mixed-signal chip verification and
// sign-off of substrate noise coupling issues" -- this is the artifact such
// a flow hands to the designer.
#pragma once

#include <string>

#include "core/impact_flow.hpp"

namespace snim::core {

struct ModelReport {
    size_t devices = 0;
    size_t nodes = 0;
    size_t resistors = 0, capacitors = 0, inductors = 0, mosfets = 0, sources = 0,
           others = 0;
    size_t substrate_ports = 0;
    size_t mesh_nodes = 0;
    double total_wire_squares = 0.0;
    double total_wire_cap = 0.0; // F
    /// Node names that no device touches after stitching (suspicious).
    std::vector<std::string> floating_nodes;

    std::string to_string() const;
};

ModelReport report_model(const ImpactModel& model);

} // namespace snim::core
