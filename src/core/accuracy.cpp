#include "core/accuracy.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace snim::core {

namespace {

bool file_exists(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f) std::fclose(f);
    return f != nullptr;
}

} // namespace

std::string find_reference_file(const std::string& filename) {
    std::vector<std::string> candidates;
    if (const char* dir = std::getenv("SNIM_DATA_DIR"); dir && *dir)
        candidates.push_back(std::string(dir) + "/" + filename);
    candidates.push_back(filename);
    std::string prefix;
    for (int up = 0; up < 3; ++up) {
        prefix += "../";
        candidates.push_back(prefix + filename);
    }
    for (const auto& c : candidates)
        if (file_exists(c)) return c;
    raise("reference file '%s' not found (searched SNIM_DATA_DIR, . and ../ x3)",
          filename.c_str());
}

RefSeries load_reference_series(const std::string& filename, const std::string& key_col,
                                const std::string& value_col,
                                const std::string& filter_col,
                                const std::string& filter_value) {
    const CsvTable csv = read_csv(find_reference_file(filename));
    const size_t kc = csv.column(key_col);
    const size_t vc = csv.column(value_col);
    const size_t fc = filter_col.empty() ? 0 : csv.column(filter_col);
    RefSeries out;
    for (size_t r = 0; r < csv.row_count(); ++r) {
        if (!filter_col.empty() && csv.cell(r, fc) != filter_value) continue;
        if (csv.empty_cell(r, vc)) continue;
        out.keys.push_back(csv.number(r, kc));
        out.values.push_back(csv.number(r, vc));
    }
    if (out.keys.empty())
        raise("reference '%s' has no rows for %s=%s", filename.c_str(),
              filter_col.c_str(), filter_value.c_str());
    return out;
}

obs::AccuracyMetric reference_delta(std::string metric_name, const RefSeries& ref,
                                    std::string reference_label, double tolerance_db,
                                    const std::vector<double>& keys,
                                    const std::vector<double>& values,
                                    double key_rel_tol) {
    SNIM_ASSERT(keys.size() == values.size(), "key/value size mismatch in '%s'",
                metric_name.c_str());
    obs::AccuracyMetric m;
    m.name = std::move(metric_name);
    m.reference = std::move(reference_label);
    m.tolerance_db = tolerance_db;
    for (size_t i = 0; i < keys.size(); ++i) {
        for (size_t j = 0; j < ref.keys.size(); ++j) {
            const double scale = std::max({std::fabs(keys[i]), std::fabs(ref.keys[j]), 1.0});
            if (std::fabs(keys[i] - ref.keys[j]) > key_rel_tol * scale) continue;
            m.delta_db = std::max(m.delta_db, std::fabs(values[i] - ref.values[j]));
            ++m.points;
            break;
        }
    }
    if (m.points == 0)
        raise("accuracy metric '%s': no computed point matched a reference key in %s",
              m.name.c_str(), m.reference.c_str());
    return m;
}

obs::AccuracyMetric paired_delta(std::string metric_name, std::string reference_label,
                                 double tolerance_db, const std::vector<double>& ref,
                                 const std::vector<double>& got) {
    SNIM_ASSERT(ref.size() == got.size(), "paired series size mismatch in '%s'",
                metric_name.c_str());
    obs::AccuracyMetric m;
    m.name = std::move(metric_name);
    m.reference = std::move(reference_label);
    m.tolerance_db = tolerance_db;
    for (size_t i = 0; i < ref.size(); ++i)
        m.delta_db = std::max(m.delta_db, std::fabs(got[i] - ref[i]));
    m.points = ref.size();
    if (m.points == 0)
        raise("accuracy metric '%s': empty comparison", m.name.c_str());
    return m;
}

} // namespace snim::core
