// Dense matrix with LU factorisation (partial pivoting).
//
// Used for small systems (device companion models, macromodel ports, tests)
// and as the reference solver the sparse LU is validated against.
#pragma once

#include <algorithm>
#include <complex>
#include <vector>

#include "util/error.hpp"

namespace snim {

template <class T>
class DenseMatrix {
public:
    DenseMatrix() = default;
    DenseMatrix(size_t rows, size_t cols, T init = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, init) {}

    static DenseMatrix identity(size_t n) {
        DenseMatrix m(n, n);
        for (size_t i = 0; i < n; ++i) m(i, i) = T{1};
        return m;
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /// Contiguous row-major storage, for bulk operations on the whole matrix.
    T* data() { return data_.data(); }
    const T* data() const { return data_.data(); }

    /// Sets every element to `v` in one pass over the flat storage.
    void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

    T& operator()(size_t r, size_t c) {
        SNIM_ASSERT(r < rows_ && c < cols_, "index (%zu,%zu) out of (%zu,%zu)", r, c,
                    rows_, cols_);
        return data_[r * cols_ + c];
    }
    const T& operator()(size_t r, size_t c) const {
        SNIM_ASSERT(r < rows_ && c < cols_, "index (%zu,%zu) out of (%zu,%zu)", r, c,
                    rows_, cols_);
        return data_[r * cols_ + c];
    }

    DenseMatrix operator*(const DenseMatrix& rhs) const {
        SNIM_ASSERT(cols_ == rhs.rows_, "matmul shape mismatch");
        DenseMatrix out(rows_, rhs.cols_);
        for (size_t i = 0; i < rows_; ++i)
            for (size_t k = 0; k < cols_; ++k) {
                const T a = (*this)(i, k);
                if (a == T{}) continue;
                for (size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
            }
        return out;
    }

    DenseMatrix operator+(const DenseMatrix& rhs) const {
        SNIM_ASSERT(rows_ == rhs.rows_ && cols_ == rhs.cols_, "add shape mismatch");
        DenseMatrix out = *this;
        for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
        return out;
    }

    DenseMatrix operator-(const DenseMatrix& rhs) const {
        SNIM_ASSERT(rows_ == rhs.rows_ && cols_ == rhs.cols_, "sub shape mismatch");
        DenseMatrix out = *this;
        for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
        return out;
    }

    DenseMatrix transposed() const {
        DenseMatrix out(cols_, rows_);
        for (size_t i = 0; i < rows_; ++i)
            for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
        return out;
    }

    std::vector<T> multiply(const std::vector<T>& x) const {
        SNIM_ASSERT(x.size() == cols_, "matvec shape mismatch");
        std::vector<T> y(rows_, T{});
        for (size_t i = 0; i < rows_; ++i)
            for (size_t j = 0; j < cols_; ++j) y[i] += (*this)(i, j) * x[j];
        return y;
    }

private:
    size_t rows_ = 0, cols_ = 0;
    std::vector<T> data_;
};

/// LU factorisation with partial pivoting; throws snim::Error when singular.
template <class T>
class DenseLU {
public:
    explicit DenseLU(DenseMatrix<T> a);

    std::vector<T> solve(std::vector<T> b) const;
    DenseMatrix<T> solve(const DenseMatrix<T>& b) const;
    /// Solves A^T x = b on the same factors (U^T then L^T, permute out).
    std::vector<T> solve_transpose(const std::vector<T>& b) const;
    size_t size() const { return lu_.rows(); }

    /// Smallest |U(k,k)| of the factorization: the dense counterpart of
    /// SparseLU::factor_stats().min_pivot for solver-health telemetry.
    double min_pivot() const;

    /// Reciprocal 1-norm condition estimate, the dense counterpart of
    /// SparseLU::rcond_estimate() (same Hager/Higham estimator, cached per
    /// factorization) so both solve paths report conditioning uniformly.
    double rcond_estimate() const;

    /// ||A||_1 of the matrix this factorization was built from.
    double norm1() const { return a_norm1_; }

private:
    DenseMatrix<T> lu_;
    std::vector<size_t> perm_;
    double a_norm1_ = 0.0;
    mutable double rcond_cache_ = -1.0; // < 0: not yet estimated
};

extern template class DenseLU<double>;
extern template class DenseLU<std::complex<double>>;

/// Convenience: solves a*x = b once.
template <class T>
std::vector<T> dense_solve(const DenseMatrix<T>& a, const std::vector<T>& b) {
    return DenseLU<T>(a).solve(b);
}

} // namespace snim
