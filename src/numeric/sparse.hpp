// Sparse matrix support: triplet assembly and compressed-sparse-column
// storage.  MNA stamps accumulate into Triplets; solvers consume the CSC.
#pragma once

#include <complex>
#include <vector>

#include "numeric/dense.hpp"

namespace snim {

/// Coordinate-format accumulator.  Duplicate (row,col) entries sum, which is
/// exactly the MNA stamping semantics.
template <class T>
class Triplets {
public:
    Triplets() = default;
    explicit Triplets(size_t n) : n_(n) {}

    void resize(size_t n) { n_ = n; }
    size_t size() const { return n_; }
    size_t entry_count() const { return rows_.size(); }

    void add(size_t row, size_t col, T value) {
        SNIM_ASSERT(row < n_ && col < n_, "triplet (%zu,%zu) out of %zu", row, col, n_);
        if (!keep_zeros_ && value == T{}) return;
        rows_.push_back(static_cast<int>(row));
        cols_.push_back(static_cast<int>(col));
        vals_.push_back(value);
    }

    /// Record exact-zero entries instead of dropping them.  Repeated-assembly
    /// consumers (the Stamper's compiled-CSC mode, reusable LU) need the
    /// *structural* pattern of the stamp sequence: a position that happens to
    /// evaluate to zero this pass can be nonzero on the next one.
    void set_keep_zeros(bool keep) { keep_zeros_ = keep; }

    void clear() {
        rows_.clear();
        cols_.clear();
        vals_.clear();
    }

    const std::vector<int>& rows() const { return rows_; }
    const std::vector<int>& cols() const { return cols_; }
    const std::vector<T>& values() const { return vals_; }

    DenseMatrix<T> to_dense() const {
        DenseMatrix<T> m(n_, n_);
        for (size_t k = 0; k < rows_.size(); ++k)
            m(static_cast<size_t>(rows_[k]), static_cast<size_t>(cols_[k])) += vals_[k];
        return m;
    }

private:
    size_t n_ = 0;
    bool keep_zeros_ = false;
    std::vector<int> rows_, cols_;
    std::vector<T> vals_;
};

/// Compressed sparse column matrix (square), duplicates summed.
template <class T>
class SparseCSC {
public:
    SparseCSC() = default;
    explicit SparseCSC(const Triplets<T>& t);

    size_t size() const { return n_; }
    size_t nnz() const { return ri_.size(); }

    /// Column pointer array, length n+1.
    const std::vector<int>& col_ptr() const { return cp_; }
    /// Row indices per entry.
    const std::vector<int>& row_idx() const { return ri_; }
    const std::vector<T>& values() const { return vx_; }
    /// Mutable value array for in-place numeric reassembly on a fixed
    /// pattern (the Stamper's compiled-CSC scatter path).  Callers must not
    /// change the array's length.
    std::vector<T>& values_mut() { return vx_; }

    std::vector<T> multiply(const std::vector<T>& x) const;
    /// Allocation-reusing y = A x for hot loops; `x` and `y` must be
    /// distinct objects.  Bit-identical to multiply().
    void multiply_into(const std::vector<T>& x, std::vector<T>& y) const;
    DenseMatrix<T> to_dense() const;

private:
    size_t n_ = 0;
    std::vector<int> cp_;
    std::vector<int> ri_;
    std::vector<T> vx_;
};

extern template class SparseCSC<double>;
extern template class SparseCSC<std::complex<double>>;

} // namespace snim
