// Left-looking sparse LU with threshold partial pivoting (Gilbert-Peierls,
// the algorithm behind CSparse/KLU).  This is the workhorse solver for MNA
// systems and substrate meshes.
//
// Pivoting: for each column the candidate with the largest magnitude is
// found; the diagonal entry is kept whenever it is within `pivot_tol` of the
// maximum, which preserves sparsity on the diagonally dominant matrices that
// dominate this workload while staying robust for MNA voltage-source rows.
#pragma once

#include <complex>
#include <vector>

#include "numeric/sparse.hpp"

namespace snim {

/// Numerical health of one factorization, for solver-health telemetry and
/// failure diagnosis: a shrinking min |pivot| or a growing fill ratio is
/// the classic early warning of an ill-conditioned MNA system.
struct LuFactorStats {
    double min_pivot = 0.0;   // smallest |pivot| over all columns
    double max_pivot = 0.0;   // largest |pivot|
    double fill_growth = 0.0; // nnz(L+U) / nnz(A)
    size_t pivot_swaps = 0;   // off-diagonal pivots chosen
};

template <class T>
class SparseLU {
public:
    explicit SparseLU(const SparseCSC<T>& a, double pivot_tol = 0.1);
    explicit SparseLU(const Triplets<T>& t, double pivot_tol = 0.1)
        : SparseLU(SparseCSC<T>(t), pivot_tol) {}

    /// Solves A x = b.
    std::vector<T> solve(const std::vector<T>& b) const;
    /// Solves A^T x = b.
    std::vector<T> solve_transpose(const std::vector<T>& b) const;

    size_t size() const { return n_; }
    size_t nnz() const;

    /// Health of this factorization (valid once the constructor returns).
    const LuFactorStats& factor_stats() const { return stats_; }

private:
    struct Entry {
        int row;
        T value;
    };
    using Column = std::vector<Entry>;

    size_t n_ = 0;
    std::vector<Column> l_; // unit-lower; first entry of column k is the diagonal (1)
    std::vector<Column> u_; // upper; diagonal stored last in each column
    std::vector<int> pinv_; // original row -> pivot position
    LuFactorStats stats_;
};

extern template class SparseLU<double>;
extern template class SparseLU<std::complex<double>>;

} // namespace snim
