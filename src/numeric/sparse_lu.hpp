// Left-looking sparse LU with threshold partial pivoting (Gilbert-Peierls,
// the algorithm behind CSparse/KLU).  This is the workhorse solver for MNA
// systems and substrate meshes.
//
// Ordering: columns are pre-permuted by a greedy minimum-degree ordering on
// the symmetrized pattern (applied symmetrically, so the diagonal stays the
// diagonal).  MNA matrices carry a dense port-coupling block from the
// substrate macromodel; factored in natural order that block smears fill
// across the whole matrix, while min-degree pushes it to the trailing
// columns and keeps the rest sparse.  The ordering is a pure function of
// the pattern with lowest-index tie-breaking, so it is deterministic.
//
// Pivoting: for each column the candidate with the largest magnitude is
// found; the diagonal entry is kept whenever it is within `pivot_tol` of the
// maximum, which preserves sparsity on the diagonally dominant matrices that
// dominate this workload while staying robust for MNA voltage-source rows.
//
// Factorizations on a fixed sparsity pattern can be refreshed in place with
// `refactor(values)`: the symbolic pattern and pivot sequence from the last
// full factorization are reused and only the numeric sweep reruns, which is
// what makes Newton iterations and AC/transient sweeps cheap.  `ReusableLU`
// wraps the full-vs-refactor decision with a pivot-health guard.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "numeric/sparse.hpp"

namespace snim {

/// Numerical health of one factorization, for solver-health telemetry and
/// failure diagnosis: a shrinking min |pivot| or a growing fill ratio is
/// the classic early warning of an ill-conditioned MNA system.
struct LuFactorStats {
    double min_pivot = 0.0;   // smallest |pivot| over all columns
    double max_pivot = 0.0;   // largest |pivot|
    double fill_growth = 0.0; // nnz(L+U) / nnz(A)
    size_t pivot_swaps = 0;   // off-diagonal pivots chosen
    /// Hager/Higham reciprocal 1-norm condition estimate.  Computed lazily —
    /// it costs a few extra triangular solves — so it is 0 until the first
    /// rcond_estimate() call after a (re)factorization fills it in.
    double rcond = 0.0;
};

template <class T>
class SparseLU {
public:
    /// `last_cols` (optional) lists original columns to eliminate after all
    /// others, whatever their degree.  Callers planning partial
    /// refactorizations pass their changing columns here: the elimination
    /// closure of a trailing column is just itself, so the per-iteration
    /// refresh cost collapses.  Null keeps the pure min-degree order (and
    /// bit-identical results to builds that predate the parameter).
    explicit SparseLU(const SparseCSC<T>& a, double pivot_tol = 0.1,
                      const std::vector<int>* last_cols = nullptr);
    explicit SparseLU(const Triplets<T>& t, double pivot_tol = 0.1)
        : SparseLU(SparseCSC<T>(t), pivot_tol) {}

    /// Re-runs the numeric factorization on `a` reusing this factorization's
    /// pattern and pivot sequence.  `a` must have exactly the sparsity
    /// pattern of the matrix this object was constructed from (the caller —
    /// normally ReusableLU — checks; violating it is undefined).  Column
    /// updates are applied in ascending pivot order, the same order the full
    /// constructor uses, so when the fixed pivot sequence matches what a
    /// fresh factorization would choose the result is bit-identical to one.
    /// Returns false on an exactly zero pivot (the factorization is then
    /// partially overwritten and must not be used for solves).
    bool refactor(const SparseCSC<T>& a);

    /// Numeric refactorization restricted to the elimination closure of the
    /// listed original columns.  `a` must be value-identical to the matrix
    /// the current factors came from everywhere OUTSIDE `changed_cols`
    /// (pattern identical everywhere, as for refactor()).  Every column not
    /// recomputed would reproduce its stored values bit-exactly — its A
    /// column and every L column it consumes are unchanged — so the result
    /// is bit-identical to a full refactor(a), at the cost of only the
    /// changed columns and their downstream dependents.  The closure is
    /// cached and rebuilt when `changed_cols` differs from the previous
    /// call.  Incremental transient assembly leans on this: between Newton
    /// iterations only the nonlinear-device columns move.
    bool refactor_partial(const SparseCSC<T>& a, const std::vector<int>& changed_cols);

    /// Solves A x = b.
    std::vector<T> solve(const std::vector<T>& b) const;
    /// Allocation-free solve for hot loops: x = A^{-1} b using the caller's
    /// scratch buffer.  `b`, `x` and `scratch` must be distinct objects.
    /// Bit-identical to solve().
    void solve_into(const std::vector<T>& b, std::vector<T>& x,
                    std::vector<T>& scratch) const;
    /// Solves A^T x = b.
    std::vector<T> solve_transpose(const std::vector<T>& b) const;

    size_t size() const { return n_; }
    size_t nnz() const;

    /// Health of this factorization (valid once the constructor returns).
    const LuFactorStats& factor_stats() const { return stats_; }

    /// Reciprocal 1-norm condition estimate 1 / (||A||_1 * est ||A^{-1}||_1)
    /// on the current factors (Hager/Higham, a few solve/solve_transpose
    /// sweeps).  Cached per factorization — refactor() invalidates it — and
    /// mirrored into factor_stats().rcond on first computation.
    double rcond_estimate() const;

    /// ||A||_1 of the matrix this factorization was built from (refreshed by
    /// refactor()); the certificate layer reuses it for error scaling.
    double norm1() const { return a_norm1_; }

private:
    struct Entry {
        int row;
        T value;
    };
    using Column = std::vector<Entry>;

    bool refactor_columns(const SparseCSC<T>& a, const int* cols, size_t ncols);
    void finish_refactor();
    void build_closure(const std::vector<int>& changed_cols);

    size_t n_ = 0;
    std::vector<Column> l_;  // unit-lower; first entry of column k is the diagonal (1)
    std::vector<Column> u_;  // upper; diagonal stored last in each column
    std::vector<int> perm_;  // min-degree order: perm_[k] = original index factored k-th
    std::vector<int> iperm_; // original index -> permuted position
    std::vector<int> pinv_;  // permuted row -> pivot position
    mutable LuFactorStats stats_;     // mutable: rcond is filled lazily
    double a_norm1_ = 0.0;            // ||A||_1 of the factored matrix
    mutable double rcond_cache_ = -1.0; // < 0: not yet estimated

    // Refactor scratch and incremental bookkeeping.  pivot_mag_ /
    // col_abs_sum_ persist per-column |pivot| and column abs-sums so a
    // partial refactor can rebuild global stats (min/max pivot, ||A||_1)
    // without visiting untouched columns; the reductions run over the full
    // arrays in ascending index order, matching what a full sweep computes.
    mutable std::vector<T> work_;        // dense scatter column
    std::vector<double> pivot_mag_;      // |pivot| per permuted column
    std::vector<double> col_abs_sum_;    // abs column sum per original column
    std::vector<int> closure_;           // permuted columns to recompute, ascending
    std::vector<int> closure_key_;       // changed_cols the closure was built for
    bool closure_valid_ = false;
};

/// Owns a SparseLU and decides, per factor() call, between the cheap numeric
/// refactor path and a full re-pivoting factorization:
///
///   * first call, pattern change, or reuse disabled -> full factorization;
///     its min |pivot| becomes the health reference.
///   * otherwise refactor; if the refactored min |pivot| degrades below
///     repivot_tol times the reference (or a pivot lands on exact zero) the
///     stale pivot sequence is declared unhealthy and a full factorization
///     runs instead.
///
/// Registry counters: `numeric/lu_refactor` per reuse attempt, split into
/// `numeric/lu_symbolic_reuse` (kept) and `numeric/lu_repivot_fallbacks`
/// (guard tripped).  Fault point `numeric.lu.repivot` forces a fallback.
template <class T>
class ReusableLU {
public:
    struct Options {
        double pivot_tol = 0.1;   // threshold partial pivoting (full factor)
        double repivot_tol = 1e-3; // min-pivot degradation guard vs. reference
        bool reuse = true;        // false: full factorization every call
    };

    ReusableLU() = default;
    explicit ReusableLU(Options opt) : opt_(opt) {}

    /// Caller-supplied context for an incremental refactorization.  `key` is
    /// an opaque fingerprint of everything that shapes the matrix OUTSIDE
    /// the columns in `changed_cols` (for transient assembly: dt bits,
    /// integration order, assembler epoch).  When a factor() call carries
    /// the same nonzero key as the factors it would refresh, only the
    /// elimination closure of `changed_cols` is recomputed — bit-identical
    /// to a full refactor by construction.  A zero key, a key change, or a
    /// null column list falls back to the full numeric refactor.
    struct RefactorHint {
        uint64_t key[3] = {0, 0, 0};
        const std::vector<int>* changed_cols = nullptr;
    };

    /// Factors `a`, reusing the cached symbolic analysis when healthy.
    /// Raises (like the SparseLU constructor) on a singular matrix; the
    /// object is then empty, never stale.
    void factor(const SparseCSC<T>& a) { factor(a, RefactorHint{}); }
    void factor(const SparseCSC<T>& a, const RefactorHint& hint);

    bool has_factor() const { return lu_ != nullptr; }
    const SparseLU<T>& lu() const {
        SNIM_ASSERT(lu_ != nullptr, "ReusableLU used before factor()");
        return *lu_;
    }

    std::vector<T> solve(const std::vector<T>& b) const { return lu().solve(b); }
    std::vector<T> solve_transpose(const std::vector<T>& b) const {
        return lu().solve_transpose(b);
    }
    const LuFactorStats& factor_stats() const { return lu().factor_stats(); }
    double rcond_estimate() const { return lu().rcond_estimate(); }

    const Options& options() const { return opt_; }

private:
    void full_factor(const SparseCSC<T>& a, const std::vector<int>* last_cols);

    Options opt_;
    std::unique_ptr<SparseLU<T>> lu_;
    std::vector<int> pattern_cp_, pattern_ri_; // pattern the cache was built on
    double ref_min_pivot_ = 0.0; // min |pivot| of the last full factorization
    uint64_t hint_key_[3] = {0, 0, 0}; // key of the factors currently held
};

extern template class SparseLU<double>;
extern template class SparseLU<std::complex<double>>;
extern template class ReusableLU<double>;
extern template class ReusableLU<std::complex<double>>;

} // namespace snim
