#include "numeric/sparse_lu.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace snim {

namespace {

template <class T>
double mag(const T& v) {
    return std::abs(v);
}

} // namespace

template <class T>
SparseLU<T>::SparseLU(const SparseCSC<T>& a, double pivot_tol) : n_(a.size()) {
    SNIM_ASSERT(pivot_tol >= 0.0 && pivot_tol <= 1.0, "pivot_tol out of range");
    obs::ScopedTimer obs_timer("numeric/lu_factor");
    size_t pivot_swaps = 0;
    l_.resize(n_);
    u_.resize(n_);
    pinv_.assign(n_, -1);

    const auto& cp = a.col_ptr();
    const auto& ri = a.row_idx();
    const auto& vx = a.values();

    std::vector<T> x(n_, T{});          // scatter workspace
    std::vector<int> topo(n_);          // xi: topological pattern of x
    std::vector<int> mark(n_, -1);      // mark[i] == k -> visited this column
    std::vector<int> stack_node(n_);    // DFS stacks
    std::vector<int> stack_ptr(n_);

    for (size_t kk = 0; kk < n_; ++kk) {
        const int k = static_cast<int>(kk);

        // --- symbolic: pattern of L\A(:,k) via DFS over pivoted L columns ---
        int top = static_cast<int>(n_);
        for (int p = cp[kk]; p < cp[kk + 1]; ++p) {
            const int start = ri[static_cast<size_t>(p)];
            if (mark[static_cast<size_t>(start)] == k) continue;
            // Iterative DFS; nodes are appended in reverse topological order.
            int head = 0;
            stack_node[0] = start;
            mark[static_cast<size_t>(start)] = k;
            stack_ptr[0] = 0;
            while (head >= 0) {
                const int j = stack_node[static_cast<size_t>(head)];
                const int jp = pinv_[static_cast<size_t>(j)];
                const Column* col = (jp >= 0) ? &l_[static_cast<size_t>(jp)] : nullptr;
                const int len = col ? static_cast<int>(col->size()) : 0;
                bool descended = false;
                for (int q = stack_ptr[static_cast<size_t>(head)]; q < len; ++q) {
                    const int child = (*col)[static_cast<size_t>(q)].row;
                    if (mark[static_cast<size_t>(child)] == k) continue;
                    mark[static_cast<size_t>(child)] = k;
                    stack_ptr[static_cast<size_t>(head)] = q + 1;
                    ++head;
                    stack_node[static_cast<size_t>(head)] = child;
                    stack_ptr[static_cast<size_t>(head)] = 0;
                    descended = true;
                    break;
                }
                if (!descended) {
                    topo[static_cast<size_t>(--top)] = j;
                    --head;
                }
            }
        }

        // --- numeric: scatter A(:,k), then sparse forward solve ---
        for (int p = top; p < static_cast<int>(n_); ++p)
            x[static_cast<size_t>(topo[static_cast<size_t>(p)])] = T{};
        for (int p = cp[kk]; p < cp[kk + 1]; ++p)
            x[static_cast<size_t>(ri[static_cast<size_t>(p)])] = vx[static_cast<size_t>(p)];
        for (int p = top; p < static_cast<int>(n_); ++p) {
            const int j = topo[static_cast<size_t>(p)];
            const int jp = pinv_[static_cast<size_t>(j)];
            if (jp < 0) continue;
            const Column& lcol = l_[static_cast<size_t>(jp)];
            const T xj = x[static_cast<size_t>(j)]; // L diagonal is 1
            // Skip the diagonal entry (index 0).
            for (size_t q = 1; q < lcol.size(); ++q)
                x[static_cast<size_t>(lcol[q].row)] -= lcol[q].value * xj;
        }

        // --- pivot selection among not-yet-pivoted rows ---
        int ipiv = -1;
        double best = 0.0;
        for (int p = top; p < static_cast<int>(n_); ++p) {
            const int i = topo[static_cast<size_t>(p)];
            if (pinv_[static_cast<size_t>(i)] >= 0) continue;
            const double m = mag(x[static_cast<size_t>(i)]);
            if (m > best) {
                best = m;
                ipiv = i;
            }
        }
        if (ipiv < 0 || best == 0.0) raise("sparse LU: matrix singular at column %d", k);
        // Prefer the diagonal when acceptable (only if row k is in the pattern).
        if (pinv_[kk] < 0 && mark[kk] == k && mag(x[kk]) >= pivot_tol * best) ipiv = k;

        if (ipiv != k) ++pivot_swaps;
        const T pivot = x[static_cast<size_t>(ipiv)];
        const double pmag = mag(pivot);
        if (kk == 0) {
            stats_.min_pivot = stats_.max_pivot = pmag;
        } else {
            stats_.min_pivot = std::min(stats_.min_pivot, pmag);
            stats_.max_pivot = std::max(stats_.max_pivot, pmag);
        }

        // --- gather U(:,k) (pivoted rows) and L(:,k) (remaining rows) ---
        Column& ucol = u_[kk];
        Column& lcol = l_[kk];
        for (int p = top; p < static_cast<int>(n_); ++p) {
            const int i = topo[static_cast<size_t>(p)];
            const int ip = pinv_[static_cast<size_t>(i)];
            if (ip >= 0) {
                if (x[static_cast<size_t>(i)] != T{})
                    ucol.push_back({ip, x[static_cast<size_t>(i)]});
            }
        }
        ucol.push_back({k, pivot}); // diagonal last
        pinv_[static_cast<size_t>(ipiv)] = k;
        lcol.push_back({ipiv, T{1}}); // diagonal first
        for (int p = top; p < static_cast<int>(n_); ++p) {
            const int i = topo[static_cast<size_t>(p)];
            if (pinv_[static_cast<size_t>(i)] >= 0) continue;
            if (x[static_cast<size_t>(i)] != T{})
                lcol.push_back({i, x[static_cast<size_t>(i)] / pivot});
        }
    }

    // Remap L row indices into pivot coordinates so solves are triangular.
    for (auto& col : l_)
        for (auto& e : col) e.row = pinv_[static_cast<size_t>(e.row)];

    stats_.pivot_swaps = pivot_swaps;
    stats_.fill_growth =
        a.nnz() > 0 ? static_cast<double>(nnz()) / static_cast<double>(a.nnz()) : 0.0;

    if (obs::enabled()) {
        obs::count("numeric/lu_pivot_swaps", pivot_swaps);
        obs::record_value("numeric/lu_fill_nnz", static_cast<double>(nnz()));
        obs::record_value("numeric/lu_dim", static_cast<double>(n_));
        obs::record_value("numeric/lu_min_pivot", stats_.min_pivot);
        obs::record_value("numeric/lu_fill_growth", stats_.fill_growth);
    }
}

template <class T>
std::vector<T> SparseLU<T>::solve(const std::vector<T>& b) const {
    SNIM_ASSERT(b.size() == n_, "rhs size %zu != %zu", b.size(), n_);
    obs::ScopedTimer obs_timer("numeric/lu_solve");
    std::vector<T> x(n_);
    for (size_t i = 0; i < n_; ++i) x[static_cast<size_t>(pinv_[i])] = b[i];
    // L y = Pb (unit lower, diagonal first in each column).
    for (size_t k = 0; k < n_; ++k) {
        const T xk = x[k];
        if (xk == T{}) continue;
        const Column& col = l_[k];
        for (size_t q = 1; q < col.size(); ++q)
            x[static_cast<size_t>(col[q].row)] -= col[q].value * xk;
    }
    // U x = y (diagonal last in each column).
    for (size_t kk = n_; kk-- > 0;) {
        const Column& col = u_[kk];
        const T diag = col.back().value;
        x[kk] /= diag;
        const T xk = x[kk];
        if (xk == T{}) continue;
        for (size_t q = 0; q + 1 < col.size(); ++q)
            x[static_cast<size_t>(col[q].row)] -= col[q].value * xk;
    }
    return x;
}

template <class T>
std::vector<T> SparseLU<T>::solve_transpose(const std::vector<T>& b) const {
    SNIM_ASSERT(b.size() == n_, "rhs size %zu != %zu", b.size(), n_);
    obs::ScopedTimer obs_timer("numeric/lu_solve");
    // A^T = (P^T L U)^T = U^T L^T P, so solve U^T y = b, L^T z = y, x = P^T z.
    std::vector<T> x = b;
    // U^T y = b: forward substitution over columns of U used as rows.
    for (size_t k = 0; k < n_; ++k) {
        const Column& col = u_[k];
        T acc = x[k];
        for (size_t q = 0; q + 1 < col.size(); ++q)
            acc -= col[q].value * x[static_cast<size_t>(col[q].row)];
        x[k] = acc / col.back().value;
    }
    // L^T z = y: backward substitution.
    for (size_t kk = n_; kk-- > 0;) {
        const Column& col = l_[kk];
        T acc = x[kk];
        for (size_t q = 1; q < col.size(); ++q)
            acc -= col[q].value * x[static_cast<size_t>(col[q].row)];
        x[kk] = acc;
    }
    std::vector<T> out(n_);
    for (size_t i = 0; i < n_; ++i) out[i] = x[static_cast<size_t>(pinv_[i])];
    return out;
}

template <class T>
size_t SparseLU<T>::nnz() const {
    size_t total = 0;
    for (const auto& c : l_) total += c.size();
    for (const auto& c : u_) total += c.size();
    return total;
}

template class SparseLU<double>;
template class SparseLU<std::complex<double>>;

} // namespace snim
