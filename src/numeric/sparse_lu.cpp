#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "numeric/condest.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"

namespace snim {

namespace {

template <class T>
double mag(const T& v) {
    return std::abs(v);
}

// Greedy minimum-degree elimination ordering on the symmetrized pattern.
// Straightforward clique-update formulation (no quotient graph): full
// factorizations are rare here — ReusableLU amortizes one over an entire
// Newton/transient/AC sweep — so ordering cost is irrelevant next to the
// refactor flops it removes.  Deterministic: min degree with lowest-index
// tie-breaking, and once the cheapest remaining node touches everything
// left, the tail is a clique no ordering can improve — it is flushed in
// index order, which also bounds the clique-update cost on dense patterns.
//
// `delayed` (optional, indexed by node) holds nodes that must be eliminated
// after every other node: they are skipped by the degree selection and
// appended in index order once the rest is gone.  Partial refactorization
// is the customer — pushing the columns that change every Newton iteration
// to the end of the elimination order shrinks their update closure to just
// themselves, at a small fill cost confined to the feature that asks for it.
std::vector<int> min_degree_order(size_t n, const std::vector<int>& cp,
                                  const std::vector<int>& ri,
                                  const std::vector<char>* delayed = nullptr) {
    std::vector<std::vector<int>> adj(n);
    for (size_t j = 0; j < n; ++j)
        for (int p = cp[j]; p < cp[j + 1]; ++p) {
            const int i = ri[static_cast<size_t>(p)];
            if (i == static_cast<int>(j)) continue;
            adj[j].push_back(i);
            adj[static_cast<size_t>(i)].push_back(static_cast<int>(j));
        }
    for (auto& l : adj) {
        std::sort(l.begin(), l.end());
        l.erase(std::unique(l.begin(), l.end()), l.end());
    }

    std::vector<char> dead(n, 0);
    std::vector<int> stamp(n, -1);
    std::vector<int> order;
    order.reserve(n);
    std::vector<int> nv; // live neighbours of the node being eliminated
    size_t alive = n;
    int op = 0;
    while (alive > 0) {
        int v = -1;
        size_t best = n + 1;
        for (size_t i = 0; i < n; ++i)
            if (!dead[i] && !(delayed && (*delayed)[i]) && adj[i].size() < best) {
                best = adj[i].size();
                v = static_cast<int>(i);
            }
        if (v < 0) { // only delayed nodes left: flush them in index order
            for (size_t i = 0; i < n; ++i)
                if (!dead[i]) order.push_back(static_cast<int>(i));
            break;
        }
        if (best + 1 >= alive) {
            // Dense tail: the cheapest selectable node touches everything
            // left, so ordering can no longer help — flush in index order,
            // keeping any delayed nodes strictly last.
            for (size_t i = 0; i < n; ++i)
                if (!dead[i] && !(delayed && (*delayed)[i]))
                    order.push_back(static_cast<int>(i));
            if (delayed)
                for (size_t i = 0; i < n; ++i)
                    if (!dead[i] && (*delayed)[i]) order.push_back(static_cast<int>(i));
            break;
        }
        order.push_back(v);
        dead[static_cast<size_t>(v)] = 1;
        --alive;
        nv.clear();
        for (int u : adj[static_cast<size_t>(v)])
            if (!dead[static_cast<size_t>(u)]) nv.push_back(u);
        // Eliminating v turns its live neighbourhood into a clique: drop v
        // (and any dead entries) from each neighbour's list, then connect
        // the neighbours pairwise.  Lists only ever hold live nodes, so
        // list length *is* the live degree.
        for (int u : nv) {
            ++op;
            auto& au = adj[static_cast<size_t>(u)];
            size_t w = 0;
            for (int x : au) {
                if (dead[static_cast<size_t>(x)]) continue;
                au[w++] = x;
                stamp[static_cast<size_t>(x)] = op;
            }
            au.resize(w);
            stamp[static_cast<size_t>(u)] = op;
            for (int x : nv)
                if (stamp[static_cast<size_t>(x)] != op) au.push_back(x);
        }
    }
    return order;
}

} // namespace

template <class T>
SparseLU<T>::SparseLU(const SparseCSC<T>& a, double pivot_tol,
                      const std::vector<int>* last_cols)
    : n_(a.size()) {
    SNIM_ASSERT(pivot_tol >= 0.0 && pivot_tol <= 1.0, "pivot_tol out of range");
    obs::ScopedTimer obs_timer("numeric/lu_factor");
    size_t pivot_swaps = 0;
    l_.resize(n_);
    u_.resize(n_);
    pinv_.assign(n_, -1);

    // Apply the fill-reducing permutation symmetrically: the factorization
    // below runs on Ap = A(perm, perm), whose columns are materialized once
    // here (row-sorted, so the DFS visit order is deterministic).
    if (last_cols != nullptr && !last_cols->empty()) {
        std::vector<char> delayed(n_, 0);
        for (int c : *last_cols) delayed[static_cast<size_t>(c)] = 1;
        perm_ = min_degree_order(n_, a.col_ptr(), a.row_idx(), &delayed);
    } else {
        perm_ = min_degree_order(n_, a.col_ptr(), a.row_idx());
    }
    iperm_.assign(n_, 0);
    for (size_t k = 0; k < n_; ++k) iperm_[static_cast<size_t>(perm_[k])] = static_cast<int>(k);

    const auto& acp = a.col_ptr();
    const auto& ari = a.row_idx();
    const auto& avx = a.values();
    std::vector<int> cp(n_ + 1, 0);
    std::vector<int> ri(ari.size());
    std::vector<T> vx(avx.size());
    {
        std::vector<std::pair<int, T>> col;
        int at = 0;
        for (size_t kk = 0; kk < n_; ++kk) {
            const auto j = static_cast<size_t>(perm_[kk]);
            col.clear();
            for (int p = acp[j]; p < acp[j + 1]; ++p)
                col.emplace_back(iperm_[static_cast<size_t>(ari[static_cast<size_t>(p)])],
                                 avx[static_cast<size_t>(p)]);
            std::sort(col.begin(), col.end(),
                      [](const auto& x, const auto& y) { return x.first < y.first; });
            for (const auto& [r, v] : col) {
                ri[static_cast<size_t>(at)] = r;
                vx[static_cast<size_t>(at)] = v;
                ++at;
            }
            cp[kk + 1] = at;
        }
    }

    std::vector<T> x(n_, T{});          // scatter workspace
    std::vector<int> topo(n_);          // xi: topological pattern of x
    std::vector<int> mark(n_, -1);      // mark[i] == k -> visited this column
    std::vector<int> stack_node(n_);    // DFS stacks
    std::vector<int> stack_ptr(n_);
    std::vector<std::pair<int, int>> order; // (pivot idx, original row) of pivoted entries
    pivot_mag_.assign(n_, 0.0);

    for (size_t kk = 0; kk < n_; ++kk) {
        const int k = static_cast<int>(kk);

        // --- symbolic: pattern of L\A(:,k) via DFS over pivoted L columns ---
        int top = static_cast<int>(n_);
        for (int p = cp[kk]; p < cp[kk + 1]; ++p) {
            const int start = ri[static_cast<size_t>(p)];
            if (mark[static_cast<size_t>(start)] == k) continue;
            // Iterative DFS; nodes are appended in reverse topological order.
            int head = 0;
            stack_node[0] = start;
            mark[static_cast<size_t>(start)] = k;
            stack_ptr[0] = 0;
            while (head >= 0) {
                const int j = stack_node[static_cast<size_t>(head)];
                const int jp = pinv_[static_cast<size_t>(j)];
                const Column* col = (jp >= 0) ? &l_[static_cast<size_t>(jp)] : nullptr;
                const int len = col ? static_cast<int>(col->size()) : 0;
                bool descended = false;
                for (int q = stack_ptr[static_cast<size_t>(head)]; q < len; ++q) {
                    const int child = (*col)[static_cast<size_t>(q)].row;
                    if (mark[static_cast<size_t>(child)] == k) continue;
                    mark[static_cast<size_t>(child)] = k;
                    stack_ptr[static_cast<size_t>(head)] = q + 1;
                    ++head;
                    stack_node[static_cast<size_t>(head)] = child;
                    stack_ptr[static_cast<size_t>(head)] = 0;
                    descended = true;
                    break;
                }
                if (!descended) {
                    topo[static_cast<size_t>(--top)] = j;
                    --head;
                }
            }
        }

        // Pivoted pattern entries, sorted by ascending pivot index.  This is
        // a valid topological order (column jp only updates rows that pivot
        // later), and — unlike the DFS post-order — it is reproducible from
        // the stored factors alone, so refactor() can replay the exact same
        // accumulation sequence and stay bit-identical to this constructor.
        order.clear();
        for (int p = top; p < static_cast<int>(n_); ++p) {
            const int j = topo[static_cast<size_t>(p)];
            const int jp = pinv_[static_cast<size_t>(j)];
            if (jp >= 0) order.emplace_back(jp, j);
        }
        std::sort(order.begin(), order.end());

        // --- numeric: scatter A(:,k), then sparse forward solve ---
        for (int p = top; p < static_cast<int>(n_); ++p)
            x[static_cast<size_t>(topo[static_cast<size_t>(p)])] = T{};
        for (int p = cp[kk]; p < cp[kk + 1]; ++p)
            x[static_cast<size_t>(ri[static_cast<size_t>(p)])] = vx[static_cast<size_t>(p)];
        for (const auto& [jp, j] : order) {
            const Column& lcol = l_[static_cast<size_t>(jp)];
            const T xj = x[static_cast<size_t>(j)]; // L diagonal is 1
            // Skip the diagonal entry (index 0).
            for (size_t q = 1; q < lcol.size(); ++q)
                x[static_cast<size_t>(lcol[q].row)] -= lcol[q].value * xj;
        }

        // --- pivot selection among not-yet-pivoted rows ---
        int ipiv = -1;
        double best = 0.0;
        for (int p = top; p < static_cast<int>(n_); ++p) {
            const int i = topo[static_cast<size_t>(p)];
            if (pinv_[static_cast<size_t>(i)] >= 0) continue;
            const double m = mag(x[static_cast<size_t>(i)]);
            if (m > best) {
                best = m;
                ipiv = i;
            }
        }
        if (ipiv < 0 || best == 0.0)
            raise("sparse LU: matrix singular at column %d", perm_[kk]);
        // Prefer the diagonal when acceptable (only if row k is in the pattern).
        if (pinv_[kk] < 0 && mark[kk] == k && mag(x[kk]) >= pivot_tol * best) ipiv = k;

        if (ipiv != k) ++pivot_swaps;
        const T pivot = x[static_cast<size_t>(ipiv)];
        const double pmag = mag(pivot);
        pivot_mag_[kk] = pmag;
        if (kk == 0) {
            stats_.min_pivot = stats_.max_pivot = pmag;
        } else {
            stats_.min_pivot = std::min(stats_.min_pivot, pmag);
            stats_.max_pivot = std::max(stats_.max_pivot, pmag);
        }

        // --- gather U(:,k) (pivoted rows) and L(:,k) (remaining rows) ---
        // Exact zeros are kept: the stored pattern is the *symbolic* one, and
        // refactor() relies on every structural position being present (a
        // value that is zero this pass can be nonzero on the next).  U rows
        // follow `order` (ascending pivot index, diagonal last) so a numeric
        // refactor can walk the column as its update schedule.
        Column& ucol = u_[kk];
        Column& lcol = l_[kk];
        for (const auto& [jp, j] : order)
            ucol.push_back({jp, x[static_cast<size_t>(j)]});
        ucol.push_back({k, pivot}); // diagonal last
        pinv_[static_cast<size_t>(ipiv)] = k;
        lcol.push_back({ipiv, T{1}}); // diagonal first
        for (int p = top; p < static_cast<int>(n_); ++p) {
            const int i = topo[static_cast<size_t>(p)];
            if (pinv_[static_cast<size_t>(i)] >= 0) continue;
            lcol.push_back({i, x[static_cast<size_t>(i)] / pivot});
        }
    }

    // Remap L row indices into pivot coordinates so solves are triangular.
    for (auto& col : l_)
        for (auto& e : col) e.row = pinv_[static_cast<size_t>(e.row)];

    stats_.pivot_swaps = pivot_swaps;
    stats_.fill_growth =
        a.nnz() > 0 ? static_cast<double>(nnz()) / static_cast<double>(a.nnz()) : 0.0;
    // Per-column abs sums, kept so partial refactors can refresh ||A||_1
    // without a full pass.  Summation order per column matches norm1(), so
    // the cached reduction stays bit-identical to it.
    col_abs_sum_.assign(n_, 0.0);
    {
        double best = 0.0;
        for (size_t j = 0; j < n_; ++j) {
            double s = 0.0;
            for (int p = acp[j]; p < acp[j + 1]; ++p)
                s += mag(avx[static_cast<size_t>(p)]);
            col_abs_sum_[j] = s;
            best = std::max(best, s);
        }
        a_norm1_ = best;
    }

    if (obs::enabled()) {
        obs::count("numeric/lu_pivot_swaps", pivot_swaps);
        // Factor storage for the memory-attribution report: L + U entries
        // plus the three permutation vectors.
        obs::count("numeric/sparse_lu_bytes",
                   nnz() * sizeof(Entry) + 3 * n_ * sizeof(int));
        obs::record_value("numeric/lu_fill_nnz", static_cast<double>(nnz()));
        obs::record_value("numeric/lu_dim", static_cast<double>(n_));
        obs::record_value("numeric/lu_min_pivot", stats_.min_pivot);
        obs::record_value("numeric/lu_fill_growth", stats_.fill_growth);
    }
}

// Numeric recomputation of the listed permuted columns (all of them when
// `cols` is null).  Workspace is indexed by pivot coordinates: every row of
// A maps through iperm_ (min-degree) then pinv_ (pivoting), and the stored
// L/U rows already live in that space.  A column's processing is
// self-contained — it clears exactly its own symbolic pattern before
// scattering and never reads outside it — which is what lets a partial
// sweep skip columns while reusing the same workspace.
template <class T>
bool SparseLU<T>::refactor_columns(const SparseCSC<T>& a, const int* cols, size_t ncols) {
    const auto& cp = a.col_ptr();
    const auto& ri = a.row_idx();
    const auto& vx = a.values();
    if (work_.size() != n_) work_.assign(n_, T{});
    std::vector<T>& x = work_;

    for (size_t ci = 0; ci < ncols; ++ci) {
        const size_t kk = cols ? static_cast<size_t>(cols[ci]) : ci;
        Column& ucol = u_[kk];
        Column& lcol = l_[kk];

        // Clear the symbolic pattern, scatter A(:,k) into pivot coordinates.
        for (const auto& e : ucol) x[static_cast<size_t>(e.row)] = T{};
        for (const auto& e : lcol) x[static_cast<size_t>(e.row)] = T{};
        const auto j = static_cast<size_t>(perm_[kk]);
        double asum = 0.0;
        for (int p = cp[j]; p < cp[j + 1]; ++p) {
            const T v = vx[static_cast<size_t>(p)];
            asum += mag(v);
            x[static_cast<size_t>(pinv_[static_cast<size_t>(
                iperm_[static_cast<size_t>(ri[static_cast<size_t>(p)])])])] = v;
        }
        col_abs_sum_[j] = asum; // same per-column summation order as norm1()

        // Forward solve in stored U order — ascending pivot index, exactly
        // the schedule the full constructor used, so the accumulation is
        // bit-identical when the pivot sequence still matches.
        for (size_t q = 0; q + 1 < ucol.size(); ++q) {
            const int jp = ucol[q].row;
            const T xj = x[static_cast<size_t>(jp)];
            ucol[q].value = xj;
            const Column& lj = l_[static_cast<size_t>(jp)];
            for (size_t r = 1; r < lj.size(); ++r)
                x[static_cast<size_t>(lj[r].row)] -= lj[r].value * xj;
        }

        // The pivot is fixed at pivot coordinate k by the cached sequence.
        const T pivot = x[kk];
        if (pivot == T{}) return false; // stale pivot hit exact zero
        ucol.back().value = pivot;
        for (size_t r = 1; r < lcol.size(); ++r)
            lcol[r].value = x[static_cast<size_t>(lcol[r].row)] / pivot;
        pivot_mag_[kk] = mag(pivot);
    }
    return true;
}

// Rebuild the global reductions from the per-column caches.  min/max over an
// array and max of column sums are order-independent exact reductions, so
// this yields the same stats_ and a_norm1_ a full sweep computes regardless
// of which columns the preceding pass actually touched.
template <class T>
void SparseLU<T>::finish_refactor() {
    double minp = 0.0, maxp = 0.0;
    for (size_t kk = 0; kk < n_; ++kk) {
        const double pmag = pivot_mag_[kk];
        if (kk == 0) {
            minp = maxp = pmag;
        } else {
            minp = std::min(minp, pmag);
            maxp = std::max(maxp, pmag);
        }
    }
    // Pattern and pivot sequence are unchanged, so fill_growth and
    // pivot_swaps carry over; only the pivot magnitudes move.
    stats_.min_pivot = minp;
    stats_.max_pivot = maxp;
    stats_.rcond = 0.0;
    double best = 0.0;
    for (size_t j = 0; j < n_; ++j) best = std::max(best, col_abs_sum_[j]);
    a_norm1_ = best;
    rcond_cache_ = -1.0; // new values: the cached condition estimate is stale
    if (obs::enabled()) obs::record_value("numeric/lu_min_pivot", stats_.min_pivot);
}

template <class T>
bool SparseLU<T>::refactor(const SparseCSC<T>& a) {
    SNIM_ASSERT(a.size() == n_, "refactor shape %zu != %zu", a.size(), n_);
    obs::ScopedTimer obs_timer("numeric/lu_refactor");
    if (!refactor_columns(a, nullptr, n_)) return false;
    finish_refactor();
    return true;
}

// Ascending sweep over permuted columns marking the elimination closure: a
// column must be recomputed when its A column changed (seed) or when any L
// column it consumes — the non-diagonal rows of stored U(:,kk), all with
// pivot index < kk — was itself marked.  Because dependencies only point to
// lower pivot indices, one ascending pass sees final marks.
template <class T>
void SparseLU<T>::build_closure(const std::vector<int>& changed_cols) {
    std::vector<char> in(n_, 0);
    for (int c : changed_cols)
        in[static_cast<size_t>(iperm_[static_cast<size_t>(c)])] = 1;
    closure_.clear();
    for (size_t kk = 0; kk < n_; ++kk) {
        if (!in[kk]) {
            const Column& ucol = u_[kk];
            for (size_t q = 0; q + 1 < ucol.size(); ++q)
                if (in[static_cast<size_t>(ucol[q].row)]) {
                    in[kk] = 1;
                    break;
                }
        }
        if (in[kk]) closure_.push_back(static_cast<int>(kk));
    }
    closure_key_ = changed_cols;
    closure_valid_ = true;
}

template <class T>
bool SparseLU<T>::refactor_partial(const SparseCSC<T>& a,
                                   const std::vector<int>& changed_cols) {
    SNIM_ASSERT(a.size() == n_, "refactor shape %zu != %zu", a.size(), n_);
    obs::ScopedTimer obs_timer("numeric/lu_refactor");
    if (!closure_valid_ || closure_key_ != changed_cols) build_closure(changed_cols);
    if (!refactor_columns(a, closure_.data(), closure_.size())) return false;
    finish_refactor();
    return true;
}

template <class T>
double SparseLU<T>::rcond_estimate() const {
    if (rcond_cache_ >= 0.0) return rcond_cache_;
    rcond_cache_ = rcond_from_norm1<T>(*this, n_, a_norm1_);
    stats_.rcond = rcond_cache_;
    if (obs::enabled()) obs::record_value("numeric/lu_rcond", rcond_cache_);
    return rcond_cache_;
}

template <class T>
void SparseLU<T>::solve_into(const std::vector<T>& b, std::vector<T>& out,
                             std::vector<T>& scratch) const {
    SNIM_ASSERT(b.size() == n_, "rhs size %zu != %zu", b.size(), n_);
    obs::ScopedTimer obs_timer("numeric/lu_solve");
    scratch.resize(n_); // every slot is written by the permute-in below
    std::vector<T>& x = scratch;
    for (size_t i = 0; i < n_; ++i)
        x[static_cast<size_t>(pinv_[i])] = b[static_cast<size_t>(perm_[i])];
    // L y = Pb (unit lower, diagonal first in each column).
    for (size_t k = 0; k < n_; ++k) {
        const T xk = x[k];
        if (xk == T{}) continue;
        const Column& col = l_[k];
        for (size_t q = 1; q < col.size(); ++q)
            x[static_cast<size_t>(col[q].row)] -= col[q].value * xk;
    }
    // U x = y (diagonal last in each column).
    for (size_t kk = n_; kk-- > 0;) {
        const Column& col = u_[kk];
        const T diag = col.back().value;
        x[kk] /= diag;
        const T xk = x[kk];
        if (xk == T{}) continue;
        for (size_t q = 0; q + 1 < col.size(); ++q)
            x[static_cast<size_t>(col[q].row)] -= col[q].value * xk;
    }
    out.resize(n_);
    for (size_t j = 0; j < n_; ++j) out[static_cast<size_t>(perm_[j])] = x[j];
}

template <class T>
std::vector<T> SparseLU<T>::solve(const std::vector<T>& b) const {
    std::vector<T> out, scratch;
    solve_into(b, out, scratch);
    return out;
}

template <class T>
std::vector<T> SparseLU<T>::solve_transpose(const std::vector<T>& b) const {
    SNIM_ASSERT(b.size() == n_, "rhs size %zu != %zu", b.size(), n_);
    obs::ScopedTimer obs_timer("numeric/lu_solve");
    // A^T = (P^T L U)^T = U^T L^T P, so solve U^T y = b, L^T z = y, x = P^T z.
    // The min-degree permutation is symmetric, so transposing commutes with
    // it: permute b in, solve the permuted transpose, permute x back out.
    std::vector<T> x(n_);
    for (size_t j = 0; j < n_; ++j) x[j] = b[static_cast<size_t>(perm_[j])];
    // U^T y = b: forward substitution over columns of U used as rows.
    for (size_t k = 0; k < n_; ++k) {
        const Column& col = u_[k];
        T acc = x[k];
        for (size_t q = 0; q + 1 < col.size(); ++q)
            acc -= col[q].value * x[static_cast<size_t>(col[q].row)];
        x[k] = acc / col.back().value;
    }
    // L^T z = y: backward substitution.
    for (size_t kk = n_; kk-- > 0;) {
        const Column& col = l_[kk];
        T acc = x[kk];
        for (size_t q = 1; q < col.size(); ++q)
            acc -= col[q].value * x[static_cast<size_t>(col[q].row)];
        x[kk] = acc;
    }
    std::vector<T> out(n_);
    for (size_t i = 0; i < n_; ++i)
        out[static_cast<size_t>(perm_[i])] = x[static_cast<size_t>(pinv_[i])];
    return out;
}

template <class T>
size_t SparseLU<T>::nnz() const {
    size_t total = 0;
    for (const auto& c : l_) total += c.size();
    for (const auto& c : u_) total += c.size();
    return total;
}

template <class T>
void ReusableLU<T>::full_factor(const SparseCSC<T>& a, const std::vector<int>* last_cols) {
    lu_.reset(); // a throwing factorization must leave the cache empty, not stale
    lu_ = std::make_unique<SparseLU<T>>(a, opt_.pivot_tol, last_cols);
    ref_min_pivot_ = lu_->factor_stats().min_pivot;
    pattern_cp_ = a.col_ptr();
    pattern_ri_ = a.row_idx();
}

template <class T>
void ReusableLU<T>::factor(const SparseCSC<T>& a, const RefactorHint& hint) {
    const auto adopt_key = [&] {
        hint_key_[0] = hint.key[0];
        hint_key_[1] = hint.key[1];
        hint_key_[2] = hint.key[2];
    };
    if (!lu_ || !opt_.reuse || a.col_ptr() != pattern_cp_ || a.row_idx() != pattern_ri_) {
        full_factor(a, hint.changed_cols);
        adopt_key();
        return;
    }
    // Queried first and unconditionally, so firing positions are a pure
    // function of how many reuse opportunities the run has seen.
    const bool forced = fault::fires("numeric.lu.repivot");
    if (obs::enabled()) obs::count("numeric/lu_refactor");
    // The partial path needs the held factors to come from a matrix that is
    // value-identical to `a` outside hint.changed_cols — exactly what a
    // matching nonzero key attests.  Anything else (key change, zero key,
    // no column list) pays for the full numeric refactor.
    const bool partial_ok =
        hint.changed_cols != nullptr &&
        (hint.key[0] | hint.key[1] | hint.key[2]) != 0 &&
        hint.key[0] == hint_key_[0] && hint.key[1] == hint_key_[1] &&
        hint.key[2] == hint_key_[2];
    bool ok;
    if (!forced && partial_ok) {
        ok = lu_->refactor_partial(a, *hint.changed_cols);
        if (ok && obs::enabled()) obs::count("numeric/lu_partial_refactor");
    } else {
        ok = !forced && lu_->refactor(a);
    }
    if (ok && lu_->factor_stats().min_pivot >= opt_.repivot_tol * ref_min_pivot_) {
        adopt_key();
        if (obs::enabled()) obs::count("numeric/lu_symbolic_reuse");
        return;
    }
    // Guard tripped (pivot degraded / exact zero / forced): the cached pivot
    // sequence is stale — pay for one full re-pivoting factorization, which
    // also refreshes the health reference.
    if (obs::enabled()) obs::count("numeric/lu_repivot_fallbacks");
    full_factor(a, hint.changed_cols);
    adopt_key();
}

template class SparseLU<double>;
template class SparseLU<std::complex<double>>;
template class ReusableLU<double>;
template class ReusableLU<std::complex<double>>;

} // namespace snim
