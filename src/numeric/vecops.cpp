#include "numeric/vecops.hpp"

#include <cmath>

#include "util/error.hpp"

namespace snim {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
    SNIM_ASSERT(a.size() == b.size(), "dot size mismatch");
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const std::vector<double>& v) {
    double m = 0.0;
    for (double x : v) m = std::max(m, std::fabs(x));
    return m;
}

double norm_inf(const std::vector<std::complex<double>>& v) {
    double m = 0.0;
    for (const auto& x : v) m = std::max(m, std::abs(x));
    return m;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
    SNIM_ASSERT(x.size() == y.size(), "axpy size mismatch");
    for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
    SNIM_ASSERT(a.size() == b.size(), "size mismatch");
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

std::vector<double> linspace(double lo, double hi, size_t n) {
    SNIM_ASSERT(n >= 2, "linspace needs n >= 2");
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    return v;
}

std::vector<double> logspace(double lo, double hi, size_t n) {
    SNIM_ASSERT(lo > 0 && hi > 0, "logspace needs positive bounds");
    SNIM_ASSERT(n >= 2, "logspace needs n >= 2");
    std::vector<double> v(n);
    const double la = std::log10(lo), lb = std::log10(hi);
    for (size_t i = 0; i < n; ++i)
        v[i] = std::pow(10.0, la + (lb - la) * static_cast<double>(i) /
                                   static_cast<double>(n - 1));
    return v;
}

} // namespace snim
