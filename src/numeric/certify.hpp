// Produces obs::SolveCertificate for one linear solve on cached LU factors.
//
// certify_solve() is the glue between the raw estimators (numeric/condest)
// and the accuracy-budget ledger (obs/certify): it measures the
// componentwise backward error of the solution in `x`, spends up to
// opt.max_refine_steps counted iterative-refinement steps on the existing
// factors when the error breaches opt.omega_max, attaches the Hager/Higham
// rcond estimate, and flags the breach verdict.  The caller feeds the result
// to obs::record_certificate().
//
// The fault point `numeric.cert.breach` forces the breach verdict (and one
// refinement step, so the recovery path is exercised end to end).  It is
// queried here — at certificate sites only — so arming it requires
// observability to be on; certificate sites never run otherwise.
//
// With refinement disabled (or never triggered, the clean-run case) `x` is
// not touched and results stay bit-identical to an uncertified run.
#pragma once

#include <cmath>
#include <vector>

#include "numeric/condest.hpp"
#include "obs/certify.hpp"
#include "util/fault.hpp"

namespace snim {

/// Certifies the solve of a*x = b whose factorization is `lu` (SparseLU,
/// ReusableLU or DenseLU — anything with solve() and rcond_estimate()).
/// `x` may be refined in place; see the header comment for when.
/// `allow_fault` must be false from parallel workers: fault query order is
/// part of the determinism contract and worker scheduling is not (the AC
/// sweep certifies its serial reference point with faults armed instead).
template <class Solver, class Mat, class T>
obs::SolveCertificate certify_solve(const Solver& lu, const Mat& a,
                                    std::vector<T>& x, const std::vector<T>& b,
                                    const obs::CertifyOptions& opt,
                                    bool allow_fault = true) {
    obs::SolveCertificate cert;
    cert.omega = componentwise_backward_error(a, x, b);
    if (opt.refine) {
        while (cert.refine_steps < opt.max_refine_steps &&
               !(cert.omega <= opt.omega_max)) { // NaN/inf must enter the loop
            cert.omega = refine_once(lu, a, x, b);
            ++cert.refine_steps;
        }
    }
    if (allow_fault && fault::fires("numeric.cert.breach")) {
        cert.fault_injected = true;
        if (opt.refine && cert.refine_steps == 0) {
            // Exercise the counted-refinement path even though the solve was
            // healthy; on a clean system the correction is ~1 ulp.
            cert.omega = refine_once(lu, a, x, b);
            ++cert.refine_steps;
        }
    }
    cert.rcond = lu.rcond_estimate();
    cert.breach = cert.fault_injected || !(cert.omega <= opt.omega_max) ||
                  cert.rcond < opt.rcond_min;
    return cert;
}

} // namespace snim
