// Vector helpers shared by solvers and analyses.
#pragma once

#include <complex>
#include <vector>

namespace snim {

double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm2(const std::vector<double>& v);
double norm_inf(const std::vector<double>& v);
double norm_inf(const std::vector<std::complex<double>>& v);

/// y += alpha * x
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// max_i |a[i] - b[i]|
double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b);

/// Linearly spaced values, inclusive of both ends (n >= 2).
std::vector<double> linspace(double lo, double hi, size_t n);
/// Logarithmically spaced values, inclusive of both ends (n >= 2, lo/hi > 0).
std::vector<double> logspace(double lo, double hi, size_t n);

} // namespace snim
