// Modified-Newton factor-reuse guard.
//
// A transient Newton iteration refreshes the Jacobian every pass, but the
// factors from a nearby iterate are almost always a good enough operator:
// solving  dx = -LU_old^{ -1} (A(x) x - b(x))  with the *current* residual
// still converges to the exact same discrete solution (dx = 0 forces
// A x = b, independent of which factors produced it), just at a linear
// instead of quadratic rate.  The guard decides, per iteration, whether the
// stale factors stay healthy enough to keep:
//
//   * a (dt, order, pattern-epoch) key change always refactors — factors of
//     a different companion matrix are not a contraction for this one;
//   * a stalling update (max_dx not shrinking by at least `stall_theta`
//     per reused solve, within one attempt) refactors;
//   * an age cap bounds drift across accepted steps even while nominally
//     contracting.
//
// The caller owns the fallback: on a stall or a non-finite update with
// stale factors it refactors the current matrix and re-solves before
// rejecting the step (counted as sim/jacobian_stale_fallbacks).
#pragma once

#include <cstdint>

namespace snim {

class JacobianReuseGuard {
public:
    struct Options {
        /// Reuse is healthy while max_dx <= stall_theta * previous max_dx.
        double stall_theta = 0.9;
        /// Unconditional refactor after this many consecutive reused solves.
        int max_age = 32;
    };

    JacobianReuseGuard() = default;
    explicit JacobianReuseGuard(Options opt) : opt_(opt) {}

    /// Key identifying which system the current factors belong to (step
    /// size, integration order, matrix pattern epoch — anything that makes
    /// old factors structurally wrong, not merely stale).
    struct Key {
        std::uint64_t dt_bits = 0;
        int order = 0;
        std::uint64_t epoch = 0;
        bool operator==(const Key& o) const {
            return dt_bits == o.dt_bits && order == o.order && epoch == o.epoch;
        }
    };

    /// Starts a step attempt: the previous attempt's final (converged,
    /// tiny) update must not make the first reused solve look like a stall.
    void begin_attempt() { have_prev_dx_ = false; }

    /// True when the factors must be refreshed before this solve.
    bool should_refactor(const Key& key) const {
        return !have_factors_ || !(key == key_) || age_ >= opt_.max_age;
    }

    /// Records a fresh factorization of the system identified by `key`.
    void on_refactor(const Key& key) {
        have_factors_ = true;
        key_ = key;
        age_ = 0;
        have_prev_dx_ = false;
    }

    /// True when a reused solve failed to contract: the caller should
    /// refactor the current matrix and re-solve before giving up.
    bool stalled(double max_dx) const {
        return have_prev_dx_ && max_dx > opt_.stall_theta * prev_dx_;
    }

    /// Endgame prediction: the previous update is already within `margin`
    /// of the convergence tolerance `tol`, so the next one is very likely
    /// the accepting one.  The caller's accept contract refreshes the
    /// factors for the final iteration anyway, which would make a stale
    /// solve here pure waste — refactoring directly halves the work of the
    /// closing iteration.  A misprediction just means one extra fresh
    /// iteration; determinism is unaffected (the test reads only committed
    /// iteration state).
    bool endgame(double tol, double margin = 64.0) const {
        return have_prev_dx_ && prev_dx_ < margin * tol;
    }

    /// Commits the iteration's update magnitude (after any fallback) as the
    /// contraction reference for the next solve.  `reused` says whether
    /// stale factors produced the final update; only those age the factors.
    void on_iteration(double max_dx, bool reused) {
        prev_dx_ = max_dx;
        have_prev_dx_ = true;
        if (reused) ++age_;
    }

    /// Forgets the factors entirely (e.g. after a singular-system rebuild).
    void invalidate() {
        have_factors_ = false;
        have_prev_dx_ = false;
        age_ = 0;
    }

    const Options& options() const { return opt_; }
    int age() const { return age_; }

private:
    Options opt_;
    Key key_;
    bool have_factors_ = false;
    bool have_prev_dx_ = false;
    double prev_dx_ = 0.0;
    int age_ = 0;
};

} // namespace snim
