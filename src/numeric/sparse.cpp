#include "numeric/sparse.hpp"

#include <algorithm>

namespace snim {

template <class T>
SparseCSC<T>::SparseCSC(const Triplets<T>& t) : n_(t.size()) {
    const auto& rows = t.rows();
    const auto& cols = t.cols();
    const auto& vals = t.values();
    const size_t nz = rows.size();

    // Count entries per column, then prefix-sum into column pointers.
    std::vector<int> count(n_ + 1, 0);
    for (size_t k = 0; k < nz; ++k) ++count[static_cast<size_t>(cols[k]) + 1];
    cp_.resize(n_ + 1, 0);
    for (size_t c = 0; c < n_; ++c) cp_[c + 1] = cp_[c] + count[c + 1];

    std::vector<int> next(cp_.begin(), cp_.end() - 1);
    std::vector<int> ri(nz);
    std::vector<T> vx(nz);
    for (size_t k = 0; k < nz; ++k) {
        const int p = next[static_cast<size_t>(cols[k])]++;
        ri[static_cast<size_t>(p)] = rows[k];
        vx[static_cast<size_t>(p)] = vals[k];
    }

    // Sort each column by row and merge duplicates.
    ri_.reserve(nz);
    vx_.reserve(nz);
    std::vector<int> new_cp(n_ + 1, 0);
    std::vector<std::pair<int, T>> col;
    for (size_t c = 0; c < n_; ++c) {
        col.clear();
        for (int p = cp_[c]; p < cp_[c + 1]; ++p)
            col.emplace_back(ri[static_cast<size_t>(p)], vx[static_cast<size_t>(p)]);
        // stable: duplicate (row,col) entries must merge in insertion order so
        // a triplet-built matrix is bit-identical to the Stamper's compiled
        // scatter path, which accumulates duplicates in stamp-sequence order.
        std::stable_sort(col.begin(), col.end(),
                         [](const auto& a, const auto& b) { return a.first < b.first; });
        for (size_t k = 0; k < col.size(); ++k) {
            if (k > 0 && col[k - 1].first == col[k].first) {
                vx_.back() += col[k].second;
            } else {
                ri_.push_back(col[k].first);
                vx_.push_back(col[k].second);
            }
        }
        new_cp[c + 1] = static_cast<int>(ri_.size());
    }
    cp_ = std::move(new_cp);
}

template <class T>
void SparseCSC<T>::multiply_into(const std::vector<T>& x, std::vector<T>& y) const {
    SNIM_ASSERT(x.size() == n_, "matvec shape mismatch");
    y.assign(n_, T{});
    for (size_t c = 0; c < n_; ++c) {
        const T xc = x[c];
        if (xc == T{}) continue;
        for (int p = cp_[c]; p < cp_[c + 1]; ++p)
            y[static_cast<size_t>(ri_[static_cast<size_t>(p)])] +=
                vx_[static_cast<size_t>(p)] * xc;
    }
}

template <class T>
std::vector<T> SparseCSC<T>::multiply(const std::vector<T>& x) const {
    std::vector<T> y;
    multiply_into(x, y);
    return y;
}

template <class T>
DenseMatrix<T> SparseCSC<T>::to_dense() const {
    DenseMatrix<T> m(n_, n_);
    for (size_t c = 0; c < n_; ++c)
        for (int p = cp_[c]; p < cp_[c + 1]; ++p)
            m(static_cast<size_t>(ri_[static_cast<size_t>(p)]), c) +=
                vx_[static_cast<size_t>(p)];
    return m;
}

template class SparseCSC<double>;
template class SparseCSC<std::complex<double>>;

} // namespace snim
