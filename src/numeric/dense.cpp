#include "numeric/dense.hpp"

#include <cmath>

#include "numeric/condest.hpp"
#include "obs/trace.hpp"

namespace snim {

namespace {
template <class T>
double mag(const T& v) {
    return std::abs(v);
}
} // namespace

template <class T>
DenseLU<T>::DenseLU(DenseMatrix<T> a) : lu_(std::move(a)) {
    SNIM_ASSERT(lu_.rows() == lu_.cols(), "LU needs a square matrix, got %zux%zu",
                lu_.rows(), lu_.cols());
    obs::ScopedTimer obs_timer("numeric/dense_lu_factor");
    const size_t n = lu_.rows();
    a_norm1_ = snim::norm1(lu_); // lu_ still holds A; factored in place below
    if (obs::enabled())
        obs::count("numeric/dense_bytes", n * n * sizeof(T) + n * sizeof(size_t));
    perm_.resize(n);
    for (size_t i = 0; i < n; ++i) perm_[i] = i;

    for (size_t k = 0; k < n; ++k) {
        size_t piv = k;
        double best = mag(lu_(k, k));
        for (size_t i = k + 1; i < n; ++i) {
            const double m = mag(lu_(i, k));
            if (m > best) {
                best = m;
                piv = i;
            }
        }
        if (best == 0.0) raise("dense LU: matrix singular at column %zu", k);
        if (piv != k) {
            for (size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
            std::swap(perm_[k], perm_[piv]);
        }
        const T pivot = lu_(k, k);
        for (size_t i = k + 1; i < n; ++i) {
            const T f = lu_(i, k) / pivot;
            lu_(i, k) = f;
            if (f == T{}) continue;
            for (size_t j = k + 1; j < n; ++j) lu_(i, j) -= f * lu_(k, j);
        }
    }
}

template <class T>
double DenseLU<T>::min_pivot() const {
    double min = 0.0;
    for (size_t k = 0; k < lu_.rows(); ++k) {
        const double m = mag(lu_(k, k));
        if (k == 0 || m < min) min = m;
    }
    return min;
}

template <class T>
std::vector<T> DenseLU<T>::solve(std::vector<T> b) const {
    const size_t n = lu_.rows();
    SNIM_ASSERT(b.size() == n, "rhs size %zu != %zu", b.size(), n);
    std::vector<T> x(n);
    for (size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
    // Forward substitution (unit lower).
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
    // Back substitution.
    for (size_t ii = n; ii-- > 0;) {
        for (size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(ii, j) * x[j];
        x[ii] /= lu_(ii, ii);
    }
    return x;
}

template <class T>
std::vector<T> DenseLU<T>::solve_transpose(const std::vector<T>& b) const {
    const size_t n = lu_.rows();
    SNIM_ASSERT(b.size() == n, "rhs size %zu != %zu", b.size(), n);
    // A = P^T L U, so A^T x = b means U^T y = b, L^T z = y, x = P^T z.
    std::vector<T> x = b;
    // U^T y = b: forward substitution over U's rows used as columns.
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < i; ++j) x[i] -= lu_(j, i) * x[j];
        x[i] /= lu_(i, i);
    }
    // L^T z = y: back substitution (unit diagonal).
    for (size_t ii = n; ii-- > 0;)
        for (size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(j, ii) * x[j];
    // Undo the row permutation: (P^T z)[perm_[i]] = z[i].
    std::vector<T> out(n);
    for (size_t i = 0; i < n; ++i) out[perm_[i]] = x[i];
    return out;
}

template <class T>
double DenseLU<T>::rcond_estimate() const {
    if (rcond_cache_ >= 0.0) return rcond_cache_;
    rcond_cache_ = rcond_from_norm1<T>(*this, lu_.rows(), a_norm1_);
    return rcond_cache_;
}

template <class T>
DenseMatrix<T> DenseLU<T>::solve(const DenseMatrix<T>& b) const {
    const size_t n = lu_.rows();
    SNIM_ASSERT(b.rows() == n, "rhs rows %zu != %zu", b.rows(), n);
    DenseMatrix<T> x(n, b.cols());
    std::vector<T> col(n);
    for (size_t c = 0; c < b.cols(); ++c) {
        for (size_t i = 0; i < n; ++i) col[i] = b(i, c);
        col = solve(std::move(col));
        for (size_t i = 0; i < n; ++i) x(i, c) = col[i];
    }
    return x;
}

template class DenseLU<double>;
template class DenseLU<std::complex<double>>;

} // namespace snim
