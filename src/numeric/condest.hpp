// 1-norm condition estimation and componentwise backward error.
//
// rcond comes from the Hager/Higham power-iteration estimator (the LAPACK
// xLACON family): ||A^{-1}||_1 is estimated from a handful of solve /
// solve_transpose pairs on an existing factorization, never from an explicit
// inverse, so the cost per certificate is a few triangular sweeps.  The
// estimate is a lower bound on the true norm (it maximises |x|_1 over a
// subset of the unit ball), which makes the derived rcond an *upper* bound:
// when the estimate already says "ill-conditioned", the truth is at least as
// bad.  In practice the estimate is within a small factor (rarely > 3x) of
// the exact value; certify_test.cpp checks both properties against exact
// dense inverses.
//
// The componentwise backward error
//
//   omega = max_i |A x - b|_i / (|A| |x| + |b|)_i
//
// (Oettli-Prager) is the standard "was this solve trustworthy" residual
// test: omega ~ machine epsilon means x is the exact solution of a system
// whose entries are relatively perturbed by omega.  Everything here is
// header-only and templated so it works on SparseLU/DenseLU over double and
// complex<double> without adding any library dependency.
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <type_traits>
#include <vector>

#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"

namespace snim {

namespace condest_detail {

inline double mag(double v) { return std::fabs(v); }
inline double mag(const std::complex<double>& v) { return std::abs(v); }

/// Unit-magnitude "sign" of v; the zero convention (0 -> 1) matches xLACON.
inline double sign_of(double v) { return v >= 0.0 ? 1.0 : -1.0; }
inline std::complex<double> sign_of(const std::complex<double>& v) {
    const double m = std::abs(v);
    return m == 0.0 ? std::complex<double>(1.0, 0.0) : v / m;
}

template <class T>
double norm1_vec(const std::vector<T>& v) {
    double s = 0.0;
    for (const T& e : v) s += mag(e);
    return s;
}

} // namespace condest_detail

/// ||A||_1 (max column abs sum) of a CSC matrix — O(nnz), computed once per
/// factorization and cached by the LU classes.
template <class T>
double norm1(const SparseCSC<T>& a) {
    double best = 0.0;
    const auto& cp = a.col_ptr();
    const auto& vx = a.values();
    for (size_t j = 0; j < a.size(); ++j) {
        double s = 0.0;
        for (int p = cp[j]; p < cp[j + 1]; ++p)
            s += condest_detail::mag(vx[static_cast<size_t>(p)]);
        best = std::max(best, s);
    }
    return best;
}

/// ||A||_1 of a dense matrix.
template <class T>
double norm1(const DenseMatrix<T>& a) {
    double best = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) {
        double s = 0.0;
        for (size_t i = 0; i < a.rows(); ++i) s += condest_detail::mag(a(i, j));
        best = std::max(best, s);
    }
    return best;
}

/// Hager/Higham estimate of ||A^{-1}||_1 from a factorization exposing
/// solve() and solve_transpose().  For complex T the transpose solve is
/// turned into a conjugate-transpose solve by conjugating in and out, which
/// is what the gradient step of the 1-norm maximisation actually needs.
template <class T, class Solver>
double norm1_inv_estimate(const Solver& lu, size_t n, int max_iter = 5) {
    if (n == 0) return 0.0;
    std::vector<T> x(n, T(1.0 / static_cast<double>(n)));
    double est = 0.0;
    int last_j = -1;
    for (int iter = 0; iter < max_iter; ++iter) {
        const std::vector<T> y = lu.solve(x);
        const double e = condest_detail::norm1_vec(y);
        if (!std::isfinite(e)) return std::numeric_limits<double>::infinity();
        if (iter > 0 && e <= est) break; // estimate stopped growing
        est = e;
        std::vector<T> z(n);
        for (size_t i = 0; i < n; ++i) z[i] = condest_detail::sign_of(y[i]);
        if constexpr (std::is_same_v<T, std::complex<double>>) {
            for (auto& v : z) v = std::conj(v);
            z = lu.solve_transpose(z);
            for (auto& v : z) v = std::conj(v);
        } else {
            z = lu.solve_transpose(z);
        }
        // Next vertex: the unit vector where |A^{-H} sign(y)| peaks.
        size_t j = 0;
        double best = -1.0;
        for (size_t i = 0; i < n; ++i) {
            const double m = condest_detail::mag(z[i]);
            if (m > best) {
                best = m;
                j = i;
            }
        }
        if (static_cast<int>(j) == last_j) break; // converged to a fixed vertex
        last_j = static_cast<int>(j);
        std::fill(x.begin(), x.end(), T{});
        x[j] = T(1.0);
    }
    return est;
}

/// rcond = 1 / (||A||_1 * est ||A^{-1}||_1) given the precomputed matrix
/// norm; 0 when either factor is non-finite or the matrix is empty.
template <class T, class Solver>
double rcond_from_norm1(const Solver& lu, size_t n, double a_norm1,
                        int max_iter = 5) {
    if (n == 0 || a_norm1 <= 0.0 || !std::isfinite(a_norm1)) return 0.0;
    const double inv = norm1_inv_estimate<T>(lu, n, max_iter);
    if (inv <= 0.0) return 0.0;
    if (!std::isfinite(inv)) return 0.0;
    return 1.0 / (a_norm1 * inv);
}

/// (|A| |x|)_i for the Oettli-Prager denominator, CSC form.
template <class T>
std::vector<double> abs_mat_abs_vec(const SparseCSC<T>& a,
                                    const std::vector<T>& x) {
    std::vector<double> out(a.size(), 0.0);
    const auto& cp = a.col_ptr();
    const auto& ri = a.row_idx();
    const auto& vx = a.values();
    for (size_t j = 0; j < a.size(); ++j) {
        const double xj = condest_detail::mag(x[j]);
        if (xj == 0.0) continue;
        for (int p = cp[j]; p < cp[j + 1]; ++p)
            out[static_cast<size_t>(ri[static_cast<size_t>(p)])] +=
                condest_detail::mag(vx[static_cast<size_t>(p)]) * xj;
    }
    return out;
}

/// Dense form of the same.
template <class T>
std::vector<double> abs_mat_abs_vec(const DenseMatrix<T>& a,
                                    const std::vector<T>& x) {
    std::vector<double> out(a.rows(), 0.0);
    for (size_t i = 0; i < a.rows(); ++i) {
        double s = 0.0;
        for (size_t j = 0; j < a.cols(); ++j)
            s += condest_detail::mag(a(i, j)) * condest_detail::mag(x[j]);
        out[i] = s;
    }
    return out;
}

/// Componentwise backward error omega = max_i |Ax-b|_i / (|A||x|+|b|)_i,
/// hybridised with a normwise floor on the denominator (Arioli/Demmel/Duff):
/// a row whose own magnitude is vanishingly small against the dominant row
/// (a gmin-only anchor node with zero rhs and a ~1e-18 V solution, say) has
/// num ~= den ~= 1e-30 and would report omega = 1 — a 100% violation of an
/// equation that contributes nothing to the solution, unfixable by iterative
/// refinement because the correction itself rounds.  Such rows are measured
/// against scale * kOmegaDenFloorRel instead, so they register in proportion
/// to their actual influence.  An all-zero row/rhs pair stays consistent
/// (contributes 0); a NaN residual poisons the certificate with +inf.
/// Works for Mat = SparseCSC<T> or DenseMatrix<T>.
inline constexpr double kOmegaDenFloorRel = 1e-8; // ~sqrt(machine epsilon)

template <class Mat, class T>
double componentwise_backward_error(const Mat& a, const std::vector<T>& x,
                                    const std::vector<T>& b) {
    const std::vector<T> ax = a.multiply(x);
    const std::vector<double> den_ax = abs_mat_abs_vec(a, x);
    double scale = 0.0;
    for (size_t i = 0; i < ax.size(); ++i)
        scale = std::max(scale, den_ax[i] + condest_detail::mag(b[i]));
    const double den_floor = scale * kOmegaDenFloorRel;
    double omega = 0.0;
    for (size_t i = 0; i < ax.size(); ++i) {
        const double num = condest_detail::mag(ax[i] - b[i]);
        const double den =
            std::max(den_ax[i] + condest_detail::mag(b[i]), den_floor);
        if (den == 0.0) {
            if (num != 0.0) return std::numeric_limits<double>::infinity();
            continue;
        }
        const double w = num / den;
        if (!(w <= omega)) // NaN-safe max: a NaN row poisons the certificate
            omega = std::isnan(w) ? std::numeric_limits<double>::infinity() : w;
    }
    return omega;
}

/// One step of iterative refinement on an existing factorization:
/// x += A^{-1} (b - A x).  Returns the refined backward error.
template <class Mat, class T, class Solver>
double refine_once(const Solver& lu, const Mat& a, std::vector<T>& x,
                   const std::vector<T>& b) {
    const std::vector<T> ax = a.multiply(x);
    std::vector<T> r(b.size());
    for (size_t i = 0; i < b.size(); ++i) r[i] = b[i] - ax[i];
    const std::vector<T> d = lu.solve(r);
    for (size_t i = 0; i < x.size(); ++i) x[i] += d[i];
    return componentwise_backward_error(a, x, b);
}

} // namespace snim
