// Macromodel instantiation: converts a reduced RcNetwork into circuit
// devices (resistors/capacitors) wired to named circuit nodes.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "mor/elimination.hpp"

namespace snim::mor {

/// Instantiates `net` into `target`.  `port_nodes[i]` names the circuit node
/// for the network's node i (after reduction, node i is the i-th port).
/// `prefix` namespaces the generated device names; non-port internal nodes
/// (if the network was not reduced) get fresh node names under the prefix.
/// Conductances below `g_floor` (default 1 nS) are skipped to keep the
/// stitched netlist small.
void instantiate(const RcNetwork& net, circuit::Netlist& target,
                 const std::vector<std::string>& port_nodes, const std::string& prefix,
                 double g_floor = 1e-9, double c_floor = 1e-18);

/// Total capacitance of the network (for conservation checks).
double total_capacitance(const RcNetwork& net);

} // namespace snim::mor
