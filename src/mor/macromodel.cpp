#include "mor/macromodel.hpp"

#include "circuit/passives.hpp"
#include "util/strings.hpp"

namespace snim::mor {

void instantiate(const RcNetwork& net, circuit::Netlist& target,
                 const std::vector<std::string>& port_nodes, const std::string& prefix,
                 double g_floor, double c_floor) {
    using circuit::Capacitor;
    using circuit::NodeId;
    using circuit::Resistor;

    // Map local node ids to target nodes: the first port_nodes.size() nodes
    // are ports, the rest get fresh prefixed names.
    std::vector<NodeId> map(net.node_count, circuit::kGround);
    SNIM_ASSERT(port_nodes.size() <= net.node_count,
                "more port names (%zu) than nodes (%zu)", port_nodes.size(),
                net.node_count);
    for (size_t i = 0; i < net.node_count; ++i) {
        map[i] = (i < port_nodes.size()) ? target.node(port_nodes[i])
                                         : target.fresh_node(prefix);
    }

    int idx = 0;
    for (const auto& e : net.conductances) {
        if (e.value < g_floor) continue;
        const NodeId a = map[static_cast<size_t>(e.a)];
        const NodeId b = e.b < 0 ? circuit::kGround : map[static_cast<size_t>(e.b)];
        if (a == b) continue;
        target.add<Resistor>(format("%sr%d", prefix.c_str(), idx++), a, b, 1.0 / e.value);
    }
    idx = 0;
    for (const auto& e : net.capacitances) {
        if (e.value < c_floor) continue;
        const NodeId a = map[static_cast<size_t>(e.a)];
        const NodeId b = e.b < 0 ? circuit::kGround : map[static_cast<size_t>(e.b)];
        if (a == b) continue;
        target.add<Capacitor>(format("%sc%d", prefix.c_str(), idx++), a, b, e.value);
    }
}

double total_capacitance(const RcNetwork& net) {
    double c = 0.0;
    for (const auto& e : net.capacitances) c += e.value;
    return c;
}

} // namespace snim::mor
