// RC network reduction: Gaussian elimination of internal nodes of a
// conductance network with min-degree ordering (the SubstrateStorm-style
// macromodel step of the paper's flow).
//
// The port conductance matrix is preserved EXACTLY (Schur complement).
// Node-to-ground capacitances are redistributed onto the ports with the
// DC influence weights of the eliminated node (first-order PACT lumping):
// passive by construction and accurate far below the substrate's dielectric
// relaxation frequency (tens of GHz for 20 ohm cm silicon), which covers the
// paper's DC-15 MHz noise band with large margin.
#pragma once

#include <string>
#include <vector>

namespace snim::mor {

/// A linear RC network on local node ids 0..n-1; id -1 denotes ground.
struct RcNetwork {
    struct Elem {
        int a = 0;
        int b = -1;        // -1 = ground
        double value = 0.0; // conductance [S] or capacitance [F]
    };

    size_t node_count = 0;
    std::vector<Elem> conductances;
    std::vector<Elem> capacitances;

    void add_g(int a, int b, double g);
    void add_c(int a, int b, double c);
};

/// Eliminates every node not listed in `ports`; the result's nodes are
/// renumbered so that node i corresponds to ports[i].
/// Conductance entries smaller than `drop_tol` times the node's total
/// conductance are dropped after each elimination to bound fill-in.
RcNetwork eliminate_internal(const RcNetwork& net, const std::vector<int>& ports,
                             double drop_tol = 0.0);

/// Renumbers `net` so that node i corresponds to ports[i] and every
/// internal node follows in ascending original order — the identity
/// "reduction": no nodes are eliminated, but the result satisfies the same
/// ports-first convention as eliminate_internal / reduce_by_solve, so
/// macromodel instantiation accepts it unchanged.  The graceful-degradation
/// fallback for a failed reduction (the full mesh is stitched in instead).
RcNetwork ports_first(const RcNetwork& net, const std::vector<int>& ports);

/// Dense port conductance matrix (Schur complement) for validation; row/col
/// i corresponds to ports[i].  Entry (i,j) is dI_i/dV_j with every other
/// port grounded.  Ground row eliminated (standard grounded nodal matrix).
std::vector<std::vector<double>> dense_port_conductance(const RcNetwork& net,
                                                        const std::vector<int>& ports);

/// Schur-complement reduction computed by Jacobi-preconditioned conjugate-
/// gradient solves (one per port) instead of node elimination.  Exact up to
/// the CG tolerance, and immune to the fill-in explosion of min-degree on
/// 3-D meshes -- the production path for substrate extraction.  Capacitances
/// are projected with the same DC influence weights as eliminate_internal.
RcNetwork reduce_by_solve(const RcNetwork& net, const std::vector<int>& ports,
                          double cg_tol = 1e-9, int max_iter = 20000);

/// Reduction-error probe for the accuracy budget: drives both networks with
/// `probes` deterministic random +-1 port-voltage excitations and returns
/// the worst relative port-current error
///
///     max over probes of ||i_reduced - i_full||_2 / ||i_full||_2
///
/// where the full-side response comes from one CG solve per probe on the
/// internal block (same solver and assembly as reduce_by_solve, so the
/// comparison isolates the reduction itself).  `reduced` must follow the
/// ports-first convention (node i == ports[i]); conductances only — the
/// capacitance lumping is a modelling choice, not a solve, and is validated
/// by the tier-1 MOR tests instead.  Deterministic: fixed probe seed.
double probe_reduction_error(const RcNetwork& full, const RcNetwork& reduced,
                             const std::vector<int>& ports, int probes = 3,
                             double cg_tol = 1e-9, int max_iter = 20000);

} // namespace snim::mor
