#include "mor/elimination.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "numeric/dense.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace snim::mor {

void RcNetwork::add_g(int a, int b, double g) {
    SNIM_ASSERT(g >= 0, "negative conductance %g", g);
    SNIM_ASSERT(a >= 0 && static_cast<size_t>(a) < node_count, "bad node %d", a);
    SNIM_ASSERT(b >= -1 && b < static_cast<int>(node_count), "bad node %d", b);
    SNIM_ASSERT(a != b, "self-loop on node %d", a);
    if (g > 0) conductances.push_back({a, b, g});
}

void RcNetwork::add_c(int a, int b, double c) {
    SNIM_ASSERT(c >= 0, "negative capacitance %g", c);
    SNIM_ASSERT(a >= 0 && static_cast<size_t>(a) < node_count, "bad node %d", a);
    SNIM_ASSERT(b >= -1 && b < static_cast<int>(node_count), "bad node %d", b);
    SNIM_ASSERT(a != b, "self-loop on node %d", a);
    if (c > 0) capacitances.push_back({a, b, c});
}

namespace {

/// Working representation: per-node hash map of neighbour -> conductance,
/// plus per-node ground conductance and ground capacitance.
///
/// Capacitances with at least one PORT (or ground) end are tracked exactly:
/// `capadj[k]` maps a port id (or -1 for ground) to the capacitance between
/// internal node k and that port.  When k is eliminated, the internal end is
/// redistributed over k's resistive neighbours with DC influence weights,
/// preserving the series C -> local-substrate -> contacts topology (an
/// n-well port must NOT end up capacitively shorted to ground).  Purely
/// internal caps (the tiny dielectric mesh caps) are half-lumped to ground.
struct Work {
    std::vector<std::unordered_map<int, double>> adj;    // floating conductances
    std::vector<std::unordered_map<int, double>> capadj; // internal-node -> port caps
    std::vector<double> gnd_g;
    std::vector<double> gnd_c;
    std::vector<char> is_port;
    std::vector<char> eliminated;
};

/// Key for accumulating final port-port capacitances ((a,b) with a < b;
/// b == -1 encodes ground as INT_MIN-free sentinel by using a,b ordering
/// with ground mapped after).
struct PairHash {
    size_t operator()(const std::pair<int, int>& p) const {
        return std::hash<long long>()((static_cast<long long>(p.first) << 32) ^
                                      static_cast<unsigned>(p.second));
    }
};

} // namespace

RcNetwork eliminate_internal(const RcNetwork& net, const std::vector<int>& ports,
                             double drop_tol) {
    obs::ScopedTimer obs_timer("mor/eliminate_internal");
    const size_t n = net.node_count;
    SNIM_ASSERT(!ports.empty(), "need at least one port");
    if (obs::enabled() && n >= ports.size())
        obs::count("mor/nodes_eliminated", n - ports.size());

    Work w;
    w.adj.resize(n);
    w.capadj.resize(n);
    w.gnd_g.assign(n, 0.0);
    w.gnd_c.assign(n, 0.0);
    w.is_port.assign(n, 0);
    w.eliminated.assign(n, 0);
    // Final port-pair capacitances; (a,b) with a < b, b never -1 (ground
    // caps live in gnd_c of the port).
    std::unordered_map<std::pair<int, int>, double, PairHash> port_caps;

    for (int p : ports) {
        SNIM_ASSERT(p >= 0 && static_cast<size_t>(p) < n, "bad port %d", p);
        SNIM_ASSERT(!w.is_port[static_cast<size_t>(p)], "duplicate port %d", p);
        w.is_port[static_cast<size_t>(p)] = 1;
    }
    for (const auto& e : net.conductances) {
        if (e.b < 0) {
            w.gnd_g[static_cast<size_t>(e.a)] += e.value;
        } else {
            w.adj[static_cast<size_t>(e.a)][e.b] += e.value;
            w.adj[static_cast<size_t>(e.b)][e.a] += e.value;
        }
    }
    for (const auto& e : net.capacitances) {
        const size_t a = static_cast<size_t>(e.a);
        const bool a_port = w.is_port[a] != 0;
        if (e.b < 0) {
            w.gnd_c[a] += e.value; // exact for ports; lumped for internals
            continue;
        }
        const size_t b = static_cast<size_t>(e.b);
        const bool b_port = w.is_port[b] != 0;
        if (a_port && b_port) {
            port_caps[{std::min(e.a, e.b), std::max(e.a, e.b)}] += e.value;
        } else if (a_port) {
            w.capadj[b][e.a] += e.value;
        } else if (b_port) {
            w.capadj[a][e.b] += e.value;
        } else {
            // Internal-internal dielectric cap: half-lump to each end.
            w.gnd_c[a] += 0.5 * e.value;
            w.gnd_c[b] += 0.5 * e.value;
        }
    }

    // Exact min-degree elimination with ordered bucket sets.  Ties break
    // towards the smallest node index, which on structured meshes yields a
    // sweep-like, low-fill ordering (tie-breaking towards recently touched
    // nodes is catastrophic for fill-in).
    std::vector<std::set<int>> buckets(64);
    std::vector<unsigned char> cur_deg(n, 0);
    auto deg_of = [&](size_t i) {
        return static_cast<unsigned char>(std::min(w.adj[i].size(), buckets.size() - 1));
    };
    auto push = [&](size_t i) {
        const auto deg = deg_of(i);
        if (cur_deg[i] == deg) return;
        buckets[cur_deg[i]].erase(static_cast<int>(i));
        buckets[deg].insert(static_cast<int>(i));
        cur_deg[i] = deg;
    };
    for (size_t i = 0; i < n; ++i) {
        if (w.is_port[i]) continue;
        cur_deg[i] = deg_of(i);
        buckets[cur_deg[i]].insert(static_cast<int>(i));
    }
    size_t scan = 0;

    for (size_t count = 0; count + ports.size() < n; ++count) {
        while (scan < buckets.size() && buckets[scan].empty()) ++scan;
        SNIM_ASSERT(scan < buckets.size(), "bucket queue exhausted");
        const int best = *buckets[scan].begin();
        buckets[scan].erase(buckets[scan].begin());
        const size_t k = static_cast<size_t>(best);
        w.eliminated[k] = 1;

        // Gather neighbours.
        std::vector<std::pair<int, double>> nb(w.adj[k].begin(), w.adj[k].end());
        double total = w.gnd_g[k];
        for (const auto& [j, g] : nb) total += g;
        if (total <= 0.0) {
            // Isolated internal node: drop it (its capacitance is lost with
            // nothing to reference it to -- physically a floating island).
            for (const auto& [j, g] : nb) w.adj[static_cast<size_t>(j)].erase(best);
            w.capadj[k].clear();
            continue;
        }

        // Redistribute port-attached capacitances with DC influence weights:
        // the internal plate of C(port, k) moves onto k's neighbours.
        if (!w.capadj[k].empty()) {
            const double wgnd = w.gnd_g[k] / total;
            for (const auto& [port, c] : w.capadj[k]) {
                if (wgnd > 0) w.gnd_c[static_cast<size_t>(port)] += c * wgnd;
                for (const auto& [j, g] : nb) {
                    const double cj = c * g / total;
                    if (j == port) continue; // plate meets its own port: shorted
                    if (w.is_port[static_cast<size_t>(j)]) {
                        port_caps[{std::min(j, port), std::max(j, port)}] += cj;
                    } else {
                        w.capadj[static_cast<size_t>(j)][port] += cj;
                    }
                }
            }
            w.capadj[k].clear();
        }

        // Redistribute capacitance with DC influence weights.
        const double ck = w.gnd_c[k];
        // Schur update: g_ij += g_ik g_jk / total for all neighbour pairs,
        // g_j0 += g_jk g_k0 / total.
        for (size_t a = 0; a < nb.size(); ++a) {
            const int ja = nb[a].first;
            const double ga = nb[a].second;
            const double wa = ga / total;
            w.gnd_c[static_cast<size_t>(ja)] += ck * wa;
            w.gnd_g[static_cast<size_t>(ja)] += ga * w.gnd_g[k] / total;
            w.adj[static_cast<size_t>(ja)].erase(best);
            for (size_t b = a + 1; b < nb.size(); ++b) {
                const int jb = nb[b].first;
                const double gnew = ga * nb[b].second / total;
                w.adj[static_cast<size_t>(ja)][jb] += gnew;
                w.adj[static_cast<size_t>(jb)][ja] += gnew;
            }
        }
        w.adj[k].clear();

        // Move the touched neighbours to their new degree buckets.
        for (const auto& [j, g] : nb) {
            (void)g;
            const size_t ji = static_cast<size_t>(j);
            if (!w.is_port[ji] && !w.eliminated[ji]) push(ji);
        }
        scan = 0;

        // Optional drop-tolerance pruning around the touched nodes.
        if (drop_tol > 0.0) {
            for (const auto& [j, g] : nb) {
                auto& row = w.adj[static_cast<size_t>(j)];
                double rowsum = w.gnd_g[static_cast<size_t>(j)];
                for (const auto& [jj, gg] : row) rowsum += gg;
                const double cut = drop_tol * rowsum;
                for (auto it = row.begin(); it != row.end();) {
                    if (it->second < cut) {
                        // Keep DC path integrity: fold dropped conductance
                        // into the ground term of both endpoints? Folding to
                        // ground would change port impedances; instead drop
                        // symmetrically and accept the approximation.
                        w.adj[static_cast<size_t>(it->first)].erase(static_cast<int>(j));
                        it = row.erase(it);
                    } else {
                        ++it;
                    }
                }
            }
        }
    }

    // Collect the reduced network over the ports, renumbered.
    std::unordered_map<int, int> port_index;
    for (size_t i = 0; i < ports.size(); ++i) port_index[ports[i]] = static_cast<int>(i);

    RcNetwork out;
    out.node_count = ports.size();
    for (size_t i = 0; i < ports.size(); ++i) {
        const size_t p = static_cast<size_t>(ports[i]);
        if (w.gnd_g[p] > 0) out.add_g(static_cast<int>(i), -1, w.gnd_g[p]);
        if (w.gnd_c[p] > 0) out.add_c(static_cast<int>(i), -1, w.gnd_c[p]);
        // Ports are the only remaining nodes; emit each pair once.
        for (const auto& [j, g] : w.adj[p]) {
            if (j > static_cast<int>(p)) out.add_g(static_cast<int>(i), port_index.at(j), g);
        }
    }
    for (const auto& [pair, c] : port_caps) {
        if (c > 0) out.add_c(port_index.at(pair.first), port_index.at(pair.second), c);
    }
    return out;
}

std::vector<std::vector<double>> dense_port_conductance(const RcNetwork& net,
                                                        const std::vector<int>& ports) {
    const size_t n = net.node_count;
    DenseMatrix<double> g(n, n);
    for (const auto& e : net.conductances) {
        const size_t a = static_cast<size_t>(e.a);
        g(a, a) += e.value;
        if (e.b >= 0) {
            const size_t b = static_cast<size_t>(e.b);
            g(b, b) += e.value;
            g(a, b) -= e.value;
            g(b, a) -= e.value;
        }
    }

    // Partition into ports (P) and internal (I): Gpp - Gpi * Gii^-1 * Gip.
    std::vector<char> is_port(n, 0);
    for (int p : ports) is_port[static_cast<size_t>(p)] = 1;
    std::vector<size_t> internal;
    for (size_t i = 0; i < n; ++i)
        if (!is_port[i]) internal.push_back(i);

    const size_t np = ports.size(), ni = internal.size();
    std::vector<std::vector<double>> out(np, std::vector<double>(np, 0.0));
    if (ni == 0) {
        for (size_t i = 0; i < np; ++i)
            for (size_t j = 0; j < np; ++j)
                out[i][j] = g(static_cast<size_t>(ports[i]), static_cast<size_t>(ports[j]));
        return out;
    }

    DenseMatrix<double> gii(ni, ni), gip(ni, np);
    for (size_t i = 0; i < ni; ++i) {
        for (size_t j = 0; j < ni; ++j) gii(i, j) = g(internal[i], internal[j]);
        for (size_t j = 0; j < np; ++j)
            gip(i, j) = g(internal[i], static_cast<size_t>(ports[j]));
    }
    // Regularise isolated internal nodes so the solve stays well-posed.
    for (size_t i = 0; i < ni; ++i)
        if (gii(i, i) == 0.0) gii(i, i) = 1e-18;
    DenseLU<double> lu(gii);
    DenseMatrix<double> x = lu.solve(gip); // Gii^-1 Gip
    for (size_t i = 0; i < np; ++i) {
        for (size_t j = 0; j < np; ++j) {
            double v = g(static_cast<size_t>(ports[i]), static_cast<size_t>(ports[j]));
            for (size_t k = 0; k < ni; ++k)
                v -= g(static_cast<size_t>(ports[i]), internal[k]) * x(k, j);
            out[i][j] = v;
        }
    }
    return out;
}

RcNetwork ports_first(const RcNetwork& net, const std::vector<int>& ports) {
    const size_t n = net.node_count;
    std::vector<int> new_id(n, -1);
    for (size_t j = 0; j < ports.size(); ++j) {
        const int p = ports[j];
        SNIM_ASSERT(p >= 0 && static_cast<size_t>(p) < n, "bad port %d", p);
        SNIM_ASSERT(new_id[static_cast<size_t>(p)] < 0, "duplicate port %d", p);
        new_id[static_cast<size_t>(p)] = static_cast<int>(j);
    }
    int next = static_cast<int>(ports.size());
    for (size_t i = 0; i < n; ++i)
        if (new_id[i] < 0) new_id[i] = next++;

    RcNetwork out;
    out.node_count = n;
    auto remap = [&](int id) {
        return id < 0 ? -1 : new_id[static_cast<size_t>(id)];
    };
    out.conductances.reserve(net.conductances.size());
    for (const auto& e : net.conductances)
        out.conductances.push_back({remap(e.a), remap(e.b), e.value});
    out.capacitances.reserve(net.capacitances.size());
    for (const auto& e : net.capacitances)
        out.capacitances.push_back({remap(e.a), remap(e.b), e.value});
    return out;
}

} // namespace snim::mor
