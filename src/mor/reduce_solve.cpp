#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "mor/elimination.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace snim::mor {

namespace {

/// Compressed sparse row matrix for the internal-internal conductance block.
struct Csr {
    std::vector<int> ptr, idx;
    std::vector<double> val;
    std::vector<double> diag;
    size_t n = 0;

    void multiply(const std::vector<double>& x, std::vector<double>& y) const {
        for (size_t i = 0; i < n; ++i) {
            double s = diag[i] * x[i];
            for (int p = ptr[i]; p < ptr[i + 1]; ++p)
                s += val[static_cast<size_t>(p)] *
                     x[static_cast<size_t>(idx[static_cast<size_t>(p)])];
            y[i] = s;
        }
    }
};

/// Jacobi-preconditioned CG for the SPD conductance Laplacian.
bool pcg(const Csr& a, const std::vector<double>& b, std::vector<double>& x,
         double tol, int max_iter) {
    const size_t n = a.n;
    x.assign(n, 0.0);
    std::vector<double> r = b, z(n), p(n), ap(n);
    double bnorm = 0.0;
    for (double v : b) bnorm += v * v;
    bnorm = std::sqrt(bnorm);
    if (bnorm == 0.0) return true;

    for (size_t i = 0; i < n; ++i) z[i] = r[i] / a.diag[i];
    p = z;
    double rz = 0.0;
    for (size_t i = 0; i < n; ++i) rz += r[i] * z[i];

    for (int it = 0; it < max_iter; ++it) {
        a.multiply(p, ap);
        double pap = 0.0;
        for (size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
        if (pap <= 0.0) return false; // lost positive definiteness
        const double alpha = rz / pap;
        double rnorm = 0.0;
        for (size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
            rnorm += r[i] * r[i];
        }
        if (std::sqrt(rnorm) <= tol * bnorm) {
            if (obs::enabled()) obs::record_value("mor/cg_iters", it + 1);
            return true;
        }
        double rz_new = 0.0;
        for (size_t i = 0; i < n; ++i) {
            z[i] = r[i] / a.diag[i];
            rz_new += r[i] * z[i];
        }
        const double beta = rz_new / rz;
        rz = rz_new;
        for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
    return false;
}

/// The conductance network partitioned into port/internal blocks:
/// Gii (CSR), Gip (per-port sparse columns), dense Gpp, ground legs.
/// Shared by the Schur reduction and the reduction-error probes so both
/// sides of the comparison see the identical assembly (regularisation
/// included).
struct PartitionedG {
    size_t np = 0, ni = 0;
    std::vector<int> port_of, internal_of; // global node -> block index or -1
    Csr a;                                 // Gii, Jacobi-ready
    std::vector<std::vector<std::pair<int, double>>> gip; // port -> (internal, g)
    std::vector<std::vector<double>> gpp;
    std::vector<double> gnd_int, gnd_port;
};

PartitionedG partition_conductance(const RcNetwork& net,
                                   const std::vector<int>& ports) {
    const size_t n = net.node_count;
    const size_t np = ports.size();
    SNIM_ASSERT(np >= 1, "need at least one port");

    PartitionedG out;
    out.np = np;
    // Index maps: global -> internal index or port index.
    out.port_of.assign(n, -1);
    out.internal_of.assign(n, -1);
    for (size_t j = 0; j < np; ++j) {
        const int p = ports[j];
        SNIM_ASSERT(p >= 0 && static_cast<size_t>(p) < n, "bad port %d", p);
        SNIM_ASSERT(out.port_of[static_cast<size_t>(p)] < 0, "duplicate port %d", p);
        out.port_of[static_cast<size_t>(p)] = static_cast<int>(j);
    }
    size_t ni = 0;
    for (size_t i = 0; i < n; ++i)
        if (out.port_of[i] < 0) out.internal_of[i] = static_cast<int>(ni++);
    out.ni = ni;

    // Assemble Gii (CSR), Gip (per-port sparse rhs), Gpp, ground terms.
    std::vector<std::vector<std::pair<int, double>>> rows(ni);
    std::vector<double> diag(ni, 0.0);
    out.gip.assign(np, {});
    out.gpp.assign(np, std::vector<double>(np, 0.0));
    out.gnd_int.assign(ni, 0.0);
    out.gnd_port.assign(np, 0.0);
    auto& gip = out.gip;
    auto& gpp = out.gpp;

    for (const auto& e : net.conductances) {
        const int pa = out.port_of[static_cast<size_t>(e.a)];
        const int pb = e.b < 0 ? -2 : out.port_of[static_cast<size_t>(e.b)];
        const int ia = out.internal_of[static_cast<size_t>(e.a)];
        const int ib = e.b < 0 ? -2 : out.internal_of[static_cast<size_t>(e.b)];
        if (e.b < 0) {
            if (pa >= 0)
                out.gnd_port[static_cast<size_t>(pa)] += e.value;
            else
                out.gnd_int[static_cast<size_t>(ia)] += e.value;
            continue;
        }
        if (pa >= 0 && pb >= 0) {
            gpp[static_cast<size_t>(pa)][static_cast<size_t>(pb)] -= e.value;
            gpp[static_cast<size_t>(pb)][static_cast<size_t>(pa)] -= e.value;
            gpp[static_cast<size_t>(pa)][static_cast<size_t>(pa)] += e.value;
            gpp[static_cast<size_t>(pb)][static_cast<size_t>(pb)] += e.value;
        } else if (pa >= 0) {
            gip[static_cast<size_t>(pa)].emplace_back(ib, e.value);
            diag[static_cast<size_t>(ib)] += e.value;
            gpp[static_cast<size_t>(pa)][static_cast<size_t>(pa)] += e.value;
        } else if (pb >= 0) {
            gip[static_cast<size_t>(pb)].emplace_back(ia, e.value);
            diag[static_cast<size_t>(ia)] += e.value;
            gpp[static_cast<size_t>(pb)][static_cast<size_t>(pb)] += e.value;
        } else {
            rows[static_cast<size_t>(ia)].emplace_back(ib, -e.value);
            rows[static_cast<size_t>(ib)].emplace_back(ia, -e.value);
            diag[static_cast<size_t>(ia)] += e.value;
            diag[static_cast<size_t>(ib)] += e.value;
        }
    }
    for (size_t i = 0; i < ni; ++i) {
        diag[i] += out.gnd_int[i];
        // Regularise isolated internal nodes.
        if (diag[i] <= 0.0) diag[i] = 1e-15;
    }

    Csr& a = out.a;
    a.n = ni;
    a.diag = std::move(diag);
    a.ptr.resize(ni + 1, 0);
    for (size_t i = 0; i < ni; ++i)
        a.ptr[i + 1] = a.ptr[i] + static_cast<int>(rows[i].size());
    a.idx.resize(static_cast<size_t>(a.ptr[ni]));
    a.val.resize(static_cast<size_t>(a.ptr[ni]));
    for (size_t i = 0; i < ni; ++i) {
        int p = a.ptr[i];
        for (const auto& [j, v] : rows[i]) {
            a.idx[static_cast<size_t>(p)] = j;
            a.val[static_cast<size_t>(p)] = v;
            ++p;
        }
    }
    return out;
}

} // namespace

RcNetwork reduce_by_solve(const RcNetwork& net, const std::vector<int>& ports,
                          double cg_tol, int max_iter) {
    obs::ScopedTimer obs_timer("mor/reduce_by_solve");
    if (fault::fires("mor.cg.fail"))
        raise("substrate reduction: CG failed to converge for port 0 "
              "(fault injected)");
    const size_t np = ports.size();
    PartitionedG part = partition_conductance(net, ports);
    const size_t ni = part.ni;
    const Csr& a = part.a;
    const auto& gip = part.gip;
    const auto& gpp = part.gpp;
    const auto& gnd_port = part.gnd_port;
    const auto& port_of = part.port_of;
    const auto& internal_of = part.internal_of;

    // Influence solves: Gii w_j = Gip(:,j); M[k][j] = w_j[k] in [0,1].
    std::vector<std::vector<double>> w(np);
    for (size_t j = 0; j < np; ++j) {
        std::vector<double> rhs(ni, 0.0);
        for (const auto& [k, g] : gip[j]) rhs[static_cast<size_t>(k)] += g;
        if (ni == 0) {
            w[j] = {};
            continue;
        }
        obs::count("mor/cg_solves");
        if (!pcg(a, rhs, w[j], cg_tol, max_iter))
            raise("substrate reduction: CG failed to converge for port %zu", j);
    }

    // Port conductance matrix: Gpp - Gip^T Gii^-1 Gip.
    std::vector<std::vector<double>> gport = gpp;
    for (size_t i = 0; i < np; ++i) {
        for (size_t j = i; j < np; ++j) {
            double s = 0.0;
            for (const auto& [k, g] : gip[i]) s += g * w[j][static_cast<size_t>(k)];
            gport[i][j] -= s;
            if (j != i) gport[j][i] = gport[i][j];
        }
    }

    RcNetwork out;
    out.node_count = np;
    // Ground conductance per port: row sum (includes direct ground legs and
    // the current lost to grounded internal nodes).
    for (size_t i = 0; i < np; ++i) {
        double row = gnd_port[i];
        for (size_t j = 0; j < np; ++j) row += gport[i][j];
        // Account for internal ground legs: current into ground via Gii^-1
        // is already part of the Schur row sum when the network is grounded.
        if (row > 1e-18) out.add_g(static_cast<int>(i), -1, row);
        for (size_t j = i + 1; j < np; ++j) {
            const double g = -gport[i][j];
            if (g > 1e-18) out.add_g(static_cast<int>(i), static_cast<int>(j), g);
        }
    }

    // --- capacitance projection -----------------------------------------
    // Ground caps at internal nodes lump onto ports with influence weights;
    // port-attached caps redistribute their internal plate exactly.
    std::vector<double> cgnd_int(ni, 0.0);
    std::vector<double> cgnd_port(np, 0.0);
    std::unordered_map<long long, double> cpair; // (i<j) port pair caps
    auto pair_key = [](int i, int j) {
        return (static_cast<long long>(std::min(i, j)) << 32) ^
               static_cast<unsigned>(std::max(i, j));
    };
    std::vector<std::vector<std::pair<int, double>>> capadj(ni); // internal->port

    for (const auto& e : net.capacitances) {
        const int pa = port_of[static_cast<size_t>(e.a)];
        const int pb = e.b < 0 ? -2 : port_of[static_cast<size_t>(e.b)];
        const int ia = internal_of[static_cast<size_t>(e.a)];
        const int ib = e.b < 0 ? -2 : internal_of[static_cast<size_t>(e.b)];
        if (e.b < 0) {
            if (pa >= 0)
                cgnd_port[static_cast<size_t>(pa)] += e.value;
            else
                cgnd_int[static_cast<size_t>(ia)] += e.value;
        } else if (pa >= 0 && pb >= 0) {
            cpair[pair_key(pa, pb)] += e.value;
        } else if (pa >= 0) {
            capadj[static_cast<size_t>(ib)].emplace_back(pa, e.value);
        } else if (pb >= 0) {
            capadj[static_cast<size_t>(ia)].emplace_back(pb, e.value);
        } else {
            cgnd_int[static_cast<size_t>(ia)] += 0.5 * e.value;
            cgnd_int[static_cast<size_t>(ib)] += 0.5 * e.value;
        }
    }

    for (size_t k = 0; k < ni; ++k) {
        if (cgnd_int[k] > 0.0) {
            for (size_t j = 0; j < np; ++j) {
                const double m = w[j].empty() ? 0.0 : w[j][k];
                if (m > 1e-12) cgnd_port[j] += cgnd_int[k] * m;
            }
        }
        for (const auto& [port, c] : capadj[k]) {
            double covered = 0.0;
            for (size_t j = 0; j < np; ++j) {
                const double m = w[j].empty() ? 0.0 : w[j][k];
                if (m <= 1e-12) continue;
                covered += m;
                if (static_cast<int>(j) == port) continue; // shorted plate
                cpair[pair_key(port, static_cast<int>(j))] += c * m;
            }
            // Remainder flows to ground (grounded networks only).
            const double rest = c * std::max(0.0, 1.0 - covered);
            if (rest > 1e-21) cgnd_port[static_cast<size_t>(port)] += rest;
        }
    }

    for (size_t i = 0; i < np; ++i)
        if (cgnd_port[i] > 0.0) out.add_c(static_cast<int>(i), -1, cgnd_port[i]);
    for (const auto& [key, c] : cpair) {
        if (c <= 0.0) continue;
        const int i = static_cast<int>(key >> 32);
        const int j = static_cast<int>(key & 0xffffffff);
        out.add_c(i, j, c);
    }
    return out;
}

double probe_reduction_error(const RcNetwork& full, const RcNetwork& reduced,
                             const std::vector<int>& ports, int probes,
                             double cg_tol, int max_iter) {
    obs::ScopedTimer obs_timer("mor/probe_reduction_error");
    const size_t np = ports.size();
    SNIM_ASSERT(reduced.node_count == np,
                "reduced network has %zu nodes for %zu ports",
                reduced.node_count, np);
    if (probes <= 0 || np == 0) return 0.0;
    PartitionedG part = partition_conductance(full, ports);

    // Fixed-seed xorshift64 so the probe excitations — hence the reported
    // error — are identical run to run and thread-count independent.
    uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next_sign = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return (state >> 32) & 1 ? 1.0 : -1.0;
    };

    double worst = 0.0;
    std::vector<double> u; // internal response, reused across probes
    for (int t = 0; t < probes; ++t) {
        std::vector<double> v(np);
        for (double& vi : v) vi = next_sign();
        // Remove the common mode (np > 1): an equal-potential excitation of
        // a weakly grounded substrate drives almost no current, so both
        // sides of the comparison would be CG-tolerance noise and the ratio
        // meaningless.  The differential response is what the reduction must
        // preserve; for a single port the ground admittance IS the model.
        if (np > 1) {
            double mean = 0.0;
            for (double vi : v) mean += vi;
            mean /= static_cast<double>(np);
            if (mean == 1.0 || mean == -1.0) {
                v[0] = -v[0]; // all-equal pattern: flip one to keep a signal
                mean += 2.0 * v[0] / static_cast<double>(np);
            }
            for (double& vi : v) vi -= mean;
        }

        // Full-side port currents: i = (Gpp + diag(gnd)) v - Gip^T Gii^-1 Gip v.
        std::vector<double> rhs(part.ni, 0.0);
        for (size_t j = 0; j < np; ++j)
            for (const auto& [k, g] : part.gip[j])
                rhs[static_cast<size_t>(k)] += g * v[j];
        if (part.ni > 0) {
            obs::count("mor/probe_cg_solves");
            if (!pcg(part.a, rhs, u, cg_tol, max_iter))
                raise("substrate reduction probe: CG failed to converge");
        } else {
            u.clear();
        }
        std::vector<double> ifull(np, 0.0);
        for (size_t j = 0; j < np; ++j) {
            double s = part.gnd_port[j] * v[j];
            for (size_t q = 0; q < np; ++q) s += part.gpp[j][q] * v[q];
            for (const auto& [k, g] : part.gip[j])
                s -= g * u[static_cast<size_t>(k)];
            ifull[j] = s;
        }

        // Reduced-side currents straight from the macromodel's elements
        // (every reduced node IS a port by the ports-first convention).
        std::vector<double> ired(np, 0.0);
        for (const auto& e : reduced.conductances) {
            const double va = v[static_cast<size_t>(e.a)];
            const double vb = e.b < 0 ? 0.0 : v[static_cast<size_t>(e.b)];
            ired[static_cast<size_t>(e.a)] += e.value * (va - vb);
            if (e.b >= 0) ired[static_cast<size_t>(e.b)] += e.value * (vb - va);
        }

        double dn = 0.0, fn = 0.0;
        for (size_t j = 0; j < np; ++j) {
            dn += (ired[j] - ifull[j]) * (ired[j] - ifull[j]);
            fn += ifull[j] * ifull[j];
        }
        double rel;
        if (fn > 0.0)
            rel = std::sqrt(dn / fn);
        else
            rel = dn > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
        if (!(rel <= worst)) // NaN ranks worst instead of vanishing
            worst = std::isfinite(rel) ? rel
                                       : std::numeric_limits<double>::infinity();
    }
    return worst;
}

} // namespace snim::mor
