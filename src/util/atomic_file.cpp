#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/error.hpp"

namespace snim::util {

namespace {

/// fsync the directory containing `path` so a completed rename survives a
/// power cut.  Best-effort: some filesystems refuse directory fsync and the
/// rename is still atomic against process crashes, which is the contract
/// the callers rely on.
void sync_parent_dir(const std::string& path) {
    const size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

void write_file_atomic(const std::string& path, std::string_view data) {
    // Pid-qualified temp name: concurrent writers of the same target each
    // stage privately and the last rename wins whole.
    const std::string tmp = format("%s.tmp.%d", path.c_str(), ::getpid());
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        raise("cannot create '%s': %s", tmp.c_str(), std::strerror(errno));

    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
        const ssize_t w = ::write(fd, p, left);
        if (w < 0) {
            if (errno == EINTR) continue;
            const int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            raise("short write to '%s': %s", tmp.c_str(), std::strerror(err));
        }
        p += w;
        left -= static_cast<size_t>(w);
    }
    if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        raise("fsync '%s' failed: %s", tmp.c_str(), std::strerror(err));
    }
    if (::close(fd) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        raise("close '%s' failed: %s", tmp.c_str(), std::strerror(err));
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        raise("rename '%s' -> '%s' failed: %s", tmp.c_str(), path.c_str(),
              std::strerror(err));
    }
    sync_parent_dir(path);
}

void append_record_atomic(const std::string& path, std::string_view record) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        raise("cannot open '%s' for append: %s", path.c_str(),
              std::strerror(errno));
    std::string line;
    line.reserve(record.size() + 1);
    line.append(record);
    line.push_back('\n');
    // One write(2) for the whole record: O_APPEND makes it atomic against
    // concurrent appenders.  A kernel short write (out of space) leaves a
    // torn tail we cannot retract — report it so the caller knows the
    // ledger needs repair rather than silently carrying a broken line.
    ssize_t w;
    do {
        w = ::write(fd, line.data(), line.size());
    } while (w < 0 && errno == EINTR);
    const int err = errno;
    ::close(fd);
    if (w < 0)
        raise("append to '%s' failed: %s", path.c_str(), std::strerror(err));
    if (static_cast<size_t>(w) != line.size())
        raise("short append to '%s' (%zd of %zu bytes)", path.c_str(), w,
              line.size());
}

} // namespace snim::util
