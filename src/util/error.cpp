#include "util/error.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace snim {

static std::string vformat(const char* fmt, va_list ap) {
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string format(const char* fmt, ...) {
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void raise(const char* fmt, ...) {
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    throw Error(s);
}

} // namespace snim
