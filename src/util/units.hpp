// Unit helpers and physical constants used throughout the library.
//
// Internal conventions:
//   * geometry in micrometres (um) inside layout/geom, converted to metres
//     at extraction boundaries;
//   * electrical quantities in SI (V, A, ohm, F, H, Hz, s).
#pragma once

#include <cmath>

namespace snim::units {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Vacuum permittivity [F/m].
inline constexpr double kEps0 = 8.8541878128e-12;
/// Relative permittivity of SiO2.
inline constexpr double kEpsOx = 3.9;
/// Relative permittivity of silicon.
inline constexpr double kEpsSi = 11.7;
/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double kQ = 1.602176634e-19;
/// Thermal voltage at 300 K [V].
inline constexpr double kVt300 = 0.025852;

inline constexpr double um_to_m(double um) { return um * 1e-6; }
inline constexpr double m_to_um(double m) { return m * 1e6; }

/// Power ratio in dB (P in W or ratio of powers).
inline double db10(double power_ratio) { return 10.0 * std::log10(power_ratio); }
/// Amplitude ratio in dB.
inline double db20(double amp_ratio) { return 20.0 * std::log10(amp_ratio); }
inline double from_db10(double db) { return std::pow(10.0, db / 10.0); }
inline double from_db20(double db) { return std::pow(10.0, db / 20.0); }

/// dBm for a sinusoid of amplitude `amp` volts across `rload` ohms.
double dbm_from_amplitude(double amp, double rload = 50.0);
/// Amplitude in volts of a sinusoid dissipating `dbm` in `rload` ohms.
double amplitude_from_dbm(double dbm, double rload = 50.0);

} // namespace snim::units
