#include "util/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace snim {

static LogLevel g_level = LogLevel::Warn;

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

static void emit(const char* tag, const char* fmt, va_list ap) {
    std::fprintf(stderr, "[snim %s] ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

void log_debug(const char* fmt, ...) {
    if (g_level > LogLevel::Debug) return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", fmt, ap);
    va_end(ap);
}

void log_info(const char* fmt, ...) {
    if (g_level > LogLevel::Info) return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

void log_warn(const char* fmt, ...) {
    if (g_level > LogLevel::Warn) return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

} // namespace snim
