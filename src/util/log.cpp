#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace snim {

namespace {

LogLevel g_level = LogLevel::Warn;
LogSink g_sink; // empty -> default stderr sink
std::atomic<size_t> g_emitted[4] = {};

const char* tag_of(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Quiet: break;
    }
    return "?";
}

void emit(LogLevel level, const char* fmt, va_list ap) {
    g_emitted[static_cast<size_t>(level)].fetch_add(1, std::memory_order_relaxed);
    if (!g_sink) {
        std::fprintf(stderr, "[snim %s] ", tag_of(level));
        std::vfprintf(stderr, fmt, ap);
        std::fputc('\n', stderr);
        return;
    }
    va_list ap2;
    va_copy(ap2, ap);
    const int need = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    std::vector<char> buf(static_cast<size_t>(need < 0 ? 0 : need) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    g_sink(level, std::string_view(buf.data(), static_cast<size_t>(need < 0 ? 0 : need)));
}

} // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

LogSink set_log_sink(LogSink sink) {
    LogSink prev = std::move(g_sink);
    g_sink = std::move(sink);
    return prev;
}

size_t log_emit_count(LogLevel level) {
    return g_emitted[static_cast<size_t>(level)].load(std::memory_order_relaxed);
}

void log_debug(const char* fmt, ...) {
    if (g_level > LogLevel::Debug) return;
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Debug, fmt, ap);
    va_end(ap);
}

void log_info(const char* fmt, ...) {
    if (g_level > LogLevel::Info) return;
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Info, fmt, ap);
    va_end(ap);
}

void log_warn(const char* fmt, ...) {
    if (g_level > LogLevel::Warn) return;
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Warn, fmt, ap);
    va_end(ap);
}

} // namespace snim
