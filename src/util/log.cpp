#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace snim {

namespace {

LogSink g_sink;   // empty -> default stderr sink
LogSink g_mirror; // empty -> no mirror tap
std::atomic<size_t> g_emitted[4] = {};

char ascii_lower(char c) { return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c; }

/// SNIM_LOG is consulted exactly once, on the first level read; a malformed
/// value falls back to the Warn default (and cannot warn about itself
/// without recursing into the logger, so it is silently ignored).
LogLevel initial_level() {
    const char* env = std::getenv("SNIM_LOG");
    if (env && *env)
        if (auto lvl = parse_log_level(env)) return *lvl;
    return LogLevel::Warn;
}

LogLevel& level_ref() {
    static LogLevel level = initial_level();
    return level;
}

const char* tag_of(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Quiet: break;
    }
    return "?";
}

void emit(LogLevel level, const char* fmt, va_list ap) {
    g_emitted[static_cast<size_t>(level)].fetch_add(1, std::memory_order_relaxed);
    // Compose once: the sink, the default stderr path and the mirror all
    // need the formatted text.
    va_list ap2;
    va_copy(ap2, ap);
    const int need = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    std::vector<char> buf(static_cast<size_t>(need < 0 ? 0 : need) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    const std::string_view msg(buf.data(), static_cast<size_t>(need < 0 ? 0 : need));
    if (g_sink) {
        g_sink(level, msg);
    } else {
        std::fprintf(stderr, "[snim %s] %.*s\n", tag_of(level),
                     static_cast<int>(msg.size()), msg.data());
    }
    if (g_mirror) g_mirror(level, msg);
}

} // namespace

void set_log_level(LogLevel level) { level_ref() = level; }
LogLevel log_level() { return level_ref(); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
    std::string lower;
    lower.reserve(text.size());
    for (char c : text) lower += ascii_lower(c);
    if (lower == "debug") return LogLevel::Debug;
    if (lower == "info") return LogLevel::Info;
    if (lower == "warn" || lower == "warning") return LogLevel::Warn;
    if (lower == "quiet" || lower == "off") return LogLevel::Quiet;
    return std::nullopt;
}

LogSink set_log_sink(LogSink sink) {
    LogSink prev = std::move(g_sink);
    g_sink = std::move(sink);
    return prev;
}

LogSink set_log_mirror(LogSink mirror) {
    LogSink prev = std::move(g_mirror);
    g_mirror = std::move(mirror);
    return prev;
}

size_t log_emit_count(LogLevel level) {
    return g_emitted[static_cast<size_t>(level)].load(std::memory_order_relaxed);
}

void log_debug(const char* fmt, ...) {
    if (log_level() > LogLevel::Debug) return;
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Debug, fmt, ap);
    va_end(ap);
}

void log_info(const char* fmt, ...) {
    if (log_level() > LogLevel::Info) return;
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Info, fmt, ap);
    va_end(ap);
}

void log_warn(const char* fmt, ...) {
    if (log_level() > LogLevel::Warn) return;
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Warn, fmt, ap);
    va_end(ap);
}

} // namespace snim
