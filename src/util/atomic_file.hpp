// Crash-consistent file primitives.
//
// Every durable artifact this codebase emits (checkpoints, BENCH reports,
// diagnosis bundles, VCD dumps, ledger records) goes through one of two
// protocols:
//
//   write_file_atomic   write-temp -> fsync -> rename(temp, path), then
//                       fsync the directory so the rename itself is durable.
//                       A reader never observes a torn file: it sees either
//                       the old content or the new content, all of it.
//
//   append_record_atomic  one O_APPEND write(2) of record + '\n'.  POSIX
//                       appends of a single write are atomic with respect to
//                       concurrent appenders, so a JSONL ledger shared by
//                       several processes never interleaves mid-record.
//
// The last-gasp crash handler deliberately does NOT use these helpers — it
// runs inside a signal handler where only raw-fd writes are safe.
#pragma once

#include <string>
#include <string_view>

namespace snim::util {

/// Atomically replaces `path` with `data`.  Raises snim::Error on any I/O
/// failure (the temp file is unlinked on the error path).
void write_file_atomic(const std::string& path, std::string_view data);

/// Appends `record` + '\n' to `path` as a single O_APPEND write so
/// concurrent appenders cannot interleave mid-record.  Creates the file
/// (0644) if missing.  Raises snim::Error on failure or short write.
void append_record_atomic(const std::string& path, std::string_view record);

} // namespace snim::util
