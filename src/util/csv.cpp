#include "util/csv.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace snim {

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::add_row(const std::vector<double>& values) {
    SNIM_ASSERT(values.size() == headers_.size(), "csv row width mismatch");
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) cells.push_back(format("%.9g", v));
    rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
    SNIM_ASSERT(cells.size() == headers_.size(), "csv row width mismatch");
    rows_.push_back(cells);
}

std::string CsvWriter::to_string() const {
    std::string out;
    for (size_t c = 0; c < headers_.size(); ++c) {
        out += headers_[c];
        out += (c + 1 < headers_.size()) ? "," : "\n";
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            out += (c + 1 < row.size()) ? "," : "\n";
        }
    }
    return out;
}

void CsvWriter::save(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) raise("cannot open '%s' for writing", path.c_str());
    const std::string s = to_string();
    const size_t n = std::fwrite(s.data(), 1, s.size(), f);
    std::fclose(f);
    if (n != s.size()) raise("short write to '%s'", path.c_str());
}

} // namespace snim
