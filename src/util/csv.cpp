#include "util/csv.hpp"

#include <cstdio>
#include <cstdlib>
#include <iterator>

#include "util/error.hpp"

namespace snim {

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::add_row(const std::vector<double>& values) {
    SNIM_ASSERT(values.size() == headers_.size(), "csv row width mismatch");
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) cells.push_back(format("%.9g", v));
    rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
    SNIM_ASSERT(cells.size() == headers_.size(), "csv row width mismatch");
    rows_.push_back(cells);
}

std::string CsvWriter::to_string() const {
    std::string out;
    for (size_t c = 0; c < headers_.size(); ++c) {
        out += headers_[c];
        out += (c + 1 < headers_.size()) ? "," : "\n";
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            out += (c + 1 < row.size()) ? "," : "\n";
        }
    }
    return out;
}

void CsvWriter::save(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) raise("cannot open '%s' for writing", path.c_str());
    const std::string s = to_string();
    const size_t n = std::fwrite(s.data(), 1, s.size(), f);
    std::fclose(f);
    if (n != s.size()) raise("short write to '%s'", path.c_str());
}

size_t CsvTable::column(std::string_view name) const {
    for (size_t c = 0; c < headers_.size(); ++c)
        if (headers_[c] == name) return c;
    raise("csv has no column '%.*s'", static_cast<int>(name.size()), name.data());
}

bool CsvTable::has_column(std::string_view name) const {
    for (const auto& h : headers_)
        if (h == name) return true;
    return false;
}

const std::string& CsvTable::cell(size_t row, size_t col) const {
    SNIM_ASSERT(row < rows_.size() && col < headers_.size(), "csv cell out of range");
    return rows_[row][col];
}

double CsvTable::number(size_t row, size_t col) const {
    const std::string& s = cell(row, col);
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || (end && *end != '\0'))
        raise("csv cell '%s' (row %zu, col %zu) is not a number", s.c_str(), row, col);
    return v;
}

bool CsvTable::empty_cell(size_t row, size_t col) const { return cell(row, col).empty(); }

CsvTable parse_csv(std::string_view text) {
    std::vector<std::vector<std::string>> lines;
    std::vector<std::string> cells;
    std::string cur;
    auto end_cell = [&] { cells.push_back(std::move(cur)); cur.clear(); };
    auto end_line = [&] {
        end_cell();
        // A lone trailing newline yields one empty cell: not a data row.
        if (!(cells.size() == 1 && cells[0].empty())) lines.push_back(std::move(cells));
        cells.clear();
    };
    for (char ch : text) {
        if (ch == ',') end_cell();
        else if (ch == '\n') end_line();
        else if (ch != '\r') cur += ch;
    }
    if (!cur.empty() || !cells.empty()) end_line();

    if (lines.empty()) raise("csv text has no header row");
    std::vector<std::string> headers = std::move(lines.front());
    std::vector<std::vector<std::string>> rows(std::make_move_iterator(lines.begin() + 1),
                                               std::make_move_iterator(lines.end()));
    for (size_t r = 0; r < rows.size(); ++r)
        if (rows[r].size() != headers.size())
            raise("csv row %zu has %zu cells, header has %zu", r + 1, rows[r].size(),
                  headers.size());
    return CsvTable(std::move(headers), std::move(rows));
}

CsvTable read_csv(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f) raise("cannot open '%s' for reading", path.c_str());
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
    return parse_csv(text);
}

} // namespace snim
