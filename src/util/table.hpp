// ASCII table and dot-plot rendering for bench / example output.
//
// Benches print the same rows/series a paper figure shows; Table keeps the
// formatting consistent and AsciiPlot gives a quick visual of series shape
// (e.g. spur power vs log-frequency) directly in the terminal.
#pragma once

#include <string>
#include <vector>

namespace snim {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);
    /// Convenience: formats doubles with %g-style precision.
    void add_row_values(const std::vector<double>& values, int precision = 5);

    std::string to_string() const;
    void print() const;

    size_t row_count() const { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// One named series of (x, y) points.
struct PlotSeries {
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
    char marker = '*';
};

/// Renders series on a character grid; x may be plotted on a log axis, which
/// is what the paper's Figures 8-10 use.
class AsciiPlot {
public:
    AsciiPlot(std::string title, std::string xlabel, std::string ylabel);

    void set_log_x(bool log_x) { log_x_ = log_x; }
    void set_size(int width, int height);
    void add(PlotSeries series);

    std::string to_string() const;
    void print() const;

private:
    std::string title_, xlabel_, ylabel_;
    std::vector<PlotSeries> series_;
    bool log_x_ = false;
    int width_ = 72;
    int height_ = 20;
};

} // namespace snim
