// CSV writer used by benches to dump figure data for external plotting.
#pragma once

#include <string>
#include <vector>

namespace snim {

class CsvWriter {
public:
    explicit CsvWriter(std::vector<std::string> headers);

    void add_row(const std::vector<double>& values);
    void add_row(const std::vector<std::string>& cells);

    std::string to_string() const;
    /// Writes to `path`; throws snim::Error on I/O failure.
    void save(const std::string& path) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace snim
