// CSV writer used by benches to dump figure data for external plotting, and
// the matching reader used by the bench harness to load the paper-reference
// CSVs back for accuracy scoring.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace snim {

class CsvWriter {
public:
    explicit CsvWriter(std::vector<std::string> headers);

    void add_row(const std::vector<double>& values);
    void add_row(const std::vector<std::string>& cells);

    std::string to_string() const;
    /// Writes to `path`; throws snim::Error on I/O failure.
    void save(const std::string& path) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// A parsed CSV file: one header row plus string cells.  Covers exactly what
/// CsvWriter emits (no quoting, no embedded commas) — enough for the figure
/// reference files this repo round-trips.
class CsvTable {
public:
    CsvTable(std::vector<std::string> headers,
             std::vector<std::vector<std::string>> rows)
        : headers_(std::move(headers)), rows_(std::move(rows)) {}

    const std::vector<std::string>& headers() const { return headers_; }
    size_t row_count() const { return rows_.size(); }

    /// Index of the named column; throws snim::Error when absent.
    size_t column(std::string_view name) const;
    bool has_column(std::string_view name) const;

    const std::string& cell(size_t row, size_t col) const;
    /// Cell parsed as a double; throws snim::Error on non-numeric content.
    double number(size_t row, size_t col) const;
    /// True when the cell is empty (a value the writer skipped).
    bool empty_cell(size_t row, size_t col) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text (header line + data lines).  Throws snim::Error on ragged
/// rows or a missing header.
CsvTable parse_csv(std::string_view text);

/// Reads and parses a CSV file; throws snim::Error on I/O failure.
CsvTable read_csv(const std::string& path);

} // namespace snim
