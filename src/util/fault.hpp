// Deterministic fault injection: named fault points compiled into the
// solver engines so tests (and operators chasing a heisenbug) can force
// every recovery and diagnosis path on demand.
//
// A fault point is a string like "tran.step.fail" placed at the exact spot
// where the real failure would originate (a singular LU, a NaN update, a
// Newton stall).  Engines ask `fault::fires(point)` on every pass through
// the point; each query increments a per-point counter, and the fault fires
// when that counter falls inside an armed window [at, at + count).  Firing
// is therefore a pure function of the query sequence — two runs with the
// same armed faults take bit-identical paths, which is what lets the
// recovery tests assert full waveform determinism.
//
// Arming:
//   * API: fault::arm({.point = "tran.step.fail", .at = 51, .count = 2});
//   * env: SNIM_FAULT=tran.step.fail@51x2,mor.cg.fail  (parsed once, on the
//     first framework use; malformed entries are warned about and skipped).
//     `@at` defaults to 1, `xcount` to 1; `x-1` keeps a window open forever.
//
// Cost: one relaxed atomic load per query while nothing is armed.  Configure
// with -DSNIM_ENABLE_FAULTS=OFF and every entry point collapses to an inline
// no-op (`fires` returns a compile-time false), proving release builds carry
// no functional dependency on the hooks.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#ifndef SNIM_FAULTS_ENABLED
#define SNIM_FAULTS_ENABLED 1
#endif

namespace snim::fault {

/// One armed fault window: fire on queries at, at+1, ..., at+count-1 of
/// `point` (1-based; count < 0 keeps firing forever once reached).
struct FaultSpec {
    std::string point;
    long at = 1;
    long count = 1;
};

#if SNIM_FAULTS_ENABLED

/// Parses "point[@at][xcount]" (e.g. "tran.step.fail@51x2"); raises
/// snim::Error on malformed input.
FaultSpec parse_spec(std::string_view text);

/// Arms one fault window.  Windows on the same point accumulate.
void arm(const FaultSpec& spec);

/// Arms a comma-separated spec list (the SNIM_FAULT syntax); raises on the
/// first malformed entry.
void arm_list(std::string_view specs);

/// Disarms everything and zeroes every per-point query/trip counter.
void clear();

/// True when the current query of `point` falls inside an armed window.
/// Counts the query even when nothing matches, so firing positions stay
/// stable while faults on other points are added or removed.
bool fires(std::string_view point);

/// Queries seen / faults fired at `point` since the last clear().
long queries(std::string_view point);
long trips(std::string_view point);

/// Every armed window (for diagnostics output and tests).
std::vector<FaultSpec> armed();

/// How long a fired "tran.slow_step" fault stalls the solver thread, in
/// seconds.  Default 0.25 s, overridable via SNIM_FAULT_SLOW_MS (read once)
/// or set_slow_step_seconds(); the watchdog tests shrink their stall budget
/// below this so one fired window reliably trips a stall.  Sleeping never
/// changes numeric results — only wall time.
double slow_step_seconds();
void set_slow_step_seconds(double seconds);

#else // SNIM_FAULTS_ENABLED — compiled out: inline no-ops.

inline FaultSpec parse_spec(std::string_view) { return {}; }
inline void arm(const FaultSpec&) {}
inline void arm_list(std::string_view) {}
inline void clear() {}
inline constexpr bool fires(std::string_view) { return false; }
inline long queries(std::string_view) { return 0; }
inline long trips(std::string_view) { return 0; }
inline std::vector<FaultSpec> armed() { return {}; }
inline double slow_step_seconds() { return 0.0; }
inline void set_slow_step_seconds(double) {}

#endif // SNIM_FAULTS_ENABLED

} // namespace snim::fault
