// Small string helpers shared by the SPICE parser, layout I/O and CSV code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace snim {

/// Splits on any of the characters in `seps`; empty fields are dropped.
std::vector<std::string> split(std::string_view s, std::string_view seps = " \t");

/// Splits on a single separator; empty fields are kept.
std::vector<std::string> split_keep(std::string_view s, char sep);

std::string trim(std::string_view s);
std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);
bool starts_with_nocase(std::string_view s, std::string_view prefix);
bool equals_nocase(std::string_view a, std::string_view b);

/// Parses a number with optional SPICE suffix (t g meg k m u n p f) and
/// optional trailing unit letters ("2.5pF" -> 2.5e-12).  Throws on garbage.
double parse_spice_number(std::string_view s);

/// True if `s` parses as a SPICE number.
bool is_spice_number(std::string_view s);

/// Engineering notation, e.g. 2.2e-12 -> "2.2p".
std::string eng_format(double v, int digits = 4);

} // namespace snim
