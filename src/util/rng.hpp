// Deterministic random number generator (xoshiro256**).  Used by tests and
// property sweeps; fixed seeds keep every run reproducible.
#pragma once

#include <cstdint>

namespace snim {

class Rng {
public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    uint64_t next_u64();
    /// Uniform double in [0, 1).
    double uniform();
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);
    /// Uniform integer in [lo, hi] inclusive.
    int uniform_int(int lo, int hi);
    /// Standard normal via Box-Muller.
    double normal();

private:
    uint64_t s_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace snim
