// Deterministic random number generator (xoshiro256**).  Used by tests and
// property sweeps; fixed seeds keep every run reproducible.
#pragma once

#include <cstdint>

namespace snim {

/// Seed used by default-constructed Rng instances.  The bench harness sets
/// this from --seed before every scenario repetition so that every
/// default-seeded consumer (kernel benchmarks, property sweeps) is
/// bit-identical run to run.
uint64_t default_rng_seed();
void set_default_rng_seed(uint64_t seed);

class Rng {
public:
    Rng() : Rng(default_rng_seed()) {}
    explicit Rng(uint64_t seed);

    uint64_t next_u64();
    /// Uniform double in [0, 1).
    double uniform();
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);
    /// Uniform integer in [lo, hi] inclusive.
    int uniform_int(int lo, int hi);
    /// Standard normal via Box-Muller.
    double normal();

private:
    uint64_t s_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace snim
