#include "util/fault.hpp"

#if SNIM_FAULTS_ENABLED

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/error.hpp"
#include "util/log.hpp"

namespace snim::fault {

namespace {

struct Window {
    long at = 1;
    long count = 1;
};

struct PointState {
    std::vector<Window> windows;
    long queries = 0;
    long trips = 0;
};

struct Store {
    std::mutex mutex;
    std::map<std::string, PointState, std::less<>> points;
    // Fast path: relaxed load, no lock, while nothing is armed.
    std::atomic<int> armed_windows{0};
};

Store& store() {
    static Store* s = new Store;
    return *s;
}

long parse_long(std::string_view text, std::string_view what,
                std::string_view full) {
    if (text.empty())
        raise("fault spec '%.*s': empty %.*s", static_cast<int>(full.size()),
              full.data(), static_cast<int>(what.size()), what.data());
    char* end = nullptr;
    const std::string buf(text);
    const long v = std::strtol(buf.c_str(), &end, 10);
    if (end != buf.c_str() + buf.size())
        raise("fault spec '%.*s': bad %.*s '%s'", static_cast<int>(full.size()),
              full.data(), static_cast<int>(what.size()), what.data(), buf.c_str());
    return v;
}

/// Reads SNIM_FAULT once, before the first armed-count check.  Malformed
/// entries must not abort the process from a static initialiser, so they
/// degrade to a warning.
bool load_env() {
    const char* env = std::getenv("SNIM_FAULT");
    if (!env || !*env) return true;
    try {
        arm_list(env);
    } catch (const Error& e) {
        log_warn("ignoring malformed SNIM_FAULT entry: %s", e.what());
    }
    return true;
}

void ensure_env_loaded() {
    static const bool loaded = load_env();
    (void)loaded;
}

} // namespace

FaultSpec parse_spec(std::string_view text) {
    FaultSpec spec;
    std::string_view rest = text;
    const size_t at_pos = rest.find('@');
    spec.point = std::string(rest.substr(0, at_pos));
    if (spec.point.empty())
        raise("fault spec '%.*s': empty fault point", static_cast<int>(text.size()),
              text.data());
    if (at_pos == std::string_view::npos) return spec;
    rest = rest.substr(at_pos + 1);
    const size_t x_pos = rest.find('x');
    spec.at = parse_long(rest.substr(0, x_pos), "@at", text);
    if (spec.at < 1)
        raise("fault spec '%.*s': @at must be >= 1 (got %ld)",
              static_cast<int>(text.size()), text.data(), spec.at);
    if (x_pos != std::string_view::npos) {
        spec.count = parse_long(rest.substr(x_pos + 1), "xcount", text);
        if (spec.count == 0 || spec.count < -1)
            raise("fault spec '%.*s': xcount must be > 0 or -1 (got %ld)",
                  static_cast<int>(text.size()), text.data(), spec.count);
    }
    return spec;
}

void arm(const FaultSpec& spec) {
    if (spec.point.empty()) raise("fault::arm: empty fault point");
    if (spec.at < 1) raise("fault::arm('%s'): at must be >= 1", spec.point.c_str());
    if (spec.count == 0 || spec.count < -1)
        raise("fault::arm('%s'): count must be > 0 or -1", spec.point.c_str());
    // No ensure_env_loaded() here: load_env() itself arms via arm_list(),
    // and re-entering the guarded static from its own initialiser deadlocks.
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.points[spec.point].windows.push_back({spec.at, spec.count});
    s.armed_windows.fetch_add(1, std::memory_order_relaxed);
}

void arm_list(std::string_view specs) {
    size_t begin = 0;
    while (begin <= specs.size()) {
        size_t end = specs.find(',', begin);
        if (end == std::string_view::npos) end = specs.size();
        const std::string_view part = specs.substr(begin, end - begin);
        if (!part.empty()) arm(parse_spec(part));
        begin = end + 1;
    }
}

void clear() {
    // Force the one-time SNIM_FAULT load first, so env-armed windows cannot
    // resurrect at the first fires() after a clear().
    ensure_env_loaded();
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.points.clear();
    s.armed_windows.store(0, std::memory_order_relaxed);
}

bool fires(std::string_view point) {
    ensure_env_loaded();
    Store& s = store();
    if (s.armed_windows.load(std::memory_order_relaxed) == 0) return false;
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.points.find(point);
    if (it == s.points.end()) return false;
    PointState& ps = it->second;
    const long q = ++ps.queries;
    for (const Window& w : ps.windows) {
        if (q < w.at) continue;
        if (w.count < 0 || q < w.at + w.count) {
            ++ps.trips;
            return true;
        }
    }
    return false;
}

long queries(std::string_view point) {
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.points.find(point);
    return it == s.points.end() ? 0 : it->second.queries;
}

long trips(std::string_view point) {
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.points.find(point);
    return it == s.points.end() ? 0 : it->second.trips;
}

std::vector<FaultSpec> armed() {
    ensure_env_loaded();
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<FaultSpec> out;
    for (const auto& [point, ps] : s.points)
        for (const Window& w : ps.windows) out.push_back({point, w.at, w.count});
    return out;
}

namespace {

double initial_slow_step_seconds() {
    if (const char* env = std::getenv("SNIM_FAULT_SLOW_MS"); env && *env) {
        char* end = nullptr;
        const double ms = std::strtod(env, &end);
        if (end != env && ms >= 0.0) return ms / 1000.0;
        log_warn("ignoring malformed SNIM_FAULT_SLOW_MS '%s'", env);
    }
    return 0.25;
}

std::atomic<double>& slow_step_store() {
    static std::atomic<double>* s = new std::atomic<double>(initial_slow_step_seconds());
    return *s;
}

} // namespace

double slow_step_seconds() {
    return slow_step_store().load(std::memory_order_relaxed);
}

void set_slow_step_seconds(double seconds) {
    slow_step_store().store(seconds < 0.0 ? 0.0 : seconds, std::memory_order_relaxed);
}

} // namespace snim::fault

#endif // SNIM_FAULTS_ENABLED
