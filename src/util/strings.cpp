#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace snim {

std::vector<std::string> split(std::string_view s, std::string_view seps) {
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && seps.find(s[i]) != std::string_view::npos) ++i;
        size_t j = i;
        while (j < s.size() && seps.find(s[j]) == std::string_view::npos) ++j;
        if (j > i) out.emplace_back(s.substr(i, j - i));
        i = j;
    }
    return out;
}

std::vector<std::string> split_keep(std::string_view s, char sep) {
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string trim(std::string_view s) {
    size_t a = 0;
    size_t b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
    return std::string(s.substr(a, b - a));
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

std::string to_upper(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return out;
}

bool starts_with_nocase(std::string_view s, std::string_view prefix) {
    if (s.size() < prefix.size()) return false;
    return equals_nocase(s.substr(0, prefix.size()), prefix);
}

bool equals_nocase(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

namespace {

// Returns multiplier for a SPICE suffix starting at `p` in lower-cased `s`,
// and advances p past the suffix.  "meg" must be checked before "m".
double suffix_multiplier(const std::string& s, size_t& p) {
    if (p >= s.size()) return 1.0;
    if (s.compare(p, 3, "meg") == 0) {
        p += 3;
        return 1e6;
    }
    switch (s[p]) {
        case 't': p += 1; return 1e12;
        case 'g': p += 1; return 1e9;
        case 'k': p += 1; return 1e3;
        case 'm': p += 1; return 1e-3;
        case 'u': p += 1; return 1e-6;
        case 'n': p += 1; return 1e-9;
        case 'p': p += 1; return 1e-12;
        case 'f': p += 1; return 1e-15;
        default: return 1.0;
    }
}

bool parse_impl(std::string_view sv, double& out) {
    std::string s = to_lower(trim(sv));
    if (s.empty()) return false;
    const char* begin = s.c_str();
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return false;
    size_t p = static_cast<size_t>(end - begin);
    v *= suffix_multiplier(s, p);
    // Anything left must be unit letters (e.g. "f" in "2p f", "hz", "ohm").
    for (; p < s.size(); ++p) {
        if (!std::isalpha(static_cast<unsigned char>(s[p]))) return false;
    }
    out = v;
    return true;
}

} // namespace

double parse_spice_number(std::string_view s) {
    double v = 0.0;
    if (!parse_impl(s, v)) raise("cannot parse number: '%.*s'", int(s.size()), s.data());
    return v;
}

bool is_spice_number(std::string_view s) {
    double v = 0.0;
    return parse_impl(s, v);
}

std::string eng_format(double v, int digits) {
    if (v == 0.0) return "0";
    if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
    static const struct {
        double mult;
        const char* suffix;
    } table[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "meg"}, {1e3, "k"}, {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
    };
    const double mag = std::fabs(v);
    for (const auto& e : table) {
        if (mag >= e.mult * 0.9999999 || e.mult == 1e-15) {
            return format("%.*g%s", digits, v / e.mult, e.suffix);
        }
    }
    return format("%.*g", digits, v);
}

} // namespace snim
