#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/error.hpp"

namespace snim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
    SNIM_ASSERT(cells.size() == headers_.size(), "row width %zu != header width %zu",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) cells.push_back(format("%.*g", precision, v));
    add_row(std::move(cells));
}

std::string Table::to_string() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
        std::string out = "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            out += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
        }
        return out + "\n";
    };
    std::string sep = "+";
    for (size_t c = 0; c < headers_.size(); ++c) sep += std::string(width[c] + 2, '-') + "+";
    sep += "\n";

    std::string out = sep + line(headers_) + sep;
    for (const auto& row : rows_) out += line(row);
    out += sep;
    return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

AsciiPlot::AsciiPlot(std::string title, std::string xlabel, std::string ylabel)
    : title_(std::move(title)), xlabel_(std::move(xlabel)), ylabel_(std::move(ylabel)) {}

void AsciiPlot::set_size(int width, int height) {
    SNIM_ASSERT(width >= 16 && height >= 4, "plot size too small");
    width_ = width;
    height_ = height;
}

void AsciiPlot::add(PlotSeries series) {
    SNIM_ASSERT(series.x.size() == series.y.size(), "series '%s' x/y mismatch",
                series.name.c_str());
    series_.push_back(std::move(series));
}

std::string AsciiPlot::to_string() const {
    double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
    double ymin = xmin, ymax = -xmin;
    for (const auto& s : series_) {
        for (size_t i = 0; i < s.x.size(); ++i) {
            double x = log_x_ ? std::log10(s.x[i]) : s.x[i];
            xmin = std::min(xmin, x);
            xmax = std::max(xmax, x);
            ymin = std::min(ymin, s.y[i]);
            ymax = std::max(ymax, s.y[i]);
        }
    }
    if (!(xmin < xmax)) { xmin -= 1; xmax += 1; }
    if (!(ymin < ymax)) { ymin -= 1; ymax += 1; }
    const double ypad = 0.05 * (ymax - ymin);
    ymin -= ypad;
    ymax += ypad;

    std::vector<std::string> grid(static_cast<size_t>(height_),
                                  std::string(static_cast<size_t>(width_), ' '));
    for (const auto& s : series_) {
        for (size_t i = 0; i < s.x.size(); ++i) {
            double x = log_x_ ? std::log10(s.x[i]) : s.x[i];
            int col = static_cast<int>(std::lround((x - xmin) / (xmax - xmin) * (width_ - 1)));
            int row = static_cast<int>(
                std::lround((ymax - s.y[i]) / (ymax - ymin) * (height_ - 1)));
            col = std::clamp(col, 0, width_ - 1);
            row = std::clamp(row, 0, height_ - 1);
            grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = s.marker;
        }
    }

    std::string out = title_ + "\n";
    for (int r = 0; r < height_; ++r) {
        const double yv = ymax - (ymax - ymin) * r / (height_ - 1);
        out += format("%10.3g |", yv) + grid[static_cast<size_t>(r)] + "\n";
    }
    out += std::string(11, ' ') + "+" + std::string(static_cast<size_t>(width_), '-') + "\n";
    const char* xpfx = log_x_ ? "log10 " : "";
    out += format("%12s%s%s  [%.3g .. %.3g]\n", "", xpfx, xlabel_.c_str(),
                  log_x_ ? std::pow(10, xmin) : xmin, log_x_ ? std::pow(10, xmax) : xmax);
    out += format("%12sy: %s", "", ylabel_.c_str());
    for (const auto& s : series_) out += format("   [%c] %s", s.marker, s.name.c_str());
    out += "\n";
    return out;
}

void AsciiPlot::print() const { std::fputs(to_string().c_str(), stdout); }

} // namespace snim
