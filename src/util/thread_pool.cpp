#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace snim::util {

namespace {

std::atomic<int> g_threads{0}; // 0 = not initialised yet

int clamp_threads(int n) { return std::max(1, std::min(n, 256)); }

int env_default() {
    if (const char* env = std::getenv("SNIM_THREADS")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0') return clamp_threads(static_cast<int>(v));
    }
    return 1;
}

} // namespace

int default_thread_count() {
    int v = g_threads.load(std::memory_order_relaxed);
    if (v == 0) {
        // First use adopts SNIM_THREADS (or 1).  Benign race: every thread
        // computes the same value.
        v = env_default();
        g_threads.store(v, std::memory_order_relaxed);
    }
    return v;
}

void set_default_thread_count(int n) {
    g_threads.store(clamp_threads(n), std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads <= 0 ? default_thread_count() : clamp_threads(threads)) {}

void ThreadPool::parallel_for_indexed(size_t count,
                                      const std::function<void(size_t)>& fn) const {
    if (count == 0) return;
    const size_t workers = std::min(static_cast<size_t>(threads_), count);
    if (workers <= 1) {
        for (size_t i = 0; i < count; ++i) fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::mutex err_mu;
    size_t err_index = count; // lowest throwing index seen so far
    std::exception_ptr err;

    auto run = [&]() {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mu);
                if (i < err_index) {
                    err_index = i;
                    err = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (size_t t = 1; t < workers; ++t) pool.emplace_back(run);
    run(); // the caller participates
    for (auto& th : pool) th.join();
    if (err) std::rethrow_exception(err);
}

} // namespace snim::util
