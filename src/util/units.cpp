#include "util/units.hpp"

namespace snim::units {

double dbm_from_amplitude(double amp, double rload) {
    const double p = amp * amp / (2.0 * rload); // W
    return 10.0 * std::log10(p / 1e-3);
}

double amplitude_from_dbm(double dbm, double rload) {
    const double p = 1e-3 * std::pow(10.0, dbm / 10.0);
    return std::sqrt(2.0 * rload * p);
}

} // namespace snim::units
