// Minimal leveled logger.  Default level is Warn so library users and
// benchmarks stay quiet; flows raise verbosity explicitly when asked.
//
// Output goes through a pluggable sink so tests and the observability
// report can capture messages instead of losing them to stderr; the
// printf-style call sites are unchanged.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace snim {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Quiet = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every emitted (level-passing) message, already formatted and
/// without a trailing newline.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the sink; an empty function restores the default stderr sink.
/// Returns the previous sink so scoped captures can restore it.
LogSink set_log_sink(LogSink sink);

/// Number of messages emitted at `level` since process start (messages
/// suppressed by the level filter are not counted).
size_t log_emit_count(LogLevel level);

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace snim
