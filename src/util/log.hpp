// Minimal leveled logger.  Default level is Warn so library users and
// benchmarks stay quiet; flows raise verbosity explicitly when asked.
//
// Output goes through a pluggable sink so tests and the observability
// report can capture messages instead of losing them to stderr; the
// printf-style call sites are unchanged.  A secondary *mirror* tap sees
// every emitted message regardless of the sink in effect — the structured
// event journal (obs/events) installs one so every Warn/Info also lands in
// the live-run telemetry stream without call-site changes.
//
// The initial level comes from SNIM_LOG=debug|info|warn|quiet (read once,
// on the first level query); set_log_level() overrides it at any time.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace snim {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Quiet = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug" / "info" / "warn" / "quiet" (case-insensitive); nullopt on
/// anything else.  The SNIM_LOG and --log-level syntax.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Receives every emitted (level-passing) message, already formatted and
/// without a trailing newline.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the sink; an empty function restores the default stderr sink.
/// Returns the previous sink so scoped captures can restore it.
LogSink set_log_sink(LogSink sink);

/// Installs the mirror tap: called for every emitted message AFTER the sink
/// (default or custom) handled it.  Unlike the sink, replacing it never
/// redirects output — it only adds an observer.  Returns the previous
/// mirror.  The mirror must not call log_* (no re-entrancy guard).
LogSink set_log_mirror(LogSink mirror);

/// Number of messages emitted at `level` since process start (messages
/// suppressed by the level filter are not counted).
size_t log_emit_count(LogLevel level);

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace snim
