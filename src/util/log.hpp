// Minimal leveled logger.  Default level is Warn so library users and
// benchmarks stay quiet; flows raise verbosity explicitly when asked.
#pragma once

#include <string>

namespace snim {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Quiet = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace snim
