#include "util/rng.hpp"

#include <cmath>

#include "util/units.hpp"

namespace snim {

namespace {

uint64_t g_default_seed = 0x9e3779b97f4a7c15ULL;

uint64_t splitmix64(uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
} // namespace

uint64_t default_rng_seed() { return g_default_seed; }
void set_default_rng_seed(uint64_t seed) { g_default_seed = seed; }

Rng::Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    cached_normal_ = r * std::sin(units::kTwoPi * u2);
    have_cached_normal_ = true;
    return r * std::cos(units::kTwoPi * u2);
}

} // namespace snim
