// Deterministic parallel sweep mechanics.
//
// ThreadPool::parallel_for_indexed runs fn(0..count-1) across worker threads
// with the caller participating.  Indices are claimed dynamically, so the
// *execution order* depends on scheduling — determinism is the caller's
// contract: write results only into slot i, merge anything order-sensitive
// in index order afterwards (obs::parallel_tasks does this for registry
// metrics).  Under that contract the output is bit-identical for any thread
// count.
//
// The process-wide default worker count is 1 — everything is serial unless
// the user opts in via SNIM_THREADS, FlowOptions::threads, or the
// snim_bench --threads flag (all route to set_default_thread_count).
#pragma once

#include <cstddef>
#include <functional>

namespace snim::util {

/// Default worker count for parallel sweeps: 1 unless SNIM_THREADS (read
/// once, on first use) or set_default_thread_count() says otherwise.
int default_thread_count();

/// Overrides the default; values are clamped to [1, 256].
void set_default_thread_count(int n);

class ThreadPool {
public:
    /// threads <= 0 selects default_thread_count().
    explicit ThreadPool(int threads = 0);

    int thread_count() const { return threads_; }

    /// Runs fn(i) for every i in [0, count); the calling thread participates
    /// and worker threads are joined before returning.  Every index runs
    /// even when one throws; the exception thrown at the LOWEST index is
    /// rethrown after the loop drains, so failure behaviour does not depend
    /// on scheduling (serial execution stops at that same index's throw).
    void parallel_for_indexed(size_t count, const std::function<void(size_t)>& fn) const;

private:
    int threads_ = 1;
};

} // namespace snim::util
