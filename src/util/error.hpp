// Error type used across the snim library.
//
// All recoverable failures (bad input files, singular matrices,
// non-converging Newton iterations, ...) throw snim::Error with a
// human-readable message.  Programming errors use SNIM_ASSERT which
// throws as well so tests can exercise failure paths.
#pragma once

#include <stdexcept>
#include <string>

namespace snim {

class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws snim::Error with a printf-style formatted message.
[[noreturn]] void raise(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

#define SNIM_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) ::snim::raise("assertion failed: %s (%s:%d) -- %s",  \
                                   #cond, __FILE__, __LINE__,             \
                                   ::snim::format(__VA_ARGS__).c_str());  \
    } while (0)

} // namespace snim
