#include "rf/phase_noise.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::rf {

double q_from_resonance(const std::vector<double>& freq, const std::vector<double>& mag) {
    SNIM_ASSERT(freq.size() == mag.size() && freq.size() >= 5, "bad resonance sweep");
    size_t kpeak = 0;
    for (size_t k = 1; k < mag.size(); ++k)
        if (mag[k] > mag[kpeak]) kpeak = k;
    SNIM_ASSERT(kpeak > 0 && kpeak + 1 < mag.size(),
                "resonance peak at the sweep edge -- widen the sweep");
    const double target = mag[kpeak] / std::sqrt(2.0);

    auto cross = [&](bool left) -> double {
        if (left) {
            for (size_t k = kpeak; k-- > 0;) {
                if (mag[k] <= target) {
                    const double f = (target - mag[k]) / (mag[k + 1] - mag[k]);
                    return freq[k] + f * (freq[k + 1] - freq[k]);
                }
            }
        } else {
            for (size_t k = kpeak + 1; k < mag.size(); ++k) {
                if (mag[k] <= target) {
                    const double f = (mag[k - 1] - target) / (mag[k - 1] - mag[k]);
                    return freq[k - 1] + f * (freq[k] - freq[k - 1]);
                }
            }
        }
        raise("resonance -3 dB point outside the sweep -- widen the sweep");
    };

    const double f_lo = cross(true);
    const double f_hi = cross(false);
    SNIM_ASSERT(f_hi > f_lo, "degenerate resonance bandwidth");
    return freq[kpeak] / (f_hi - f_lo);
}

double leeson_phase_noise(const LeesonInputs& in, double offset_hz) {
    SNIM_ASSERT(in.fc > 0 && in.q_loaded > 0 && offset_hz > 0, "bad Leeson inputs");
    const double psig = 1e-3 * std::pow(10.0, in.psig_dbm / 10.0);
    const double f = std::pow(10.0, in.noise_figure_db / 10.0);
    const double kt = units::kBoltzmann * in.temperature;
    // L(dm) = 10log10( (2FkT/Ps) (1 + (fc/(2 Q dm))^2) (1 + fcorner/dm) / 2 )
    const double resonator = in.fc / (2.0 * in.q_loaded * offset_hz);
    const double l = (f * kt / psig) * (1.0 + resonator * resonator) *
                     (1.0 + in.flicker_corner / offset_hz);
    return 10.0 * std::log10(l);
}

} // namespace snim::rf
