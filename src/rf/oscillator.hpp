// Oscillator measurement tools: steady-state capture, carrier frequency and
// amplitude estimation, and instantaneous frequency / envelope demodulation.
//
// Demodulation is the key to affordable spur measurement: instead of a very
// long FFT window to separate a -50 dBc spur from the carrier skirt, the
// waveform is FM/AM-demodulated (the paper's eq. (1) decomposition) and the
// modulation tone is fitted directly at the known noise frequency.
#pragma once

#include "circuit/netlist.hpp"
#include "sim/transient.hpp"

namespace snim::rf {

struct OscOptions {
    /// Probe node (single-ended) or pair for differential observation.
    std::string probe_p;
    std::string probe_n; // empty -> single-ended
    double dt = 10e-12;
    /// Settling time discarded before measurement.
    double settle = 300e-9;
    /// Captured (recorded) time span.
    double capture = 300e-9;
    /// Expected oscillation band, used to sanity-check the result [Hz].
    double f_min = 0.5e9;
    double f_max = 20e9;
    int order = 2;
    double gmin = 1e-12;
    /// Solve-certificate knobs forwarded to the transient (and its internal
    /// operating-point solve).  Ablation experiments that intentionally
    /// produce extreme conductance spreads (shorted taps vs gmin anchors)
    /// relax certify.rcond_min here; the backward-error gate stays.
    obs::CertifyOptions certify;
    /// Checkpoint/restart knobs forwarded to the transient.  Callers that
    /// run several captures per process (analyzer calibration, bench
    /// corners) must give each capture a distinct `checkpoint.tag`.
    sim::CheckpointOptions checkpoint;
};

struct OscCapture {
    std::vector<double> wave; // probe waveform, uniformly sampled
    double fs = 0.0;          // sample rate
    double fc = 0.0;          // carrier frequency [Hz]
    double amplitude = 0.0;   // carrier amplitude [V peak]
    double mean = 0.0;        // DC value of the probe
    /// Average of the full unknown vector over the capture (quasi-DC levels
    /// of every node during oscillation).
    std::vector<double> node_avg;
};

/// Runs the transient and measures the oscillator.  Throws if no
/// oscillation is detected within [f_min, f_max] or amplitude is tiny.
OscCapture capture_oscillator(circuit::Netlist& netlist, const OscOptions& opt);

/// Instantaneous frequency samples from interpolated zero crossings of the
/// (DC-removed) waveform: returns pairs (t, f) at each full period.
std::vector<std::pair<double, double>> instantaneous_frequency(
    const std::vector<double>& wave, double fs, double mean);

/// Envelope samples (t, |peak|) from local extrema of the DC-removed wave.
std::vector<std::pair<double, double>> envelope(const std::vector<double>& wave,
                                                double fs, double mean);

/// Least-squares fit of y(t) ~ c + d t + a cos(2 pi f t) + b sin(2 pi f t)
/// over irregular samples; the linear trend term absorbs slow oscillator
/// settling so it cannot alias into the tone estimate.  Returns the tone
/// amplitude sqrt(a^2+b^2) and phase atan2(-b, a).
struct ToneFit {
    double amplitude = 0.0;
    double phase = 0.0;
    double offset = 0.0;
    double trend = 0.0; // per second
};
ToneFit fit_tone(const std::vector<std::pair<double, double>>& samples, double freq);

} // namespace snim::rf
