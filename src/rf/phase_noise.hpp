// Phase-noise estimation: tank quality factor from an AC sweep and the
// Leeson model -- enough to check the paper's headline VCO spec of
// -100 dBc/Hz at 100 kHz offset.
#pragma once

#include "circuit/netlist.hpp"

namespace snim::rf {

/// Loaded Q from the -3 dB bandwidth of a resonance: Q = f0 / BW.
/// `mag` is |H(f)| sampled over `freq` (same length); the peak and its
/// half-power crossings are interpolated linearly.
double q_from_resonance(const std::vector<double>& freq, const std::vector<double>& mag);

struct LeesonInputs {
    double fc = 0.0;         // carrier [Hz]
    double q_loaded = 10.0;  // loaded tank Q
    double psig_dbm = 0.0;   // carrier power [dBm]
    double noise_figure_db = 6.0;
    double temperature = 300.0;
    double flicker_corner = 100e3; // 1/f^3 corner [Hz]
};

/// Single-sideband phase noise L(df) [dBc/Hz] at offset `offset_hz`.
double leeson_phase_noise(const LeesonInputs& in, double offset_hz);

} // namespace snim::rf
