// Spur measurement on an oscillator waveform: FM/AM demodulation at a known
// noise frequency, combined into the left/right sideband amplitudes at
// fc +/- fnoise (the quantity the paper's Figures 7-10 report).
#pragma once

#include <complex>

#include "rf/oscillator.hpp"

namespace snim::rf {

struct SpurResult {
    double fnoise = 0.0;
    double fc = 0.0;
    double carrier_amp = 0.0;   // V peak
    // Modulation quantities (the paper's eq. (1) decomposition).
    double freq_dev = 0.0;      // peak frequency deviation [Hz]
    double fm_phase = 0.0;      // rad
    double am_dev = 0.0;        // peak envelope deviation [V]
    double am_phase = 0.0;      // rad
    // Sideband amplitudes [V peak].
    double left_amp = 0.0;      // at fc - fnoise
    double right_amp = 0.0;     // at fc + fnoise

    double beta() const { return fc > 0 ? freq_dev / fnoise : 0.0; }
    double fm_spur_amp() const { return 0.5 * carrier_amp * beta(); }
    double am_spur_amp() const { return 0.5 * am_dev; }
    double left_dbc() const;
    double right_dbc() const;
    /// Total spur power at both sidebands, expressed in dBm into `rload`.
    double total_dbm(double rload = 50.0) const;
};

/// Demodulates `cap` at `fnoise` and reconstructs the sidebands.
SpurResult measure_spur(const OscCapture& cap, double fnoise);

/// Direct spectral measurement (windowed Goertzel at fc and fc +/- fnoise);
/// needs a capture long enough for the window to separate the tones
/// (>= ~8/fnoise with Blackman-Harris).  Used to cross-check demodulation.
SpurResult measure_spur_spectral(const OscCapture& cap, double fnoise);

} // namespace snim::rf
