#include "rf/spur.hpp"

#include <cmath>

#include "dsp/goertzel.hpp"
#include "dsp/window.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace snim::rf {

double SpurResult::left_dbc() const {
    return units::db20(left_amp / carrier_amp);
}

double SpurResult::right_dbc() const {
    return units::db20(right_amp / carrier_amp);
}

double SpurResult::total_dbm(double rload) const {
    const double p = (left_amp * left_amp + right_amp * right_amp) / (2.0 * rload);
    return 10.0 * std::log10(p / 1e-3);
}

namespace {

// Narrow-band FM + AM tone modulation produces sidebands
//   V(fc +/- fn) = (Ac/2) | m e^{j phi_am} +/- beta e^{j phi_fm} | ... with
// the standard convention: upper = (Ac/2)(m e^{j phi_am} + j beta e^{j phi_fm})/...
// Using complex baseband: s(t) = Ac (1 + m cos(wn t + pa)) cos(wc t +
// beta sin(wn t + pf))  ~  upper sideband (Ac/2)| m e^{j pa} + beta e^{j(pf)} |/..
// Carefully: expanding to first order,
//   s ~ Ac cos wc t
//     + (Ac m / 2)[cos((wc+wn)t + pa) + cos((wc-wn)t - pa)]
//     + (Ac beta / 2)[cos((wc+wn)t + pf + pi/2)... ]
// FM first-order sidebands: (Ac beta/2)[cos((wc+wn)t + pf) - cos((wc-wn)t - pf)].
// So upper amp = (Ac/2)|m e^{j pa} + beta e^{j pf}|,
//    lower amp = (Ac/2)|m e^{-j pa} - beta e^{-j pf}|.
void combine_sidebands(SpurResult& r) {
    const double m = r.carrier_amp > 0 ? r.am_dev / r.carrier_amp : 0.0;
    const double beta = r.beta();
    const std::complex<double> am = m * std::polar(1.0, r.am_phase);
    const std::complex<double> fm = beta * std::polar(1.0, r.fm_phase);
    r.right_amp = 0.5 * r.carrier_amp * std::abs(am + fm);
    r.left_amp = 0.5 * r.carrier_amp * std::abs(std::conj(am) - std::conj(fm));
}

} // namespace

SpurResult measure_spur(const OscCapture& cap, double fnoise) {
    SNIM_ASSERT(fnoise > 0, "noise frequency must be positive");
    const double span = static_cast<double>(cap.wave.size()) / cap.fs;
    SNIM_ASSERT(span * fnoise >= 1.5,
                "capture too short: %.3g s for fnoise %.3g (need >= 1.5 periods)", span,
                fnoise);

    SpurResult out;
    out.fnoise = fnoise;
    out.fc = cap.fc;
    out.carrier_amp = cap.amplitude;

    // Remove the additive baseband feedthrough at fnoise before
    // demodulating: direct coupling into the probe is a separate, far-away
    // spectral line a spectrum analyzer would not confuse with the fc +/-
    // fnoise sidebands, but it biases zero-crossing and envelope estimates.
    std::vector<double> wave = cap.wave;
    {
        std::vector<std::pair<double, double>> samp;
        samp.reserve(wave.size());
        for (size_t i = 0; i < wave.size(); ++i)
            samp.emplace_back(static_cast<double>(i) / cap.fs, wave[i]);
        const ToneFit bb = fit_tone(samp, fnoise);
        for (size_t i = 0; i < wave.size(); ++i) {
            const double t = static_cast<double>(i) / cap.fs;
            wave[i] -= bb.amplitude * std::cos(units::kTwoPi * fnoise * t + bb.phase);
        }
    }

    const auto inst = instantaneous_frequency(wave, cap.fs, cap.mean);
    SNIM_ASSERT(inst.size() >= 16, "too few periods for demodulation");
    const ToneFit fm = fit_tone(inst, fnoise);
    out.freq_dev = fm.amplitude;
    out.fm_phase = fm.phase;

    const auto env = envelope(wave, cap.fs, cap.mean);
    SNIM_ASSERT(env.size() >= 16, "too few envelope samples");
    const ToneFit am = fit_tone(env, fnoise);
    out.am_dev = am.amplitude;
    out.am_phase = am.phase;

    combine_sidebands(out);
    return out;
}

SpurResult measure_spur_spectral(const OscCapture& cap, double fnoise) {
    SNIM_ASSERT(fnoise > 0, "noise frequency must be positive");
    const double span = static_cast<double>(cap.wave.size()) / cap.fs;
    const double needed = 8.0 / fnoise;
    SNIM_ASSERT(span >= needed,
                "spectral spur readout needs %.3g s capture (have %.3g)", needed, span);

    std::vector<double> ac(cap.wave.size());
    for (size_t i = 0; i < ac.size(); ++i) ac[i] = cap.wave[i] - cap.mean;
    const auto w = dsp::make_window(dsp::WindowKind::BlackmanHarris4, ac.size());

    SpurResult out;
    out.fnoise = fnoise;
    out.fc = cap.fc;
    // Three independent windowed Goertzel sums over the same multi-million
    // sample capture; each writes its own slot, so the fan-out is
    // deterministic for any thread count.
    const double targets[3] = {cap.fc, cap.fc - fnoise, cap.fc + fnoise};
    double amps[3];
    util::ThreadPool().parallel_for_indexed(3, [&](size_t i) {
        amps[i] = dsp::tone_amplitude(ac, cap.fs, targets[i], w);
    });
    out.carrier_amp = amps[0];
    out.left_amp = amps[1];
    out.right_amp = amps[2];
    // Back out the modulation depths assuming pure FM/AM split is unknown:
    // report the FM-equivalent deviation from the sideband average.
    const double avg = 0.5 * (out.left_amp + out.right_amp);
    out.freq_dev = 2.0 * avg / out.carrier_amp * fnoise;
    return out;
}

} // namespace snim::rf
