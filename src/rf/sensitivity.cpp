#include "rf/sensitivity.hpp"

#include <cmath>

#include "circuit/sources.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace snim::rf {

Sensitivity measure_sensitivity(circuit::Netlist& netlist, const std::string& node,
                                const OscCapture& baseline,
                                const SensitivityOptions& opt) {
    const circuit::NodeId target = netlist.existing_node(node);
    SNIM_ASSERT(target >= 0, "cannot perturb the ground node");
    SNIM_ASSERT(opt.itest > 0, "test current must be positive");

    // Temporary current source injecting into the node; removed afterwards.
    const std::string injector_name = "snim_sens_injector";
    auto& inj = netlist.add<circuit::ISource>(injector_name, circuit::kGround, target,
                                              circuit::Waveform::dc(0.0));
    auto run = [&](double current) {
        inj.set_waveform(circuit::Waveform::dc(current));
        return capture_oscillator(netlist, opt.osc);
    };
    const auto plus = run(opt.itest);
    const auto minus = run(-opt.itest);
    netlist.remove(injector_name);

    const double vplus = plus.node_avg[static_cast<size_t>(target)];
    const double vminus = minus.node_avg[static_cast<size_t>(target)];
    const double dv = vplus - vminus;

    Sensitivity out;
    out.node = node;
    out.f0 = baseline.fc;
    out.a0 = baseline.amplitude;
    out.dv = dv;
    if (std::fabs(dv) < 1e-9) {
        log_warn("sensitivity '%s': negligible voltage perturbation %.3g V -- "
                 "node is stiffly driven; K set to 0",
                 node.c_str(), dv);
        return out;
    }
    out.k = (plus.fc - minus.fc) / dv;
    out.g_am = (plus.amplitude - minus.amplitude) / dv / baseline.amplitude;
    return out;
}

} // namespace snim::rf
