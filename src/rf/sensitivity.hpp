// Oscillator sensitivity extraction: K_i = d f_osc / d V_i (Hz/V) and the
// AM gain G_AM,i = (1/Ac) d A_c / d V_i (1/V) for a chosen circuit node --
// the per-entry coefficients of the paper's eqs. (2) and (3).
//
// Method: inject a small +/- DC test current at the node, rerun the
// oscillator, and finite-difference the measured frequency / amplitude
// against the measured node voltage change.  Current injection avoids any
// netlist surgery and works for internal nodes of extracted networks.
#pragma once

#include "rf/oscillator.hpp"

namespace snim::rf {

struct SensitivityOptions {
    OscOptions osc;
    /// Test current amplitude [A]; the node swing it causes should stay in
    /// the small-signal regime (mV level).
    double itest = 100e-6;
};

struct Sensitivity {
    std::string node;
    double k = 0.0;       // Hz/V
    double g_am = 0.0;    // 1/V
    double dv = 0.0;      // achieved voltage perturbation [V]
    double f0 = 0.0;      // unperturbed frequency
    double a0 = 0.0;      // unperturbed amplitude
};

/// Measures K and G_AM for `node`.  `baseline` must come from
/// capture_oscillator on the same netlist with the same options.
Sensitivity measure_sensitivity(circuit::Netlist& netlist, const std::string& node,
                                const OscCapture& baseline,
                                const SensitivityOptions& opt);

} // namespace snim::rf
