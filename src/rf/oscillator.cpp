#include "rf/oscillator.hpp"

#include <cmath>

#include "dsp/goertzel.hpp"
#include "dsp/window.hpp"
#include "numeric/dense.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::rf {

OscCapture capture_oscillator(circuit::Netlist& netlist, const OscOptions& opt) {
    SNIM_ASSERT(!opt.probe_p.empty(), "oscillator capture needs a probe");
    sim::TranOptions to;
    to.tstop = opt.settle + opt.capture;
    to.dt = opt.dt;
    to.order = opt.order;
    to.gmin = opt.gmin;
    to.record_start = opt.settle;
    to.accumulate_average = true;
    to.certify = opt.certify;
    to.checkpoint = opt.checkpoint;

    std::vector<std::string> probes{opt.probe_p};
    if (!opt.probe_n.empty()) probes.push_back(opt.probe_n);
    const auto res = sim::transient(netlist, probes, to);

    OscCapture cap;
    cap.fs = 1.0 / res.dt_sample;
    cap.node_avg = res.average;
    const auto& wp = res.waves[0];
    if (opt.probe_n.empty()) {
        cap.wave = wp;
    } else {
        cap.wave.resize(wp.size());
        for (size_t i = 0; i < wp.size(); ++i) cap.wave[i] = wp[i] - res.waves[1][i];
    }

    double mean = 0.0;
    for (double v : cap.wave) mean += v;
    mean /= static_cast<double>(cap.wave.size());
    cap.mean = mean;

    // Coarse carrier frequency from zero crossings of the AC component.
    const auto inst = instantaneous_frequency(cap.wave, cap.fs, mean);
    if (inst.size() < 8)
        raise("oscillator capture: too few periods detected (%zu) -- not oscillating?",
              inst.size());
    double favg = 0.0;
    for (const auto& [t, f] : inst) favg += f;
    favg /= static_cast<double>(inst.size());
    if (!(favg > opt.f_min && favg < opt.f_max))
        raise("oscillator frequency %.4g Hz outside expected band [%.3g, %.3g]", favg,
              opt.f_min, opt.f_max);

    // Refine with windowed Goertzel around the coarse estimate.  The search
    // span must stay within the window's mainlobe (~8/T wide for
    // Blackman-Harris) or the golden-section search sees multiple lobes; the
    // zero-crossing estimate is far more accurate than that already.
    std::vector<double> ac(cap.wave.size());
    for (size_t i = 0; i < ac.size(); ++i) ac[i] = cap.wave[i] - mean;
    const auto w = dsp::make_window(dsp::WindowKind::BlackmanHarris4, ac.size());
    const double t_window = static_cast<double>(ac.size()) / cap.fs;
    const double span = std::min(0.02 * favg, 3.0 / t_window);
    cap.fc = dsp::refine_tone_frequency(ac, cap.fs, favg, span, w);
    cap.amplitude = dsp::tone_amplitude(ac, cap.fs, cap.fc, w);
    if (cap.amplitude < 1e-6)
        raise("oscillator capture: negligible amplitude %.3g V", cap.amplitude);
    return cap;
}

std::vector<std::pair<double, double>> instantaneous_frequency(
    const std::vector<double>& wave, double fs, double mean) {
    // Rising-edge zero crossings of (wave - mean) with linear interpolation;
    // each consecutive pair yields one (midpoint time, 1/period) sample.
    std::vector<double> crossings;
    for (size_t i = 1; i < wave.size(); ++i) {
        const double a = wave[i - 1] - mean;
        const double b = wave[i] - mean;
        if (a < 0.0 && b >= 0.0) {
            const double frac = a / (a - b);
            crossings.push_back((static_cast<double>(i - 1) + frac) / fs);
        }
    }
    std::vector<std::pair<double, double>> out;
    for (size_t k = 1; k < crossings.size(); ++k) {
        const double period = crossings[k] - crossings[k - 1];
        if (period <= 0) continue;
        out.emplace_back(0.5 * (crossings[k] + crossings[k - 1]), 1.0 / period);
    }
    return out;
}

std::vector<std::pair<double, double>> envelope(const std::vector<double>& wave,
                                                double fs, double mean) {
    // Local maxima of |wave - mean| with parabolic refinement.
    std::vector<std::pair<double, double>> out;
    for (size_t i = 1; i + 1 < wave.size(); ++i) {
        const double a = std::fabs(wave[i - 1] - mean);
        const double b = std::fabs(wave[i] - mean);
        const double c = std::fabs(wave[i + 1] - mean);
        if (b >= a && b > c) {
            const double denom = a - 2 * b + c;
            double peak = b;
            double shift = 0.0;
            if (denom < 0) {
                shift = 0.5 * (a - c) / denom;
                peak = b - 0.25 * (a - c) * shift;
            }
            out.emplace_back((static_cast<double>(i) + shift) / fs, peak);
        }
    }
    return out;
}

ToneFit fit_tone(const std::vector<std::pair<double, double>>& samples, double freq) {
    SNIM_ASSERT(samples.size() >= 5, "tone fit needs at least 5 samples (got %zu)",
                samples.size());
    SNIM_ASSERT(freq > 0, "tone fit needs a positive frequency");
    // Normal equations for y ~ c + d*(t-t0) + a cos(wt) + b sin(wt); the
    // time origin is centred to keep the system well conditioned.
    const double t0 = 0.5 * (samples.front().first + samples.back().first);
    const double tspan = std::max(samples.back().first - samples.front().first, 1e-30);
    DenseMatrix<double> m(4, 4);
    std::vector<double> rhs(4, 0.0);
    for (const auto& [t, y] : samples) {
        const double ct = std::cos(units::kTwoPi * freq * t);
        const double st = std::sin(units::kTwoPi * freq * t);
        const double basis[4] = {1.0, (t - t0) / tspan, ct, st};
        for (size_t i = 0; i < 4; ++i) {
            rhs[i] += basis[i] * y;
            for (size_t j = 0; j < 4; ++j) m(i, j) += basis[i] * basis[j];
        }
    }
    const auto sol = dense_solve(m, rhs);
    ToneFit fit;
    fit.offset = sol[0];
    fit.trend = sol[1] / tspan;
    fit.amplitude = std::hypot(sol[2], sol[3]);
    fit.phase = std::atan2(-sol[3], sol[2]);
    return fit;
}

} // namespace snim::rf
