#include "dsp/window.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::dsp {

std::vector<double> make_window(WindowKind kind, size_t n) {
    SNIM_ASSERT(n >= 2, "window needs n >= 2");
    std::vector<double> w(n);
    const double N = static_cast<double>(n - 1);
    switch (kind) {
        case WindowKind::Rect:
            for (auto& v : w) v = 1.0;
            break;
        case WindowKind::Hann:
            for (size_t i = 0; i < n; ++i)
                w[i] = 0.5 * (1.0 - std::cos(units::kTwoPi * i / N));
            break;
        case WindowKind::Hamming:
            for (size_t i = 0; i < n; ++i)
                w[i] = 0.54 - 0.46 * std::cos(units::kTwoPi * i / N);
            break;
        case WindowKind::BlackmanHarris4: {
            const double a0 = 0.35875, a1 = 0.48829, a2 = 0.14128, a3 = 0.01168;
            for (size_t i = 0; i < n; ++i) {
                const double t = units::kTwoPi * i / N;
                w[i] = a0 - a1 * std::cos(t) + a2 * std::cos(2 * t) - a3 * std::cos(3 * t);
            }
            break;
        }
    }
    return w;
}

double window_sum(const std::vector<double>& w) {
    double s = 0.0;
    for (double v : w) s += v;
    return s;
}

double window_enbw(const std::vector<double>& w) {
    double s = 0.0, s2 = 0.0;
    for (double v : w) {
        s += v;
        s2 += v * v;
    }
    return static_cast<double>(w.size()) * s2 / (s * s);
}

double mainlobe_halfwidth_bins(WindowKind kind) {
    switch (kind) {
        case WindowKind::Rect: return 1.0;
        case WindowKind::Hann: return 2.0;
        case WindowKind::Hamming: return 2.0;
        case WindowKind::BlackmanHarris4: return 4.0;
    }
    return 4.0;
}

std::string to_string(WindowKind kind) {
    switch (kind) {
        case WindowKind::Rect: return "rect";
        case WindowKind::Hann: return "hann";
        case WindowKind::Hamming: return "hamming";
        case WindowKind::BlackmanHarris4: return "blackman-harris4";
    }
    return "?";
}

} // namespace snim::dsp
