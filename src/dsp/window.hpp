// Window functions for leakage control in spur measurements.
//
// Spur levels down to ~-90 dBc next to a strong carrier need the 4-term
// Blackman-Harris window (-92 dB sidelobes); Hann suffices for coarse
// spectrum plots.
#pragma once

#include <string>
#include <vector>

namespace snim::dsp {

enum class WindowKind { Rect, Hann, Hamming, BlackmanHarris4 };

/// Window samples w[0..n-1].
std::vector<double> make_window(WindowKind kind, size_t n);

/// Sum of window samples (the coherent gain * n); used to normalise
/// amplitude estimates of windowed tones.
double window_sum(const std::vector<double>& w);

/// Equivalent noise bandwidth in bins.
double window_enbw(const std::vector<double>& w);

/// Approximate half mainlobe width in bins (rect 1, hann 2, bh4 4); a tone
/// must be at least this many bins away from the carrier to be resolved.
double mainlobe_halfwidth_bins(WindowKind kind);

std::string to_string(WindowKind kind);

} // namespace snim::dsp
