#include "dsp/fft.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::dsp {

size_t next_pow2(size_t n) {
    SNIM_ASSERT(n >= 1, "next_pow2 needs n >= 1");
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

namespace {

/// Cached twiddle table for one butterfly stage: w^k = exp(+-i 2*pi k / len)
/// for k < len/2, built once per (len, direction) and shared by every
/// transform size (a 4096-point FFT reuses the 2..2048 stage tables of
/// smaller sizes).  The table is filled with the same running product the
/// historical per-block loop used, so results stay bit-identical.  std::map
/// nodes never move, so the returned reference outlives the lock.
const std::vector<std::complex<double>>& twiddles(size_t len, bool inverse) {
    static std::mutex mu;
    static std::map<std::pair<size_t, bool>, std::vector<std::complex<double>>> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto [it, fresh] = cache.try_emplace({len, inverse});
    if (fresh) {
        const double ang =
            (inverse ? 1.0 : -1.0) * units::kTwoPi / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(ang), std::sin(ang));
        std::vector<std::complex<double>>& w = it->second;
        w.resize(len / 2);
        std::complex<double> cur(1.0, 0.0);
        for (size_t k = 0; k < w.size(); ++k) {
            w[k] = cur;
            cur *= wlen;
        }
    }
    return it->second;
}

void fft_core(std::vector<std::complex<double>>& a, bool inverse) {
    const size_t n = a.size();
    SNIM_ASSERT(n > 0 && (n & (n - 1)) == 0, "FFT size %zu not a power of two", n);
    obs::ScopedTimer obs_timer("dsp/fft");
    if (obs::enabled()) obs::record_value("dsp/fft_size", static_cast<double>(n));

    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[i], a[j]);
    }

    for (size_t len = 2; len <= n; len <<= 1) {
        const auto& w = twiddles(len, inverse);
        for (size_t i = 0; i < n; i += len) {
            for (size_t k = 0; k < len / 2; ++k) {
                const auto u = a[i + k];
                const auto v = a[i + k + len / 2] * w[k];
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
            }
        }
    }
    if (inverse) {
        const double inv = 1.0 / static_cast<double>(n);
        for (auto& x : a) x *= inv;
    }
}

} // namespace

void fft(std::vector<std::complex<double>>& data) { fft_core(data, false); }
void ifft(std::vector<std::complex<double>>& data) { fft_core(data, true); }

std::vector<std::complex<double>> fft_real(const std::vector<double>& signal) {
    SNIM_ASSERT(!signal.empty(), "empty signal");
    std::vector<std::complex<double>> a(next_pow2(signal.size()));
    for (size_t i = 0; i < signal.size(); ++i) a[i] = signal[i];
    fft(a);
    return a;
}

} // namespace snim::dsp
