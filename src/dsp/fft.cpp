#include "dsp/fft.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::dsp {

size_t next_pow2(size_t n) {
    SNIM_ASSERT(n >= 1, "next_pow2 needs n >= 1");
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

namespace {

void fft_core(std::vector<std::complex<double>>& a, bool inverse) {
    const size_t n = a.size();
    SNIM_ASSERT(n > 0 && (n & (n - 1)) == 0, "FFT size %zu not a power of two", n);
    obs::ScopedTimer obs_timer("dsp/fft");
    if (obs::enabled()) obs::record_value("dsp/fft_size", static_cast<double>(n));

    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[i], a[j]);
    }

    for (size_t len = 2; len <= n; len <<= 1) {
        const double ang = (inverse ? 1.0 : -1.0) * units::kTwoPi / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(ang), std::sin(ang));
        for (size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (size_t k = 0; k < len / 2; ++k) {
                const auto u = a[i + k];
                const auto v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        const double inv = 1.0 / static_cast<double>(n);
        for (auto& x : a) x *= inv;
    }
}

} // namespace

void fft(std::vector<std::complex<double>>& data) { fft_core(data, false); }
void ifft(std::vector<std::complex<double>>& data) { fft_core(data, true); }

std::vector<std::complex<double>> fft_real(const std::vector<double>& signal) {
    SNIM_ASSERT(!signal.empty(), "empty signal");
    std::vector<std::complex<double>> a(next_pow2(signal.size()));
    for (size_t i = 0; i < signal.size(); ++i) a[i] = signal[i];
    fft(a);
    return a;
}

} // namespace snim::dsp
