// Spectrum estimation helpers: windowed periodogram (for Figure-7 style
// plots) and peak extraction.
#pragma once

#include <string>
#include <vector>

#include "dsp/window.hpp"

namespace snim::dsp {

struct Spectrum {
    std::vector<double> freq;   // Hz, [0 .. fs/2]
    std::vector<double> amp;    // single-sided amplitude (V peak)
    double fs = 0.0;
    double rbw = 0.0;           // resolution bandwidth ~ ENBW * fs / n
};

/// Windowed single-sided amplitude spectrum of a uniformly sampled signal.
Spectrum amplitude_spectrum(const std::vector<double>& signal, double fs,
                            WindowKind window = WindowKind::BlackmanHarris4);

struct Peak {
    double freq = 0.0;
    double amp = 0.0; // V peak
};

/// Local maxima above `min_amp`, strongest first, at most `max_peaks`.
std::vector<Peak> find_peaks(const Spectrum& s, double min_amp, size_t max_peaks = 16);

/// dBm of a sinusoid with the given peak amplitude into `rload`.
double peak_dbm(const Peak& p, double rload = 50.0);

} // namespace snim::dsp
