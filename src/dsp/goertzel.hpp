// Single-frequency DFT evaluation (generalised Goertzel) at arbitrary,
// non-bin-aligned frequencies.  This is how spur amplitudes are read off a
// transient waveform: window, then evaluate at fc and fc +/- fnoise exactly.
#pragma once

#include <complex>
#include <vector>

namespace snim::dsp {

/// Complex DFT coefficient of `signal` at normalised frequency f/fs
/// (cycles per sample).  Equivalent to sum x[n] exp(-j 2 pi fn n).
std::complex<double> goertzel(const std::vector<double>& signal, double cycles_per_sample);

/// Amplitude of the sinusoidal component at frequency `freq` in a signal
/// sampled at `fs`, using window `w` (already applied? no: applied here).
/// Returns the single-sided amplitude estimate (V peak for a voltage wave).
double tone_amplitude(const std::vector<double>& signal, double fs, double freq,
                      const std::vector<double>& window);

/// Local search for the exact frequency of the strongest tone near `f0`
/// (within +/- `span`), maximising windowed-Goertzel magnitude.  Used to
/// refine the oscillator carrier frequency before spur readout.
double refine_tone_frequency(const std::vector<double>& signal, double fs, double f0,
                             double span, const std::vector<double>& window,
                             int iterations = 40);

} // namespace snim::dsp
