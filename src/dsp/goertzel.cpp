#include "dsp/goertzel.hpp"

#include <cmath>

#include "dsp/window.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::dsp {

std::complex<double> goertzel(const std::vector<double>& signal, double cycles_per_sample) {
    SNIM_ASSERT(!signal.empty(), "goertzel: empty signal");
    // Direct correlation with a recursively generated phasor; O(n) per
    // frequency, numerically stable for long windows.
    const double w = units::kTwoPi * cycles_per_sample;
    const std::complex<double> rot(std::cos(w), -std::sin(w));
    std::complex<double> phasor(1.0, 0.0);
    std::complex<double> acc(0.0, 0.0);
    size_t renorm = 0;
    for (double x : signal) {
        acc += x * phasor;
        phasor *= rot;
        // Periodic renormalisation keeps |phasor| = 1 over millions of samples.
        if (++renorm == 4096) {
            phasor /= std::abs(phasor);
            renorm = 0;
        }
    }
    return acc;
}

double tone_amplitude(const std::vector<double>& signal, double fs, double freq,
                      const std::vector<double>& window) {
    SNIM_ASSERT(signal.size() == window.size(), "signal/window length mismatch");
    SNIM_ASSERT(fs > 0 && freq >= 0 && freq < fs / 2, "tone frequency out of range");
    std::vector<double> xw(signal.size());
    for (size_t i = 0; i < signal.size(); ++i) xw[i] = signal[i] * window[i];
    const auto c = goertzel(xw, freq / fs);
    // For a tone A*cos(2 pi f t + phi), the windowed DFT at f gives
    // A/2 * sum(w), so amplitude = 2|X| / sum(w).
    return 2.0 * std::abs(c) / window_sum(window);
}

double refine_tone_frequency(const std::vector<double>& signal, double fs, double f0,
                             double span, const std::vector<double>& window,
                             int iterations) {
    SNIM_ASSERT(span > 0, "span must be positive");
    std::vector<double> xw(signal.size());
    for (size_t i = 0; i < signal.size(); ++i) xw[i] = signal[i] * window[i];
    auto mag = [&](double f) { return std::abs(goertzel(xw, f / fs)); };

    // Golden-section search on [f0-span, f0+span]; the windowed mainlobe is
    // unimodal around the true tone.
    const double gr = 0.5 * (std::sqrt(5.0) - 1.0);
    double a = f0 - span, b = f0 + span;
    double c = b - gr * (b - a), d = a + gr * (b - a);
    double fc = mag(c), fd = mag(d);
    for (int it = 0; it < iterations; ++it) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - gr * (b - a);
            fc = mag(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + gr * (b - a);
            fd = mag(d);
        }
    }
    return 0.5 * (a + b);
}

} // namespace snim::dsp
