#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::dsp {

Spectrum amplitude_spectrum(const std::vector<double>& signal, double fs,
                            WindowKind window) {
    SNIM_ASSERT(signal.size() >= 8, "signal too short for a spectrum");
    SNIM_ASSERT(fs > 0, "fs must be positive");
    const auto w = make_window(window, signal.size());
    std::vector<double> xw(signal.size());
    for (size_t i = 0; i < signal.size(); ++i) xw[i] = signal[i] * w[i];
    auto spec = fft_real(xw);
    const size_t nfft = spec.size();
    const double scale = 2.0 / window_sum(w);

    Spectrum out;
    out.fs = fs;
    out.rbw = window_enbw(w) * fs / static_cast<double>(signal.size());
    const size_t half = nfft / 2;
    out.freq.resize(half);
    out.amp.resize(half);
    for (size_t k = 0; k < half; ++k) {
        out.freq[k] = fs * static_cast<double>(k) / static_cast<double>(nfft);
        out.amp[k] = scale * std::abs(spec[k]);
    }
    if (!out.amp.empty()) out.amp[0] *= 0.5; // DC is single-sided already
    return out;
}

std::vector<Peak> find_peaks(const Spectrum& s, double min_amp, size_t max_peaks) {
    std::vector<Peak> peaks;
    for (size_t k = 1; k + 1 < s.amp.size(); ++k) {
        if (s.amp[k] < min_amp) continue;
        if (s.amp[k] >= s.amp[k - 1] && s.amp[k] > s.amp[k + 1]) {
            peaks.push_back({s.freq[k], s.amp[k]});
        }
    }
    std::sort(peaks.begin(), peaks.end(),
              [](const Peak& a, const Peak& b) { return a.amp > b.amp; });
    if (peaks.size() > max_peaks) peaks.resize(max_peaks);
    return peaks;
}

double peak_dbm(const Peak& p, double rload) {
    return units::dbm_from_amplitude(p.amp, rload);
}

} // namespace snim::dsp
