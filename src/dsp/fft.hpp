// Iterative radix-2 FFT used for spectrum estimation of transient waveforms.
#pragma once

#include <complex>
#include <vector>

namespace snim::dsp {

/// In-place forward FFT; size must be a power of two.
void fft(std::vector<std::complex<double>>& data);
/// In-place inverse FFT (includes the 1/N scaling).
void ifft(std::vector<std::complex<double>>& data);

/// FFT of a real signal; returns the full complex spectrum of length
/// next_pow2(signal.size()) with the input zero-padded.
std::vector<std::complex<double>> fft_real(const std::vector<double>& signal);

/// Smallest power of two >= n (n >= 1).
size_t next_pow2(size_t n);

} // namespace snim::dsp
