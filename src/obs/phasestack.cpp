#include "obs/phasestack.hpp"

#if SNIM_OBS_ENABLED

#include <unistd.h>

#include <cstring>

namespace snim::obs::phase_stack {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

/// One thread's live stack.  `depth` is the seqlock-ish coordination point:
/// writers bump it only after the frame bytes are in place (push) or before
/// they go stale (pop), so a racing reader sees at worst one garbled frame
/// name — never an out-of-bounds index.
struct ThreadSlot {
    std::atomic<int> depth{0};
    std::atomic<bool> claimed{false};
    char frames[kMaxDepth][kFrameBytes] = {};
};

struct Slots {
    ThreadSlot slot[kMaxThreads];
};

Slots& slots() {
    static Slots* s = new Slots; // leaked: readable during process teardown
    return *s;
}

int claim_slot() {
    Slots& s = slots();
    for (int i = 0; i < kMaxThreads; ++i) {
        bool expected = false;
        if (s.slot[i].claimed.compare_exchange_strong(expected, true,
                                                      std::memory_order_acq_rel))
            return i;
    }
    return -1; // more than kMaxThreads concurrent pushers: untracked
}

/// Releases the slot when its thread exits, so short-lived pool workers
/// recycle slots instead of exhausting the fixed table.
struct SlotLease {
    int index = -2; // -2 unclaimed, -1 claim failed, >= 0 live
    ~SlotLease() {
        if (index >= 0) {
            ThreadSlot& ts = slots().slot[index];
            ts.depth.store(0, std::memory_order_release);
            ts.claimed.store(false, std::memory_order_release);
        }
    }
};

thread_local SlotLease t_lease;

} // namespace

void set_enabled(bool on) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool push(std::string_view frame) {
    if (!enabled()) return false;
    if (t_lease.index == -2) t_lease.index = claim_slot();
    if (t_lease.index < 0) return false;
    ThreadSlot& ts = slots().slot[t_lease.index];
    const int d = ts.depth.load(std::memory_order_relaxed);
    if (d >= kMaxDepth) return false;
    char* dst = ts.frames[d];
    const size_t n = frame.size() < kFrameBytes - 1 ? frame.size() : kFrameBytes - 1;
    std::memcpy(dst, frame.data(), n);
    dst[n] = '\0';
    ts.depth.store(d + 1, std::memory_order_release);
    return true;
}

void pop() {
    if (t_lease.index < 0) return;
    ThreadSlot& ts = slots().slot[t_lease.index];
    const int d = ts.depth.load(std::memory_order_relaxed);
    if (d > 0) ts.depth.store(d - 1, std::memory_order_release);
}

int depth() {
    if (t_lease.index < 0) return 0;
    return slots().slot[t_lease.index].depth.load(std::memory_order_relaxed);
}

std::vector<ThreadStack> sample_all() {
    std::vector<ThreadStack> out;
    Slots& s = slots();
    for (int i = 0; i < kMaxThreads; ++i) {
        ThreadSlot& ts = s.slot[i];
        const int d = ts.depth.load(std::memory_order_acquire);
        if (d <= 0) continue;
        ThreadStack stack;
        stack.slot = i;
        stack.frames.reserve(static_cast<size_t>(d));
        for (int f = 0; f < d && f < kMaxDepth; ++f) {
            char buf[kFrameBytes];
            std::memcpy(buf, ts.frames[f], kFrameBytes);
            buf[kFrameBytes - 1] = '\0';
            stack.frames.emplace_back(buf);
        }
        if (!stack.frames.empty()) out.push_back(std::move(stack));
    }
    return out;
}

size_t write_stacks_fd(int fd) {
    Slots& s = slots();
    size_t written = 0;
    for (int i = 0; i < kMaxThreads; ++i) {
        ThreadSlot& ts = s.slot[i];
        const int d = ts.depth.load(std::memory_order_acquire);
        if (d <= 0) continue;
        // {"phase_stack":{"slot":NN,"stack":"a;b;c"}}\n  — rendered into a
        // fixed buffer with byte copies only; frame names are plain phase
        // paths, so no JSON escaping is needed beyond dropping '"' and '\'.
        char line[64 + kMaxDepth * kFrameBytes];
        size_t pos = 0;
        const char* head = "{\"phase_stack\":{\"slot\":";
        for (const char* p = head; *p; ++p) line[pos++] = *p;
        if (i >= 10) line[pos++] = static_cast<char>('0' + i / 10);
        line[pos++] = static_cast<char>('0' + i % 10);
        const char* mid = ",\"stack\":\"";
        for (const char* p = mid; *p; ++p) line[pos++] = *p;
        for (int f = 0; f < d && f < kMaxDepth; ++f) {
            if (f > 0) line[pos++] = ';';
            const char* frame = ts.frames[f];
            for (int b = 0; b < kFrameBytes - 1 && frame[b]; ++b) {
                const char c = frame[b];
                if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
                    continue;
                line[pos++] = c;
            }
        }
        const char* tail = "\"}}\n";
        for (const char* p = tail; *p; ++p) line[pos++] = *p;
        (void)!write(fd, line, pos);
        ++written;
    }
    return written;
}

} // namespace snim::obs::phase_stack

#endif // SNIM_OBS_ENABLED
