#include "obs/timeseries.hpp"

#if SNIM_OBS_ENABLED

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

namespace snim::obs {

namespace {

/// One channel's decimating buffer.  `stride` doubles every time the buffer
/// fills; only every stride-th offered sample is stored, plus the pending
/// last sample kept aside so snapshots always end on it.
struct Channel {
    std::string unit;
    std::vector<double> time;
    std::vector<double> value;
    uint64_t offered = 0;
    uint64_t stride = 1;
    double last_t = 0.0;
    double last_v = 0.0;

    void add(double t, double v) {
        if (offered % stride == 0) {
            time.push_back(t);
            value.push_back(v);
            if (time.size() >= kTimeSeriesCapacity) decimate();
        }
        last_t = t;
        last_v = v;
        ++offered;
    }

    void decimate() {
        size_t kept = 0;
        for (size_t i = 0; i < time.size(); i += 2) {
            time[kept] = time[i];
            value[kept] = value[i];
            ++kept;
        }
        time.resize(kept);
        value.resize(kept);
        stride *= 2;
    }

    TimeSeries snapshot(const std::string& name) const {
        TimeSeries s;
        s.name = name;
        s.unit = unit;
        s.time = time;
        s.value = value;
        s.offered = offered;
        s.stride = stride;
        // The stride may have skipped the most recent sample; a series that
        // does not end on the last offered point misreports where the run
        // stopped (the whole point of a post-mortem tail).
        if (offered > 0 && (s.time.empty() || s.time.back() != last_t ||
                            s.value.back() != last_v)) {
            s.time.push_back(last_t);
            s.value.push_back(last_v);
        }
        return s;
    }
};

struct Store {
    std::mutex mu;
    std::map<std::string, Channel, std::less<>> channels;
};

Store& store() {
    static Store* s = new Store; // leaked like the registry: no static-destruction races
    return *s;
}

} // namespace

void ts_append(std::string_view channel, double t, double value, std::string_view unit) {
    if (!enabled()) return;
    // Parallel-task capture first: finiteness filtering and channel state
    // updates then happen at commit time, in deterministic task order.
    if (detail::capture_ts(channel, t, value, unit)) return;
    if (!std::isfinite(t) || !std::isfinite(value)) {
        count("obs/ts_nonfinite_dropped");
        return;
    }
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.channels.find(channel);
    if (it == s.channels.end())
        it = s.channels.emplace(std::string(channel), Channel{}).first;
    if (it->second.unit.empty() && !unit.empty()) it->second.unit = unit;
    it->second.add(t, value);
}

std::optional<TimeSeries> ts_get(std::string_view channel) {
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.channels.find(channel);
    if (it == s.channels.end()) return std::nullopt;
    return it->second.snapshot(it->first);
}

std::vector<TimeSeries> ts_snapshot() {
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    std::vector<TimeSeries> out;
    out.reserve(s.channels.size());
    for (const auto& [name, ch] : s.channels) out.push_back(ch.snapshot(name));
    return out;
}

void ts_reset() {
    Store& s = store();
    std::lock_guard<std::mutex> lock(s.mu);
    s.channels.clear();
}

} // namespace snim::obs

#endif // SNIM_OBS_ENABLED
