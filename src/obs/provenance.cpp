#include "obs/provenance.hpp"

#include <algorithm>
#include <atomic>
#include <ctime>
#include <mutex>

#ifndef _WIN32
#include <sys/utsname.h>
#include <unistd.h>
#endif

#include "util/error.hpp"

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif
#ifndef SNIM_FAULTS_ENABLED
#define SNIM_FAULTS_ENABLED 1
#endif

namespace snim::obs {

uint64_t fnv1a64(std::string_view data, uint64_t seed) {
    uint64_t h = seed;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

void ConfigDigest::add(std::string_view field, std::string_view value) {
    fields_.emplace_back(std::string(field), std::string(value));
}

void ConfigDigest::add(std::string_view field, const char* value) {
    add(field, std::string_view(value));
}

void ConfigDigest::add(std::string_view field, double value) {
    add(field, std::string_view(format("%.17g", value)));
}

void ConfigDigest::add(std::string_view field, bool value) {
    add(field, std::string_view(value ? "true" : "false"));
}

void ConfigDigest::add(std::string_view field, int value) {
    add(field, std::string_view(format("%d", value)));
}

void ConfigDigest::add(std::string_view field, long value) {
    add(field, std::string_view(format("%ld", value)));
}

void ConfigDigest::add(std::string_view field, uint64_t value) {
    add(field, std::string_view(format("%llu", static_cast<unsigned long long>(value))));
}

void ConfigDigest::add(std::string_view field, const std::vector<double>& values) {
    std::string v = format("[%zu]", values.size());
    for (const double x : values) {
        v += format("%.17g", x);
        v += ';';
    }
    add(field, std::string_view(v));
}

uint64_t ConfigDigest::value64() const {
    std::vector<std::pair<std::string, std::string>> sorted = fields_;
    std::sort(sorted.begin(), sorted.end());
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& [name, value] : sorted) {
        h = fnv1a64(name, h);
        h = fnv1a64("=", h);
        h = fnv1a64(value, h);
        h = fnv1a64("\n", h);
    }
    return h;
}

std::string ConfigDigest::hex() const {
    return format("%016llx", static_cast<unsigned long long>(value64()));
}

namespace {

/// One epoch stamp per process so every run id and token shares it: the
/// combination (start stamp, pid) identifies the process, the trailing
/// sequence number orders runs within it.
uint64_t process_start_stamp() {
    static const uint64_t stamp = static_cast<uint64_t>(std::time(nullptr));
    return stamp;
}

int process_pid() {
#ifndef _WIN32
    return static_cast<int>(::getpid());
#else
    return 0;
#endif
}

std::string detect_sanitizers() {
    std::string out;
#if defined(__SANITIZE_ADDRESS__)
    out = "address";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    out = "address";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
    out += out.empty() ? "thread" : ",thread";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    out += out.empty() ? "thread" : ",thread";
#endif
#endif
    return out;
}

std::string detect_hostname() {
#ifndef _WIN32
    char buf[256] = {0};
    if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0]) return buf;
#endif
    return "unknown";
}

std::string detect_os() {
#ifndef _WIN32
    struct utsname u;
    if (::uname(&u) == 0) return format("%s %s", u.sysname, u.release);
#endif
    return "unknown";
}

std::string utc_now_iso8601() {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
#ifndef _WIN32
    gmtime_r(&now, &tm);
#else
    tm = *std::gmtime(&now);
#endif
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

std::mutex& manifest_mutex() {
    static std::mutex* m = new std::mutex;
    return *m;
}

std::optional<RunManifest>& manifest_store() {
    static std::optional<RunManifest>* m = new std::optional<RunManifest>;
    return *m;
}

} // namespace

RunManifest make_run_manifest(std::string tool, const ConfigDigest& digest,
                              uint64_t seed, int threads) {
    static std::atomic<int> seq{0};
    RunManifest m;
    m.run_id = format("%llx-%d-%03d",
                      static_cast<unsigned long long>(process_start_stamp()),
                      process_pid(), seq.fetch_add(1));
    m.tool = std::move(tool);
    m.config_digest = digest.hex();
    m.seed = seed;
    m.threads = threads;
#ifdef SNIM_BUILD_TYPE
    m.build_type = SNIM_BUILD_TYPE;
#else
    m.build_type = "unknown";
#endif
#ifdef __VERSION__
    m.compiler = __VERSION__;
#else
    m.compiler = "unknown";
#endif
    m.obs_enabled = SNIM_OBS_ENABLED != 0;
    m.faults_enabled = SNIM_FAULTS_ENABLED != 0;
    m.sanitizers = detect_sanitizers();
    m.hostname = detect_hostname();
    m.os = detect_os();
    m.created_utc = utc_now_iso8601();
    return m;
}

Json manifest_json(const RunManifest& m) {
    JsonObject o;
    o.emplace("run_id", m.run_id);
    o.emplace("tool", m.tool);
    o.emplace("config_digest", m.config_digest);
    o.emplace("seed", m.seed);
    o.emplace("threads", m.threads);
    o.emplace("build_type", m.build_type);
    o.emplace("compiler", m.compiler);
    o.emplace("obs_enabled", m.obs_enabled);
    o.emplace("faults_enabled", m.faults_enabled);
    o.emplace("sanitizers", m.sanitizers);
    o.emplace("hostname", m.hostname);
    o.emplace("os", m.os);
    o.emplace("created_utc", m.created_utc);
    return Json(std::move(o));
}

RunManifest manifest_from_json(const Json& j) {
    RunManifest m;
    if (!j.is_object()) return m;
    auto str = [&](const char* key, std::string& into) {
        if (j.contains(key) && j.at(key).is_string()) into = j.at(key).as_string();
    };
    str("run_id", m.run_id);
    str("tool", m.tool);
    str("config_digest", m.config_digest);
    if (j.contains("seed") && j.at("seed").is_number())
        m.seed = static_cast<uint64_t>(j.at("seed").as_number());
    if (j.contains("threads") && j.at("threads").is_number())
        m.threads = static_cast<int>(j.at("threads").as_number());
    str("build_type", m.build_type);
    str("compiler", m.compiler);
    if (j.contains("obs_enabled") && j.at("obs_enabled").is_bool())
        m.obs_enabled = j.at("obs_enabled").as_bool();
    if (j.contains("faults_enabled") && j.at("faults_enabled").is_bool())
        m.faults_enabled = j.at("faults_enabled").as_bool();
    str("sanitizers", m.sanitizers);
    str("hostname", m.hostname);
    str("os", m.os);
    str("created_utc", m.created_utc);
    return m;
}

void set_current_manifest(RunManifest m) {
    std::lock_guard<std::mutex> lock(manifest_mutex());
    manifest_store() = std::move(m);
}

std::optional<RunManifest> current_manifest() {
    std::lock_guard<std::mutex> lock(manifest_mutex());
    return manifest_store();
}

void clear_current_manifest() {
    std::lock_guard<std::mutex> lock(manifest_mutex());
    manifest_store().reset();
}

RunManifest ensure_current_manifest(const std::string& tool,
                                    const ConfigDigest& digest, uint64_t seed,
                                    int threads) {
    {
        std::lock_guard<std::mutex> lock(manifest_mutex());
        if (manifest_store()) return *manifest_store();
    }
    // Built outside the lock (make_run_manifest probes the host); a racing
    // second caller just wins the store below, which is fine — both
    // manifests describe the same process.
    RunManifest m = make_run_manifest(tool, digest, seed, threads);
    std::lock_guard<std::mutex> lock(manifest_mutex());
    if (!manifest_store()) manifest_store() = m;
    return *manifest_store();
}

std::string process_run_token() {
    return format("%llxp%d", static_cast<unsigned long long>(process_start_stamp()),
                  process_pid());
}

} // namespace snim::obs
