// Phase-stack sampling profiler: a wall-clock flamegraph of a run, built
// from the instrumentation the codebase already has.
//
// A timer thread wakes ~200 times a second, snapshots every live per-thread
// ScopedTimer stack (obs/phasestack), and folds each into a semicolon-joined
// key under a common "snim" root:
//
//   snim;bench/scenario;sim/transient;sim/transient/newton 1831
//
// That is exactly the "folded stacks" format flamegraph.pl and speedscope
// ingest, so `write_folded()` output feeds standard tooling directly; the
// same counts are embedded in Chrome traces (top-level "snimProfile" key,
// ignored by the viewers) and in BENCH reports.
//
// Compared to the registry's phase tree (exact inclusive timings of every
// phase), sampling answers a different question — "where was the time when
// I looked?" — and keeps working when a phase never exits, which is what
// the watchdog cares about.  Sampling is statistical: a tick that lands
// mid-push may read one garbled frame; with thousands of samples that is
// noise by construction.
//
// Cost when running: one sample_all() per tick on the profiler thread; the
// solver threads pay only the (relaxed-load-gated) phase-stack pushes.
// Idle cost: zero — starting the profiler is what enables stack tracking.
// Env: SNIM_PROFILE=out.folded (see init_live_from_env).  Inline no-ops
// under -DSNIM_ENABLE_OBS=OFF.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.hpp"

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif

namespace snim::obs {

struct ProfilerOptions {
    double hz = 200.0; // sampling rate, clamped to [1, 1000]
};

/// Accumulated folded-stack counts.  `samples` counts every tick (idle
/// ticks fold to the bare "snim" root), so sum(counts) == samples.
struct FoldedProfile {
    double hz = 0.0;
    uint64_t samples = 0;
    std::map<std::string, uint64_t> counts; // "snim;a;b" -> ticks observed
};

#if SNIM_OBS_ENABLED

/// Starts the sampler thread (idempotent; restarting keeps accumulating
/// into the same counts) and enables phase-stack tracking.
void start_profiler(const ProfilerOptions& options = {});

/// Stops and joins the sampler thread.  Counts are kept for snapshotting.
void stop_profiler();

bool profiler_running();

/// Copy of the counts accumulated so far (callable while running).
FoldedProfile profiler_snapshot();

/// Drops all accumulated counts.  Test isolation / per-scenario resets.
void reset_profiler();

/// flamegraph.pl input: one "stack count" line per entry, sorted by stack.
std::string folded_text(const FoldedProfile& profile);

/// Writes folded_text() to `path`; raises snim::Error on I/O failure.
void write_folded(const std::string& path, const FoldedProfile& profile);

/// {"hz":...,"samples":...,"stacks":{"snim;a;b":n,...}} — the form merged
/// into Chrome traces and BENCH reports.
Json profile_json(const FoldedProfile& profile);

#else // SNIM_OBS_ENABLED — compiled out: inline no-ops.

inline void start_profiler(const ProfilerOptions& = {}) {}
inline void stop_profiler() {}
inline bool profiler_running() { return false; }
inline FoldedProfile profiler_snapshot() { return {}; }
inline void reset_profiler() {}
inline std::string folded_text(const FoldedProfile&) { return {}; }
inline void write_folded(const std::string&, const FoldedProfile&) {}
inline Json profile_json(const FoldedProfile&) { return Json(); }

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
