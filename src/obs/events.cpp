#include "obs/events.hpp"

#if SNIM_OBS_ENABLED

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/json.hpp"
#include "obs/lastgasp.hpp"
#include "obs/profiler.hpp"
#include "obs/watchdog.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace snim::obs {

namespace {

static_assert((kEventRingSlots & (kEventRingSlots - 1)) == 0,
              "ring size must be a power of two");

/// Seqlock-per-slot ring.  A slot's seq is 0 while a writer owns it, the
/// record's global 1-based sequence once the text is complete.  Readers
/// re-check seq after copying to discard torn records.
struct Slot {
    std::atomic<uint64_t> seq{0};
    char text[kEventSlotBytes] = {};
};

struct Ring {
    std::atomic<uint64_t> next{0}; // records emitted so far
    Slot slots[kEventRingSlots];
};

Ring& ring() {
    static Ring* r = new Ring;
    return *r;
}

std::atomic<bool> g_active{false};
std::atomic<bool> g_bridge_installed{false};

std::mutex g_stream_mutex;
std::FILE* g_stream = nullptr; // owned unless == stderr
bool g_stream_is_stderr = false;

using Clock = std::chrono::steady_clock;
Clock::time_point journal_epoch() {
    static const Clock::time_point t0 = Clock::now();
    return t0;
}

/// Mirrors every util::log emission into the journal.  Installed once, on
/// first activation; inert while the journal is inactive.
void install_log_bridge() {
    bool expected = false;
    if (!g_bridge_installed.compare_exchange_strong(expected, true)) return;
    set_log_mirror([](LogLevel level, std::string_view msg) {
        if (!events_active()) return;
        EventLevel lvl = EventLevel::Info;
        switch (level) {
            case LogLevel::Debug: lvl = EventLevel::Debug; break;
            case LogLevel::Info: lvl = EventLevel::Info; break;
            case LogLevel::Warn: lvl = EventLevel::Warn; break;
            case LogLevel::Quiet: return;
        }
        event(lvl, "log", event_level_name(lvl), {{"msg", msg}});
    });
}

std::string render_kv(std::initializer_list<EventKv> kv) {
    std::string out;
    for (const EventKv& e : kv) {
        out += out.empty() ? "{" : ",";
        out += json_quote(e.key);
        out += ':';
        switch (e.kind) {
            case EventKv::Kind::Num: out += json_number(e.num); break;
            case EventKv::Kind::Bool: out += e.flag ? "true" : "false"; break;
            case EventKv::Kind::Str: out += json_quote(e.str); break;
        }
    }
    if (out.empty()) return "{}";
    out += '}';
    return out;
}

std::string render_record(uint64_t seq, double ts, EventLevel level,
                          std::string_view component, std::string_view code,
                          std::initializer_list<EventKv> kv, bool truncated) {
    std::string out = "{\"seq\":" + json_number(static_cast<double>(seq)) +
                      ",\"ts\":" + format("%.6f", ts) +
                      ",\"lvl\":\"" + event_level_name(level) + "\"" +
                      ",\"comp\":" + json_quote(component) +
                      ",\"code\":" + json_quote(code);
    if (truncated) {
        out += ",\"truncated\":true}";
        return out;
    }
    out += ",\"kv\":" + render_kv(kv) + "}";
    return out;
}

} // namespace

bool events_active() { return g_active.load(std::memory_order_relaxed); }

void set_events_active(bool on) {
    if (on) {
        (void)journal_epoch(); // start the journal clock
        install_log_bridge();
    }
    g_active.store(on, std::memory_order_relaxed);
}

double event_now_s() {
    return std::chrono::duration<double>(Clock::now() - journal_epoch()).count();
}

void event(EventLevel level, std::string_view component, std::string_view code,
           std::initializer_list<EventKv> kv) {
    if (!events_active()) return;
    if (level == EventLevel::Debug && log_level() > LogLevel::Debug) return;

    Ring& r = ring();
    const uint64_t seq = r.next.fetch_add(1, std::memory_order_relaxed) + 1;
    const double ts = event_now_s();
    std::string line = render_record(seq, ts, level, component, code, kv, false);
    if (line.size() >= kEventSlotBytes)
        line = render_record(seq, ts, level, component, code, {}, true);

    Slot& slot = r.slots[(seq - 1) & (kEventRingSlots - 1)];
    slot.seq.store(0, std::memory_order_release); // mark busy
    std::memcpy(slot.text, line.data(), line.size());
    slot.text[line.size()] = '\0';
    slot.seq.store(seq, std::memory_order_release);

    std::lock_guard<std::mutex> lock(g_stream_mutex);
    if (g_stream) {
        std::fwrite(line.data(), 1, line.size(), g_stream);
        std::fputc('\n', g_stream);
        std::fflush(g_stream);
    }
}

void set_event_stream_path(const std::string& path) {
    close_event_stream();
    if (path.empty()) return;
    std::FILE* f = nullptr;
    bool is_stderr = false;
    if (path == "stderr" || path == "-") {
        f = stderr;
        is_stderr = true;
    } else {
        f = std::fopen(path.c_str(), "w");
        if (!f) raise("cannot open event stream '%s' for writing", path.c_str());
    }
    {
        std::lock_guard<std::mutex> lock(g_stream_mutex);
        g_stream = f;
        g_stream_is_stderr = is_stderr;
    }
    set_events_active(true);
}

void close_event_stream() {
    std::lock_guard<std::mutex> lock(g_stream_mutex);
    if (g_stream && !g_stream_is_stderr) std::fclose(g_stream);
    g_stream = nullptr;
    g_stream_is_stderr = false;
}

std::vector<std::string> event_tail(size_t max_count) {
    Ring& r = ring();
    const uint64_t emitted = r.next.load(std::memory_order_acquire);
    if (emitted == 0 || max_count == 0) return {};
    const uint64_t window = std::min<uint64_t>({emitted, max_count, kEventRingSlots});
    std::vector<std::string> out;
    out.reserve(window);
    for (uint64_t seq = emitted - window + 1; seq <= emitted; ++seq) {
        Slot& slot = r.slots[(seq - 1) & (kEventRingSlots - 1)];
        const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 != seq) continue; // overwritten or mid-write
        char buf[kEventSlotBytes];
        std::memcpy(buf, slot.text, kEventSlotBytes);
        const uint64_t s2 = slot.seq.load(std::memory_order_acquire);
        if (s2 != seq) continue; // torn during the copy
        buf[kEventSlotBytes - 1] = '\0';
        out.emplace_back(buf);
    }
    return out;
}

uint64_t event_count() { return ring().next.load(std::memory_order_relaxed); }

void reset_events_for_test() {
    Ring& r = ring();
    r.next.store(0, std::memory_order_relaxed);
    for (Slot& s : r.slots) {
        s.seq.store(0, std::memory_order_relaxed);
        s.text[0] = '\0';
    }
}

namespace detail {

size_t write_ring_tail_fd(int fd, size_t max_count) {
    Ring& r = ring();
    const uint64_t emitted = r.next.load(std::memory_order_acquire);
    if (emitted == 0 || max_count == 0) return 0;
    const uint64_t window = std::min<uint64_t>({emitted, max_count, kEventRingSlots});
    size_t written = 0;
    for (uint64_t seq = emitted - window + 1; seq <= emitted; ++seq) {
        Slot& slot = r.slots[(seq - 1) & (kEventRingSlots - 1)];
        if (slot.seq.load(std::memory_order_acquire) != seq) continue;
        size_t len = 0;
        while (len < kEventSlotBytes - 1 && slot.text[len] != '\0') ++len;
        if (len == 0) continue;
        (void)!write(fd, slot.text, len);
        (void)!write(fd, "\n", 1);
        ++written;
    }
    return written;
}

} // namespace detail

// --- env-driven live stack ------------------------------------------------

namespace {

std::atomic<bool> g_live_shutdown_registered{false};
std::string g_env_profile_path; // SNIM_PROFILE target, written on shutdown

void register_shutdown() {
    bool expected = false;
    if (g_live_shutdown_registered.compare_exchange_strong(expected, true))
        std::atexit([] { shutdown_live(); });
}

} // namespace

void init_live_from_env() {
    static bool done = false;
    if (done) return;
    done = true;

    if (const char* env = std::getenv("SNIM_EVENTS"); env && *env) {
        set_event_stream_path(env);
        register_shutdown();
    }
    if (const char* env = std::getenv("SNIM_PROFILE"); env && *env) {
        g_env_profile_path = env;
        start_profiler({});
        register_shutdown();
    }
    if (const char* env = std::getenv("SNIM_WATCHDOG"); env && *env) {
        WatchdogOptions opt;
        char* end = nullptr;
        const double stall = std::strtod(env, &end);
        if (end == env || stall <= 0.0) {
            log_warn("ignoring malformed SNIM_WATCHDOG '%s' "
                     "(want: stall_seconds[,hang_seconds[,abort]])", env);
        } else {
            opt.stall_s = stall;
            if (*end == ',') {
                const char* rest = end + 1;
                opt.hang_s = std::strtod(rest, &end);
                if (end == rest) opt.hang_s = 0.0;
                if (*end == ',' && std::strcmp(end + 1, "abort") == 0)
                    opt.abort_on_hang = true;
            }
            start_watchdog(opt);
            register_shutdown();
        }
    }
    if (const char* env = std::getenv("SNIM_LASTGASP"); env && *env) {
        install_last_gasp(env);
        register_shutdown();
    }
}

void shutdown_live() {
    if (profiler_running()) {
        stop_profiler();
        if (!g_env_profile_path.empty()) {
            try {
                write_folded(g_env_profile_path, profiler_snapshot());
            } catch (const Error& e) {
                log_warn("cannot write SNIM_PROFILE output: %s", e.what());
            }
            g_env_profile_path.clear();
        }
    }
    stop_watchdog();
    close_event_stream();
}

} // namespace snim::obs

#endif // SNIM_OBS_ENABLED
