#include "obs/report.hpp"

#if SNIM_OBS_ENABLED

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/timeseries.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace snim::obs {

namespace {

Json phase_node_json(const PhaseNode& node) {
    JsonObject out;
    out.emplace("name", node.name);
    out.emplace("path", node.path);
    out.emplace("calls", node.calls);
    out.emplace("seconds", node.seconds);
    if (node.rss_samples > 0) {
        out.emplace("rss_delta_bytes", static_cast<double>(node.rss_delta_bytes));
        out.emplace("rss_peak_bytes", static_cast<double>(node.rss_peak_bytes));
    }
    if (!node.children.empty()) {
        JsonArray kids;
        kids.reserve(node.children.size());
        for (const auto& c : node.children) kids.push_back(phase_node_json(c));
        out.emplace("children", std::move(kids));
    }
    return Json(std::move(out));
}

std::string mb_string(double bytes, bool signed_fmt) {
    const double mb = bytes / (1024.0 * 1024.0);
    return format(signed_fmt ? "%+.1f" : "%.1f", mb);
}

void phase_rows(const PhaseNode& node, int depth, Table& t) {
    if (depth >= 0) { // skip the structural root
        const std::string label = std::string(static_cast<size_t>(2 * depth), ' ') +
                                  (node.name.empty() ? "(root)" : node.name);
        t.add_row({label, node.calls ? format("%llu", static_cast<unsigned long long>(node.calls)) : "-",
                   node.calls ? format("%.4f", node.seconds) : "-",
                   node.calls && node.seconds > 0.0
                       ? format("%.3g", node.seconds / static_cast<double>(node.calls))
                       : "-",
                   node.rss_samples
                       ? mb_string(static_cast<double>(node.rss_delta_bytes), true)
                       : "-",
                   node.rss_samples
                       ? mb_string(static_cast<double>(node.rss_peak_bytes), false)
                       : "-"});
    }
    for (const auto& c : node.children) phase_rows(c, depth + 1, t);
}

} // namespace

Json report_json() {
    JsonObject root;

    // Phase tree plus a flat map for easy lookup by full path.
    const PhaseNode tree = phase_tree();
    JsonArray top;
    for (const auto& c : tree.children) top.push_back(phase_node_json(c));
    root.emplace("phases", std::move(top));

    JsonObject flat;
    for (const auto& [name, stats] : phases_snapshot()) {
        JsonObject p;
        p.emplace("calls", stats.calls);
        p.emplace("seconds", stats.seconds);
        if (stats.rss_samples > 0) {
            p.emplace("rss_delta_bytes", static_cast<double>(stats.rss_delta_bytes));
            p.emplace("rss_peak_bytes", static_cast<double>(stats.rss_peak_bytes));
        }
        flat.emplace(name, std::move(p));
    }
    root.emplace("phases_flat", std::move(flat));

    JsonObject counters;
    for (const auto& [name, v] : counters_snapshot()) counters.emplace(name, v);
    root.emplace("counters", std::move(counters));

    JsonObject values;
    for (const auto& [name, s] : values_snapshot()) {
        JsonObject v;
        v.emplace("count", s.count);
        v.emplace("sum", s.sum);
        v.emplace("min", s.min);
        v.emplace("max", s.max);
        v.emplace("mean", s.mean);
        v.emplace("p50", s.p50);
        v.emplace("p95", s.p95);
        values.emplace(name, std::move(v));
    }
    root.emplace("values", std::move(values));

    // Time-series channels as summaries (full samples stay in VCD/trace
    // exports): enough for snim_report to align channels by name and spot a
    // channel that vanished or changed shape between runs.
    JsonObject channels;
    for (const auto& ts : ts_snapshot()) {
        JsonObject c;
        c.emplace("unit", ts.unit);
        c.emplace("offered", ts.offered);
        c.emplace("kept", static_cast<uint64_t>(ts.value.size()));
        if (!ts.value.empty()) {
            double lo = ts.value.front(), hi = ts.value.front(), sum = 0.0;
            for (const double v : ts.value) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
                sum += v;
            }
            c.emplace("min", lo);
            c.emplace("max", hi);
            c.emplace("mean", sum / static_cast<double>(ts.value.size()));
            c.emplace("last", ts.value.back());
        }
        channels.emplace(ts.name, std::move(c));
    }
    root.emplace("timeseries", std::move(channels));

    JsonObject log;
    log.emplace("warnings", log_emit_count(LogLevel::Warn));
    log.emplace("infos", log_emit_count(LogLevel::Info));
    root.emplace("log", std::move(log));

    return Json(std::move(root));
}

std::string report_text() {
    std::string out = "== observability report ==\n";

    const PhaseNode tree = phase_tree();
    if (!tree.children.empty()) {
        Table phases({"phase", "calls", "seconds", "s/call", "rssΔ[MB]", "peak[MB]"});
        phase_rows(tree, -1, phases);
        out += phases.to_string();
    }

    const auto counters = counters_snapshot();
    if (!counters.empty()) {
        Table t({"counter", "value"});
        for (const auto& [name, v] : counters)
            t.add_row({name, format("%llu", static_cast<unsigned long long>(v))});
        out += t.to_string();
    }

    const auto values = values_snapshot();
    if (!values.empty()) {
        Table t({"value", "count", "mean", "min", "p50", "p95", "max"});
        for (const auto& [name, s] : values)
            t.add_row({name, format("%llu", static_cast<unsigned long long>(s.count)),
                       format("%.4g", s.mean), format("%.4g", s.min),
                       format("%.4g", s.p50), format("%.4g", s.p95),
                       format("%.4g", s.max)});
        out += t.to_string();
    }

    const size_t warns = log_emit_count(LogLevel::Warn);
    if (warns > 0) out += format("log warnings: %zu\n", warns);
    return out;
}

void write_env_report() {
    switch (report_mode()) {
        case ReportMode::None:
            return;
        case ReportMode::Text:
            std::fputs(report_text().c_str(), stderr);
            return;
        case ReportMode::Json: {
            const char* env = std::getenv("SNIM_OBS_FILE");
            const std::string path = env && *env ? env : "snim_obs_report.json";
            try {
                write_json_file(path, report_json(), 2);
            } catch (const Error& e) {
                log_warn("obs: cannot write report to '%s': %s", path.c_str(),
                         e.what());
                return;
            }
            log_info("obs: run report written to %s", path.c_str());
            return;
        }
    }
}

} // namespace snim::obs

#endif // SNIM_OBS_ENABLED
