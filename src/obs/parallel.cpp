#include "obs/parallel.hpp"

#include <vector>

#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace snim::obs {

void parallel_tasks(int threads, size_t count, const std::function<void(size_t)>& body) {
    util::ThreadPool pool(threads);
    if (pool.thread_count() <= 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i) body(i);
        return;
    }
    std::vector<TaskCapture> captures(count);
    pool.parallel_for_indexed(count, [&](size_t i) {
        CaptureScope scope(captures[i]);
        body(i);
    });
    // Index-order commit: the registry ends up with the serial run's exact
    // operation sequence.  Unreached on an exception — the sweep failed and
    // its partial metrics are deliberately dropped with it.
    for (auto& c : captures) c.commit();
}

} // namespace snim::obs
