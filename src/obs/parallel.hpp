// Observability-aware parallel sweep driver.
//
// parallel_tasks(threads, count, body) runs body(0..count-1) on a
// util::ThreadPool while buffering every obs recording (counters, value
// histograms, phases, time-series) each task makes into a per-task
// TaskCapture, then commits the captures in task-index order after the pool
// joins.  Registry *content* is therefore identical to a serial run for any
// thread count — the determinism contract the sweep engines (ac_sweep, the
// fig-8/fig-10 bench corners) rely on.  Phase *seconds* are wall time and
// inherently vary run to run; everything else is bit-stable.
//
// Task contract: write results only into your own index's slot, record
// metrics only through the obs entry points, and do not read registry state
// mid-sweep (it is not updated until the commit pass).
#pragma once

#include <cstddef>
#include <functional>

namespace snim::obs {

/// Runs body(i) for i in [0, count).  threads <= 0 selects
/// util::default_thread_count(); an effective count of 1 (or count <= 1)
/// runs inline on the caller with no capture indirection, which produces
/// the same registry sequence by construction.
void parallel_tasks(int threads, size_t count, const std::function<void(size_t)>& body);

} // namespace snim::obs
