// Run-report writers: serialise the phase tree, counters, histograms and
// log tallies collected in the obs registry to JSON (machine-readable,
// diffable run to run) or to util::Table text (human-readable, the format
// every bench already prints).
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace snim::obs {

#if SNIM_OBS_ENABLED

/// The full report as a JSON document:
/// { "phases": [...tree...], "counters": {...}, "values": {...}, "log": {...} }
Json report_json();

/// The full report rendered as text tables (phase tree indented by depth).
std::string report_text();

/// Writes the report according to SNIM_OBS: text to stderr, or JSON to
/// SNIM_OBS_FILE (default "snim_obs_report.json").  No-op when reporting
/// was not requested.  Registered atexit when SNIM_OBS is set, so simply
/// running any snim binary under SNIM_OBS=json yields a report file.
void write_env_report();

#else // SNIM_OBS_ENABLED — compiled out.

inline Json report_json() { return Json(JsonObject{}); }
inline std::string report_text() { return {}; }
inline void write_env_report() {}

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
