// Progress reporting and once-per-interval heartbeats.
//
// Long-running loops (the transient time loop, dc_sweep points, AC frequency
// chunks, bench corner sweeps) open a ProgressScope naming their phase path
// and total work count, then advance() it per unit of work:
//
//   obs::ProgressScope progress("sim/transient", nsteps);
//   for (...) { ...; progress.advance(); }
//
// advance() is cheap (one relaxed add + one clock read) and, at most once
// per heartbeat interval (default 1 s), folds the innermost live scope into
// a HeartbeatInfo: phase path, done/total, percent, elapsed, ETA, and the
// current RSS.  Each heartbeat is emitted as a {"comp":"progress",
// "code":"heartbeat"} journal event and handed to the optional observer
// (snim_bench uses it for a live single-line TTY status).
//
// Scopes nest (corners → transient → step); the heartbeat always describes
// the innermost open scope, which is the one whose percent actually moves.
// Every advance also bumps a real-monotonic activity timestamp that the
// hang watchdog (obs/watchdog) ages — that timestamp deliberately ignores
// set_heartbeat_clock(), so cadence tests with a fake clock cannot trip the
// watchdog.
//
// Determinism: progress never touches the obs registry or simulation state;
// heartbeats carry wall-clock data only.  Under -DSNIM_ENABLE_OBS=OFF the
// whole module is inline no-ops.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif

namespace snim::obs {

/// One heartbeat snapshot: the innermost live scope at emission time.
struct HeartbeatInfo {
    std::string phase;      // e.g. "sim/transient"
    uint64_t done = 0;
    uint64_t total = 0;     // 0 when unknown
    double percent = -1.0;  // 0..100, -1 when total unknown
    double elapsed_s = 0.0; // since the scope opened
    double eta_s = -1.0;    // remaining estimate, -1 when unknown
    size_t rss_bytes = 0;   // 0 when unavailable
    int depth = 0;          // how many scopes are open
};

#if SNIM_OBS_ENABLED

/// RAII progress reporter for one phase of work.  Constructing when
/// progress is inactive (journal off and no observer) costs one relaxed
/// load and makes every method a no-op.  Scopes must be destroyed on the
/// thread that made them, in LIFO order (normal RAII nesting).
class ProgressScope {
public:
    ProgressScope(std::string_view phase, uint64_t total_work);
    ~ProgressScope();

    ProgressScope(const ProgressScope&) = delete;
    ProgressScope& operator=(const ProgressScope&) = delete;

    /// Records `n` units done and emits a heartbeat if the interval has
    /// elapsed since the last one (any scope, any thread).
    void advance(uint64_t n = 1);

    /// Grows the planned total (e.g. a retry ladder adding sub-steps).
    void add_total(uint64_t n);

    struct Impl; // implementation detail, public only for the registry

private:
    Impl* impl_ = nullptr; // null when progress was inactive at construction
};

/// True when ProgressScopes record (journal active or observer installed).
bool progress_active();

/// Innermost open scope right now (phase empty when none).  Watchdog and
/// status displays use this; cheap enough for once-per-second polling.
HeartbeatInfo current_progress();

/// Heartbeat cadence in seconds (default 1.0; clamped to >= 0.01).
void set_heartbeat_interval(double seconds);
double heartbeat_interval();

/// Observer called from whichever thread emitted the heartbeat.  Keep it
/// cheap and thread-safe; installing one activates progress recording.
/// Returns the previous observer.
using HeartbeatObserver = std::function<void(const HeartbeatInfo&)>;
HeartbeatObserver set_heartbeat_observer(HeartbeatObserver observer);

/// Total heartbeats emitted since process start (tests assert cadence).
uint64_t heartbeat_count();

/// Replaces the clock used for heartbeat cadence/elapsed/ETA with a fake
/// (seconds; monotone non-decreasing).  nullptr restores the real clock.
/// The watchdog activity timestamp is NOT affected.  Tests only.
using HeartbeatClock = double (*)();
void set_heartbeat_clock(HeartbeatClock clock);

/// Seconds (real monotonic clock) since the last sign of forward progress:
/// any ProgressScope advance/open, or an explicit note_progress_activity().
/// Returns a large value when nothing was ever recorded.
double last_activity_age_s();

/// Marks forward progress without a scope (e.g. an accepted Newton step
/// between progress units).  One relaxed store.
void note_progress_activity();

/// Zeroes heartbeat counters and the activity timestamp.  Test isolation.
void reset_progress_for_test();

#else // SNIM_OBS_ENABLED — compiled out: inline no-ops.

class ProgressScope {
public:
    ProgressScope(std::string_view, uint64_t) {}
    ProgressScope(const ProgressScope&) = delete;
    ProgressScope& operator=(const ProgressScope&) = delete;
    void advance(uint64_t = 1) {}
    void add_total(uint64_t) {}
};

using HeartbeatObserver = std::function<void(const HeartbeatInfo&)>;
using HeartbeatClock = double (*)();

inline bool progress_active() { return false; }
inline HeartbeatInfo current_progress() { return {}; }
inline void set_heartbeat_interval(double) {}
inline double heartbeat_interval() { return 1.0; }
inline HeartbeatObserver set_heartbeat_observer(HeartbeatObserver) { return {}; }
inline uint64_t heartbeat_count() { return 0; }
inline void set_heartbeat_clock(HeartbeatClock) {}
inline double last_activity_age_s() { return 0.0; }
inline void note_progress_activity() {}
inline void reset_progress_for_test() {}

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
