// Per-thread live phase stacks: who is doing what, right now.
//
// The obs registry stores *aggregated* phase times; this module tracks the
// *current* stack of open ScopedTimer phases per thread, in a form that two
// asynchronous consumers can read safely:
//
//   * the sampling profiler (obs/profiler) reads all stacks at ~200 Hz and
//     folds them into flamegraph counts,
//   * the crash last-gasp handler (obs/lastgasp) dumps them with nothing
//     but write(2) from inside a signal handler.
//
// To make both possible, frames are COPIED into fixed per-slot char arrays
// on push (names can point at dying stack strings otherwise) and all
// indices are atomics.  A thread claims one of kMaxThreads slots on its
// first push and releases it at thread exit, so short-lived pool workers
// recycle slots.
//
// Tracking is off by default: push() is one relaxed load when disabled, so
// per-Newton-iteration timers stay cheap.  start_profiler / start_watchdog
// / install_last_gasp enable it.  Reader caveat: a sampler can observe a
// frame mid-overwrite and read a garbled (but always NUL-bounded) name;
// for a statistical profiler one bad sample in millions is noise, and the
// seq-checked event ring is used where exactness matters.
#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif

namespace snim::obs::phase_stack {

inline constexpr int kMaxDepth = 32;    // frames per thread
inline constexpr int kMaxThreads = 64;  // concurrently tracked threads
inline constexpr int kFrameBytes = 64;  // frame name bytes incl. NUL

/// One thread's stack as copied out by sample_all().
struct ThreadStack {
    int slot = -1;
    std::vector<std::string> frames; // outermost first
};

#if SNIM_OBS_ENABLED

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// One relaxed load; ScopedTimer checks this before calling push().
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on);

/// Pushes one frame onto the calling thread's stack.  Returns false (and
/// records nothing) when disabled, out of slots, or past kMaxDepth — the
/// caller must pop() only after a true return.
bool push(std::string_view frame);
void pop();

/// Depth of the calling thread's stack (0 when it never pushed).
int depth();

/// Snapshot of every live thread stack (slots with depth > 0).  Not
/// async-signal-safe; profiler/watchdog threads use this.
std::vector<ThreadStack> sample_all();

/// Async-signal-safe: writes every live stack to `fd` as one JSONL line per
/// thread: {"phase_stack":{"slot":3,"stack":"a;b;c"}}.  Returns the number
/// of stacks written.  Only write(2) and byte copies — last-gasp safe.
size_t write_stacks_fd(int fd);

#else // SNIM_OBS_ENABLED — compiled out: inline no-ops.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline bool push(std::string_view) { return false; }
inline void pop() {}
inline int depth() { return 0; }
inline std::vector<ThreadStack> sample_all() { return {}; }
inline size_t write_stacks_fd(int) { return 0; }

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs::phase_stack
