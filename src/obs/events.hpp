// Structured event journal: the live-run half of the observability layer.
//
// obs::event(level, component, code, {kv...}) appends one bounded-size JSONL
// record to a lock-free ring buffer.  Each ring slot holds the *serialised*
// line, so readers need no allocation to recover it — the crash last-gasp
// handler (obs/lastgasp) can dump the tail with nothing but write(2), and
// diagnosis bundles / BENCH reports embed the tail as parsed JSON.
//
// Record shape (one line, <= kEventSlotBytes including the NUL):
//
//   {"seq":17,"ts":1.203450,"lvl":"info","comp":"progress","code":"heartbeat",
//    "kv":{"phase":"sim/transient","pct":42.5,"eta_s":1.93}}
//
//   * seq — global 1-based emission index (gaps after overwrite are how a
//     reader detects that the ring wrapped),
//   * ts  — seconds since the journal was activated (monotonic clock),
//   * lvl/comp/code — severity, producing subsystem, machine-stable event
//     name; kv — free-form attachments (numbers, strings, bools).
//
// The journal is OFF by default: event() costs one relaxed atomic load and
// returns.  It activates when a streaming sink is configured (SNIM_EVENTS=
// path|stderr|-, or set_event_stream_path), when the watchdog starts, or
// explicitly via set_events_active(true).  While active, every util::log
// Warn/Info/Debug is mirrored into the journal as a {"comp":"log"} event via
// the log-mirror tap, so no subsystem needs touching to become observable.
//
// Determinism: events carry wall-clock data and are NEVER part of simulation
// results or the obs registry; parallel workers write to the ring directly
// (no TaskCapture indirection) because journal order is allowed to reflect
// real time.  Everything collapses to inline no-ops under
// -DSNIM_ENABLE_OBS=OFF.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif

namespace snim::obs {

enum class EventLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

inline const char* event_level_name(EventLevel level) {
    switch (level) {
        case EventLevel::Debug: return "debug";
        case EventLevel::Info: return "info";
        case EventLevel::Warn: return "warn";
        case EventLevel::Error: return "error";
    }
    return "?";
}

/// One key/value attachment.  Keys must be string literals (or otherwise
/// outlive the call); values are copied.
struct EventKv {
    enum class Kind { Num, Str, Bool };

    EventKv(const char* k, double v) : key(k), kind(Kind::Num), num(v) {}
    EventKv(const char* k, int v) : key(k), kind(Kind::Num), num(v) {}
    EventKv(const char* k, long v) : key(k), kind(Kind::Num), num(static_cast<double>(v)) {}
    EventKv(const char* k, unsigned v) : key(k), kind(Kind::Num), num(v) {}
    EventKv(const char* k, uint64_t v)
        : key(k), kind(Kind::Num), num(static_cast<double>(v)) {}
    EventKv(const char* k, bool v) : key(k), kind(Kind::Bool), flag(v) {}
    EventKv(const char* k, std::string_view v) : key(k), kind(Kind::Str), str(v) {}
    EventKv(const char* k, const char* v) : key(k), kind(Kind::Str), str(v) {}

    const char* key;
    Kind kind;
    double num = 0.0;
    bool flag = false;
    std::string str;
};

/// Ring geometry.  Slots hold full serialised lines; oversize records are
/// re-rendered without their kv payload and flagged {"truncated":true}.
inline constexpr size_t kEventRingSlots = 512; // power of two
inline constexpr size_t kEventSlotBytes = 448; // line + NUL

#if SNIM_OBS_ENABLED

/// True while the journal records (one relaxed load — hot-path safe).
bool events_active();
void set_events_active(bool on);

/// Appends one record to the ring (and the streaming sink, when set).
/// Debug-level events are dropped unless the util::log level is Debug.
void event(EventLevel level, std::string_view component, std::string_view code,
           std::initializer_list<EventKv> kv = {});

/// Streams every subsequent event as one JSONL line to `path` ("stderr" or
/// "-" select stderr; "" closes the stream).  Opening a file sink activates
/// the journal.  Raises snim::Error when the file cannot be opened.
void set_event_stream_path(const std::string& path);
void close_event_stream();

/// Last `max_count` serialised records, oldest first.  Records overwritten
/// or mid-write are skipped, so the result is always parseable line-wise.
std::vector<std::string> event_tail(size_t max_count = kEventRingSlots);

/// Total records emitted since process start (including overwritten ones).
uint64_t event_count();

/// Seconds since the journal clock started (first activation).
double event_now_s();

/// Drops every ring record and resets the sequence counter; the active
/// flag and stream are kept.  Test isolation only — never call mid-run.
void reset_events_for_test();

/// Reads SNIM_EVENTS / SNIM_PROFILE / SNIM_WATCHDOG / SNIM_LASTGASP once
/// and wires up the requested live-telemetry pieces (journal stream,
/// sampling profiler, hang watchdog, crash handlers).  Idempotent; cheap
/// when none are set.  Entry-point binaries call this first thing.
void init_live_from_env();

/// Tears down what init_live_from_env started: stops the profiler (writing
/// its SNIM_PROFILE folded output) and watchdog threads, flushes and closes
/// the event stream.  Idempotent; also registered atexit by init when any
/// env-driven piece activated.
void shutdown_live();

namespace detail {
/// Async-signal-safe: write(2)s the ring's live records to `fd`, oldest
/// first, one line each.  Returns the number of records written.  Used by
/// the crash last-gasp handler — no locks, no allocation.
size_t write_ring_tail_fd(int fd, size_t max_count);
} // namespace detail

#else // SNIM_OBS_ENABLED — compiled out: inline no-ops.

inline bool events_active() { return false; }
inline void set_events_active(bool) {}
inline void event(EventLevel, std::string_view, std::string_view,
                  std::initializer_list<EventKv> = {}) {}
inline void set_event_stream_path(const std::string&) {}
inline void close_event_stream() {}
inline std::vector<std::string> event_tail(size_t = kEventRingSlots) { return {}; }
inline uint64_t event_count() { return 0; }
inline double event_now_s() { return 0.0; }
inline void reset_events_for_test() {}
inline void init_live_from_env() {}
inline void shutdown_live() {}

namespace detail {
inline size_t write_ring_tail_fd(int, size_t) { return 0; }
} // namespace detail

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
