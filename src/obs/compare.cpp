#include "obs/compare.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "util/error.hpp"
#include "util/table.hpp"

namespace snim::obs {

namespace {

constexpr const char* kSparks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};

double num_or(const Json& obj, const std::string& key, double fallback) {
    if (!obj.contains(key)) return fallback;
    const Json& v = obj.at(key);
    return v.is_number() ? v.as_number() : fallback;
}

std::string str_or(const Json& obj, const std::string& key,
                   const std::string& fallback) {
    if (!obj.contains(key)) return fallback;
    const Json& v = obj.at(key);
    return v.is_string() ? v.as_string() : fallback;
}

/// Scenario entries of a bench report keyed by name, in document order.
std::vector<std::pair<std::string, const Json*>> scenario_list(const Json& report) {
    if (!report.is_object() || !report.contains("scenarios") ||
        !report.at("scenarios").is_array())
        raise("diff: input is not a snim_bench report (no scenarios array)");
    std::vector<std::pair<std::string, const Json*>> out;
    for (const auto& s : report.at("scenarios").as_array())
        out.emplace_back(s.at("name").as_string(), &s);
    return out;
}

const Json* find_scenario(const std::vector<std::pair<std::string, const Json*>>& list,
                          const std::string& name) {
    for (const auto& [n, p] : list)
        if (n == name) return p;
    return nullptr;
}

double pct_change(double a, double b) {
    if (a == 0.0) return b == 0.0 ? 0.0 : 100.0;
    return (b - a) / std::fabs(a) * 100.0;
}

/// Classifies a lower-is-better metric against a relative tolerance.
DiffVerdict classify_pct(double a, double b, double tol_pct) {
    if (a == b) return DiffVerdict::Equal;
    if (std::fabs(pct_change(a, b)) <= tol_pct) return DiffVerdict::Within;
    return b > a ? DiffVerdict::Regress : DiffVerdict::Improve;
}

/// Classifies a lower-is-better metric against an absolute tolerance.
DiffVerdict classify_abs(double a, double b, double tol_abs) {
    if (a == b) return DiffVerdict::Equal;
    if (std::fabs(b - a) <= tol_abs) return DiffVerdict::Within;
    return b > a ? DiffVerdict::Regress : DiffVerdict::Improve;
}

void push_metric(ReportDiff& d, const std::string& scenario,
                 const std::string& metric, double a, double b,
                 DiffVerdict verdict, std::string detail = {}) {
    MetricDiff m;
    m.scenario = scenario;
    m.metric = metric;
    m.a = a;
    m.b = b;
    m.change_pct = pct_change(a, b);
    m.verdict = verdict;
    m.detail = std::move(detail);
    d.metrics.push_back(std::move(m));
}

/// accuracy arrays keyed by metric name → (delta_db, pass).
std::map<std::string, std::pair<double, bool>> accuracy_map(const Json& scenario) {
    std::map<std::string, std::pair<double, bool>> out;
    if (!scenario.contains("accuracy") || !scenario.at("accuracy").is_array())
        return out;
    for (const auto& m : scenario.at("accuracy").as_array()) {
        bool pass = true;
        if (m.contains("pass") && m.at("pass").is_bool()) pass = m.at("pass").as_bool();
        out.emplace(m.at("name").as_string(),
                    std::make_pair(num_or(m, "delta_db", 0.0), pass));
    }
    return out;
}

std::map<std::string, double> counters_map(const Json& scenario) {
    std::map<std::string, double> out;
    if (!scenario.contains("registry")) return out;
    const Json& reg = scenario.at("registry");
    if (!reg.is_object() || !reg.contains("counters") ||
        !reg.at("counters").is_object())
        return out;
    for (const auto& [name, v] : reg.at("counters").as_object())
        if (v.is_number()) out.emplace(name, v.as_number());
    return out;
}

/// timeseries channel name → offered sample count.
std::map<std::string, double> timeseries_map(const Json& scenario) {
    std::map<std::string, double> out;
    if (!scenario.contains("registry")) return out;
    const Json& reg = scenario.at("registry");
    if (!reg.is_object() || !reg.contains("timeseries") ||
        !reg.at("timeseries").is_object())
        return out;
    for (const auto& [name, v] : reg.at("timeseries").as_object())
        if (v.is_object()) out.emplace(name, num_or(v, "offered", 0.0));
    return out;
}

/// budget array (schema 4) keyed by stage -> margin_db.
std::map<std::string, double> budget_map(const Json& scenario) {
    std::map<std::string, double> out;
    if (!scenario.contains("budget") || !scenario.at("budget").is_array())
        return out;
    for (const auto& e : scenario.at("budget").as_array())
        if (e.is_object() && e.contains("stage") && e.at("stage").is_string())
            out.emplace(e.at("stage").as_string(), num_or(e, "margin_db", 0.0));
    return out;
}

void diff_scenario(ReportDiff& d, const std::string& name, const Json& sa,
                   const Json& sb, const DiffTolerances& tol) {
    // Runtime: median is the headline number; min backs it up when the
    // median is noisy (min is the least scheduler-contaminated sample).
    const double med_a = sa.at("runtime").at("median_s").as_number();
    const double med_b = sb.at("runtime").at("median_s").as_number();
    push_metric(d, name, "runtime/median_s", med_a, med_b,
                classify_pct(med_a, med_b, tol.runtime_pct));

    // Accuracy deltas, aligned by metric name; a pass→fail flip regresses
    // regardless of the dB tolerance.
    const auto acc_a = accuracy_map(sa);
    const auto acc_b = accuracy_map(sb);
    for (const auto& [mname, va] : acc_a) {
        const auto it = acc_b.find(mname);
        if (it == acc_b.end()) {
            push_metric(d, name, "accuracy/" + mname, va.first, 0.0,
                        DiffVerdict::OnlyA, "metric missing from new run");
            continue;
        }
        DiffVerdict v = classify_abs(va.first, it->second.first, tol.accuracy_db);
        std::string detail;
        if (va.second && !it->second.second) {
            v = DiffVerdict::Regress;
            detail = "accuracy gate flipped pass -> fail";
        } else if (!va.second && it->second.second) {
            v = DiffVerdict::Improve;
            detail = "accuracy gate flipped fail -> pass";
        }
        push_metric(d, name, "accuracy/" + mname, va.first, it->second.first, v,
                    std::move(detail));
    }
    for (const auto& [mname, vb] : acc_b)
        if (!acc_a.count(mname))
            push_metric(d, name, "accuracy/" + mname, 0.0, vb.first,
                        DiffVerdict::OnlyB, "metric new in this run");

    // Peak RSS (schema 2; absent members are simply not compared).
    if (sa.contains("peak_rss_bytes") && sb.contains("peak_rss_bytes")) {
        const double ra = num_or(sa, "peak_rss_bytes", 0.0);
        const double rb = num_or(sb, "peak_rss_bytes", 0.0);
        if (ra > 0.0 || rb > 0.0)
            push_metric(d, name, "rss/peak_bytes", ra, rb,
                        classify_pct(ra, rb, tol.rss_pct));
    }

    // Registry counters: deterministic per seed, so exact by default.
    const auto cnt_a = counters_map(sa);
    const auto cnt_b = counters_map(sb);
    for (const auto& [cname, va] : cnt_a) {
        const auto it = cnt_b.find(cname);
        if (it == cnt_b.end()) {
            push_metric(d, name, "counter/" + cname, va, 0.0, DiffVerdict::OnlyA,
                        "counter missing from new run");
            continue;
        }
        push_metric(d, name, "counter/" + cname, va, it->second,
                    classify_pct(va, it->second, tol.counter_pct));
    }
    for (const auto& [cname, vb] : cnt_b)
        if (!cnt_a.count(cname))
            push_metric(d, name, "counter/" + cname, 0.0, vb, DiffVerdict::OnlyB,
                        "counter new in this run");

    // Time-series channels by name: an offered-count change means the run
    // took a different trajectory (different step count / recovery path);
    // direction is meaningless, so any out-of-tolerance change regresses.
    const auto ts_a = timeseries_map(sa);
    const auto ts_b = timeseries_map(sb);
    for (const auto& [tname, va] : ts_a) {
        const auto it = ts_b.find(tname);
        if (it == ts_b.end()) {
            push_metric(d, name, "ts/" + tname, va, 0.0, DiffVerdict::OnlyA,
                        "channel missing from new run");
            continue;
        }
        DiffVerdict v = classify_pct(va, it->second, tol.timeseries_pct);
        if (v == DiffVerdict::Improve) v = DiffVerdict::Regress;
        push_metric(d, name, "ts/" + tname, va, it->second, v,
                    v == DiffVerdict::Regress ? "offered sample count changed" : "");
    }
    for (const auto& [tname, vb] : ts_b)
        if (!ts_a.count(tname))
            push_metric(d, name, "ts/" + tname, 0.0, vb, DiffVerdict::OnlyB,
                        "channel new in this run");

    // Accuracy-budget stages (schema 4), aligned by stage name on margin_db
    // (lower is better: negative = headroom).  A margin crossing 0 dB flips
    // the verdict to Regress/Improve regardless of the dB tolerance.
    const auto bud_a = budget_map(sa);
    const auto bud_b = budget_map(sb);
    for (const auto& [stage, ma] : bud_a) {
        const auto it = bud_b.find(stage);
        if (it == bud_b.end()) {
            push_metric(d, name, "budget/" + stage, ma, 0.0, DiffVerdict::OnlyA,
                        "budget stage missing from new run");
            continue;
        }
        const double mb = it->second;
        DiffVerdict v = classify_abs(ma, mb, tol.budget_db);
        std::string detail;
        if (ma <= 0.0 && mb > 0.0) {
            v = DiffVerdict::Regress;
            detail = "budget crossed into breach";
        } else if (ma > 0.0 && mb <= 0.0) {
            v = DiffVerdict::Improve;
            detail = "budget breach cleared";
        }
        push_metric(d, name, "budget/" + stage, ma, mb, v, std::move(detail));
    }
    for (const auto& [stage, mb] : bud_b)
        if (!bud_a.count(stage))
            push_metric(d, name, "budget/" + stage, 0.0, mb, DiffVerdict::OnlyB,
                        "budget stage new in this run");
}

int verdict_rank(DiffVerdict v) {
    switch (v) {
        case DiffVerdict::Regress: return 0;
        case DiffVerdict::OnlyA: return 1;
        case DiffVerdict::OnlyB: return 2;
        case DiffVerdict::Improve: return 3;
        case DiffVerdict::Within: return 4;
        case DiffVerdict::Equal: return 5;
    }
    return 6;
}

std::string metric_value(const std::string& metric, double v) {
    if (metric.rfind("runtime/", 0) == 0) return format("%.4f", v);
    if (metric.rfind("accuracy/", 0) == 0) return format("%.3f", v);
    if (metric.rfind("rss/", 0) == 0)
        return format("%.1fM", v / (1024.0 * 1024.0));
    if (metric.rfind("budget/", 0) == 0) return format("%+.2fdB", v);
    return format("%.6g", v);
}

std::string html_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out.push_back(c);
        }
    }
    return out;
}

/// SVG polyline sparkline for the HTML trend view.
std::string svg_sparkline(const std::vector<double>& values, int w, int h) {
    if (values.empty()) return "";
    double lo = values.front(), hi = values.front();
    for (const double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = hi - lo;
    std::string pts;
    for (size_t i = 0; i < values.size(); ++i) {
        const double x = values.size() == 1
                             ? w / 2.0
                             : static_cast<double>(i) /
                                   static_cast<double>(values.size() - 1) * (w - 4) + 2;
        const double frac = span > 0.0 ? (values[i] - lo) / span : 0.5;
        const double y = (1.0 - frac) * (h - 4) + 2;
        pts += format("%s%.1f,%.1f", pts.empty() ? "" : " ", x, y);
    }
    return format(
        "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">"
        "<polyline fill=\"none\" stroke=\"#2a6\" stroke-width=\"1.5\" "
        "points=\"%s\"/></svg>",
        w, h, w, h, pts.c_str());
}

/// Nested <details> flame view of one phase-tree node array.
void phase_flame_html(const Json& phases, double root_seconds, std::string& out) {
    if (!phases.is_array()) return;
    for (const auto& p : phases.as_array()) {
        const std::string name = str_or(p, "name", "?");
        const double secs = num_or(p, "seconds", 0.0);
        const double calls = num_or(p, "calls", 0.0);
        const double frac =
            root_seconds > 0.0 ? std::min(1.0, secs / root_seconds) : 0.0;
        std::string label =
            format("%s — %.4fs, %.0f calls", html_escape(name).c_str(), secs, calls);
        if (p.contains("rss_delta_bytes"))
            label += format(", rssΔ %+.1fM, peak %.1fM",
                            num_or(p, "rss_delta_bytes", 0.0) / (1024.0 * 1024.0),
                            num_or(p, "rss_peak_bytes", 0.0) / (1024.0 * 1024.0));
        const bool leaf = !p.contains("children");
        const std::string bar = format(
            "<div class=\"bar\"><div class=\"fill\" style=\"width:%.1f%%\"></div></div>",
            frac * 100.0);
        if (leaf) {
            out += format("<div class=\"leaf\">%s %s</div>\n", label.c_str(),
                          bar.c_str());
        } else {
            out += format("<details open><summary>%s %s</summary>\n", label.c_str(),
                          bar.c_str());
            phase_flame_html(p.at("children"), root_seconds, out);
            out += "</details>\n";
        }
    }
}

/// Scenario names across all ledger entries, ordered by first appearance.
std::vector<std::string> ledger_scenarios(const std::vector<Json>& ledger) {
    std::vector<std::string> names;
    std::set<std::string> seen;
    for (const auto& e : ledger) {
        if (!e.is_object() || !e.contains("scenarios")) continue;
        for (const auto& s : e.at("scenarios").as_array()) {
            const std::string& n = s.at("name").as_string();
            if (seen.insert(n).second) names.push_back(n);
        }
    }
    return names;
}

const Json* ledger_find(const Json& entry, const std::string& scenario) {
    if (!entry.is_object() || !entry.contains("scenarios")) return nullptr;
    for (const auto& s : entry.at("scenarios").as_array())
        if (s.at("name").as_string() == scenario) return &s;
    return nullptr;
}

} // namespace

const char* diff_verdict_name(DiffVerdict v) {
    switch (v) {
        case DiffVerdict::Equal: return "EQUAL";
        case DiffVerdict::Within: return "WITHIN";
        case DiffVerdict::Improve: return "IMPROVE";
        case DiffVerdict::Regress: return "REGRESS";
        case DiffVerdict::OnlyA: return "ONLY-OLD";
        case DiffVerdict::OnlyB: return "ONLY-NEW";
    }
    return "?";
}

ReportDiff diff_reports(const Json& a, const Json& b, const DiffTolerances& tol) {
    ReportDiff d;
    d.schema_a = static_cast<int>(num_or(a, "schema_version", 0.0));
    d.schema_b = static_cast<int>(num_or(b, "schema_version", 0.0));
    if (a.contains("manifest") && b.contains("manifest")) {
        d.manifest_a = manifest_from_json(a.at("manifest"));
        d.manifest_b = manifest_from_json(b.at("manifest"));
        d.digests_known = !d.manifest_a.config_digest.empty() &&
                          !d.manifest_b.config_digest.empty();
        d.digests_match =
            d.digests_known && d.manifest_a.config_digest == d.manifest_b.config_digest;
    }

    const auto list_a = scenario_list(a);
    const auto list_b = scenario_list(b);

    for (const auto& [name, sa] : list_a) {
        const Json* sb = find_scenario(list_b, name);
        if (!sb) {
            d.only_in_a.push_back(name);
            push_metric(d, name, "scenario",
                        sa->at("runtime").at("median_s").as_number(), 0.0,
                        DiffVerdict::OnlyA, "scenario missing from new run");
            continue;
        }
        diff_scenario(d, name, *sa, *sb, tol);
    }
    for (const auto& [name, sb] : list_b) {
        if (find_scenario(list_a, name)) continue;
        d.only_in_b.push_back(name);
        push_metric(d, name, "scenario", 0.0,
                    sb->at("runtime").at("median_s").as_number(),
                    DiffVerdict::OnlyB, "scenario new in this run");
    }

    std::stable_sort(d.metrics.begin(), d.metrics.end(),
                     [](const MetricDiff& x, const MetricDiff& y) {
                         const int rx = verdict_rank(x.verdict);
                         const int ry = verdict_rank(y.verdict);
                         if (rx != ry) return rx < ry;
                         return std::fabs(x.change_pct) > std::fabs(y.change_pct);
                     });
    return d;
}

bool diff_has_regression(const ReportDiff& d) {
    for (const auto& m : d.metrics)
        if (m.verdict == DiffVerdict::Regress) return true;
    return false;
}

std::string diff_table(const ReportDiff& d, size_t limit) {
    std::string out;
    if (d.digests_known) {
        out += format("config digest: %s %s %s (%s)\n",
                      d.manifest_a.config_digest.c_str(),
                      d.digests_match ? "==" : "!=",
                      d.manifest_b.config_digest.c_str(),
                      d.digests_match ? "same configuration"
                                      : "DIFFERENT configuration — not like-for-like");
        if (!d.manifest_a.run_id.empty())
            out += format("runs: %s (%s) -> %s (%s)\n", d.manifest_a.run_id.c_str(),
                          d.manifest_a.created_utc.c_str(),
                          d.manifest_b.run_id.c_str(),
                          d.manifest_b.created_utc.c_str());
    } else {
        out += format("config digest: unavailable (schema %d vs %d report)\n",
                      d.schema_a, d.schema_b);
    }

    Table t({"verdict", "scenario", "metric", "old", "new", "change", "detail"});
    size_t shown = 0, hidden = 0;
    for (const auto& m : d.metrics) {
        // Equal rows are noise at scale; regressions always survive `limit`.
        if (m.verdict == DiffVerdict::Equal) continue;
        if (limit > 0 && shown >= limit && m.verdict != DiffVerdict::Regress) {
            ++hidden;
            continue;
        }
        const bool has_a = m.verdict != DiffVerdict::OnlyB;
        const bool has_b = m.verdict != DiffVerdict::OnlyA;
        t.add_row({diff_verdict_name(m.verdict), m.scenario, m.metric,
                   has_a ? metric_value(m.metric, m.a) : "-",
                   has_b ? metric_value(m.metric, m.b) : "-",
                   has_a && has_b ? format("%+.1f%%", m.change_pct) : "-", m.detail});
        ++shown;
    }
    if (shown > 0)
        out += t.to_string();
    else
        out += "no differences beyond equality\n";
    if (hidden > 0) out += format("(%zu non-regression rows hidden by --limit)\n", hidden);

    size_t regress = 0, improve = 0, within = 0, equal = 0, only = 0;
    for (const auto& m : d.metrics) {
        switch (m.verdict) {
            case DiffVerdict::Regress: ++regress; break;
            case DiffVerdict::Improve: ++improve; break;
            case DiffVerdict::Within: ++within; break;
            case DiffVerdict::Equal: ++equal; break;
            default: ++only;
        }
    }
    out += format("summary: %zu regressed, %zu improved, %zu within tolerance, "
                  "%zu equal, %zu unmatched\n",
                  regress, improve, within, equal, only);
    return out;
}

std::string budget_table(const Json& report, size_t limit) {
    if (!report.is_object() || !report.contains("scenarios") ||
        !report.at("scenarios").is_array())
        raise("budget: input is not a snim_bench report (no scenarios array)");

    struct Row {
        std::string scenario;
        std::string stage;
        const Json* e;
        double margin;
    };
    std::vector<Row> rows;
    for (const auto& s : report.at("scenarios").as_array()) {
        if (!s.is_object() || !s.contains("budget") || !s.at("budget").is_array())
            continue;
        const std::string sname = str_or(s, "name", "?");
        for (const auto& e : s.at("budget").as_array())
            if (e.is_object())
                rows.push_back({sname, str_or(e, "stage", "?"), &e,
                                num_or(e, "margin_db", 0.0)});
    }
    if (rows.empty())
        return "no accuracy-budget data (schema < 4 report or obs-off build)\n";
    std::stable_sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
        if (x.margin != y.margin) return x.margin > y.margin;
        if (x.scenario != y.scenario) return x.scenario < y.scenario;
        return x.stage < y.stage;
    });

    std::string out;
    Table t({"scenario", "stage", "worst", "threshold", "margin", "samples",
             "breaches", "detail"});
    size_t shown = 0, hidden = 0, breached = 0;
    for (const Row& r : rows) {
        const bool breach = r.margin > 0.0;
        if (breach) ++breached;
        // Breached stages always survive the cut, like diff regressions.
        if (limit > 0 && shown >= limit && !breach) {
            ++hidden;
            continue;
        }
        const std::string unit = str_or(*r.e, "unit", "");
        t.add_row({r.scenario, r.stage,
                   format("%.4g %s", num_or(*r.e, "worst", 0.0), unit.c_str()),
                   format("%.4g %s", num_or(*r.e, "threshold", 0.0), unit.c_str()),
                   format("%+.2f dB%s", r.margin, breach ? " OVER" : ""),
                   format("%.0f", num_or(*r.e, "samples", 0.0)),
                   format("%.0f", num_or(*r.e, "breaches", 0.0)),
                   str_or(*r.e, "detail", "")});
        ++shown;
    }
    out += t.to_string();
    if (hidden > 0) out += format("(%zu rows hidden by --limit)\n", hidden);

    for (const auto& s : report.at("scenarios").as_array()) {
        if (!s.is_object() || !s.contains("certificates") ||
            !s.at("certificates").is_object())
            continue;
        const Json& c = s.at("certificates");
        if (!c.contains("solves")) continue; // empty summary: nothing certified
        out += format("certificates[%s]: %.0f solves, %.0f breaches, %.0f "
                      "refinement steps, worst omega %.3g, min rcond %.3g\n",
                      str_or(s, "name", "?").c_str(), num_or(c, "solves", 0.0),
                      num_or(c, "breaches", 0.0),
                      num_or(c, "refinement_steps", 0.0),
                      num_or(c, "worst_omega", 0.0), num_or(c, "min_rcond", 0.0));
    }
    out += format("summary: %zu budget stages, %zu over budget\n", rows.size(),
                  breached);
    return out;
}

bool budget_has_breach(const Json& report) {
    if (!report.is_object() || !report.contains("scenarios") ||
        !report.at("scenarios").is_array())
        return false;
    for (const auto& s : report.at("scenarios").as_array()) {
        if (!s.is_object()) continue;
        if (s.contains("budget") && s.at("budget").is_array())
            for (const auto& e : s.at("budget").as_array())
                if (e.is_object() && num_or(e, "margin_db", 0.0) > 0.0)
                    return true;
        if (s.contains("certificates") && s.at("certificates").is_object() &&
            num_or(s.at("certificates"), "breaches", 0.0) > 0.0)
            return true;
    }
    return false;
}

std::string sparkline(const std::vector<double>& values) {
    if (values.empty()) return "";
    double lo = values.front(), hi = values.front();
    for (const double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = hi - lo;
    std::string out;
    for (const double v : values) {
        const double frac = span > 0.0 ? (v - lo) / span : 0.5;
        const int level =
            std::min(7, std::max(0, static_cast<int>(frac * 7.0 + 0.5)));
        out += kSparks[level];
    }
    return out;
}

std::string trend_text(const std::vector<Json>& ledger) {
    if (ledger.empty()) return "ledger is empty\n";
    std::string out = format("%zu runs in ledger\n", ledger.size());

    // Count distinct config digests — trends across configurations are
    // apples-to-oranges and the header says so.
    std::set<std::string> digests;
    for (const auto& e : ledger)
        if (e.is_object() && e.contains("manifest"))
            digests.insert(str_or(e.at("manifest"), "config_digest", ""));
    digests.erase("");
    if (digests.size() > 1)
        out += format("note: %zu distinct config digests in ledger — history "
                      "mixes configurations\n",
                      digests.size());
    else if (digests.size() == 1)
        out += format("config digest: %s (all runs)\n", digests.begin()->c_str());

    Table t({"scenario", "runs", "median_s history", "first_s", "last_s", "change",
             "accuracy"});
    for (const auto& name : ledger_scenarios(ledger)) {
        std::vector<double> medians;
        bool last_pass = true;
        double last_max_db = 0.0;
        for (const auto& e : ledger) {
            const Json* s = ledger_find(e, name);
            if (!s) continue;
            medians.push_back(num_or(*s, "median_s", 0.0));
            if (s->contains("accuracy_pass") && s->at("accuracy_pass").is_bool())
                last_pass = s->at("accuracy_pass").as_bool();
            last_max_db = num_or(*s, "accuracy_max_db", 0.0);
        }
        if (medians.empty()) continue;
        t.add_row({name, format("%zu", medians.size()), sparkline(medians),
                   format("%.4f", medians.front()), format("%.4f", medians.back()),
                   format("%+.1f%%", pct_change(medians.front(), medians.back())),
                   format("%s (%.2f dB)", last_pass ? "OK" : "FAIL", last_max_db)});
    }
    out += t.to_string();
    return out;
}

std::string trend_html(const std::vector<Json>& ledger) {
    std::string out =
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
        "<title>snim run trend</title>\n<style>\n"
        "body{font:14px/1.45 system-ui,sans-serif;margin:2em;max-width:70em}\n"
        "table{border-collapse:collapse;margin:1em 0}\n"
        "td,th{border:1px solid #ccc;padding:0.3em 0.7em;text-align:left}\n"
        "th{background:#f2f2f2}\n"
        ".fail{color:#b00;font-weight:bold}\n"
        ".bar{display:inline-block;width:14em;height:0.7em;background:#eee;"
        "vertical-align:middle;margin-left:0.5em}\n"
        ".fill{height:100%;background:#fa3}\n"
        "details{margin-left:1.2em}\n"
        ".leaf{margin-left:2.3em}\n"
        "summary{cursor:pointer}\n"
        "</style></head><body>\n<h1>snim run trend</h1>\n";
    out += format("<p>%zu runs in ledger</p>\n", ledger.size());

    out += "<h2>Scenario history</h2>\n<table>\n"
           "<tr><th>scenario</th><th>runs</th><th>median_s</th><th>first</th>"
           "<th>last</th><th>change</th><th>accuracy</th></tr>\n";
    for (const auto& name : ledger_scenarios(ledger)) {
        std::vector<double> medians;
        bool last_pass = true;
        double last_max_db = 0.0;
        for (const auto& e : ledger) {
            const Json* s = ledger_find(e, name);
            if (!s) continue;
            medians.push_back(num_or(*s, "median_s", 0.0));
            if (s->contains("accuracy_pass") && s->at("accuracy_pass").is_bool())
                last_pass = s->at("accuracy_pass").as_bool();
            last_max_db = num_or(*s, "accuracy_max_db", 0.0);
        }
        if (medians.empty()) continue;
        out += format(
            "<tr><td>%s</td><td>%zu</td><td>%s</td><td>%.4f</td><td>%.4f</td>"
            "<td>%+.1f%%</td><td%s>%s (%.2f dB)</td></tr>\n",
            html_escape(name).c_str(), medians.size(),
            svg_sparkline(medians, 160, 28).c_str(), medians.front(),
            medians.back(), pct_change(medians.front(), medians.back()),
            last_pass ? "" : " class=\"fail\"", last_pass ? "OK" : "FAIL",
            last_max_db);
    }
    out += "</table>\n";

    // Latest run: manifest card + per-scenario collapsible phase flame view.
    const Json& latest = ledger.back();
    if (latest.is_object() && latest.contains("manifest")) {
        const Json& m = latest.at("manifest");
        out += "<h2>Latest run</h2>\n<table>\n";
        for (const char* key : {"run_id", "tool", "config_digest", "created_utc",
                                "build_type", "hostname", "os", "sanitizers"}) {
            const std::string v = str_or(m, key, "");
            if (!v.empty())
                out += format("<tr><th>%s</th><td>%s</td></tr>\n", key,
                              html_escape(v).c_str());
        }
        out += format("<tr><th>seed</th><td>%llu</td></tr>\n",
                      static_cast<unsigned long long>(num_or(m, "seed", 0.0)));
        out += format("<tr><th>threads</th><td>%d</td></tr>\n",
                      static_cast<int>(num_or(m, "threads", 1.0)));
        out += "</table>\n";
    }
    if (latest.is_object() && latest.contains("scenarios")) {
        out += "<h2>Phase flame view (latest run)</h2>\n";
        for (const auto& s : latest.at("scenarios").as_array()) {
            if (!s.contains("phases")) continue;
            double root_seconds = 0.0;
            if (s.at("phases").is_array())
                for (const auto& p : s.at("phases").as_array())
                    root_seconds += num_or(p, "seconds", 0.0);
            out += format("<h3>%s</h3>\n",
                          html_escape(s.at("name").as_string()).c_str());
            phase_flame_html(s.at("phases"), root_seconds, out);
        }
    }
    out += "</body></html>\n";
    return out;
}

std::string show_report(const Json& report) {
    std::string out;
    const int schema = static_cast<int>(num_or(report, "schema_version", 0.0));
    out += format("schema %d, tool %s\n", schema,
                  str_or(report, "tool", "?").c_str());
    if (report.contains("manifest")) {
        const RunManifest m = manifest_from_json(report.at("manifest"));
        Table t({"manifest", "value"});
        t.add_row({"run_id", m.run_id});
        t.add_row({"tool", m.tool});
        t.add_row({"config_digest", m.config_digest});
        t.add_row({"seed", format("%llu", static_cast<unsigned long long>(m.seed))});
        t.add_row({"threads", format("%d", m.threads)});
        t.add_row({"build", format("%s, %s%s%s", m.build_type.c_str(),
                                   m.obs_enabled ? "obs" : "no-obs",
                                   m.faults_enabled ? ", faults" : "",
                                   m.sanitizers.empty()
                                       ? ""
                                       : format(", %s", m.sanitizers.c_str()).c_str())});
        t.add_row({"compiler", m.compiler});
        t.add_row({"host", format("%s (%s)", m.hostname.c_str(), m.os.c_str())});
        t.add_row({"created", m.created_utc});
        out += t.to_string();
    } else {
        out += "no manifest (schema 1 report)\n";
    }

    if (!report.contains("scenarios")) return out;
    Table t({"scenario", "kind", "median_s", "min_s", "accuracy", "peak_rss"});
    for (const auto& s : report.at("scenarios").as_array()) {
        const auto acc = accuracy_map(s);
        double max_db = 0.0;
        bool pass = true;
        for (const auto& [n, v] : acc) {
            max_db = std::max(max_db, v.first);
            pass = pass && v.second;
        }
        const double rss = num_or(s, "peak_rss_bytes", 0.0);
        t.add_row({s.at("name").as_string(), str_or(s, "kind", "?"),
                   format("%.4f", s.at("runtime").at("median_s").as_number()),
                   format("%.4f", s.at("runtime").at("min_s").as_number()),
                   acc.empty() ? "-"
                               : format("%s (max %.2f dB, %zu metrics)",
                                        pass ? "OK" : "FAIL", max_db, acc.size()),
                   rss > 0.0 ? format("%.1fM", rss / (1024.0 * 1024.0)) : "-"});
    }
    out += t.to_string();

    // Top-level phases of each scenario, when the registry recorded any.
    for (const auto& s : report.at("scenarios").as_array()) {
        if (!s.contains("registry")) continue;
        const Json& reg = s.at("registry");
        if (!reg.is_object() || !reg.contains("phases") ||
            !reg.at("phases").is_array() || reg.at("phases").as_array().empty())
            continue;
        out += format("phases of %s:\n", s.at("name").as_string().c_str());
        Table pt({"phase", "calls", "seconds", "rssΔ[MB]", "peak[MB]"});
        // The registry serialises the phase tree; RSS attribution sits on
        // the tracked nodes (engine top levels, flow stages), so walk the
        // whole tree, indenting children under their structural parent.
        const std::function<void(const Json&, int)> walk = [&](const Json& p,
                                                               int depth) {
            const bool rss = p.contains("rss_delta_bytes");
            const bool structural = num_or(p, "calls", 0.0) == 0.0;
            pt.add_row({std::string(static_cast<size_t>(2 * depth), ' ') +
                            str_or(p, "name", "?"),
                        structural ? "-" : format("%.0f", num_or(p, "calls", 0.0)),
                        structural ? "-" : format("%.4f", num_or(p, "seconds", 0.0)),
                        rss ? format("%+.1f", num_or(p, "rss_delta_bytes", 0.0) /
                                                  (1024.0 * 1024.0))
                            : "-",
                        rss ? format("%.1f", num_or(p, "rss_peak_bytes", 0.0) /
                                                 (1024.0 * 1024.0))
                            : "-"});
            if (p.contains("children") && p.at("children").is_array())
                for (const auto& c : p.at("children").as_array()) walk(c, depth + 1);
        };
        for (const auto& p : reg.at("phases").as_array()) walk(p, 0);
        out += pt.to_string();
    }
    return out;
}

std::string show_events(const Json& report, size_t top_stacks) {
    std::string out;
    if (!report.contains("events") || !report.at("events").is_array() ||
        report.at("events").as_array().empty()) {
        out += "no event journal in this document (run with SNIM_EVENTS or "
               "--events to record one)\n";
    } else {
        const JsonArray& events = report.at("events").as_array();
        out += format("event journal tail (%zu records):\n", events.size());
        Table t({"seq", "t[s]", "lvl", "comp", "code", "detail"});
        for (const Json& e : events) {
            if (!e.is_object()) continue;
            // The kv payload, flattened to "k=v k=v" for one table cell.
            std::string detail;
            if (e.contains("kv") && e.at("kv").is_object()) {
                for (const auto& [k, v] : e.at("kv").as_object()) {
                    if (!detail.empty()) detail += ' ';
                    detail += k + '=';
                    if (v.is_string()) detail += v.as_string();
                    else if (v.is_bool()) detail += v.as_bool() ? "true" : "false";
                    else if (v.is_number()) detail += format("%.4g", v.as_number());
                    else detail += "?";
                }
            }
            if (num_or(e, "truncated", 0.0) != 0.0 ||
                (e.contains("truncated") && e.at("truncated").is_bool() &&
                 e.at("truncated").as_bool()))
                detail = "(kv truncated)";
            t.add_row({format("%.0f", num_or(e, "seq", 0.0)),
                       format("%.3f", num_or(e, "ts", 0.0)),
                       str_or(e, "lvl", "?"), str_or(e, "comp", "?"),
                       str_or(e, "code", "?"), detail});
        }
        out += t.to_string();
    }

    if (report.contains("profile") && report.at("profile").is_object() &&
        report.at("profile").contains("stacks")) {
        const Json& profile = report.at("profile");
        const double samples = num_or(profile, "samples", 0.0);
        out += format("top sampled stacks (%.0f samples at %.0f Hz):\n", samples,
                      num_or(profile, "hz", 0.0));
        std::vector<std::pair<std::string, double>> stacks;
        for (const auto& [stack, count] : profile.at("stacks").as_object())
            if (count.is_number()) stacks.emplace_back(stack, count.as_number());
        std::sort(stacks.begin(), stacks.end(),
                  [](const auto& a, const auto& b) { return a.second > b.second; });
        if (top_stacks > 0 && stacks.size() > top_stacks) stacks.resize(top_stacks);
        Table t({"samples", "share", "stack"});
        for (const auto& [stack, count] : stacks)
            t.add_row({format("%.0f", count),
                       samples > 0 ? format("%.1f%%", 100.0 * count / samples) : "-",
                       stack});
        out += t.to_string();
    }
    return out;
}

} // namespace snim::obs
