#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/provenance.hpp"
#include "util/error.hpp"

namespace snim::obs {

namespace {

/// Total span of a node in seconds: its own inclusive time, or the sum of
/// its children when it is structural (or when clock jitter makes the
/// children sum slightly larger).
double node_span(const PhaseNode& node) {
    double kids = 0.0;
    for (const auto& c : node.children) kids += node_span(c);
    return std::max(node.seconds, kids);
}

/// All phase paths of a tree, for counter-to-phase attachment.
void collect_paths(const PhaseNode& node, std::vector<std::string>& out) {
    if (!node.path.empty()) out.push_back(node.path);
    for (const auto& c : node.children) collect_paths(c, out);
}

/// counter name -> (owning phase path, arg key).  The owner is the deepest
/// phase whose path is the counter name itself or a '/'-boundary prefix.
struct CounterHome {
    std::string phase;
    std::string key;
    uint64_t value = 0;
};

std::vector<CounterHome> assign_counters(
    const PhaseNode& tree, const std::vector<std::pair<std::string, uint64_t>>& counters) {
    std::vector<std::string> paths;
    collect_paths(tree, paths);
    std::vector<CounterHome> homes;
    homes.reserve(counters.size());
    for (const auto& [name, value] : counters) {
        CounterHome h;
        h.value = value;
        for (const auto& p : paths) {
            const bool exact = name == p;
            const bool prefixed = name.size() > p.size() && name.compare(0, p.size(), p) == 0 &&
                                  name[p.size()] == '/';
            if ((exact || prefixed) && p.size() > h.phase.size()) {
                h.phase = p;
                h.key = exact ? "count" : name.substr(p.size() + 1);
            }
        }
        if (h.phase.empty()) h.key = name; // unmatched -> otherData
        homes.push_back(std::move(h));
    }
    return homes;
}

double emit_node(JsonArray& events, const PhaseNode& node, int pid, int tid, double t0_us,
                 const std::vector<CounterHome>& homes) {
    const double span_us = node_span(node) * 1e6;
    const bool real = !node.name.empty();
    if (real) {
        JsonObject args;
        args.emplace("calls", node.calls);
        args.emplace("seconds", node.seconds);
        for (const auto& h : homes)
            if (h.phase == node.path) args.emplace(h.key, h.value);
        JsonObject b;
        b.emplace("name", node.name);
        b.emplace("cat", node.calls ? "phase" : "structural");
        b.emplace("ph", "B");
        b.emplace("ts", t0_us);
        b.emplace("pid", pid);
        b.emplace("tid", tid);
        b.emplace("args", Json(std::move(args)));
        events.push_back(Json(std::move(b)));
    }
    double cursor = t0_us;
    for (const auto& c : node.children)
        cursor += emit_node(events, c, pid, tid, cursor, homes);
    if (real) {
        JsonObject e;
        e.emplace("name", node.name);
        e.emplace("ph", "E");
        e.emplace("ts", t0_us + span_us);
        e.emplace("pid", pid);
        e.emplace("tid", tid);
        events.push_back(Json(std::move(e)));
    }
    return span_us;
}

/// Emits one channel as a Chrome counter track.  The channel's abscissa
/// (simulation time, iteration count, frequency) is mapped linearly onto
/// the lane's [t0_us, t0_us + span_us] wall window, so counter lanes line
/// up with the reconstructed phase timeline; a non-monotone abscissa falls
/// back to the sample index.
void emit_counter_events(JsonArray& events, const TimeSeries& ts, int pid, int tid,
                         double t0_us, double span_us) {
    if (ts.time.empty()) return;
    bool monotone = true;
    for (size_t k = 1; k < ts.time.size(); ++k)
        if (ts.time[k] < ts.time[k - 1]) {
            monotone = false;
            break;
        }
    const double lo = monotone ? ts.time.front() : 0.0;
    const double hi = monotone ? ts.time.back() : static_cast<double>(ts.time.size() - 1);
    const double range = hi - lo;
    for (size_t k = 0; k < ts.time.size(); ++k) {
        const double at = monotone ? ts.time[k] : static_cast<double>(k);
        const double frac = range > 0.0 ? (at - lo) / range : 0.0;
        JsonObject args;
        args.emplace("value", ts.value[k]);
        JsonObject c;
        c.emplace("name", ts.name);
        c.emplace("ph", "C");
        c.emplace("ts", t0_us + frac * span_us);
        c.emplace("pid", pid);
        c.emplace("tid", tid);
        c.emplace("args", Json(std::move(args)));
        events.push_back(Json(std::move(c)));
    }
}

Json metadata_event(const char* name, int pid, int tid, const std::string& value) {
    JsonObject args;
    args.emplace("name", value);
    JsonObject m;
    m.emplace("name", name);
    m.emplace("ph", "M");
    m.emplace("pid", pid);
    m.emplace("tid", tid);
    m.emplace("args", Json(std::move(args)));
    return Json(std::move(m));
}

} // namespace

double append_lane_events(JsonArray& events, const TraceLane& lane, int pid, int tid,
                          double t0_us) {
    const auto homes = assign_counters(lane.tree, lane.counters);
    double cursor = t0_us;
    for (const auto& c : lane.tree.children)
        cursor += emit_node(events, c, pid, tid, cursor, homes);
    const double span_us = cursor - t0_us;
    for (const auto& ts : lane.timeseries)
        emit_counter_events(events, ts, pid, tid, t0_us, span_us);
    return span_us;
}

Json chrome_trace_json(const std::vector<TraceLane>& lanes) {
    JsonArray events;
    events.push_back(metadata_event("process_name", 1, 0, "snim"));
    JsonObject unmatched;
    double offset_us = 0.0;
    int tid = 1;
    for (const auto& lane : lanes) {
        events.push_back(metadata_event("thread_name", 1, tid, lane.name));
        offset_us += append_lane_events(events, lane, 1, tid, offset_us);
        JsonObject loose;
        for (const auto& h : assign_counters(lane.tree, lane.counters))
            if (h.phase.empty()) loose.emplace(h.key, h.value);
        if (!loose.empty()) unmatched.emplace(lane.name, Json(std::move(loose)));
        ++tid;
    }
    JsonObject root;
    root.emplace("displayTimeUnit", "ms");
    root.emplace("traceEvents", Json(std::move(events)));
    // about:tracing shows otherData in the metadata pane, so the manifest
    // rides along with the trace it describes, next to the per-lane
    // unmatched counters ("manifest" is reserved — not a valid lane name).
    if (auto m = current_manifest()) unmatched.emplace("manifest", manifest_json(*m));
    if (!unmatched.empty()) root.emplace("otherData", Json(std::move(unmatched)));
    return Json(std::move(root));
}

TraceLane registry_trace_lane(const std::string& name) {
    TraceLane lane;
    lane.name = name;
    lane.tree = phase_tree();
    lane.counters = counters_snapshot();
    lane.timeseries = ts_snapshot();
    return lane;
}

void write_chrome_trace(const std::string& path, const std::vector<TraceLane>& lanes) {
    write_json_file(path, chrome_trace_json(lanes), 1);
}

} // namespace snim::obs
