// RAII phase tracers feeding the obs registry.
//
// ScopedTimer measures the inclusive wall time of one phase; nested timers
// with '/'-separated names ("sim/transient", "sim/transient/newton") form
// the phase tree rendered by obs/report.  Two timing policies:
//
//   Timing::WhenEnabled (default) — the constructor loads the enabled flag
//     once; when observability is off no clock is read and the destructor
//     is a branch on a bool.  Use this on hot paths (per-factor, per-step).
//   Timing::Always — the clock is always read so elapsed()/stop() return
//     real durations even when recording is off; recording still only
//     happens when enabled.  Use this for coarse once-per-run phases whose
//     duration feeds a public result field (extraction seconds).
//
// Resource attribution: constructing with Rss::Track additionally samples
// the process RSS at entry and exit (obs/resources) and records the growth
// and peak next to the phase's wall time, so the phase tree answers "which
// stage allocated the memory".  Sampling reads /proc once per end, so only
// coarse once-per-run phases should track — never per-step timers.
#pragma once

#include <chrono>

#include "obs/phasestack.hpp"
#include "obs/registry.hpp"
#include "obs/resources.hpp"

namespace snim::obs {

enum class Timing { WhenEnabled, Always };
enum class Rss { Off, Track };

#if SNIM_OBS_ENABLED

class ScopedTimer {
public:
    explicit ScopedTimer(std::string_view phase, Timing timing = Timing::WhenEnabled,
                         Rss rss = Rss::Off)
        : phase_(phase), record_(enabled()), timing_(record_ || timing == Timing::Always),
          track_rss_(record_ && rss == Rss::Track) {
        if (track_rss_) rss_start_ = sample_resources().rss_bytes;
        if (timing_) start_ = Clock::now();
        // Live phase stack for the sampling profiler / watchdog / crash
        // handler; one relaxed load when nothing live is running.
        if (phase_stack::enabled()) stack_pushed_ = phase_stack::push(phase);
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    ~ScopedTimer() { stop(); }

    /// Seconds since construction (0 under Timing::WhenEnabled + disabled).
    double elapsed() const {
        if (!timing_) return 0.0;
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Ends the phase early and returns its duration; idempotent.
    double stop() {
        if (stopped_) return last_;
        stopped_ = true;
        last_ = elapsed();
        if (stack_pushed_) {
            phase_stack::pop();
            stack_pushed_ = false;
        }
        if (record_) record_phase(phase_, last_);
        if (track_rss_) {
            const ResourceSample end = sample_resources();
            record_phase_rss(phase_,
                             static_cast<int64_t>(end.rss_bytes) -
                                 static_cast<int64_t>(rss_start_),
                             end.peak_rss_bytes);
        }
        return last_;
    }

private:
    using Clock = std::chrono::steady_clock;

    std::string_view phase_;
    Clock::time_point start_;
    bool record_;
    bool timing_;
    bool track_rss_ = false;
    bool stack_pushed_ = false;
    bool stopped_ = false;
    double last_ = 0.0;
    uint64_t rss_start_ = 0;
};

#else // SNIM_OBS_ENABLED — compiled out.

class ScopedTimer {
public:
    explicit ScopedTimer(std::string_view, Timing timing = Timing::WhenEnabled,
                         Rss = Rss::Off)
        : timing_(timing == Timing::Always) {
        if (timing_) start_ = Clock::now();
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    double elapsed() const {
        if (!timing_) return 0.0;
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }
    double stop() {
        if (stopped_) return last_;
        stopped_ = true;
        last_ = elapsed();
        return last_;
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
    bool timing_;
    bool stopped_ = false;
    double last_ = 0.0;
};

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
