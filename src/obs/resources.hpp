// Resource attribution: process memory sampling for the phase tree.
//
// current_rss_bytes()/peak_rss_bytes() read the resident-set size and its
// process-lifetime high-water mark (/proc/self/status VmRSS/VmHWM on Linux,
// getrusage fallback elsewhere).  obs::ScopedTimer samples them around a
// phase when constructed with Rss::Track, so the phase tree reports wall
// time AND memory growth per phase; the byte counters stamped by numeric/
// (matrix storage) and substrate/ (mesh storage) attribute the growth to
// the data structures that caused it.
//
// Sampling costs a /proc read (~µs), so tracking is opt-in per timer and
// only the coarse once-per-run phases (flow stages, engine top levels)
// request it — per-step hot-path timers never sample.  Like the registry,
// everything here collapses to inline zeros under -DSNIM_ENABLE_OBS=OFF.
#pragma once

#include <cstdint>

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif

namespace snim::obs {

/// One memory sample.  peak is monotone non-decreasing over the process
/// lifetime (the kernel's high-water mark); current moves both ways.
struct ResourceSample {
    uint64_t rss_bytes = 0;
    uint64_t peak_rss_bytes = 0;
};

#if SNIM_OBS_ENABLED

/// Samples both values with one /proc read; zeros when unavailable.
ResourceSample sample_resources();

/// Convenience single-value reads.
uint64_t current_rss_bytes();
uint64_t peak_rss_bytes();

#else // SNIM_OBS_ENABLED — compiled out.

inline ResourceSample sample_resources() { return {}; }
inline uint64_t current_rss_bytes() { return 0; }
inline uint64_t peak_rss_bytes() { return 0; }

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
