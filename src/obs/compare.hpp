// Cross-run comparison engine behind the snim_report tool.
//
// diff_reports() aligns two BENCH_*.json documents by scenario name, then
// inside each scenario by metric name (runtime stats, per-figure accuracy
// deltas, peak RSS, registry counters, time-series channels) and classifies
// every pair against configurable tolerances into equal / within-tolerance
// / improve / regress.  The result ranks regressions first, so the verdict
// table reads top-down as "what got worse".  trend_* render a run ledger
// (obs/run_ledger) as per-scenario sparkline history, text or
// self-contained HTML with the phase tree as a collapsible flame view;
// show_report() pretty-prints one report's manifest + scenarios.
//
// Everything here is pure JSON-in / struct-out — no registry dependency —
// so it works identically on reports produced by -DSNIM_ENABLE_OBS=OFF
// builds (whose registries are simply empty) and is unit-testable on
// synthetic documents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/provenance.hpp"

namespace snim::obs {

struct DiffTolerances {
    /// Median-runtime change treated as noise [percent].
    double runtime_pct = 25.0;
    /// Accuracy-delta change treated as noise [dB, absolute].
    double accuracy_db = 0.05;
    /// Peak-RSS change treated as noise [percent].
    double rss_pct = 30.0;
    /// Counter change treated as noise [percent]; counters are event counts
    /// and deterministic per seed, so the default is exact.
    double counter_pct = 0.0;
    /// Time-series offered-sample-count change treated as noise [percent].
    double timeseries_pct = 0.0;
    /// Accuracy-budget margin change treated as noise [dB, absolute].  A
    /// margin crossing 0 dB (headroom -> breach) regresses regardless.
    double budget_db = 0.5;
};

enum class DiffVerdict {
    Equal,   // bitwise-identical values
    Within,  // differs, inside tolerance
    Improve, // outside tolerance, in the good direction
    Regress, // outside tolerance, in the bad direction
    OnlyA,   // metric present only in the old run
    OnlyB,   // metric present only in the new run
};

const char* diff_verdict_name(DiffVerdict v);

struct MetricDiff {
    std::string scenario;
    std::string metric;  // "runtime/median_s", "accuracy/<name>",
                         // "rss/peak_bytes", "counter/<name>", "ts/<name>",
                         // "budget/<stage>" (schema-4 margin_db)
    double a = 0.0;      // old value (undefined under OnlyB)
    double b = 0.0;      // new value (undefined under OnlyA)
    double change_pct = 0.0; // (b - a) / a * 100 when a != 0
    DiffVerdict verdict = DiffVerdict::Equal;
    std::string detail;
};

struct ReportDiff {
    RunManifest manifest_a, manifest_b; // default-initialised for schema 1
    bool digests_match = false; // both manifests present with equal digests
    bool digests_known = false; // both reports carried a manifest
    int schema_a = 0, schema_b = 0;
    std::vector<MetricDiff> metrics;      // regressions ranked first
    std::vector<std::string> only_in_a;   // scenarios missing from B
    std::vector<std::string> only_in_b;   // scenarios new in B
};

/// Diffs two parsed BENCH_*.json documents (A = old/baseline, B = new).
/// Accepts schema 1 and 2; raises on documents that are not bench reports.
ReportDiff diff_reports(const Json& a, const Json& b,
                        const DiffTolerances& tol = {});

/// True when any metric regressed beyond tolerance.
bool diff_has_regression(const ReportDiff& d);

/// Ranked human-readable table; `limit` > 0 truncates to the first N rows
/// after ranking (regressions always survive the cut).
std::string diff_table(const ReportDiff& d, size_t limit = 0);

/// Unicode sparkline of `values` (▁..█); empty input gives "".
std::string sparkline(const std::vector<double>& values);

/// Per-scenario history over ledger entries (oldest first): sparkline of
/// median runtime, latest value, change vs the first run, accuracy status.
std::string trend_text(const std::vector<Json>& ledger);

/// Self-contained HTML version: sparklines as inline SVG, per-run table,
/// and the latest run's phase tree as a collapsible flame view (nested
/// <details> with width-proportional bars, wall time + RSS per phase).
std::string trend_html(const std::vector<Json>& ledger);

/// Pretty-prints one report: manifest fields, per-scenario runtime and
/// accuracy table, and the phase tree (with RSS columns when present).
std::string show_report(const Json& report);

/// Ranked accuracy-budget view of one schema-4 report: every scenario's
/// budget stages sorted worst-margin-first (breaches on top), followed by
/// the per-scenario solve-certificate summaries.  Says so when the report
/// carries no budget (older schema or obs-off build).  `limit` > 0
/// truncates after ranking; breached stages always survive the cut.
std::string budget_table(const Json& report, size_t limit = 0);

/// True when any budget stage is over budget (margin_db > 0) or any
/// scenario's certificate summary counts a breach.
bool budget_has_breach(const Json& report);

/// Pretty-prints a document's live-telemetry tail: the "events" array
/// (schema-3 BENCH reports, v3 diag bundles, watchdog bundles) as a
/// time/level/component table, followed by the top sampled stacks when a
/// "profile" member is present.  Works on any of the three document kinds;
/// says so when the document carries no events.
std::string show_events(const Json& report, size_t top_stacks = 10);

} // namespace snim::obs
