// Crash last-gasp: when the process dies violently (SIGSEGV, SIGABRT,
// SIGFPE, SIGBUS, SIGILL or an uncaught exception reaching std::terminate),
// write what we know to a pre-opened file before handing the signal back.
//
// The bundle is JSONL, one self-describing record per line:
//
//   {"last_gasp":{"reason":"SIGSEGV","run_id":"..."}}     <- header
//   {"phase_stack":{"slot":0,"stack":"bench/run;sim/transient"}}
//   {"seq":412,"ts":3.1,"lvl":"info","comp":"progress",...}  <- ring tail
//
// Async-signal-safety is the design constraint: the handler may interrupt
// a thread holding the malloc lock, so it allocates nothing and calls
// nothing but write(2)/fsync(2) on a file descriptor opened at install
// time.  That works because the event ring (obs/events) stores fully
// serialised lines and the phase stacks (obs/phasestack) store fixed char
// arrays — dumping either is a byte copy.  The run-manifest header is
// rendered once, at install time, into a static buffer.
//
// Installing activates the event journal and phase-stack tracking (the
// bundle would be empty otherwise) and chains to the previously installed
// disposition after writing (default: the process still dies and the core
// dump still happens).  Env: SNIM_LASTGASP=path (see init_live_from_env).
#pragma once

#include <string>

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif

namespace snim::obs {

#if SNIM_OBS_ENABLED

/// Opens `path` for writing (truncating; raises snim::Error on failure) and
/// installs the fatal-signal + std::terminate handlers.  Re-installing
/// switches the target file.
void install_last_gasp(const std::string& path);

/// Restores default dispositions and closes the bundle fd.  The bundle
/// file is left on disk (possibly empty when nothing died).
void uninstall_last_gasp();

bool last_gasp_installed();

/// Target path of the installed handler ("" when not installed).
std::string last_gasp_path();

namespace detail {
/// Writes the bundle records to the pre-opened fd right now, as the signal
/// handler would (async-signal-safe; `reason` must be a literal or an
/// otherwise-stable NUL-terminated string).  Returns false when no handler
/// is installed.  Exposed for tests — calling it does not kill the process.
bool write_last_gasp_now(const char* reason);
} // namespace detail

#else // SNIM_OBS_ENABLED — compiled out: inline no-ops.

inline void install_last_gasp(const std::string&) {}
inline void uninstall_last_gasp() {}
inline bool last_gasp_installed() { return false; }
inline std::string last_gasp_path() { return {}; }

namespace detail {
inline bool write_last_gasp_now(const char*) { return false; }
} // namespace detail

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
