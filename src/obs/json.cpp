#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace snim::obs {

std::string json_quote(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20)
                    out += format("\\u%04x", c);
                else
                    out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

std::string json_number(double v) {
    if (!std::isfinite(v)) return "null"; // JSON has no inf/nan
    if (v == std::floor(v) && std::fabs(v) < 1e15) return format("%.0f", v);
    return format("%.17g", v);
}

void write_json_file(const std::string& path, const Json& doc, int indent) {
    // Crash-consistent: a reader (or a run killed mid-write) never sees a
    // truncated JSON document, only the previous complete one or none.
    util::write_file_atomic(path, doc.dump(indent) + "\n");
}

const Json& Json::at(const std::string& key) const {
    SNIM_ASSERT(is_object(), "json: at('%s') on a non-object", key.c_str());
    const auto& obj = as_object();
    auto it = obj.find(key);
    if (it == obj.end()) raise("json: missing key '%s'", key.c_str());
    return it->second;
}

bool Json::contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
}

namespace {

void dump_value(const Json& j, std::string& out, int indent, int depth) {
    const std::string pad = indent < 0 ? "" : std::string(static_cast<size_t>(indent) *
                                                          static_cast<size_t>(depth + 1), ' ');
    const std::string close_pad =
        indent < 0 ? "" : std::string(static_cast<size_t>(indent) *
                                      static_cast<size_t>(depth), ' ');
    const char* nl = indent < 0 ? "" : "\n";
    if (j.is_null()) {
        out += "null";
    } else if (j.is_bool()) {
        out += j.as_bool() ? "true" : "false";
    } else if (j.is_number()) {
        out += json_number(j.as_number());
    } else if (j.is_string()) {
        out += json_quote(j.as_string());
    } else if (j.is_array()) {
        const auto& arr = j.as_array();
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out += "[";
        out += nl;
        for (size_t i = 0; i < arr.size(); ++i) {
            out += pad;
            dump_value(arr[i], out, indent, depth + 1);
            if (i + 1 < arr.size()) out += ",";
            out += nl;
        }
        out += close_pad;
        out += "]";
    } else {
        const auto& obj = j.as_object();
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out += "{";
        out += nl;
        size_t i = 0;
        for (const auto& [key, val] : obj) {
            out += pad;
            out += json_quote(key);
            out += indent < 0 ? ":" : ": ";
            dump_value(val, out, indent, depth + 1);
            if (++i < obj.size()) out += ",";
            out += nl;
        }
        out += close_pad;
        out += "}";
    }
}

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json run() {
        Json v = value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content");
        return v;
    }

private:
    std::string_view text_;
    size_t pos_ = 0;

    [[noreturn]] void fail(const char* what) const {
        raise("json parse error at byte %zu: %s", pos_, what);
    }

    char peek() const {
        if (pos_ >= text_.size()) raise("json parse error: unexpected end of input");
        return text_[pos_];
    }

    void skip_ws() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect(char c) {
        if (!consume(c)) fail(format("expected '%c'", c).c_str());
    }

    void expect_word(std::string_view w) {
        if (text_.substr(pos_, w.size()) != w) fail("bad literal");
        pos_ += w.size();
    }

    Json value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return object();
            case '[': return array();
            case '"': return Json(string());
            case 't': expect_word("true"); return Json(true);
            case 'f': expect_word("false"); return Json(false);
            case 'n': expect_word("null"); return Json(nullptr);
            default: return number();
        }
    }

    Json object() {
        expect('{');
        JsonObject out;
        skip_ws();
        if (consume('}')) return Json(std::move(out));
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            out.emplace(std::move(key), value());
            skip_ws();
            if (consume(',')) continue;
            expect('}');
            return Json(std::move(out));
        }
    }

    Json array() {
        expect('[');
        JsonArray out;
        skip_ws();
        if (consume(']')) return Json(std::move(out));
        while (true) {
            out.push_back(value());
            skip_ws();
            if (consume(',')) continue;
            expect(']');
            return Json(std::move(out));
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            const char c = peek();
            ++pos_;
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char esc = peek();
            ++pos_;
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad \\u escape");
                    }
                    // Reports only ever emit \u00xx; encode as UTF-8.
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                }
                default: fail("bad escape");
            }
        }
    }

    Json number() {
        const size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) fail("expected a value");
        const std::string tok(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) fail("bad number");
        return Json(v);
    }
};

} // namespace

std::string Json::dump(int indent) const {
    std::string out;
    dump_value(*this, out, indent, 0);
    return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

} // namespace snim::obs
