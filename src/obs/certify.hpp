// Numerical-health observability: solve certificates and the accuracy-budget
// ledger.
//
// Every pipeline stage that loses accuracy — LU solves, transient KCL
// conservation, MOR reduction, figure reproduction — registers its worst
// error contribution against a stage-specific threshold.  The ledger turns
// those into a uniform "margin" expressed in dB:
//
//   margin_db = 20 log10(worst / threshold)   (higher-is-worse quantities)
//   margin_db = 20 log10(threshold / worst)   (lower-is-worse, e.g. rcond)
//
// so 0 dB means "exactly at budget", negative means headroom, positive means
// breach.  snim_report budget ranks stages by margin; BENCH reports (schema
// 4) embed the per-scenario snapshot so budgets diff across runs like any
// other metric.
//
// Solve certificates (SolveCertificate) are produced by the templated
// helpers in numeric/certify.hpp — this header stays numeric-free so the
// obs library never depends on the numeric one (it is the other way round).
// record_certificate() folds one certificate into counters
// (numeric/solve_certificates, numeric/ir_refinement_steps,
// numeric/cert_breaches), value histograms, the ledger, and — on breach — a
// {"comp":"numeric","code":"cert_breach"} journal event.
//
// Determinism: ledger updates are max/sum aggregations, hence commutative;
// parallel AC workers may update it directly and the snapshot is still
// independent of thread count.  Everything below collapses to inline no-ops
// under -DSNIM_ENABLE_OBS=OFF; options structs and their validation stay
// real so configuration errors are caught in every build flavour.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif

namespace snim::obs {

/// Per-engine certificate knobs, carried inside TranOptions / OpOptions /
/// AcOptions and validated by validate_certify_options (raise-style, like
/// the other option validators).
struct CertifyOptions {
    /// Master switch; certificates additionally require obs::enabled().
    bool enabled = true;
    /// Componentwise backward-error acceptance threshold.  Healthy solves
    /// sit near machine epsilon (~1e-16); 1e-8 flags a solve that lost half
    /// the mantissa before it can bend a figure.
    double omega_max = 1e-8;
    /// Reciprocal-condition floor: below this the linear system itself has
    /// fewer trustworthy digits than the figure tolerances assume.
    double rcond_min = 1e-14;
    /// One (counted) step of iterative refinement when omega breaches.
    /// false keeps runs bit-identical to a certificate-free build.
    bool refine = true;
    /// Refinement budget per certified solve.
    int max_refine_steps = 1;
    /// Certify every stride-th site (accepted transient micro-step, AC
    /// frequency point).  1 = every site; the condition estimate costs a few
    /// triangular solves, so sweeps amortise it.
    int stride = 8;
};

/// Raises on out-of-range knobs, naming the offending field and engine.
void validate_certify_options(const CertifyOptions& opt, const char* engine);

/// The result of certifying one linear solve (see numeric/certify.hpp).
/// Plain data so it crosses the obs/numeric layering freely.
struct SolveCertificate {
    double omega = 0.0;     // componentwise backward error after refinement
    double rcond = 0.0;     // reciprocal 1-norm condition estimate
    int refine_steps = 0;   // iterative-refinement steps actually taken
    bool breach = false;    // omega or rcond violated its threshold
    bool fault_injected = false; // numeric.cert.breach forced this breach
};

/// One ledger row.  `worst` is the extreme raw value seen (max for
/// higher-is-worse stages, min otherwise); margin_db is derived from it.
struct BudgetEntry {
    std::string stage;      // e.g. "numeric/transient/omega", "figure/fig7"
    std::string unit;       // unit of `worst` ("1", "V", "A", "dB")
    double worst = 0.0;
    double threshold = 0.0;
    double margin_db = 0.0; // > 0 means over budget
    bool higher_is_worse = true;
    uint64_t samples = 0;
    uint64_t breaches = 0;  // samples whose margin was positive
    std::string detail;     // attribution for the worst sample (node name...)
};

/// Raw ledger state for checkpointing: the per-stage rows plus the
/// aggregate certificate summary, exactly as the ledger holds them (no
/// derived margin).  Restoring a BudgetState taken later along the SAME
/// execution path is idempotent — see budget_restore().
struct BudgetState {
    struct Row {
        std::string stage;
        std::string unit;
        std::string detail;
        double worst = 0.0;
        double threshold = 0.0;
        bool higher_is_worse = true;
        uint64_t samples = 0;
        uint64_t breaches = 0;
    };
    std::vector<Row> rows;
    uint64_t cert_solves = 0;
    uint64_t cert_breaches = 0;
    uint64_t cert_refine_steps = 0;
    uint64_t breach_events = 0; // certificate_breach_count()
    double worst_omega = 0.0;
    double min_rcond = 0.0; // 0 encodes "none yet" (internal +inf)

    bool empty() const { return rows.empty() && cert_solves == 0; }
};

#if SNIM_OBS_ENABLED

/// Folds one sample into the named ledger stage.  Thread-safe and
/// commutative (max/min + sums), so parallel workers call it directly.
/// `detail` is kept for the sample that defines `worst`.
void budget_update(std::string_view stage, double value, double threshold,
                   std::string_view unit, bool higher_is_worse = true,
                   std::string_view detail = {});

/// Snapshot sorted by descending margin (worst stage first).
std::vector<BudgetEntry> budget_snapshot();

/// The snapshot as a JSON array (the BENCH "budget" member).
Json budget_json();

/// Aggregate certificate summary as JSON: {"solves","breaches",
/// "refinement_steps","worst_omega","min_rcond"} (the BENCH "certificates"
/// member).  Null-equivalent empty object when no solve was certified.
Json certificate_summary_json();

/// Clears the ledger and the certificate summary (obs::reset() calls this).
void budget_reset();

/// Records one solve certificate: counters, histograms, ledger stages
/// "numeric/<component>/omega" and "numeric/<component>/rcond", and a Warn
/// journal event on breach.  `component` names the engine site ("transient",
/// "op", "ac").
void record_certificate(const char* component, const SolveCertificate& cert,
                        const CertifyOptions& opt);

/// Breaches recorded since the last budget_reset(); cheap (one relaxed
/// load), surfaced by progress heartbeats and watchdog stall events.
uint64_t certificate_breach_count();

/// The ledger's raw state, for checkpoint serialisation.
BudgetState budget_state();

/// Folds a saved BudgetState back in with MONOTONE merges: per-row worst
/// via the same worse-or-tie rule budget_update uses, samples/breaches and
/// the summary counters via max (min for min_rcond).  Along one execution
/// path ledger state only grows, so restoring a snapshot taken later on
/// that path yields exactly the later state — a resumed run reproduces the
/// uninterrupted ledger without double-counting rows already present.
void budget_restore(const BudgetState& st);

#else // SNIM_OBS_ENABLED — compiled out: inline no-ops.

inline void budget_update(std::string_view, double, double, std::string_view,
                          bool = true, std::string_view = {}) {}
inline std::vector<BudgetEntry> budget_snapshot() { return {}; }
inline Json budget_json() { return Json(JsonArray{}); }
inline Json certificate_summary_json() { return Json(JsonObject{}); }
inline void budget_reset() {}
inline void record_certificate(const char*, const SolveCertificate&,
                               const CertifyOptions&) {}
inline uint64_t certificate_breach_count() { return 0; }
inline BudgetState budget_state() { return {}; }
inline void budget_restore(const BudgetState&) {}

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
