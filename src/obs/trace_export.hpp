// Chrome trace-event export of the obs phase tree.
//
// The registry stores *aggregated* phases (total seconds + call count per
// '/'-separated path), not individual begin/end events, so the exporter
// reconstructs a deterministic timeline: every node's span is its inclusive
// seconds (or the sum of its children for structural nodes), children are
// laid out back to back inside their parent starting at the parent's begin
// timestamp.  The result is a well-formed duration-event stream — balanced
// B/E pairs with non-decreasing timestamps — loadable in chrome://tracing
// or Perfetto (ui.perfetto.dev, "Open trace file").
//
// Counters (Newton iterations, LU factorizations, CG iterations, transient
// steps...) ride along as args on the B event of the deepest phase whose
// path prefixes the counter name; counters with no matching phase are
// reported in the trace's otherData.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"

namespace snim::obs {

/// One named timeline of the trace: a phase tree plus the counters and
/// time-series channels recorded while it was built.  The bench harness
/// emits one lane per scenario.
struct TraceLane {
    std::string name;
    PhaseNode tree; // structural root (as returned by obs::phase_tree())
    std::vector<std::pair<std::string, uint64_t>> counters;
    /// Solver-health channels; rendered as Chrome counter tracks ("ph":"C")
    /// so Perfetto shows Newton effort aligned with the phase tree.  Each
    /// channel's abscissa is mapped linearly onto the lane's wall span.
    std::vector<TimeSeries> timeseries;
};

/// Builds the full Chrome trace JSON document:
///   { "displayTimeUnit": "ms", "traceEvents": [...], "otherData": {...} }
/// Each lane becomes one tid of pid 1 with a thread_name metadata event;
/// lanes are placed at increasing wall offsets so they do not overlap.
Json chrome_trace_json(const std::vector<TraceLane>& lanes);

/// Appends the duration events of one lane to `events`.  `t0_us` is the
/// begin timestamp of the lane's first top-level phase; returns the lane's
/// total span in microseconds.  Exposed separately for tests.
double append_lane_events(JsonArray& events, const TraceLane& lane, int pid, int tid,
                          double t0_us);

/// Convenience: one lane snapshotted from the live registry.
TraceLane registry_trace_lane(const std::string& name);

/// Writes `chrome_trace_json({registry_trace_lane(name)})` (or the given
/// lanes) to `path`; throws snim::Error on I/O failure.
void write_chrome_trace(const std::string& path, const std::vector<TraceLane>& lanes);

} // namespace snim::obs
