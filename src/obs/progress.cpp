#include "obs/progress.hpp"

#if SNIM_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "obs/certify.hpp"
#include "obs/events.hpp"
#include "obs/resources.hpp"

namespace snim::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::time_point real_epoch() {
    static const SteadyClock::time_point t0 = SteadyClock::now();
    return t0;
}

double real_now_s() {
    return std::chrono::duration<double>(SteadyClock::now() - real_epoch()).count();
}

std::atomic<HeartbeatClock> g_clock{nullptr};

/// Heartbeat time: fakeable for cadence tests.
double beat_now_s() {
    const HeartbeatClock c = g_clock.load(std::memory_order_relaxed);
    return c ? c() : real_now_s();
}

std::atomic<double> g_interval{1.0};
std::atomic<double> g_last_beat{-1.0e18};
std::atomic<uint64_t> g_heartbeats{0};

/// Watchdog activity stamp: ALWAYS the real clock (ns since real_epoch(),
/// 0 = never), so fake-clock tests cannot mask or fabricate a stall.
std::atomic<int64_t> g_last_activity_ns{0};

std::atomic<bool> g_has_observer{false};

struct ObserverBox {
    std::mutex mutex;
    HeartbeatObserver observer;
};

ObserverBox& observer_box() {
    static ObserverBox* b = new ObserverBox;
    return *b;
}

} // namespace

struct ProgressScope::Impl {
    std::string phase;
    std::atomic<uint64_t> done{0};
    std::atomic<uint64_t> total{0};
    double start_s = 0.0;
};

namespace {

/// Live scopes in opening order; innermost = most recently opened survivor.
/// Scopes on different threads interleave freely, so removal is by value,
/// not a strict stack pop.
struct ScopeRegistry {
    std::mutex mutex;
    std::vector<ProgressScope::Impl*> live;
};

ScopeRegistry& scopes() {
    static ScopeRegistry* r = new ScopeRegistry;
    return *r;
}

HeartbeatInfo snapshot_innermost(double now_s) {
    HeartbeatInfo info;
    ScopeRegistry& r = scopes();
    std::lock_guard<std::mutex> lock(r.mutex);
    info.depth = static_cast<int>(r.live.size());
    if (r.live.empty()) return info;
    const ProgressScope::Impl* inner = r.live.back();
    info.phase = inner->phase;
    info.done = inner->done.load(std::memory_order_relaxed);
    info.total = inner->total.load(std::memory_order_relaxed);
    info.elapsed_s = std::max(0.0, now_s - inner->start_s);
    if (info.total > 0) {
        const uint64_t done = std::min(info.done, info.total);
        info.percent = 100.0 * static_cast<double>(done) /
                       static_cast<double>(info.total);
        if (info.done > 0 && info.total >= info.done)
            info.eta_s = info.elapsed_s *
                         static_cast<double>(info.total - info.done) /
                         static_cast<double>(info.done);
    }
    return info;
}

void maybe_heartbeat() {
    const double now = beat_now_s();
    double last = g_last_beat.load(std::memory_order_relaxed);
    const double interval = g_interval.load(std::memory_order_relaxed);
    if (now - last < interval) return;
    // One winner per interval across all threads.
    if (!g_last_beat.compare_exchange_strong(last, now, std::memory_order_relaxed))
        return;

    HeartbeatInfo info = snapshot_innermost(now);
    info.rss_bytes = current_rss_bytes();
    g_heartbeats.fetch_add(1, std::memory_order_relaxed);

    event(EventLevel::Info, "progress", "heartbeat",
          {{"phase", info.phase},
           {"done", info.done},
           {"total", info.total},
           {"pct", info.percent},
           {"elapsed_s", info.elapsed_s},
           {"eta_s", info.eta_s},
           {"rss_mb", static_cast<double>(info.rss_bytes) / (1024.0 * 1024.0)},
           {"depth", info.depth},
           // Numerical health at a glance: certificate breaches since the
           // last registry reset (0 on a clean run).
           {"cert_breaches", certificate_breach_count()}});

    HeartbeatObserver observer;
    {
        ObserverBox& b = observer_box();
        std::lock_guard<std::mutex> lock(b.mutex);
        observer = b.observer;
    }
    if (observer) observer(info);
}

} // namespace

bool progress_active() {
    return events_active() || g_has_observer.load(std::memory_order_relaxed);
}

ProgressScope::ProgressScope(std::string_view phase, uint64_t total_work) {
    if (!progress_active()) return;
    impl_ = new Impl;
    impl_->phase.assign(phase);
    impl_->total.store(total_work, std::memory_order_relaxed);
    impl_->start_s = beat_now_s();
    {
        ScopeRegistry& r = scopes();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.live.push_back(impl_);
    }
    note_progress_activity();
}

ProgressScope::~ProgressScope() {
    if (!impl_) return;
    {
        ScopeRegistry& r = scopes();
        std::lock_guard<std::mutex> lock(r.mutex);
        auto it = std::find(r.live.begin(), r.live.end(), impl_);
        if (it != r.live.end()) r.live.erase(it);
    }
    delete impl_;
}

void ProgressScope::advance(uint64_t n) {
    if (!impl_) return;
    impl_->done.fetch_add(n, std::memory_order_relaxed);
    note_progress_activity();
    maybe_heartbeat();
}

void ProgressScope::add_total(uint64_t n) {
    if (!impl_) return;
    impl_->total.fetch_add(n, std::memory_order_relaxed);
}

HeartbeatInfo current_progress() { return snapshot_innermost(beat_now_s()); }

void set_heartbeat_interval(double seconds) {
    g_interval.store(seconds < 0.01 ? 0.01 : seconds, std::memory_order_relaxed);
}

double heartbeat_interval() { return g_interval.load(std::memory_order_relaxed); }

HeartbeatObserver set_heartbeat_observer(HeartbeatObserver observer) {
    ObserverBox& b = observer_box();
    std::lock_guard<std::mutex> lock(b.mutex);
    HeartbeatObserver prev = std::move(b.observer);
    b.observer = std::move(observer);
    g_has_observer.store(static_cast<bool>(b.observer), std::memory_order_relaxed);
    return prev;
}

uint64_t heartbeat_count() { return g_heartbeats.load(std::memory_order_relaxed); }

void set_heartbeat_clock(HeartbeatClock clock) {
    g_clock.store(clock, std::memory_order_relaxed);
}

double last_activity_age_s() {
    const int64_t ns = g_last_activity_ns.load(std::memory_order_relaxed);
    if (ns == 0) return 1.0e18; // never
    const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               SteadyClock::now() - real_epoch())
                               .count();
    return static_cast<double>(now_ns - ns) * 1e-9;
}

void note_progress_activity() {
    const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               SteadyClock::now() - real_epoch())
                               .count();
    // 0 is the "never" sentinel; the first nanosecond maps to 1.
    g_last_activity_ns.store(now_ns == 0 ? 1 : now_ns, std::memory_order_relaxed);
}

void reset_progress_for_test() {
    g_heartbeats.store(0, std::memory_order_relaxed);
    g_last_beat.store(-1.0e18, std::memory_order_relaxed);
    g_last_activity_ns.store(0, std::memory_order_relaxed);
}

} // namespace snim::obs

#endif // SNIM_OBS_ENABLED
