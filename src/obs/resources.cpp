#include "obs/resources.hpp"

#if SNIM_OBS_ENABLED

#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <sys/resource.h>
#endif

namespace snim::obs {

namespace {

/// Parses the "VmRSS:   123 kB" style lines of /proc/self/status.  Returns
/// false when the file is unavailable (non-Linux), letting the caller fall
/// back to getrusage.
bool read_proc_status(uint64_t& rss, uint64_t& peak) {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (!f) return false;
    char line[256];
    bool got_rss = false, got_peak = false;
    while ((!got_rss || !got_peak) && std::fgets(line, sizeof line, f)) {
        unsigned long long kb = 0;
        if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
            rss = kb * 1024ULL;
            got_rss = true;
        } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
            peak = kb * 1024ULL;
            got_peak = true;
        }
    }
    std::fclose(f);
    return got_rss || got_peak;
}

} // namespace

ResourceSample sample_resources() {
    ResourceSample s;
    if (read_proc_status(s.rss_bytes, s.peak_rss_bytes)) return s;
#ifndef _WIN32
    struct rusage ru;
    if (::getrusage(RUSAGE_SELF, &ru) == 0) {
        // ru_maxrss is kilobytes on Linux and BSDs; only the peak is
        // available on this path.
        s.peak_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss) * 1024ULL;
    }
#endif
    return s;
}

uint64_t current_rss_bytes() { return sample_resources().rss_bytes; }

uint64_t peak_rss_bytes() { return sample_resources().peak_rss_bytes; }

} // namespace snim::obs

#endif // SNIM_OBS_ENABLED
