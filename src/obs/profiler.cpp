#include "obs/profiler.hpp"

#if SNIM_OBS_ENABLED

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "obs/phasestack.hpp"
#include "util/error.hpp"

namespace snim::obs {

namespace {

struct Sampler {
    std::mutex mutex;
    std::condition_variable cv;
    std::thread thread;
    bool running = false;
    bool stop_requested = false;
    double hz = 0.0;
    uint64_t samples = 0;
    std::map<std::string, uint64_t> counts;
};

Sampler& sampler() {
    static Sampler* s = new Sampler;
    return *s;
}

void sampler_loop(double hz) {
    Sampler& s = sampler();
    const auto period = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(1.0 / hz));
    auto next = std::chrono::steady_clock::now() + period;
    std::string key;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(s.mutex);
            s.cv.wait_until(lock, next, [&] { return s.stop_requested; });
            if (s.stop_requested) return;
        }
        next += period;
        // Fell behind (suspended laptop, loaded box): skip, don't burst.
        const auto now = std::chrono::steady_clock::now();
        if (next < now) next = now + period;

        const auto stacks = phase_stack::sample_all();
        std::lock_guard<std::mutex> lock(s.mutex);
        ++s.samples;
        if (stacks.empty()) {
            ++s.counts["snim"];
            continue;
        }
        for (const phase_stack::ThreadStack& ts : stacks) {
            key = "snim";
            for (const std::string& f : ts.frames) {
                key += ';';
                key += f;
            }
            ++s.counts[key];
        }
    }
}

} // namespace

void start_profiler(const ProfilerOptions& options) {
    const double hz = std::clamp(options.hz, 1.0, 1000.0);
    phase_stack::set_enabled(true);
    Sampler& s = sampler();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.running) return;
    s.hz = hz;
    s.stop_requested = false;
    s.thread = std::thread(sampler_loop, hz);
    s.running = true;
}

void stop_profiler() {
    Sampler& s = sampler();
    std::thread joinable;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.running) return;
        s.stop_requested = true;
        s.running = false;
        joinable = std::move(s.thread);
    }
    s.cv.notify_all();
    joinable.join();
}

bool profiler_running() {
    Sampler& s = sampler();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.running;
}

FoldedProfile profiler_snapshot() {
    Sampler& s = sampler();
    std::lock_guard<std::mutex> lock(s.mutex);
    FoldedProfile p;
    p.hz = s.hz;
    p.samples = s.samples;
    p.counts = s.counts;
    return p;
}

void reset_profiler() {
    Sampler& s = sampler();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.samples = 0;
    s.counts.clear();
}

std::string folded_text(const FoldedProfile& profile) {
    std::string out;
    for (const auto& [stack, count] : profile.counts) {
        out += stack;
        out += ' ';
        out += std::to_string(count);
        out += '\n';
    }
    return out;
}

void write_folded(const std::string& path, const FoldedProfile& profile) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) raise("cannot open folded-profile output '%s'", path.c_str());
    const std::string text = folded_text(profile);
    const size_t n = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = n == text.size() && std::fclose(f) == 0;
    if (!ok) raise("short write to folded-profile output '%s'", path.c_str());
}

Json profile_json(const FoldedProfile& profile) {
    JsonObject stacks;
    for (const auto& [stack, count] : profile.counts) stacks[stack] = count;
    JsonObject o;
    o["hz"] = profile.hz;
    o["samples"] = profile.samples;
    o["stacks"] = std::move(stacks);
    return Json(std::move(o));
}

} // namespace snim::obs

#endif // SNIM_OBS_ENABLED
