#include "obs/watchdog.hpp"

#if SNIM_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/certify.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/phasestack.hpp"
#include "obs/progress.hpp"
#include "obs/provenance.hpp"
#include "obs/report.hpp"
#include "obs/resources.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace snim::obs {

namespace {

/// Document layout version of snim_watchdog_*.json bundles.
constexpr int kWatchdogBundleVersion = 1;

struct Monitor {
    std::mutex mutex;
    std::condition_variable cv;
    std::thread thread;
    WatchdogOptions options;
    bool running = false;
    bool stop_requested = false;
};

Monitor& monitor() {
    static Monitor* m = new Monitor;
    return *m;
}

std::atomic<uint64_t> g_stall_count{0};

std::mutex g_bundle_mutex;
std::string g_last_bundle;
uint64_t g_bundle_seq = 0;

/// ";"-joined innermost-last rendering of one sampled stack.
std::string join_frames(const std::vector<std::string>& frames) {
    std::string out;
    for (const std::string& f : frames) {
        if (!out.empty()) out += ';';
        out += f;
    }
    return out;
}

Json stacks_json() {
    JsonArray arr;
    for (const phase_stack::ThreadStack& ts : phase_stack::sample_all()) {
        JsonObject o;
        o["slot"] = ts.slot;
        JsonArray frames;
        for (const std::string& f : ts.frames) frames.emplace_back(f);
        o["frames"] = std::move(frames);
        arr.emplace_back(std::move(o));
    }
    return Json(std::move(arr));
}

Json progress_json(const HeartbeatInfo& p) {
    JsonObject o;
    o["phase"] = p.phase;
    o["done"] = p.done;
    o["total"] = p.total;
    o["percent"] = p.percent;
    o["elapsed_s"] = p.elapsed_s;
    o["depth"] = p.depth;
    return Json(std::move(o));
}

/// The hang bundle: everything a post-mortem needs when the process is
/// about to be killed (by us or by an impatient operator).
std::string write_bundle(const WatchdogOptions& opt, double age_s,
                         const HeartbeatInfo& progress) {
    JsonObject doc;
    doc["schema_version"] = kWatchdogBundleVersion;
    doc["kind"] = "watchdog_hang";
    doc["quiet_s"] = age_s;
    doc["stall_budget_s"] = opt.stall_s;
    doc["hang_budget_s"] = opt.hang_s;
    doc["pool_threads"] = util::default_thread_count();
    if (auto m = current_manifest()) doc["manifest"] = manifest_json(*m);
    doc["progress"] = progress_json(progress);
    doc["phase_stacks"] = stacks_json();
    JsonArray events;
    for (const std::string& line : event_tail()) {
        try {
            events.push_back(Json::parse(line));
        } catch (const Error&) {
            // A torn or overwritten record slipped through; drop it.
        }
    }
    doc["events"] = std::move(events);
    doc["registry"] = report_json();
    const ResourceSample rss = sample_resources();
    doc["rss_bytes"] = rss.rss_bytes;
    doc["peak_rss_bytes"] = rss.peak_rss_bytes;

    std::string run;
    if (auto m = current_manifest()) run = m->run_id;
    if (run.empty()) run = process_run_token();
    uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(g_bundle_mutex);
        seq = g_bundle_seq++;
    }
    std::string path = opt.bundle_dir.empty() ? std::string(".") : opt.bundle_dir;
    path += "/snim_watchdog_" + run + "_" + std::to_string(seq) + ".json";
    try {
        write_json_file(path, Json(std::move(doc)));
    } catch (const Error& e) {
        log_warn("watchdog: cannot write hang bundle: %s", e.what());
        return {};
    }
    {
        std::lock_guard<std::mutex> lock(g_bundle_mutex);
        g_last_bundle = path;
    }
    return path;
}

void monitor_loop() {
    Monitor& m = monitor();
    bool stalled = false;
    bool bundled = false;
    for (;;) {
        WatchdogOptions opt;
        {
            std::unique_lock<std::mutex> lock(m.mutex);
            opt = m.options;
            // Tick fast enough that sub-second test budgets work, slow
            // enough to be invisible on a real run.
            const double tick_s = std::min(0.1, opt.stall_s / 4.0);
            m.cv.wait_for(lock,
                          std::chrono::duration<double>(std::max(0.01, tick_s)),
                          [&] { return m.stop_requested; });
            if (m.stop_requested) return;
            opt = m.options;
        }

        const double age = last_activity_age_s();
        if (age >= 1.0e17) continue; // no run started yet: nothing to watch

        if (age < opt.stall_s) {
            if (stalled) {
                event(EventLevel::Info, "watchdog", "recovered",
                      {{"quiet_s", age}});
                stalled = false;
                bundled = false;
            }
            continue;
        }

        const HeartbeatInfo progress = current_progress();
        if (!stalled) {
            stalled = true;
            g_stall_count.fetch_add(1, std::memory_order_relaxed);
            std::string stacks;
            for (const phase_stack::ThreadStack& ts : phase_stack::sample_all()) {
                if (!stacks.empty()) stacks += " | ";
                stacks += join_frames(ts.frames);
            }
            event(EventLevel::Warn, "watchdog", "stall",
                  {{"quiet_s", age},
                   {"budget_s", opt.stall_s},
                   {"phase", progress.phase},
                   {"done", progress.done},
                   {"total", progress.total},
                   {"pool_threads", util::default_thread_count()},
                   // A stall with breached solve certificates usually means
                   // the solver is grinding on an ill-conditioned system.
                   {"cert_breaches", certificate_breach_count()},
                   {"stacks", stacks}});
            log_warn("watchdog: no forward progress for %.1f s (budget %.1f s), "
                     "innermost phase '%s'",
                     age, opt.stall_s, progress.phase.c_str());
        }

        if (!bundled && age >= opt.hang_s) {
            bundled = true;
            const std::string path = write_bundle(opt, age, progress);
            event(EventLevel::Error, "watchdog", "hang",
                  {{"quiet_s", age},
                   {"budget_s", opt.hang_s},
                   {"bundle", path}});
            log_warn("watchdog: hang after %.1f s quiet; bundle %s", age,
                     path.empty() ? "(unavailable)" : path.c_str());
            if (opt.abort_on_hang) {
                shutdown_live(); // flush the event stream before dying
                std::abort();
            }
        }
    }
}

} // namespace

void start_watchdog(const WatchdogOptions& options) {
    if (options.stall_s <= 0.0)
        raise("watchdog: stall_s must be > 0 (got %g)", options.stall_s);
    WatchdogOptions opt = options;
    if (opt.hang_s <= 0.0) opt.hang_s = 4.0 * opt.stall_s;
    if (opt.hang_s < opt.stall_s) opt.hang_s = opt.stall_s;

    set_events_active(true);
    phase_stack::set_enabled(true);

    Monitor& m = monitor();
    std::lock_guard<std::mutex> lock(m.mutex);
    m.options = opt;
    if (!m.running) {
        m.stop_requested = false;
        m.thread = std::thread(monitor_loop);
        m.running = true;
    }
    event(EventLevel::Info, "watchdog", "started",
          {{"stall_s", opt.stall_s},
           {"hang_s", opt.hang_s},
           {"abort_on_hang", opt.abort_on_hang}});
}

void stop_watchdog() {
    Monitor& m = monitor();
    std::thread joinable;
    {
        std::lock_guard<std::mutex> lock(m.mutex);
        if (!m.running) return;
        m.stop_requested = true;
        m.running = false;
        joinable = std::move(m.thread);
    }
    m.cv.notify_all();
    joinable.join();
}

bool watchdog_running() {
    Monitor& m = monitor();
    std::lock_guard<std::mutex> lock(m.mutex);
    return m.running;
}

uint64_t watchdog_stall_count() {
    return g_stall_count.load(std::memory_order_relaxed);
}

std::string last_watchdog_bundle() {
    std::lock_guard<std::mutex> lock(g_bundle_mutex);
    return g_last_bundle;
}

} // namespace snim::obs

#endif // SNIM_OBS_ENABLED
