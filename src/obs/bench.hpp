// Benchmark scenario harness: named scenarios registered at startup, run
// with warmup + repetitions, each repetition against a freshly reset obs
// registry and a re-seeded default Rng.  Per scenario the runner collects
//
//   * wall-time statistics (min / median / p95 / mean over repetitions),
//   * the final repetition's registry snapshot (phase tree, counters,
//     value histograms) for the BENCH_*.json report and the Chrome trace,
//   * accuracy metrics the scenario body attaches (dB deltas of reproduced
//     figures against the paper-reference CSVs), asserted identical across
//     repetitions — a repetition-dependent metric is a determinism bug.
//
// The harness itself is independent of the simulation layers: scenario
// bodies live next to their subject (bench/scenarios.cpp wraps the figure
// reproductions and numeric kernels) and only this header is needed to
// register more.  Works with -DSNIM_ENABLE_OBS=OFF too: wall times and
// accuracy still flow, registry snapshots and traces are simply empty.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "obs/trace_export.hpp"
#include "obs/vcd.hpp"

namespace snim::obs {

/// Version of the BENCH_*.json document layout.  compare_to_baseline and
/// snim_report accept any version in [1, kBenchSchemaVersion]; readers must
/// treat newer-version members as absent-when-missing.  History:
///   1 — initial layout (scenarios + runtime/accuracy/registry)
///   2 — adds the run provenance manifest and per-scenario peak_rss_bytes
///   3 — adds the live-telemetry tail: "events" (event-journal records,
///       oldest first) and "profile" (folded-stack sample counts when the
///       sampling profiler ran); both empty/absent when telemetry was off
///   4 — adds per-scenario "budget" (the accuracy-budget ledger snapshot,
///       figure accuracy deltas folded in as "figure/..." stages) and
///       "certificates" (the solve-certificate summary); both empty under
///       -DSNIM_ENABLE_OBS=OFF
inline constexpr int kBenchSchemaVersion = 4;

/// One accuracy score: a dB delta against a reference with a pass/fail
/// tolerance (the paper's quantitative claims: 2 dB VCO, 1 dB NMOS).
struct AccuracyMetric {
    std::string name;      // "pred_dbm vs reference"
    std::string reference; // "fig8_spur_vs_freq.csv" or a paper claim
    double delta_db = 0.0; // measured max |delta|
    double tolerance_db = 0.0;
    uint64_t points = 0;   // matched comparison points
    bool pass() const { return delta_db <= tolerance_db; }
};

/// Handed to the scenario body on every repetition.
struct ScenarioContext {
    bool quick = false;    // --quick: trimmed sweeps / captures
    uint64_t seed = 0;     // the default-Rng seed in effect
    int repetition = 0;    // 0-based, warmups excluded
    /// Worker threads for parallel sweep corners (BenchOptions::threads
    /// resolved through util::default_thread_count()); always >= 1.
    /// Scenario results are bit-identical for every value.
    int threads = 1;
    /// Waveform dump directory (--dump-waves); non-empty only on the last
    /// recorded repetition.  Scenario bodies export probe waveforms through
    /// dump_waves(); the runner exports the solver-health channels itself.
    std::string wave_dir;
    /// Accuracy metrics recorded by the body (append via add_accuracy).
    std::vector<AccuracyMetric> accuracy;
    /// Free-form annotations (skipped corners, degraded builds) attached by
    /// the body via add_note; land in the BENCH_*.json scenario entry and
    /// are asserted deterministic across repetitions like accuracy metrics.
    std::vector<std::string> notes;

    void add_accuracy(AccuracyMetric m) { accuracy.push_back(std::move(m)); }
    void add_note(std::string note) { notes.push_back(std::move(note)); }

    /// Runs one sweep corner, converting a thrown snim::Error into a
    /// skip-and-record: the error becomes a note ("corner '<tag>' skipped:
    /// ..."), bumps the bench/skipped_corners counter and returns false so
    /// the scenario keeps producing the corners that do work instead of
    /// aborting the figure.  Non-Error exceptions propagate.
    bool guard_corner(const std::string& tag, const std::function<void()>& body);

    /// Writes `signals` to <wave_dir>/<slug(tag)>.vcd and .csv; no-op
    /// returning "" when wave_dir is empty.  Returns the VCD path.
    std::string dump_waves(const std::string& tag,
                           const std::vector<WaveSignal>& signals) const;

    /// Fans `count` independent sweep corners out over `threads` workers.
    /// Each corner receives a private ScenarioContext; its accuracy metrics
    /// and notes (and, via obs::parallel_tasks, everything the corner put in
    /// the obs registry) are merged back into this context in corner-index
    /// order, so the scenario result is bit-identical for every thread
    /// count.  Corner bodies must not share mutable state — rebuild the
    /// model per corner instead of mutating one netlist.
    void run_corners(size_t count,
                     const std::function<void(ScenarioContext&, size_t)>& body);
};

struct Scenario {
    std::string name;        // "fig8_spur_vs_freq", "kernel/sparse_lu"
    std::string description;
    std::string kind = "figure"; // "figure" | "kernel" | "flow"
    int repeat = 3;          // repetitions (full mode)
    int quick_repeat = 0;    // repetitions under --quick; 0 -> same as repeat
    int warmup = 1;          // discarded warmup runs (full mode; 0 under --quick)
    std::function<void(ScenarioContext&)> run;
};

/// Registers a scenario; raises on a duplicate name.
void register_scenario(Scenario s);

/// All registered scenarios, sorted by name.
std::vector<const Scenario*> all_scenarios();

/// Scenarios whose name contains any of the comma-separated substrings in
/// `filter` (empty filter -> all), sorted by name.
std::vector<const Scenario*> match_scenarios(const std::string& filter);

struct BenchOptions {
    bool quick = false;
    int repeat_override = 0; // 0 -> scenario defaults
    uint64_t seed = 0x9e3779b97f4a7c15ULL;
    /// --dump-waves: directory for per-scenario VCD/CSV waveform exports
    /// (probe waveforms from scenario bodies plus the solver-health
    /// channels).  Empty -> no dumps.
    std::string wave_dir;
    /// --threads: worker threads for parallel sweep corners inside
    /// scenarios; 0 -> util::default_thread_count() (SNIM_THREADS, else 1).
    int threads = 0;
};

struct RuntimeStats {
    std::vector<double> runs_s; // per-repetition wall seconds
    double min_s = 0.0;
    double median_s = 0.0;
    double p95_s = 0.0;
    double mean_s = 0.0;
};

/// Computed from `runs` (empty input -> zeros).  Exposed for tests.
RuntimeStats runtime_stats(std::vector<double> runs);

struct ScenarioResult {
    std::string name;
    std::string kind;
    std::string description;
    int repetitions = 0;
    int warmup = 0;
    RuntimeStats runtime;
    std::vector<AccuracyMetric> accuracy; // identical on every repetition
    std::vector<std::string> notes;       // identical on every repetition
    Json registry;   // obs::report_json() snapshot of the final repetition
    /// Accuracy-budget ledger of the final repetition (schema 4), the
    /// scenario's figure accuracy deltas folded in as "figure/<scenario>/
    /// <metric>" stages so one ranked view covers the whole error pipeline.
    Json budget = Json(JsonArray{});
    /// Solve-certificate summary of the final repetition (schema 4); empty
    /// object when no solve was certified.
    Json certificates = Json(JsonObject{});
    TraceLane lane;  // phase tree + counters of the final repetition
    /// Process peak RSS sampled after the final repetition; 0 when resource
    /// sampling is unavailable (SNIM_ENABLE_OBS=OFF or no /proc).
    uint64_t peak_rss_bytes = 0;
};

/// Configuration digest of the resolved bench options (quick, repetition
/// override, seed, wave dir) — the digest stored in the run manifest.
/// Environment (thread count) is deliberately excluded: scenario results
/// are thread-count independent, so two runs differing only in --threads
/// are the same configuration.
ConfigDigest bench_config_digest(const BenchOptions& opt);

/// Runs warmups then repetitions; raises when accuracy metrics differ
/// between repetitions (broken determinism).  Leaves the obs registry
/// disabled but intact (the final repetition's data stays readable).
/// Installs the process-wide run manifest when none is set yet.
ScenarioResult run_scenario(const Scenario& s, const BenchOptions& opt);

/// The BENCH_*.json document.
Json bench_report_json(const std::vector<ScenarioResult>& results,
                       const BenchOptions& opt);

/// Serialises `report` to `path`; throws snim::Error on I/O failure.
void write_bench_report(const std::string& path, const Json& report);

// --- regression gating ----------------------------------------------------

enum class VerdictKind {
    Pass,         // runtime within the threshold, accuracy in tolerance
    Improve,      // median runtime faster than baseline by more than the threshold
    Regress,      // median runtime slower than baseline beyond the threshold
    AccuracyFail, // an accuracy delta exceeds its per-figure tolerance
    New,          // scenario absent from the baseline (informational)
    Missing,      // baseline scenario absent from this run (informational)
};

const char* verdict_name(VerdictKind kind);

struct Verdict {
    std::string scenario;
    VerdictKind kind = VerdictKind::Pass;
    double baseline_median_s = 0.0;
    double median_s = 0.0;
    double change_pct = 0.0; // (new - old) / old * 100
    std::string detail;
};

/// Accuracy-only verdicts (no baseline): AccuracyFail / Pass per scenario.
std::vector<Verdict> accuracy_verdicts(const std::vector<ScenarioResult>& results);

/// Full gate: accuracy tolerances plus median-runtime comparison against a
/// parsed baseline BENCH_*.json at `fail_pct` percent.  Accepts baselines
/// with schema_version 1..kBenchSchemaVersion; raises on anything else.
std::vector<Verdict> compare_to_baseline(const Json& baseline,
                                         const std::vector<ScenarioResult>& results,
                                         double fail_pct);

/// False when any verdict is Regress or AccuracyFail.
bool gate_passes(const std::vector<Verdict>& verdicts);

/// Human-readable verdict table.
std::string verdict_table(const std::vector<Verdict>& verdicts);

} // namespace snim::obs
