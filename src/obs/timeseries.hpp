// Time-series channels: the obs registry's third data kind, next to counters
// and value histograms.  A channel records (time, value) samples — solver
// health per accepted transient step, residual per Newton iteration, pivot
// magnitude per factorization — into a fixed-capacity decimating buffer, so
// a million-step transient costs bounded memory while the recorded shape of
// the run survives.
//
// Decimation policy: each channel keeps at most kTimeSeriesCapacity samples.
// When the buffer fills, every second stored sample is dropped in place and
// the acceptance stride doubles, so older history thins out uniformly while
// recent samples stay dense-ish.  Invariants the snapshot guarantees:
//
//   * the FIRST sample ever offered is always present,
//   * the LAST sample ever offered is always present (appended on snapshot
//     when the stride skipped it),
//   * time stays monotone non-decreasing when the producer's time is.
//
// Like every other obs entry point, appends are no-ops while the registry is
// disabled and the whole API collapses to inline no-ops under
// -DSNIM_ENABLE_OBS=OFF.  Non-finite values are never stored: they bump the
// "obs/ts_nonfinite_dropped" counter instead, so NaN telemetry cannot
// corrupt a VCD or trace file (the engines raise a structured diagnostic on
// non-finite *solution* data before it ever reaches a channel).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"

namespace snim::obs {

/// Hard per-channel sample budget after decimation.
inline constexpr size_t kTimeSeriesCapacity = 4096;

/// Snapshot of one channel.
struct TimeSeries {
    std::string name;
    std::string unit;           // free-form ("iters", "V", "1"), set on first append
    std::vector<double> time;   // sample abscissa (seconds, iteration index, Hz...)
    std::vector<double> value;
    uint64_t offered = 0;       // samples offered, before decimation
    uint64_t stride = 1;        // final acceptance stride (1 = nothing dropped)
};

#if SNIM_OBS_ENABLED

/// Appends one sample to the named channel (created on first use).  `unit`
/// is recorded the first time it is non-empty.
void ts_append(std::string_view channel, double t, double value,
               std::string_view unit = {});

/// Snapshot of one channel; nullopt when it does not exist.
std::optional<TimeSeries> ts_get(std::string_view channel);

/// Snapshots of every channel, sorted by name.
std::vector<TimeSeries> ts_snapshot();

/// Drops every channel (obs::reset() calls this too).
void ts_reset();

#else // SNIM_OBS_ENABLED — compiled out.

inline void ts_append(std::string_view, double, double, std::string_view = {}) {}
inline std::optional<TimeSeries> ts_get(std::string_view) { return {}; }
inline std::vector<TimeSeries> ts_snapshot() { return {}; }
inline void ts_reset() {}

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
