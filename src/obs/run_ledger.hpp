// Append-only run ledger: one JSON line per completed benchmark run.
//
// The ledger is the repo's trajectory: `snim_bench --ledger ledger.jsonl`
// appends a compact summary of every run (manifest + per-scenario runtime,
// accuracy, peak RSS, key counters and the phase tree), and `snim_report
// trend ledger.jsonl` renders the per-scenario history as sparklines and a
// collapsible flame view.  JSONL because append is atomic enough for CI
// (one write per run, O_APPEND), is trivially mergeable across machines
// (cat), and keeps partial-file damage local to one line — read_ledger
// reports the offending line number instead of losing the file.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace snim::obs {

/// Version of the ledger-entry layout.
inline constexpr int kLedgerSchemaVersion = 1;

/// Distills a BENCH_*.json document (schema 1 or 2) into one ledger entry:
/// { schema_version, manifest, scenarios: [ { name, kind, median_s, min_s,
///   accuracy: [...], accuracy_max_db, accuracy_pass, peak_rss_bytes,
///   counters: {...}, phases: [...] } ] }.
/// Schema-1 reports (no manifest, no RSS) produce entries with those
/// members absent — trend rendering degrades gracefully.
Json ledger_entry_from_report(const Json& bench_report);

/// Appends `entry` as one line to `path` (created when missing); raises on
/// I/O failure or a non-object entry.
void append_ledger(const std::string& path, const Json& entry);

/// Reads every non-blank line of `path` as one JSON entry; raises naming
/// the line number on a parse failure, or on open failure.
std::vector<Json> read_ledger(const std::string& path);

} // namespace snim::obs
