#include "obs/vcd.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/provenance.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace snim::obs {

namespace {

void check_signals(const std::vector<WaveSignal>& signals) {
    if (signals.empty()) raise("vcd: no signals to export");
    for (size_t i = 0; i < signals.size(); ++i) {
        const WaveSignal& s = signals[i];
        if (s.name.empty()) raise("vcd: signal %zu has no name", i);
        if (s.time.size() != s.value.size())
            raise("vcd: signal '%s' has %zu times but %zu values", s.name.c_str(),
                  s.time.size(), s.value.size());
        for (size_t k = 1; k < s.time.size(); ++k)
            if (s.time[k] < s.time[k - 1])
                raise("vcd: signal '%s' time runs backwards at sample %zu",
                      s.name.c_str(), k);
        for (size_t j = 0; j < i; ++j)
            if (signals[j].name == s.name)
                raise("vcd: duplicate signal name '%s'", s.name.c_str());
    }
}

/// Short printable identifier codes: !, ", #, ... then two-char codes.
std::string id_code(size_t index) {
    std::string id;
    do {
        id += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return id;
}

/// VCD identifiers must not contain whitespace; everything else passes
/// through (GTKWave treats '.' as hierarchy, which reads nicely for the
/// '/'-separated channel names).
std::string vcd_name(const std::string& name) {
    std::string out = name;
    for (char& c : out)
        if (c == ' ' || c == '\t' || c == '/') c = '.';
    return out;
}

double auto_timescale(const std::vector<WaveSignal>& signals) {
    double min_dt = 1.0; // fall back to 1us ticks for single-sample signals
    for (const auto& s : signals)
        for (size_t k = 1; k < s.time.size(); ++k) {
            const double dt = s.time[k] - s.time[k - 1];
            if (dt > 0.0) min_dt = std::min(min_dt, dt);
        }
    for (double scale : {1e-6, 1e-9, 1e-12})
        if (min_dt >= scale) return scale;
    return 1e-15;
}

const char* timescale_label(double scale) {
    if (scale == 1e-6) return "1 us";
    if (scale == 1e-9) return "1 ns";
    if (scale == 1e-12) return "1 ps";
    if (scale == 1e-15) return "1 fs";
    return nullptr;
}

} // namespace

std::string vcd_document(const std::vector<WaveSignal>& signals, double timescale_s) {
    check_signals(signals);
    if (timescale_s <= 0.0) timescale_s = auto_timescale(signals);
    const char* label = timescale_label(timescale_s);
    if (!label) raise("vcd: timescale %g s is not one of 1us/1ns/1ps/1fs", timescale_s);

    std::ostringstream out;
    out << "$comment snim waveform export $end\n";
    // Provenance comments: which run and configuration produced this dump.
    // Parsers (including ours) skip $comment blocks, so this is additive.
    if (auto m = current_manifest()) {
        out << "$comment run " << m->run_id << " $end\n";
        out << "$comment config " << m->config_digest << " $end\n";
    }
    out << "$timescale " << label << " $end\n";
    out << "$scope module snim $end\n";
    for (size_t i = 0; i < signals.size(); ++i) {
        out << "$var real 64 " << id_code(i) << " " << vcd_name(signals[i].name)
            << " $end\n";
        if (!signals[i].unit.empty())
            out << "$comment unit " << id_code(i) << " " << signals[i].unit
                << " $end\n";
    }
    out << "$upscope $end\n$enddefinitions $end\n";

    // Merge every signal's samples onto one non-decreasing tick axis.
    struct Change {
        long long tick;
        size_t signal;
        size_t sample;
    };
    std::vector<Change> changes;
    for (size_t i = 0; i < signals.size(); ++i)
        for (size_t k = 0; k < signals[i].time.size(); ++k)
            changes.push_back({std::llround(signals[i].time[k] / timescale_s), i, k});
    std::stable_sort(changes.begin(), changes.end(),
                     [](const Change& a, const Change& b) { return a.tick < b.tick; });

    long long current = -1;
    char buf[64];
    for (const Change& c : changes) {
        if (c.tick != current) {
            out << "#" << c.tick << "\n";
            current = c.tick;
        }
        std::snprintf(buf, sizeof buf, "%.17g", signals[c.signal].value[c.sample]);
        out << "r" << buf << " " << id_code(c.signal) << "\n";
    }
    return out.str();
}

void write_vcd(const std::string& path, const std::vector<WaveSignal>& signals,
               double timescale_s) {
    // Atomic publish: waveform viewers (and resume-time bit-compares) never
    // see a half-written dump.
    util::write_file_atomic(path, vcd_document(signals, timescale_s));
}

std::vector<WaveSignal> parse_vcd(const std::string& document) {
    std::vector<WaveSignal> signals;
    std::vector<std::string> ids; // ids[i] identifies signals[i]
    double timescale = 0.0;
    double now = 0.0;

    std::istringstream in(document);
    std::string line;
    auto find_signal = [&](const std::string& id) -> WaveSignal* {
        for (size_t i = 0; i < ids.size(); ++i)
            if (ids[i] == id) return &signals[i];
        return nullptr;
    };
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tok;
        if (!(ls >> tok)) continue;
        if (tok == "$timescale") {
            std::string mag, unit;
            ls >> mag >> unit;
            if (unit == "$end") { // "1ps" written without a space
                unit = mag.substr(mag.find_first_not_of("0123456789"));
                mag = mag.substr(0, mag.size() - unit.size());
            }
            const double m = std::atof(mag.c_str());
            double u = 0.0;
            if (unit == "s") u = 1.0;
            else if (unit == "ms") u = 1e-3;
            else if (unit == "us") u = 1e-6;
            else if (unit == "ns") u = 1e-9;
            else if (unit == "ps") u = 1e-12;
            else if (unit == "fs") u = 1e-15;
            else raise("vcd parse: unknown timescale unit '%s'", unit.c_str());
            timescale = m * u;
            if (timescale <= 0.0) raise("vcd parse: bad timescale '%s %s'",
                                        mag.c_str(), unit.c_str());
        } else if (tok == "$var") {
            std::string type, width, id, name;
            ls >> type >> width >> id >> name;
            if (type != "real") raise("vcd parse: unsupported var type '%s'",
                                      type.c_str());
            WaveSignal s;
            s.name = name;
            signals.push_back(std::move(s));
            ids.push_back(id);
        } else if (tok[0] == '#') {
            if (timescale <= 0.0) raise("vcd parse: value change before $timescale");
            now = std::atof(tok.c_str() + 1) * timescale;
        } else if (tok[0] == 'r') {
            std::string id;
            ls >> id;
            WaveSignal* s = find_signal(id);
            if (!s) raise("vcd parse: value change for unknown id '%s'", id.c_str());
            s->time.push_back(now);
            s->value.push_back(std::atof(tok.c_str() + 1));
        }
        // $comment/$scope/$upscope/$enddefinitions and b/x changes: ignored.
    }
    if (signals.empty()) raise("vcd parse: no $var declarations found");
    return signals;
}

std::vector<WaveSignal> read_vcd(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) raise("cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_vcd(buf.str());
}

void write_wave_csv(const std::string& path, const std::vector<WaveSignal>& signals) {
    check_signals(signals);
    std::vector<double> axis;
    for (const auto& s : signals) axis.insert(axis.end(), s.time.begin(), s.time.end());
    std::sort(axis.begin(), axis.end());
    axis.erase(std::unique(axis.begin(), axis.end()), axis.end());

    std::string out = "time";
    for (const auto& s : signals) out += "," + s.name;
    out += '\n';
    std::vector<size_t> cursor(signals.size(), 0);
    char buf[64];
    for (double t : axis) {
        std::snprintf(buf, sizeof buf, "%.17g", t);
        out += buf;
        for (size_t i = 0; i < signals.size(); ++i) {
            const WaveSignal& s = signals[i];
            while (cursor[i] < s.time.size() && s.time[cursor[i]] <= t) ++cursor[i];
            if (cursor[i] == 0) {
                out += ','; // not yet sampled
            } else {
                std::snprintf(buf, sizeof buf, ",%.17g", s.value[cursor[i] - 1]);
                out += buf;
            }
        }
        out += '\n';
    }
    util::write_file_atomic(path, out);
}

WaveSignal wave_from_timeseries(const TimeSeries& ts) {
    WaveSignal s;
    s.name = ts.name;
    s.unit = ts.unit;
    s.value = ts.value;
    bool monotone = true;
    for (size_t k = 1; k < ts.time.size(); ++k)
        if (ts.time[k] < ts.time[k - 1]) {
            monotone = false;
            break;
        }
    if (monotone) {
        s.time = ts.time;
    } else {
        s.time.resize(ts.time.size());
        for (size_t k = 0; k < s.time.size(); ++k) s.time[k] = static_cast<double>(k);
        if (!s.unit.empty()) s.unit += " (index axis)";
    }
    return s;
}

} // namespace snim::obs
