// Waveform export: VCD (IEEE 1364 value-change dump, real-valued vars) and
// CSV writers plus a small VCD reader for round-trip checks.
//
// This is how "waveforms at every substrate-interface node and circuit
// node" — the paper's deliverable — leave the process: transient probe
// waves and solver-health time-series channels become signals a designer
// opens in GTKWave / Surfer, or greps as CSV.  Signals carry independent
// time axes (a solver channel samples per accepted step, a probe per
// recorded stride); the writers merge them onto one monotone axis.
//
// Unlike the rest of obs/, this module has no registry dependency and is
// always compiled: waveform export must work under -DSNIM_ENABLE_OBS=OFF
// too (TranResult waves exist regardless of instrumentation).
#pragma once

#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace snim::obs {

/// One real-valued signal with its own (monotone non-decreasing) time axis.
struct WaveSignal {
    std::string name;           // "vgnd_dev", "sim/transient/newton_iters"
    std::string unit;           // optional; becomes a VCD comment
    std::vector<double> time;   // seconds
    std::vector<double> value;
};

/// Builds the VCD document.  `timescale_s` is the tick length in seconds;
/// <= 0 picks one automatically (the largest of 1fs/1ps/1ns/1us that still
/// resolves the smallest time delta).  Raises on an empty signal list, a
/// name used twice, size-mismatched time/value vectors or time running
/// backwards within a signal.
std::string vcd_document(const std::vector<WaveSignal>& signals,
                         double timescale_s = 0.0);

/// Writes `vcd_document(signals, timescale_s)` to `path`; raises on I/O
/// failure.
void write_vcd(const std::string& path, const std::vector<WaveSignal>& signals,
               double timescale_s = 0.0);

/// Parses a VCD document produced by vcd_document (real vars, one scope).
/// Returns the signals with time in seconds, in declaration order.
std::vector<WaveSignal> parse_vcd(const std::string& document);

/// Reads and parses a VCD file; raises on I/O failure.
std::vector<WaveSignal> read_vcd(const std::string& path);

/// Writes the signals as CSV: a merged "time" column plus one column per
/// signal.  Between a signal's samples its last value is held; cells before
/// its first sample are empty.  Raises on I/O failure or invalid signals.
void write_wave_csv(const std::string& path, const std::vector<WaveSignal>& signals);

/// Converts a time-series channel snapshot into a wave signal.  A channel
/// whose abscissa is not monotone (solver channels restart their clock on
/// every engine run within a scenario) falls back to the sample index so
/// the result is always VCD-exportable.
WaveSignal wave_from_timeseries(const TimeSeries& ts);

} // namespace snim::obs
