// Hang watchdog: a monitor thread that notices when the solver stops
// making forward progress and says so while the process is still alive.
//
// "Progress" is the real-clock activity timestamp maintained by obs/progress
// (every ProgressScope open/advance and note_progress_activity() call).
// The watchdog ages it on a dedicated thread:
//
//   age >= stall_s  ->  one {"comp":"watchdog","code":"stall"} journal
//                       event carrying the live phase stacks, innermost
//                       progress scope and pool size — enough to tell a
//                       slow Newton ladder from a deadlock;
//   age >= hang_s   ->  a full snim_watchdog_*.json bundle (manifest,
//                       event-journal tail, phase stacks, registry
//                       snapshot, RSS) and, when abort_on_hang is set, a
//                       deliberate std::abort() so CI jobs fail loudly
//                       with the bundle on disk instead of timing out;
//   recovery        ->  {"code":"recovered"} once activity resumes.
//
// hang_s defaults to 4 * stall_s.  Starting the watchdog activates the
// event journal and phase-stack tracking (there is nothing to report
// otherwise).  The activity clock is always the real monotonic clock —
// set_heartbeat_clock() fakes cannot trip or mask a stall.
//
// Env: SNIM_WATCHDOG=stall_s[,hang_s[,abort]] (see events.hpp
// init_live_from_env).  Compiled out to inline no-ops with the rest of the
// obs layer under -DSNIM_ENABLE_OBS=OFF.
#pragma once

#include <cstdint>
#include <string>

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif

namespace snim::obs {

struct WatchdogOptions {
    double stall_s = 30.0;    // quiet seconds before a stall event
    double hang_s = 0.0;      // quiet seconds before a bundle; 0 = 4*stall_s
    bool abort_on_hang = false;
    std::string bundle_dir;   // "" = current directory
};

#if SNIM_OBS_ENABLED

/// Starts (or reconfigures) the monitor thread.  Raises snim::Error on
/// non-positive stall_s.  Idempotent per configuration; activates the
/// event journal and phase-stack tracking.
void start_watchdog(const WatchdogOptions& options = {});

/// Stops and joins the monitor thread.  Safe when not running.
void stop_watchdog();

bool watchdog_running();

/// Stall events emitted since process start (recoveries do not reset it).
uint64_t watchdog_stall_count();

/// Path of the most recent hang bundle ("" when none was written).
std::string last_watchdog_bundle();

#else // SNIM_OBS_ENABLED — compiled out: inline no-ops.

inline void start_watchdog(const WatchdogOptions& = {}) {}
inline void stop_watchdog() {}
inline bool watchdog_running() { return false; }
inline uint64_t watchdog_stall_count() { return 0; }
inline std::string last_watchdog_bundle() { return {}; }

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
