#include "obs/certify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>

#include "util/error.hpp"

#if SNIM_OBS_ENABLED
#include <atomic>

#include "obs/events.hpp"
#include "obs/registry.hpp"
#endif

namespace snim::obs {

void validate_certify_options(const CertifyOptions& opt, const char* engine) {
    if (!(opt.omega_max > 0.0) || !std::isfinite(opt.omega_max))
        raise("%s options: certify.omega_max must be finite and > 0 (got %g)",
              engine, opt.omega_max);
    if (!(opt.rcond_min >= 0.0) || !std::isfinite(opt.rcond_min))
        raise("%s options: certify.rcond_min must be finite and >= 0 (got %g)",
              engine, opt.rcond_min);
    if (opt.rcond_min >= 1.0)
        raise("%s options: certify.rcond_min must be < 1 (got %g) — rcond is "
              "a reciprocal condition number",
              engine, opt.rcond_min);
    if (opt.max_refine_steps < 0 || opt.max_refine_steps > 16)
        raise("%s options: certify.max_refine_steps must be in [0, 16] (got %d)",
              engine, opt.max_refine_steps);
    if (opt.stride < 1)
        raise("%s options: certify.stride must be >= 1 (got %d)", engine,
              opt.stride);
}

#if SNIM_OBS_ENABLED

namespace {

/// Margins are clamped to +-400 dB so exact zeros (a stage that contributed
/// no error at all) stay plottable and diffable instead of going to -inf.
constexpr double kMarginClampDb = 400.0;

double margin_db_of(double value, double threshold, bool higher_is_worse) {
    const double num = higher_is_worse ? value : threshold;
    const double den = higher_is_worse ? threshold : value;
    if (!(num > 0.0)) return -kMarginClampDb; // no error contribution (or NaN)
    if (!(den > 0.0)) return kMarginClampDb;  // zero/invalid budget: over by definition
    const double db = 20.0 * std::log10(num / den);
    if (!std::isfinite(db)) return db > 0.0 ? kMarginClampDb : -kMarginClampDb;
    return std::clamp(db, -kMarginClampDb, kMarginClampDb);
}

/// One mutable ledger row; threshold/unit/direction are fixed by the first
/// update of a stage so concurrent updates stay commutative.
struct LedgerRow {
    std::string unit;
    double worst = 0.0;
    double threshold = 0.0;
    bool higher_is_worse = true;
    uint64_t samples = 0;
    uint64_t breaches = 0;
    std::string detail;
};

struct Ledger {
    std::mutex mu;
    std::map<std::string, LedgerRow> rows;

    // Aggregate certificate summary across every certified solve.
    uint64_t cert_solves = 0;
    uint64_t cert_breaches = 0;
    uint64_t cert_refine_steps = 0;
    double worst_omega = 0.0;
    double min_rcond = std::numeric_limits<double>::infinity();
};

Ledger& ledger() {
    static Ledger l;
    return l;
}

std::atomic<uint64_t> g_breach_count{0};

} // namespace

void budget_update(std::string_view stage, double value, double threshold,
                   std::string_view unit, bool higher_is_worse,
                   std::string_view detail) {
    if (!enabled()) return;
    Ledger& l = ledger();
    std::lock_guard<std::mutex> lock(l.mu);
    auto [it, fresh] = l.rows.try_emplace(std::string(stage));
    LedgerRow& row = it->second;
    if (fresh) {
        row.unit = std::string(unit);
        row.threshold = threshold;
        row.higher_is_worse = higher_is_worse;
        row.worst = value;
        row.detail = std::string(detail);
    } else {
        // Strict improvement replaces; an exact tie keeps the lexicographically
        // smaller detail, so the aggregate is independent of update order.
        const bool worse = row.higher_is_worse ? value > row.worst
                                               : value < row.worst;
        if (worse || (value == row.worst && detail < row.detail)) {
            row.worst = value;
            row.detail = std::string(detail);
        }
    }
    ++row.samples;
    if (margin_db_of(value, row.threshold, row.higher_is_worse) > 0.0)
        ++row.breaches;
}

std::vector<BudgetEntry> budget_snapshot() {
    std::vector<BudgetEntry> out;
    Ledger& l = ledger();
    std::lock_guard<std::mutex> lock(l.mu);
    out.reserve(l.rows.size());
    for (const auto& [stage, row] : l.rows) {
        BudgetEntry e;
        e.stage = stage;
        e.unit = row.unit;
        e.worst = row.worst;
        e.threshold = row.threshold;
        e.higher_is_worse = row.higher_is_worse;
        e.margin_db = margin_db_of(row.worst, row.threshold, row.higher_is_worse);
        e.samples = row.samples;
        e.breaches = row.breaches;
        e.detail = row.detail;
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(), [](const BudgetEntry& a, const BudgetEntry& b) {
        if (a.margin_db != b.margin_db) return a.margin_db > b.margin_db;
        return a.stage < b.stage;
    });
    return out;
}

Json budget_json() {
    JsonArray arr;
    for (const BudgetEntry& e : budget_snapshot()) {
        JsonObject o;
        o.emplace("stage", e.stage);
        o.emplace("unit", e.unit);
        o.emplace("worst", e.worst);
        o.emplace("threshold", e.threshold);
        o.emplace("margin_db", e.margin_db);
        o.emplace("higher_is_worse", e.higher_is_worse);
        o.emplace("samples", e.samples);
        o.emplace("breaches", e.breaches);
        if (!e.detail.empty()) o.emplace("detail", e.detail);
        arr.emplace_back(std::move(o));
    }
    return Json(std::move(arr));
}

Json certificate_summary_json() {
    Ledger& l = ledger();
    std::lock_guard<std::mutex> lock(l.mu);
    JsonObject o;
    if (l.cert_solves == 0) return Json(std::move(o));
    o.emplace("solves", l.cert_solves);
    o.emplace("breaches", l.cert_breaches);
    o.emplace("refinement_steps", l.cert_refine_steps);
    o.emplace("worst_omega", l.worst_omega);
    o.emplace("min_rcond",
              std::isfinite(l.min_rcond) ? l.min_rcond : 0.0);
    return Json(std::move(o));
}

void budget_reset() {
    Ledger& l = ledger();
    std::lock_guard<std::mutex> lock(l.mu);
    l.rows.clear();
    l.cert_solves = 0;
    l.cert_breaches = 0;
    l.cert_refine_steps = 0;
    l.worst_omega = 0.0;
    l.min_rcond = std::numeric_limits<double>::infinity();
    g_breach_count.store(0, std::memory_order_relaxed);
}

void record_certificate(const char* component, const SolveCertificate& cert,
                        const CertifyOptions& opt) {
    if (!enabled()) return;
    // A non-finite omega (inconsistent zero row, NaN residual) is folded in
    // as "worst representable" so it ranks at the top instead of vanishing.
    const double omega = std::isfinite(cert.omega)
                             ? cert.omega
                             : std::numeric_limits<double>::max();
    count("numeric/solve_certificates");
    if (cert.refine_steps > 0)
        count("numeric/ir_refinement_steps",
              static_cast<uint64_t>(cert.refine_steps));
    record_value("numeric/cert_omega", omega);
    record_value("numeric/cert_rcond", cert.rcond);

    const std::string site(component);
    budget_update("numeric/" + site + "/omega", omega, opt.omega_max, "1",
                  /*higher_is_worse=*/true,
                  cert.fault_injected ? "fault_injected" : std::string_view{});
    // rcond_min == 0 means the caller disabled the condition gate (ablation
    // runs whose conductance spread collapses the estimate by construction);
    // a disabled gate makes no budget claim, so those samples must not drag
    // the stage's worst below the threshold the gated solves are held to.
    if (opt.rcond_min > 0.0)
        budget_update("numeric/" + site + "/rcond", cert.rcond, opt.rcond_min,
                      "1", /*higher_is_worse=*/false);

    {
        Ledger& l = ledger();
        std::lock_guard<std::mutex> lock(l.mu);
        ++l.cert_solves;
        if (cert.breach) ++l.cert_breaches;
        l.cert_refine_steps += static_cast<uint64_t>(cert.refine_steps);
        l.worst_omega = std::max(l.worst_omega, omega);
        l.min_rcond = std::min(l.min_rcond, cert.rcond);
    }

    if (cert.breach) {
        count("numeric/cert_breaches");
        g_breach_count.fetch_add(1, std::memory_order_relaxed);
        event(EventLevel::Warn, "numeric", "cert_breach",
              {{"site", component},
               {"omega", omega},
               {"omega_max", opt.omega_max},
               {"rcond", cert.rcond},
               {"rcond_min", opt.rcond_min},
               {"refine_steps", cert.refine_steps},
               {"fault_injected", cert.fault_injected}});
    }
}

uint64_t certificate_breach_count() {
    return g_breach_count.load(std::memory_order_relaxed);
}

BudgetState budget_state() {
    BudgetState st;
    Ledger& l = ledger();
    std::lock_guard<std::mutex> lock(l.mu);
    st.rows.reserve(l.rows.size());
    for (const auto& [stage, row] : l.rows) {
        BudgetState::Row r;
        r.stage = stage;
        r.unit = row.unit;
        r.detail = row.detail;
        r.worst = row.worst;
        r.threshold = row.threshold;
        r.higher_is_worse = row.higher_is_worse;
        r.samples = row.samples;
        r.breaches = row.breaches;
        st.rows.push_back(std::move(r));
    }
    st.cert_solves = l.cert_solves;
    st.cert_breaches = l.cert_breaches;
    st.cert_refine_steps = l.cert_refine_steps;
    st.worst_omega = l.worst_omega;
    st.min_rcond = std::isfinite(l.min_rcond) ? l.min_rcond : 0.0;
    st.breach_events = g_breach_count.load(std::memory_order_relaxed);
    return st;
}

void budget_restore(const BudgetState& st) {
    Ledger& l = ledger();
    std::lock_guard<std::mutex> lock(l.mu);
    for (const auto& r : st.rows) {
        auto [it, fresh] = l.rows.try_emplace(r.stage);
        LedgerRow& row = it->second;
        if (fresh) {
            row.unit = r.unit;
            row.threshold = r.threshold;
            row.higher_is_worse = r.higher_is_worse;
            row.worst = r.worst;
            row.detail = r.detail;
            row.samples = r.samples;
            row.breaches = r.breaches;
            continue;
        }
        const bool worse = row.higher_is_worse ? r.worst > row.worst
                                               : r.worst < row.worst;
        if (worse || (r.worst == row.worst && r.detail < row.detail)) {
            row.worst = r.worst;
            row.detail = r.detail;
        }
        row.samples = std::max(row.samples, r.samples);
        row.breaches = std::max(row.breaches, r.breaches);
    }
    l.cert_solves = std::max(l.cert_solves, st.cert_solves);
    l.cert_breaches = std::max(l.cert_breaches, st.cert_breaches);
    l.cert_refine_steps = std::max(l.cert_refine_steps, st.cert_refine_steps);
    l.worst_omega = std::max(l.worst_omega, st.worst_omega);
    if (st.min_rcond > 0.0) l.min_rcond = std::min(l.min_rcond, st.min_rcond);
    uint64_t prev = g_breach_count.load(std::memory_order_relaxed);
    while (prev < st.breach_events &&
           !g_breach_count.compare_exchange_weak(prev, st.breach_events,
                                                 std::memory_order_relaxed)) {
    }
}

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
