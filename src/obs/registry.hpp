// Observability registry: named monotonic counters, value histograms and
// hierarchical phase accumulators shared by the whole library.
//
// Design goals, in order:
//   1. Near-zero overhead when disabled: every recording entry point loads
//      one relaxed atomic and returns.  Hot paths (sparse LU, transient
//      stepping) can therefore stay instrumented unconditionally.
//   2. Thread-safe: all mutation goes through one registry mutex; the
//      enabled flag is atomic.  Extraction and simulation are currently
//      single-threaded but the ROADMAP points at sharded/batched flows.
//   3. Compile-out: configure with -DSNIM_ENABLE_OBS=OFF and the whole
//      subsystem collapses to inline no-ops (see the #else branch below),
//      proving no functional dependency on the instrumentation.
//
// Phase names use '/'-separated paths ("sim/transient/newton"); the path
// segments define the phase tree reported by obs/report.  Counter and
// histogram names use the same convention for grouping only.
//
// Enabling: obs::set_enabled(true), or the SNIM_OBS environment variable
// (read once, on first registry use):
//   SNIM_OBS=0 / off / (unset)  -> disabled
//   SNIM_OBS=1 / on / text      -> enabled, text report to stderr at exit
//   SNIM_OBS=json               -> enabled, JSON report written at exit to
//                                  SNIM_OBS_FILE (default snim_obs_report.json)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#ifndef SNIM_OBS_ENABLED
#define SNIM_OBS_ENABLED 1
#endif

namespace snim::obs {

/// Where the end-of-process report goes when driven by SNIM_OBS.
enum class ReportMode { None, Text, Json };

/// Aggregate statistics of one value histogram.
struct ValueStats {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
};

/// One phase accumulator: inclusive wall time and number of enter/exit
/// pairs, plus resident-set attribution for phases whose ScopedTimer was
/// constructed with Rss::Track (rss_samples == 0 means never sampled).
struct PhaseStats {
    uint64_t calls = 0;
    double seconds = 0.0;
    uint64_t rss_samples = 0;    // tracked enter/exit pairs
    int64_t rss_delta_bytes = 0; // summed RSS growth across tracked calls
    uint64_t rss_peak_bytes = 0; // max process high-water mark observed
};

/// Node of the phase tree derived from '/'-separated phase names.  A node
/// with calls == 0 is structural only (an interior path segment that was
/// never timed itself).
struct PhaseNode {
    std::string name;                // last path segment
    std::string path;                // full '/'-joined path
    uint64_t calls = 0;
    double seconds = 0.0;            // inclusive wall time of this phase
    uint64_t rss_samples = 0;        // memory attribution (see PhaseStats)
    int64_t rss_delta_bytes = 0;
    uint64_t rss_peak_bytes = 0;
    std::vector<PhaseNode> children; // sorted by name
};

#if SNIM_OBS_ENABLED

/// True when the registry records; checked by every entry point.
bool enabled();
void set_enabled(bool on);

/// Report destination requested via SNIM_OBS (None when disabled or unset).
ReportMode report_mode();

/// Adds `delta` to the named monotonic counter.
void count(std::string_view name, uint64_t delta = 1);

/// Records one sample of the named value histogram.
void record_value(std::string_view name, double value);

/// Accumulates one completed phase interval (normally via ScopedTimer).
void record_phase(std::string_view name, double seconds);

/// Attributes one memory sample pair to a phase: the RSS growth over the
/// interval and the process peak observed at its end (ScopedTimer with
/// Rss::Track records this next to the wall time).
void record_phase_rss(std::string_view name, int64_t delta_bytes,
                      uint64_t peak_bytes);

/// Current value of a counter; 0 when absent.
uint64_t counter_value(std::string_view name);

/// Stats of a histogram; nullopt when absent.
std::optional<ValueStats> value_stats(std::string_view name);

/// Accumulated stats of a phase; zero-initialised when absent.
PhaseStats phase_stats(std::string_view name);
double phase_seconds(std::string_view name);
uint64_t phase_calls(std::string_view name);

/// Snapshots, sorted by name, for reporting.
std::vector<std::pair<std::string, uint64_t>> counters_snapshot();
std::vector<std::pair<std::string, ValueStats>> values_snapshot();
std::vector<std::pair<std::string, PhaseStats>> phases_snapshot();

/// The phase tree implied by the '/'-separated phase names.  The root is a
/// structural node with empty name holding the top-level phases.
PhaseNode phase_tree();

/// Clears every counter, histogram and phase (the enabled flag is kept).
void reset();

/// Buffers the recording calls one parallel task makes so they can be
/// applied to the registry later, in deterministic task order.  Used by
/// obs::parallel_tasks: each worker records through a CaptureScope, and the
/// sweep owner commits the captures in index order after joining — the
/// registry then holds exactly what a serial run would have produced,
/// independent of thread count and scheduling.
class TaskCapture {
public:
    TaskCapture() = default;
    TaskCapture(TaskCapture&&) = default;
    TaskCapture& operator=(TaskCapture&&) = default;

    /// Replays the buffered operations into the registry (or into the
    /// calling thread's own active capture, which is what makes nested
    /// parallel regions compose).  Clears the buffer.
    void commit();

    bool empty() const { return ops_.empty(); }

private:
    friend class CaptureScope;
    friend struct CaptureAccess; // registry.cpp internals
    struct Op {
        enum Kind : uint8_t { Count, Value, Phase, PhaseRss, Ts };
        Kind kind = Count;
        std::string name;
        double a = 0.0;     // value sample / phase seconds / rss delta / ts time
        double b = 0.0;     // rss peak / ts value
        uint64_t delta = 0; // counter delta
        std::string unit;   // ts unit
    };
    std::vector<Op> ops_;
};

/// RAII: while alive, every obs recording made on THIS thread goes into the
/// given TaskCapture instead of the registry.  Scopes nest per thread (the
/// previous capture is restored on destruction).
class CaptureScope {
public:
    explicit CaptureScope(TaskCapture& cap);
    ~CaptureScope();
    CaptureScope(const CaptureScope&) = delete;
    CaptureScope& operator=(const CaptureScope&) = delete;

private:
    TaskCapture* prev_;
};

namespace detail {
/// Recording-entry-point hooks: route one operation into the thread's
/// active capture; false when none is active (record into the registry).
bool capture_count(std::string_view name, uint64_t delta);
bool capture_value(std::string_view name, double value);
bool capture_phase(std::string_view name, double seconds);
bool capture_phase_rss(std::string_view name, int64_t delta_bytes, uint64_t peak_bytes);
bool capture_ts(std::string_view channel, double t, double value, std::string_view unit);
} // namespace detail

#else // SNIM_OBS_ENABLED — compiled out: inline no-ops.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline ReportMode report_mode() { return ReportMode::None; }
inline void count(std::string_view, uint64_t = 1) {}
inline void record_value(std::string_view, double) {}
inline void record_phase(std::string_view, double) {}
inline void record_phase_rss(std::string_view, int64_t, uint64_t) {}
inline uint64_t counter_value(std::string_view) { return 0; }
inline std::optional<ValueStats> value_stats(std::string_view) { return {}; }
inline PhaseStats phase_stats(std::string_view) { return {}; }
inline double phase_seconds(std::string_view) { return 0.0; }
inline uint64_t phase_calls(std::string_view) { return 0; }
inline std::vector<std::pair<std::string, uint64_t>> counters_snapshot() { return {}; }
inline std::vector<std::pair<std::string, ValueStats>> values_snapshot() { return {}; }
inline std::vector<std::pair<std::string, PhaseStats>> phases_snapshot() { return {}; }
inline PhaseNode phase_tree() { return {}; }
inline void reset() {}

class TaskCapture {
public:
    void commit() {}
    bool empty() const { return true; }
};

class CaptureScope {
public:
    explicit CaptureScope(TaskCapture&) {}
    CaptureScope(const CaptureScope&) = delete;
    CaptureScope& operator=(const CaptureScope&) = delete;
};

namespace detail {
inline bool capture_count(std::string_view, uint64_t) { return false; }
inline bool capture_value(std::string_view, double) { return false; }
inline bool capture_phase(std::string_view, double) { return false; }
inline bool capture_phase_rss(std::string_view, int64_t, uint64_t) { return false; }
inline bool capture_ts(std::string_view, double, double, std::string_view) { return false; }
} // namespace detail

#endif // SNIM_OBS_ENABLED

} // namespace snim::obs
