#include "obs/lastgasp.hpp"

#if SNIM_OBS_ENABLED

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <exception>
#include <mutex>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/phasestack.hpp"
#include "obs/provenance.hpp"
#include "util/error.hpp"

namespace snim::obs {

namespace {

// Handler-visible state.  The fd and header are written at install time
// (normal code) and only read inside the handler; both are plain enough
// that a relaxed atomic fd plus a fixed char buffer suffice.
std::atomic<int> g_fd{-1};
std::atomic<bool> g_fired{false};
char g_header[256];        // {"last_gasp":{"reason":"  ...prerendered prefix
size_t g_header_len = 0;   // length of the prefix up to the reason value
char g_trailer[256];       // ","run_id":"..."}}\n  ...prerendered suffix
size_t g_trailer_len = 0;

std::mutex g_install_mutex; // serialises install/uninstall (not the handler)
std::string g_path;
std::terminate_handler g_prev_terminate = nullptr;
bool g_installed = false;

constexpr int kSignals[] = {SIGSEGV, SIGABRT, SIGFPE, SIGBUS, SIGILL};
struct sigaction g_prev_actions[sizeof(kSignals) / sizeof(kSignals[0])];

void as_safe_append(char* buf, size_t cap, size_t& len, const char* text) {
    for (const char* p = text; *p && len + 1 < cap; ++p) buf[len++] = *p;
}

/// The handler body: header + reason + trailer, live phase stacks, event
/// ring tail — write(2) only.
bool write_gasp(const char* reason) {
    const int fd = g_fd.load(std::memory_order_relaxed);
    if (fd < 0) return false;
    char line[512];
    size_t len = 0;
    for (size_t i = 0; i < g_header_len && len + 1 < sizeof(line); ++i)
        line[len++] = g_header[i];
    // Reason is always one of our literals (signal names, "terminate"):
    // no JSON escaping needed.
    as_safe_append(line, sizeof(line), len, reason);
    for (size_t i = 0; i < g_trailer_len && len + 1 < sizeof(line); ++i)
        line[len++] = g_trailer[i];
    (void)!write(fd, line, len);
    phase_stack::write_stacks_fd(fd);
    detail::write_ring_tail_fd(fd, 128);
    (void)fsync(fd);
    return true;
}

void signal_handler(int sig) {
    // First fatal signal wins; a second (possibly from another thread, or
    // from our own re-raise) goes straight to the chained disposition.
    bool expected = false;
    if (g_fired.compare_exchange_strong(expected, true)) {
        const char* name = "signal";
        switch (sig) {
            case SIGSEGV: name = "SIGSEGV"; break;
            case SIGABRT: name = "SIGABRT"; break;
            case SIGFPE: name = "SIGFPE"; break;
            case SIGBUS: name = "SIGBUS"; break;
            case SIGILL: name = "SIGILL"; break;
        }
        write_gasp(name);
    }
    // Restore the default disposition and re-raise so the process still
    // dies with the right wait status (and core dump, where enabled).
    signal(sig, SIG_DFL);
    ::raise(sig);
}

[[noreturn]] void terminate_handler() {
    bool expected = false;
    if (g_fired.compare_exchange_strong(expected, true))
        write_gasp("terminate");
    if (g_prev_terminate) g_prev_terminate();
    std::abort();
}

} // namespace

void install_last_gasp(const std::string& path) {
    std::lock_guard<std::mutex> lock(g_install_mutex);

    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0)
        raise("cannot open last-gasp bundle '%s' for writing", path.c_str());

    // Pre-render the header around the reason slot.
    g_header_len = 0;
    as_safe_append(g_header, sizeof(g_header), g_header_len,
                   "{\"last_gasp\":{\"reason\":\"");
    g_trailer_len = 0;
    std::string run;
    if (auto m = current_manifest()) run = m->run_id;
    if (run.empty()) run = process_run_token();
    const std::string tail = "\",\"run_id\":" + json_quote(run) + "}}\n";
    as_safe_append(g_trailer, sizeof(g_trailer), g_trailer_len, tail.c_str());

    const int old_fd = g_fd.exchange(fd, std::memory_order_relaxed);
    if (old_fd >= 0) ::close(old_fd);
    g_fired.store(false, std::memory_order_relaxed);
    g_path = path;

    set_events_active(true);
    phase_stack::set_enabled(true);

    if (!g_installed) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = signal_handler;
        sigemptyset(&sa.sa_mask);
        for (size_t i = 0; i < sizeof(kSignals) / sizeof(kSignals[0]); ++i)
            sigaction(kSignals[i], &sa, &g_prev_actions[i]);
        g_prev_terminate = std::set_terminate(terminate_handler);
        g_installed = true;
    }
    event(EventLevel::Info, "lastgasp", "installed", {{"path", path}});
}

void uninstall_last_gasp() {
    std::lock_guard<std::mutex> lock(g_install_mutex);
    if (g_installed) {
        for (size_t i = 0; i < sizeof(kSignals) / sizeof(kSignals[0]); ++i)
            sigaction(kSignals[i], &g_prev_actions[i], nullptr);
        std::set_terminate(g_prev_terminate);
        g_prev_terminate = nullptr;
        g_installed = false;
    }
    const int fd = g_fd.exchange(-1, std::memory_order_relaxed);
    if (fd >= 0) ::close(fd);
    g_path.clear();
}

bool last_gasp_installed() {
    std::lock_guard<std::mutex> lock(g_install_mutex);
    return g_installed;
}

std::string last_gasp_path() {
    std::lock_guard<std::mutex> lock(g_install_mutex);
    return g_path;
}

namespace detail {

bool write_last_gasp_now(const char* reason) { return write_gasp(reason); }

} // namespace detail

} // namespace snim::obs

#endif // SNIM_OBS_ENABLED
