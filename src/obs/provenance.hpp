// Run provenance: who produced a result file, from which configuration, on
// which machine and build.
//
// Every top-level run entry point (the bench harness's run_scenario, the
// core impact flow's build_impact_model, standalone tools) materialises a
// RunManifest — a stable FNV-1a digest of the resolved option structs, the
// RNG seed, worker-thread count, build flavour (obs/faults/sanitizer flags,
// compiler, build type), host identity and a monotonic run id — and embeds
// it in everything the process writes: BENCH_*.json reports, failure
// diagnosis bundles, Chrome traces and VCD headers.  Two artifacts with the
// same config_digest were produced by the same configuration; artifacts
// with different digests are not comparable like-for-like and snim_report
// flags them.
//
// Digest contract:
//   * field order independent — ConfigDigest sorts (field, value) entries
//     before hashing, so refactoring the order fields are added in does not
//     invalidate stored baselines;
//   * any value change changes the digest (64-bit FNV-1a over the sorted
//     "field=value" list);
//   * environment (hostname, threads, build flavour) is NOT part of the
//     digest — it lives in the manifest next to it.  The digest answers
//     "same configuration?", the manifest answers "same everything?".
//
// Unlike the registry, provenance has no SNIM_ENABLE_OBS gate: manifests
// must still identify runs of an uninstrumented build (the bench harness
// works under -DSNIM_ENABLE_OBS=OFF too, it just reports empty registries).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace snim::obs {

/// 64-bit FNV-1a over `data`, continuing from `seed` (chainable).
uint64_t fnv1a64(std::string_view data,
                 uint64_t seed = 0xcbf29ce484222325ULL);

/// Order-independent digest of named configuration fields.  Feed every
/// field of an options struct (nested structs use "prefix.field" names),
/// then read value64()/hex().  Doubles are hashed via their shortest
/// faithful decimal form ("%.17g"), so -0.0 vs 0.0 and NaN payloads are
/// normalised consistently across platforms.
class ConfigDigest {
public:
    void add(std::string_view field, std::string_view value);
    void add(std::string_view field, const char* value);
    void add(std::string_view field, double value);
    void add(std::string_view field, bool value);
    void add(std::string_view field, int value);
    void add(std::string_view field, long value);
    void add(std::string_view field, uint64_t value);
    /// Hashes a whole vector under one field name (size + every element).
    void add(std::string_view field, const std::vector<double>& values);

    /// The digest over the name-sorted field list.
    uint64_t value64() const;
    /// value64() as 16 lowercase hex digits — the form stored in manifests.
    std::string hex() const;

private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/// Identity card of one run, embedded in every artifact the run writes.
struct RunManifest {
    std::string run_id;        // monotonic: "<utc-epoch-hex>-<pid>-<seq>"
    std::string tool;          // "snim_bench", "impact_flow", ...
    std::string config_digest; // ConfigDigest::hex() of the resolved options
    uint64_t seed = 0;         // default-Rng seed in effect
    int threads = 1;           // resolved worker-thread count
    std::string build_type;    // CMAKE_BUILD_TYPE baked in at compile time
    std::string compiler;      // __VERSION__
    bool obs_enabled = false;  // SNIM_ENABLE_OBS build flag
    bool faults_enabled = false; // SNIM_ENABLE_FAULTS build flag
    std::string sanitizers;    // "address", "thread", ... ("" = none detected)
    std::string hostname;
    std::string os;            // "<sysname> <release>"
    std::string created_utc;   // ISO 8601, second resolution
};

/// Builds a manifest for this process: run id (monotonic within the
/// process, unique across processes via pid + start stamp), build flavour
/// probed from compile-time macros, host identity from uname/gethostname.
RunManifest make_run_manifest(std::string tool, const ConfigDigest& digest,
                              uint64_t seed, int threads);

/// Manifest <-> JSON (the "manifest" member of reports and bundles).
Json manifest_json(const RunManifest& m);
/// Parses a manifest; unknown members are ignored, absent ones default.
RunManifest manifest_from_json(const Json& j);

/// Process-wide current manifest: set by the first top-level entry point
/// (snim_bench before its scenario loop, build_impact_model when nothing
/// set one yet) and read by every artifact writer (diag bundles, VCD and
/// trace exports).  Thread-safe.
void set_current_manifest(RunManifest m);
std::optional<RunManifest> current_manifest();
void clear_current_manifest();

/// Sets the current manifest from (tool, digest, seed, threads) only when
/// none is set yet; returns the manifest in effect afterwards.  Lets nested
/// entry points (a flow inside a bench scenario) adopt the outer run's
/// identity instead of overwriting it.
RunManifest ensure_current_manifest(const std::string& tool,
                                    const ConfigDigest& digest, uint64_t seed,
                                    int threads);

/// Short process-unique token ("<utc-epoch-hex>p<pid>") for artifact file
/// names written before any manifest exists (early diag bundles).
std::string process_run_token();

} // namespace snim::obs
