// Minimal JSON reader/writer for the obs run reports.
//
// Scope is deliberately tiny: enough to emit machine-readable reports and
// to parse them back (round-trip checks in tests, downstream tooling that
// diffs two runs).  UTF-8 passthrough, no comments, doubles only.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace snim::obs {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
public:
    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(int i) : value_(static_cast<double>(i)) {}
    Json(uint64_t u) : value_(static_cast<double>(u)) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(JsonArray a) : value_(std::move(a)) {}
    Json(JsonObject o) : value_(std::move(o)) {}

    bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
    bool is_bool() const { return std::holds_alternative<bool>(value_); }
    bool is_number() const { return std::holds_alternative<double>(value_); }
    bool is_string() const { return std::holds_alternative<std::string>(value_); }
    bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
    bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

    bool as_bool() const { return std::get<bool>(value_); }
    double as_number() const { return std::get<double>(value_); }
    const std::string& as_string() const { return std::get<std::string>(value_); }
    const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
    const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
    JsonArray& as_array() { return std::get<JsonArray>(value_); }
    JsonObject& as_object() { return std::get<JsonObject>(value_); }

    /// Object member access; throws snim::Error when absent or not an object.
    const Json& at(const std::string& key) const;
    /// True when this is an object containing `key`.
    bool contains(const std::string& key) const;

    /// Serialises; indent < 0 gives a single line.
    std::string dump(int indent = 2) const;

    /// Parses a complete JSON document; throws snim::Error with the byte
    /// offset on malformed input.
    static Json parse(std::string_view text);

private:
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

/// Escapes a string for embedding in JSON output (adds the quotes).
std::string json_quote(std::string_view s);

/// The one number formatter every snim JSON writer uses: "null" for
/// NaN/Inf (JSON has neither — a bare `nan` token corrupts the document),
/// integral values without a fraction, everything else faithful %.17g.
std::string json_number(double v);

/// Serialises `doc` (plus a trailing newline) to `path`; raises on open or
/// short-write failure.  Shared by the bench/trace/ledger writers so the
/// I/O error handling exists once.
void write_json_file(const std::string& path, const Json& doc, int indent = 2);

} // namespace snim::obs
