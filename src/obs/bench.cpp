#include "obs/bench.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/certify.hpp"
#include "obs/events.hpp"
#include "obs/parallel.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/resources.hpp"
#include "obs/timeseries.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace snim::obs {

namespace {

std::vector<Scenario>& scenario_store() {
    static std::vector<Scenario>* s = new std::vector<Scenario>;
    return *s;
}

std::vector<const Scenario*> sorted_view(const std::vector<Scenario>& store) {
    std::vector<const Scenario*> out;
    out.reserve(store.size());
    for (const auto& s : store) out.push_back(&s);
    std::sort(out.begin(), out.end(),
              [](const Scenario* a, const Scenario* b) { return a->name < b->name; });
    return out;
}

std::vector<std::string> split_filter(const std::string& filter) {
    std::vector<std::string> parts;
    std::string cur;
    for (char ch : filter) {
        if (ch == ',') {
            if (!cur.empty()) parts.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    if (!cur.empty()) parts.push_back(cur);
    return parts;
}

void check_deterministic_accuracy(const Scenario& s,
                                  const std::vector<AccuracyMetric>& first,
                                  const std::vector<AccuracyMetric>& rep, int repetition) {
    if (first.size() != rep.size())
        raise("scenario '%s' is non-deterministic: repetition %d produced %zu accuracy "
              "metrics, repetition 0 produced %zu",
              s.name.c_str(), repetition, rep.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
        const AccuracyMetric& a = first[i];
        const AccuracyMetric& b = rep[i];
        if (a.name != b.name || a.reference != b.reference || a.points != b.points ||
            a.delta_db != b.delta_db)
            raise("scenario '%s' is non-deterministic: accuracy metric '%s' changed "
                  "between repetitions (%.17g dB vs %.17g dB over %llu/%llu points)",
                  s.name.c_str(), a.name.c_str(), a.delta_db, b.delta_db,
                  static_cast<unsigned long long>(a.points),
                  static_cast<unsigned long long>(b.points));
    }
}

Json accuracy_json(const std::vector<AccuracyMetric>& metrics) {
    JsonArray arr;
    for (const auto& m : metrics) {
        JsonObject o;
        o.emplace("name", m.name);
        o.emplace("reference", m.reference);
        o.emplace("delta_db", m.delta_db);
        o.emplace("tolerance_db", m.tolerance_db);
        o.emplace("points", m.points);
        o.emplace("pass", m.pass());
        arr.push_back(Json(std::move(o)));
    }
    return Json(std::move(arr));
}

Verdict runtime_verdict(const ScenarioResult& r, double baseline_median,
                        double fail_pct) {
    Verdict v;
    v.scenario = r.name;
    v.baseline_median_s = baseline_median;
    v.median_s = r.runtime.median_s;
    if (baseline_median > 0.0)
        v.change_pct = (r.runtime.median_s - baseline_median) / baseline_median * 100.0;
    if (v.change_pct > fail_pct) {
        v.kind = VerdictKind::Regress;
        v.detail = format("median %.4g s vs baseline %.4g s (%+.1f%% > %.1f%%)",
                          v.median_s, baseline_median, v.change_pct, fail_pct);
    } else if (v.change_pct < -fail_pct) {
        v.kind = VerdictKind::Improve;
        v.detail = format("median %.4g s vs baseline %.4g s (%+.1f%%)", v.median_s,
                          baseline_median, v.change_pct);
    } else {
        v.kind = VerdictKind::Pass;
        v.detail = format("%+.1f%%", v.change_pct);
    }
    return v;
}

/// AccuracyFail verdict when any metric of `r` exceeds its tolerance.
bool accuracy_fail_verdict(const ScenarioResult& r, Verdict& out) {
    for (const auto& m : r.accuracy) {
        if (m.pass()) continue;
        out.scenario = r.name;
        out.kind = VerdictKind::AccuracyFail;
        out.median_s = r.runtime.median_s;
        out.detail = format("'%s' delta %.2f dB > tolerance %.2f dB (vs %s)",
                            m.name.c_str(), m.delta_db, m.tolerance_db,
                            m.reference.c_str());
        return true;
    }
    return false;
}

/// Filesystem-safe slug: '/' and whitespace become '_'.
std::string file_slug(const std::string& name) {
    std::string out = name;
    for (char& c : out)
        if (c == '/' || c == ' ' || c == '\t') c = '_';
    return out;
}

} // namespace

bool ScenarioContext::guard_corner(const std::string& tag,
                                   const std::function<void()>& body) {
    try {
        body();
        return true;
    } catch (const Error& e) {
        count("bench/skipped_corners");
        add_note(format("corner '%s' skipped: %s", tag.c_str(), e.what()));
        return false;
    }
}

void ScenarioContext::run_corners(
    size_t count, const std::function<void(ScenarioContext&, size_t)>& body) {
    std::vector<ScenarioContext> corners(count);
    for (auto& c : corners) {
        c.quick = quick;
        c.seed = seed;
        c.repetition = repetition;
        c.threads = threads;
        c.wave_dir = wave_dir; // corner dumps write distinct slugged paths
    }
    // Corner-level heartbeats; the registry stays untouched (corner results
    // merge deterministically below, independent of completion order).
    ProgressScope progress("bench/corners", count);
    parallel_tasks(threads, count, [&](size_t i) {
        body(corners[i], i);
        progress.advance();
    });
    for (auto& c : corners) {
        for (auto& m : c.accuracy) accuracy.push_back(std::move(m));
        for (auto& n : c.notes) notes.push_back(std::move(n));
    }
}

std::string ScenarioContext::dump_waves(const std::string& tag,
                                        const std::vector<WaveSignal>& signals) const {
    if (wave_dir.empty() || signals.empty()) return {};
    const std::string stem = wave_dir + "/" + file_slug(tag);
    write_vcd(stem + ".vcd", signals);
    write_wave_csv(stem + ".csv", signals);
    return stem + ".vcd";
}

void register_scenario(Scenario s) {
    SNIM_ASSERT(!s.name.empty(), "scenario needs a name");
    SNIM_ASSERT(s.run != nullptr, "scenario '%s' needs a run body", s.name.c_str());
    for (const auto& existing : scenario_store())
        if (existing.name == s.name)
            raise("scenario '%s' registered twice", s.name.c_str());
    scenario_store().push_back(std::move(s));
}

std::vector<const Scenario*> all_scenarios() { return sorted_view(scenario_store()); }

std::vector<const Scenario*> match_scenarios(const std::string& filter) {
    const auto parts = split_filter(filter);
    if (parts.empty()) return all_scenarios();
    std::vector<const Scenario*> out;
    for (const Scenario* s : all_scenarios())
        for (const auto& p : parts)
            if (s->name.find(p) != std::string::npos) {
                out.push_back(s);
                break;
            }
    return out;
}

RuntimeStats runtime_stats(std::vector<double> runs) {
    RuntimeStats st;
    st.runs_s = runs;
    if (runs.empty()) return st;
    std::sort(runs.begin(), runs.end());
    st.min_s = runs.front();
    const size_t n = runs.size();
    st.median_s = n % 2 ? runs[n / 2] : 0.5 * (runs[n / 2 - 1] + runs[n / 2]);
    const double pos = 0.95 * static_cast<double>(n - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, n - 1);
    st.p95_s = runs[lo] + (pos - static_cast<double>(lo)) * (runs[hi] - runs[lo]);
    double sum = 0.0;
    for (double r : runs) sum += r;
    st.mean_s = sum / static_cast<double>(n);
    return st;
}

ConfigDigest bench_config_digest(const BenchOptions& opt) {
    ConfigDigest d;
    d.add("bench.quick", opt.quick);
    d.add("bench.repeat_override", opt.repeat_override);
    d.add("bench.seed", opt.seed);
    d.add("bench.wave_dir_set", !opt.wave_dir.empty());
    return d;
}

ScenarioResult run_scenario(const Scenario& s, const BenchOptions& opt) {
    using Clock = std::chrono::steady_clock;
    ensure_current_manifest("snim_bench", bench_config_digest(opt), opt.seed,
                            util::ThreadPool(opt.threads).thread_count());
    ScenarioResult result;
    result.name = s.name;
    result.kind = s.kind;
    result.description = s.description;
    const int quick_repeat = s.quick_repeat > 0 ? s.quick_repeat : s.repeat;
    result.repetitions = opt.repeat_override > 0 ? opt.repeat_override
                         : opt.quick             ? quick_repeat
                                                 : s.repeat;
    result.warmup = opt.quick ? 0 : s.warmup;

    // One progress unit per repetition (warmup included), so a multi-rep
    // scenario heartbeats even when each repetition is fast.
    ProgressScope progress("bench/" + s.name,
                           static_cast<uint64_t>(result.warmup) +
                               static_cast<uint64_t>(result.repetitions));

    auto one_rep = [&](int repetition, bool record) {
        set_default_rng_seed(opt.seed);
        reset();
        set_enabled(true);
        ScenarioContext ctx;
        ctx.quick = opt.quick;
        ctx.seed = opt.seed;
        ctx.repetition = repetition;
        ctx.threads = util::ThreadPool(opt.threads).thread_count();
        // Waveform dumps only on the last recorded repetition: file I/O in
        // earlier repetitions would pollute the timing statistics for no
        // extra information (repetitions are asserted deterministic).
        if (record && repetition == result.repetitions - 1) ctx.wave_dir = opt.wave_dir;
        const auto t0 = Clock::now();
        s.run(ctx);
        const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
        set_enabled(false);
        if (!record) return;
        result.runtime.runs_s.push_back(elapsed);
        if (repetition == 0) {
            result.accuracy = std::move(ctx.accuracy);
            result.notes = std::move(ctx.notes);
        } else {
            check_deterministic_accuracy(s, result.accuracy, ctx.accuracy, repetition);
            if (result.notes != ctx.notes)
                raise("scenario '%s' is non-deterministic: notes changed between "
                      "repetition 0 (%zu notes) and repetition %d (%zu notes)",
                      s.name.c_str(), result.notes.size(), repetition,
                      ctx.notes.size());
        }
    };

    for (int w = 0; w < result.warmup; ++w) {
        one_rep(-1 - w, false);
        progress.advance();
    }
    for (int r = 0; r < result.repetitions; ++r) {
        one_rep(r, true);
        progress.advance();
    }

    // The final repetition's registry is left intact (but disabled) so the
    // caller can still read phase_seconds()/report_text() after we return.
    result.registry = report_json();
    // Schema 4: fold the figure accuracy deltas into the ledger as
    // "figure/..." stages (briefly re-enabling the registry — one ranked
    // budget view covers solver health and figure reproduction alike), then
    // snapshot ledger and certificate summary.
    set_enabled(true);
    for (const AccuracyMetric& m : result.accuracy)
        budget_update("figure/" + s.name + "/" + m.name, m.delta_db,
                      m.tolerance_db, "dB", /*higher_is_worse=*/true,
                      m.reference);
    set_enabled(false);
    result.budget = budget_json();
    result.certificates = certificate_summary_json();
    result.lane = registry_trace_lane(s.name);
    result.runtime = runtime_stats(std::move(result.runtime.runs_s));
    result.peak_rss_bytes = peak_rss_bytes();

    // Solver-health channels of the final repetition as a VCD next to the
    // scenario's own probe dumps (non-monotone channels fall back to a
    // sample-index axis inside wave_from_timeseries).
    if (!opt.wave_dir.empty() && !result.lane.timeseries.empty()) {
        std::vector<WaveSignal> health;
        health.reserve(result.lane.timeseries.size());
        for (const auto& ts : result.lane.timeseries)
            health.push_back(wave_from_timeseries(ts));
        const std::string stem = opt.wave_dir + "/" + file_slug(s.name) + ".health";
        write_vcd(stem + ".vcd", health);
        write_wave_csv(stem + ".csv", health);
    }
    return result;
}

Json bench_report_json(const std::vector<ScenarioResult>& results,
                       const BenchOptions& opt) {
    JsonObject root;
    root.emplace("schema_version", kBenchSchemaVersion);
    root.emplace("tool", "snim_bench");
    root.emplace("quick", opt.quick);
    root.emplace("seed", static_cast<double>(opt.seed));
    // Additive field (schema_version stays 1): the resolved worker-thread
    // count the scenarios ran with.  Results are thread-count independent;
    // runtimes are not, so baselines should note it.
    root.emplace("threads", util::ThreadPool(opt.threads).thread_count());
    // Schema 2: the run's provenance manifest.  The process-wide current
    // manifest (set by run_scenario) wins so nested flows and the report
    // agree on one run id; a fresh one is built when nothing ran yet.
    RunManifest manifest;
    if (auto cur = current_manifest()) {
        manifest = *cur;
    } else {
        manifest = make_run_manifest("snim_bench", bench_config_digest(opt),
                                     opt.seed,
                                     util::ThreadPool(opt.threads).thread_count());
    }
    root.emplace("manifest", manifest_json(manifest));
    JsonArray scenarios;
    for (const auto& r : results) {
        JsonObject s;
        s.emplace("name", r.name);
        s.emplace("kind", r.kind);
        s.emplace("description", r.description);
        s.emplace("repetitions", r.repetitions);
        s.emplace("warmup", r.warmup);
        JsonObject rt;
        JsonArray runs;
        for (double x : r.runtime.runs_s) runs.push_back(x);
        rt.emplace("runs_s", Json(std::move(runs)));
        rt.emplace("min_s", r.runtime.min_s);
        rt.emplace("median_s", r.runtime.median_s);
        rt.emplace("p95_s", r.runtime.p95_s);
        rt.emplace("mean_s", r.runtime.mean_s);
        s.emplace("runtime", Json(std::move(rt)));
        s.emplace("accuracy", accuracy_json(r.accuracy));
        JsonArray notes;
        for (const auto& note : r.notes) notes.push_back(note);
        s.emplace("notes", Json(std::move(notes)));
        s.emplace("registry", r.registry);
        // Schema 4: the accuracy-budget ledger and certificate summary.
        s.emplace("budget", r.budget);
        s.emplace("certificates", r.certificates);
        if (r.peak_rss_bytes > 0)
            s.emplace("peak_rss_bytes", static_cast<double>(r.peak_rss_bytes));
        scenarios.push_back(Json(std::move(s)));
    }
    root.emplace("scenarios", Json(std::move(scenarios)));
    // Schema 3: the event-journal tail (when live telemetry ran), so the
    // report alone answers "what was the run saying near the end".
    JsonArray events;
    for (const std::string& line : event_tail()) {
        try {
            events.push_back(Json::parse(line));
        } catch (const Error&) {
            // Torn/overwritten ring record; skip.
        }
    }
    if (!events.empty()) root.emplace("events", Json(std::move(events)));
    // Schema 3: folded-stack sample counts when the sampling profiler ran.
    if (const FoldedProfile profile = profiler_snapshot(); profile.samples > 0)
        root.emplace("profile", profile_json(profile));
    return Json(std::move(root));
}

void write_bench_report(const std::string& path, const Json& report) {
    write_json_file(path, report);
}

const char* verdict_name(VerdictKind kind) {
    switch (kind) {
        case VerdictKind::Pass: return "pass";
        case VerdictKind::Improve: return "improve";
        case VerdictKind::Regress: return "REGRESS";
        case VerdictKind::AccuracyFail: return "ACCURACY FAIL";
        case VerdictKind::New: return "new";
        case VerdictKind::Missing: return "missing";
    }
    return "?";
}

std::vector<Verdict> accuracy_verdicts(const std::vector<ScenarioResult>& results) {
    std::vector<Verdict> out;
    for (const auto& r : results) {
        Verdict v;
        if (accuracy_fail_verdict(r, v)) {
            out.push_back(std::move(v));
            continue;
        }
        v.scenario = r.name;
        v.kind = VerdictKind::Pass;
        v.median_s = r.runtime.median_s;
        v.detail = r.accuracy.empty()
                       ? "no accuracy metrics"
                       : format("%zu accuracy metrics in tolerance", r.accuracy.size());
        out.push_back(std::move(v));
    }
    return out;
}

std::vector<Verdict> compare_to_baseline(const Json& baseline,
                                         const std::vector<ScenarioResult>& results,
                                         double fail_pct) {
    if (!baseline.is_object() || !baseline.contains("schema_version"))
        raise("baseline is not a snim_bench report (no schema_version)");
    const int version = static_cast<int>(baseline.at("schema_version").as_number());
    if (version < 1 || version > kBenchSchemaVersion)
        raise("baseline schema_version %d is outside this tool's supported range "
              "1..%d",
              version, kBenchSchemaVersion);

    std::vector<std::pair<std::string, double>> base_medians;
    for (const auto& s : baseline.at("scenarios").as_array())
        base_medians.emplace_back(s.at("name").as_string(),
                                  s.at("runtime").at("median_s").as_number());
    auto base_median = [&](const std::string& name) -> const double* {
        for (const auto& [n, m] : base_medians)
            if (n == name) return &m;
        return nullptr;
    };

    std::vector<Verdict> out;
    for (const auto& r : results) {
        Verdict fail;
        if (accuracy_fail_verdict(r, fail)) {
            out.push_back(std::move(fail));
            continue;
        }
        if (const double* old_median = base_median(r.name)) {
            out.push_back(runtime_verdict(r, *old_median, fail_pct));
        } else {
            Verdict v;
            v.scenario = r.name;
            v.kind = VerdictKind::New;
            v.median_s = r.runtime.median_s;
            v.detail = "not in baseline";
            out.push_back(std::move(v));
        }
    }
    for (const auto& [name, median] : base_medians) {
        const bool present = std::any_of(results.begin(), results.end(),
                                         [&](const ScenarioResult& r) { return r.name == name; });
        if (present) continue;
        Verdict v;
        v.scenario = name;
        v.kind = VerdictKind::Missing;
        v.baseline_median_s = median;
        v.detail = "in baseline but not in this run (filtered out?)";
        out.push_back(std::move(v));
    }
    return out;
}

bool gate_passes(const std::vector<Verdict>& verdicts) {
    for (const auto& v : verdicts)
        if (v.kind == VerdictKind::Regress || v.kind == VerdictKind::AccuracyFail)
            return false;
    return true;
}

std::string verdict_table(const std::vector<Verdict>& verdicts) {
    Table t({"scenario", "verdict", "median [s]", "baseline [s]", "change", "detail"});
    for (const auto& v : verdicts)
        t.add_row({v.scenario, verdict_name(v.kind),
                   v.median_s > 0.0 ? format("%.4g", v.median_s) : "-",
                   v.baseline_median_s > 0.0 ? format("%.4g", v.baseline_median_s) : "-",
                   v.baseline_median_s > 0.0 && v.median_s > 0.0
                       ? format("%+.1f%%", v.change_pct)
                       : "-",
                   v.detail});
    return t.to_string();
}

} // namespace snim::obs
