#include "obs/registry.hpp"

#if SNIM_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/certify.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"

namespace snim::obs {

namespace {

/// Histogram: exact count/sum/min/max plus a bounded reservoir sample for
/// quantiles, so a million-step transient cannot exhaust memory.  The
/// reservoir uses a deterministic per-histogram LCG, keeping reports
/// reproducible run to run.
struct Histogram {
    static constexpr size_t kReservoir = 4096;

    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> sample;
    uint64_t lcg = 0x9e3779b97f4a7c15ull;

    void add(double v) {
        if (count == 0) {
            min = max = v;
        } else {
            min = std::min(min, v);
            max = std::max(max, v);
        }
        ++count;
        sum += v;
        if (sample.size() < kReservoir) {
            sample.push_back(v);
        } else {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            const uint64_t slot = (lcg >> 11) % count;
            if (slot < kReservoir) sample[static_cast<size_t>(slot)] = v;
        }
    }

    ValueStats stats() const {
        ValueStats s;
        s.count = count;
        s.sum = sum;
        s.min = min;
        s.max = max;
        s.mean = count ? sum / static_cast<double>(count) : 0.0;
        if (!sample.empty()) {
            std::vector<double> sorted = sample;
            std::sort(sorted.begin(), sorted.end());
            auto quantile = [&](double q) {
                const double pos = q * static_cast<double>(sorted.size() - 1);
                const size_t lo = static_cast<size_t>(pos);
                const size_t hi = std::min(lo + 1, sorted.size() - 1);
                const double frac = pos - static_cast<double>(lo);
                return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
            };
            s.p50 = quantile(0.50);
            s.p95 = quantile(0.95);
        }
        return s;
    }
};

struct Registry {
    std::mutex mu;
    // std::map keeps snapshots name-sorted for free; registries hold tens
    // of entries, so the log-n lookup is irrelevant next to the lock.
    std::map<std::string, uint64_t, std::less<>> counters;
    std::map<std::string, Histogram, std::less<>> values;
    std::map<std::string, PhaseStats, std::less<>> phases;
    ReportMode mode = ReportMode::None;
};

std::atomic<bool> g_enabled{false};

Registry& registry() {
    // Leaked on purpose: the atexit report writer and late ScopedTimer
    // destructors must never race static destruction.
    static Registry* r = [] {
        Registry* reg = new Registry;
        if (const char* env = std::getenv("SNIM_OBS")) {
            const std::string v = env;
            if (v == "json") {
                reg->mode = ReportMode::Json;
            } else if (v == "1" || v == "on" || v == "text") {
                reg->mode = ReportMode::Text;
            }
            if (reg->mode != ReportMode::None) {
                g_enabled.store(true, std::memory_order_relaxed);
                std::atexit(&write_env_report);
            }
        }
        return reg;
    }();
    return *r;
}

thread_local TaskCapture* tl_capture = nullptr;

} // namespace

/// Private-member access for the capture hooks below (kept out of the
/// header so TaskCapture's op format stays an implementation detail).
struct CaptureAccess {
    using Op = TaskCapture::Op;
    static void push(TaskCapture& c, Op::Kind kind, std::string_view name, double a,
                     double b, uint64_t delta, std::string_view unit) {
        c.ops_.push_back({kind, std::string(name), a, b, delta, std::string(unit)});
    }
};

CaptureScope::CaptureScope(TaskCapture& cap) : prev_(tl_capture) { tl_capture = &cap; }
CaptureScope::~CaptureScope() { tl_capture = prev_; }

void TaskCapture::commit() {
    // Replaying through the public entry points routes into the registry —
    // or into the committing thread's own active capture when parallel
    // regions nest, which preserves the outer region's index ordering.
    for (const Op& op : ops_) {
        switch (op.kind) {
        case Op::Count: count(op.name, op.delta); break;
        case Op::Value: record_value(op.name, op.a); break;
        case Op::Phase: record_phase(op.name, op.a); break;
        case Op::PhaseRss:
            record_phase_rss(op.name, static_cast<int64_t>(op.a),
                             static_cast<uint64_t>(op.b));
            break;
        case Op::Ts: ts_append(op.name, op.a, op.b, op.unit); break;
        }
    }
    ops_.clear();
}

namespace detail {

bool capture_count(std::string_view name, uint64_t delta) {
    if (!tl_capture) return false;
    CaptureAccess::push(*tl_capture, CaptureAccess::Op::Count, name, 0.0, 0.0, delta, {});
    return true;
}

bool capture_value(std::string_view name, double value) {
    if (!tl_capture) return false;
    CaptureAccess::push(*tl_capture, CaptureAccess::Op::Value, name, value, 0.0, 0, {});
    return true;
}

bool capture_phase(std::string_view name, double seconds) {
    if (!tl_capture) return false;
    CaptureAccess::push(*tl_capture, CaptureAccess::Op::Phase, name, seconds, 0.0, 0, {});
    return true;
}

bool capture_phase_rss(std::string_view name, int64_t delta_bytes, uint64_t peak_bytes) {
    if (!tl_capture) return false;
    // Byte values fit a double exactly well past any realistic RSS (2^53).
    CaptureAccess::push(*tl_capture, CaptureAccess::Op::PhaseRss, name,
                        static_cast<double>(delta_bytes),
                        static_cast<double>(peak_bytes), 0, {});
    return true;
}

bool capture_ts(std::string_view channel, double t, double value, std::string_view unit) {
    if (!tl_capture) return false;
    CaptureAccess::push(*tl_capture, CaptureAccess::Op::Ts, channel, t, value, 0, unit);
    return true;
}

} // namespace detail

bool enabled() {
    // Touch the registry once so SNIM_OBS is honoured even if no one called
    // set_enabled(); after that it is a single relaxed load.
    static const bool init = (registry(), true);
    (void)init;
    return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
    registry();
    g_enabled.store(on, std::memory_order_relaxed);
}

ReportMode report_mode() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.mode;
}

void count(std::string_view name, uint64_t delta) {
    if (!enabled()) return;
    if (detail::capture_count(name, delta)) return;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.counters.find(name);
    if (it == r.counters.end())
        r.counters.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void record_value(std::string_view name, double value) {
    if (!enabled()) return;
    if (detail::capture_value(name, value)) return;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.values.find(name);
    if (it == r.values.end()) it = r.values.emplace(std::string(name), Histogram{}).first;
    it->second.add(value);
}

void record_phase(std::string_view name, double seconds) {
    if (!enabled()) return;
    if (detail::capture_phase(name, seconds)) return;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.phases.find(name);
    if (it == r.phases.end()) it = r.phases.emplace(std::string(name), PhaseStats{}).first;
    ++it->second.calls;
    it->second.seconds += seconds;
}

void record_phase_rss(std::string_view name, int64_t delta_bytes,
                      uint64_t peak_bytes) {
    if (!enabled()) return;
    if (detail::capture_phase_rss(name, delta_bytes, peak_bytes)) return;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.phases.find(name);
    if (it == r.phases.end()) it = r.phases.emplace(std::string(name), PhaseStats{}).first;
    ++it->second.rss_samples;
    it->second.rss_delta_bytes += delta_bytes;
    it->second.rss_peak_bytes = std::max(it->second.rss_peak_bytes, peak_bytes);
}

uint64_t counter_value(std::string_view name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.counters.find(name);
    return it == r.counters.end() ? 0 : it->second;
}

std::optional<ValueStats> value_stats(std::string_view name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.values.find(name);
    if (it == r.values.end()) return std::nullopt;
    return it->second.stats();
}

PhaseStats phase_stats(std::string_view name) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.phases.find(name);
    return it == r.phases.end() ? PhaseStats{} : it->second;
}

double phase_seconds(std::string_view name) { return phase_stats(name).seconds; }
uint64_t phase_calls(std::string_view name) { return phase_stats(name).calls; }

std::vector<std::pair<std::string, uint64_t>> counters_snapshot() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return {r.counters.begin(), r.counters.end()};
}

std::vector<std::pair<std::string, ValueStats>> values_snapshot() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<std::pair<std::string, ValueStats>> out;
    out.reserve(r.values.size());
    for (const auto& [name, hist] : r.values) out.emplace_back(name, hist.stats());
    return out;
}

std::vector<std::pair<std::string, PhaseStats>> phases_snapshot() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return {r.phases.begin(), r.phases.end()};
}

PhaseNode phase_tree() {
    PhaseNode root;
    for (const auto& [path, stats] : phases_snapshot()) {
        PhaseNode* node = &root;
        size_t begin = 0;
        while (begin <= path.size()) {
            const size_t slash = path.find('/', begin);
            const std::string seg =
                path.substr(begin, slash == std::string::npos ? std::string::npos
                                                              : slash - begin);
            auto it = std::find_if(node->children.begin(), node->children.end(),
                                   [&](const PhaseNode& c) { return c.name == seg; });
            if (it == node->children.end()) {
                PhaseNode child;
                child.name = seg;
                child.path = node->path.empty() ? seg : node->path + "/" + seg;
                node->children.push_back(std::move(child));
                it = std::prev(node->children.end());
            }
            node = &*it;
            if (slash == std::string::npos) break;
            begin = slash + 1;
        }
        node->calls = stats.calls;
        node->seconds = stats.seconds;
        node->rss_samples = stats.rss_samples;
        node->rss_delta_bytes = stats.rss_delta_bytes;
        node->rss_peak_bytes = stats.rss_peak_bytes;
    }
    return root;
}

void reset() {
    {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.counters.clear();
        r.values.clear();
        r.phases.clear();
    }
    ts_reset();     // the time-series channels are part of the registry too
    budget_reset(); // and so is the accuracy-budget ledger
}

} // namespace snim::obs

#endif // SNIM_OBS_ENABLED
