#include "obs/run_ledger.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace snim::obs {

namespace {

/// Counters worth trending: solver effort and degradation markers.  The
/// full registry stays in the BENCH_*.json; the ledger keeps the ones a
/// regression hunt actually greps for.
bool ledger_counter(const std::string& name) {
    return name.find("newton") != std::string::npos ||
           name.find("lu_") != std::string::npos ||
           name.find("retries") != std::string::npos ||
           name.find("fallback") != std::string::npos ||
           name.find("degraded") != std::string::npos ||
           name.find("bytes") != std::string::npos ||
           name.find("skipped") != std::string::npos;
}

} // namespace

Json ledger_entry_from_report(const Json& report) {
    if (!report.is_object() || !report.contains("scenarios"))
        raise("ledger: input is not a snim_bench report (no scenarios array)");
    JsonObject entry;
    entry.emplace("schema_version", kLedgerSchemaVersion);
    if (report.contains("manifest")) entry.emplace("manifest", report.at("manifest"));

    JsonArray scenarios;
    scenarios.reserve(report.at("scenarios").as_array().size());
    for (const auto& s : report.at("scenarios").as_array()) {
        JsonObject o;
        o.emplace("name", s.at("name"));
        if (s.contains("kind")) o.emplace("kind", s.at("kind"));
        const Json& rt = s.at("runtime");
        o.emplace("median_s", rt.at("median_s"));
        o.emplace("min_s", rt.at("min_s"));

        double max_db = 0.0;
        bool pass = true;
        if (s.contains("accuracy")) {
            o.emplace("accuracy", s.at("accuracy"));
            for (const auto& m : s.at("accuracy").as_array()) {
                max_db = std::max(max_db, m.at("delta_db").as_number());
                if (m.contains("pass") && m.at("pass").is_bool() &&
                    !m.at("pass").as_bool())
                    pass = false;
            }
        }
        o.emplace("accuracy_max_db", max_db);
        o.emplace("accuracy_pass", pass);

        if (s.contains("peak_rss_bytes")) o.emplace("peak_rss_bytes", s.at("peak_rss_bytes"));
        if (s.contains("registry") && s.at("registry").is_object()) {
            const Json& reg = s.at("registry");
            if (reg.contains("counters")) {
                JsonObject kept;
                for (const auto& [name, v] : reg.at("counters").as_object())
                    if (ledger_counter(name)) kept.emplace(name, v);
                o.emplace("counters", Json(std::move(kept)));
            }
            if (reg.contains("phases")) o.emplace("phases", reg.at("phases"));
        }
        scenarios.push_back(Json(std::move(o)));
    }
    entry.emplace("scenarios", Json(std::move(scenarios)));
    return Json(std::move(entry));
}

void append_ledger(const std::string& path, const Json& entry) {
    if (!entry.is_object()) raise("ledger: entry must be a JSON object");
    // O_APPEND single-write record: concurrent bench runs appending to a
    // shared ledger cannot interleave bytes, and a crash mid-append leaves
    // at worst one short final line (which read_ledger skips as malformed).
    util::append_record_atomic(path, entry.dump(-1));
}

std::vector<Json> read_ledger(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) raise("cannot open ledger '%s'", path.c_str());
    std::vector<std::pair<size_t, std::string>> lines;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        bool blank = true;
        for (const char c : line)
            if (c != ' ' && c != '\t' && c != '\r') {
                blank = false;
                break;
            }
        if (!blank) lines.emplace_back(lineno, line);
    }
    std::vector<Json> out;
    for (size_t i = 0; i < lines.size(); ++i) {
        try {
            out.push_back(Json::parse(lines[i].second));
        } catch (const Error& e) {
            // A run killed mid-append leaves at most one short FINAL line;
            // tolerate exactly that (the entry is lost, the ledger is not).
            // A malformed interior line is real corruption and still raises.
            if (i + 1 == lines.size()) {
                log_warn("ledger '%s': skipping truncated final line %zu (%s)",
                         path.c_str(), lines[i].first, e.what());
                break;
            }
            raise("ledger '%s' line %zu: %s", path.c_str(), lines[i].first, e.what());
        }
    }
    return out;
}

} // namespace snim::obs
