// Four-terminal MOSFET: level-1 square-law DC model with body effect and
// channel-length modulation, Meyer gate capacitances and bias-dependent
// junction capacitances.
//
// The back-gate transconductance gmb is the star of the paper's Figure 3:
// substrate noise arriving at the bulk terminal is converted to drain
// current with gain gmb and read out over the output impedance 1/gds.
#pragma once

#include "circuit/device.hpp"
#include "tech/technology.hpp"

namespace snim::circuit {

struct MosGeometry {
    double w = 10.0;  // drawn width [um]
    double l = 0.18;  // drawn length [um]
    int m = 1;        // parallel multiplier
    /// Drain/source junction areas [um^2] and perimeters [um]; when zero,
    /// defaults of 0.48um-deep junctions are derived from W.
    double ad = 0.0, as = 0.0, pd = 0.0, ps = 0.0;
};

class Mosfet : public Device {
public:
    Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
           tech::MosModelCard model, MosGeometry geom);

    /// DC solution and small-signal parameters at an operating point.
    struct SmallSignal {
        double ids = 0.0; // drain terminal current (actual polarity) [A]
        double gm = 0.0;  // [S]
        double gds = 0.0; // [S]
        double gmb = 0.0; // back-gate transconductance [S]
        double vgs = 0.0, vds = 0.0, vbs = 0.0; // effective (device polarity)
        double vt = 0.0;
        bool saturated = false;
        bool on = false;
        // Capacitances at this bias [F].
        double cgs = 0.0, cgd = 0.0, cgb = 0.0, cdb = 0.0, csb = 0.0;
    };
    SmallSignal small_signal(const std::vector<double>& x) const;

    const tech::MosModelCard& model() const { return model_; }
    const MosGeometry& geometry() const { return geom_; }

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_tran(RealStamper& s, const std::vector<double>& x,
                    const TranParams& tp) override;
    void init_tran(const std::vector<double>& x) override;
    void commit_tran(const std::vector<double>& x, const TranParams& tp) override;
    void save_tran_state(std::vector<double>& out) const override;
    void load_tran_state(const std::vector<double>& in, size_t& pos) override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    Partition partition() const override { return Partition::Nonlinear; }
    std::string card(const NodeNamer& nn) const override;

    /// Zero-bias junction capacitances (for reporting; the paper quotes
    /// Cdbj = 120 fF and Csbj = 200 fF for its four-transistor structure).
    double cdb_zero_bias() const;
    double csb_zero_bias() const;

private:
    /// Charge-based capacitor state for transient integration.  Gate caps
    /// use a CONSTANT capacitance frozen at the operating point (bias-
    /// refreshed Meyer caps are not charge conserving and cause systematic
    /// oscillator frequency drift); junction caps use the exact analytic
    /// charge so their bias dependence is kept without charge pumping.
    struct CapState {
        double q = 0.0; // charge at last accepted step
        double i = 0.0; // current at last accepted step
        double c = 0.0; // fixed capacitance (gate caps) [F]
        bool junction = false;
        double cj0 = 0.0; // zero-bias junction capacitance (area+perimeter)
    };

    void stamp_channel(RealStamper& s, const std::vector<double>& x) const;
    double junction_cap(double cj0_area, double cj0_perim, double vbx) const;
    double junction_cap0(double v, double cj0) const;
    double junction_charge(double v, double cj0) const;
    double cap_charge(const CapState& st, double v) const;
    double cap_value(const CapState& st, double v) const;
    void stamp_cap(RealStamper& s, NodeId a, NodeId b, CapState& st,
                   const std::vector<double>& x, const TranParams& tp) const;
    void commit_cap(const std::vector<double>& x, NodeId a, NodeId b, CapState& st,
                    const TranParams& tp) const;

    tech::MosModelCard model_;
    MosGeometry geom_;
    // Integration state for the five capacitances, updated per accepted step.
    mutable CapState cgs_st_, cgd_st_, cgb_st_, cdb_st_, csb_st_;
};

} // namespace snim::circuit
