#include "circuit/device.hpp"

#include <cctype>

namespace snim::circuit {

std::string spice_head(char kind, const std::string& name) {
    if (!name.empty() &&
        std::tolower(static_cast<unsigned char>(name[0])) ==
            std::tolower(static_cast<unsigned char>(kind)))
        return name;
    return std::string(1, kind) + name;
}

} // namespace snim::circuit
