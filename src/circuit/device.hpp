// Abstract circuit device.  Concrete devices live in passives.hpp,
// sources.hpp, mosfet.hpp, varactor.hpp, diode.hpp and controlled.hpp.
//
// Terminal nodes are stored in the base class so netlist surgery
// (Netlist::absorb, extraction stitching) can remap them uniformly;
// concrete devices access them through named index constants.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "circuit/stamp.hpp"
#include "util/error.hpp"

namespace snim::circuit {

/// Maps a NodeId to its printable name (provided by the owning Netlist).
using NodeNamer = std::function<std::string(NodeId)>;

/// Assembly partition of a device's transient stamp.  The classification is
/// a contract the incremental transient assembler relies on:
///
///   * LinearStatic  — matrix entries are constant for an entire run
///     (resistors, controlled sources, independent sources).  RHS values may
///     still vary with tp.time (source waveforms), never with the iterate.
///   * LinearDynamic — companion stamps whose matrix entries are a pure
///     function of (dt, order) and whose RHS additionally depends on the
///     committed integration state (capacitors, inductors).
///   * Nonlinear     — the stamp depends on the Newton iterate `x`
///     (MOSFETs, diodes, varactors) and must be re-evaluated per iteration.
enum class Partition { LinearStatic, LinearDynamic, Nonlinear };

/// SPICE card head for a device: prepends the type letter only when the
/// name does not already start with it (so "r1" stays "r1", "load" becomes
/// "Cload" for a capacitor).
std::string spice_head(char kind, const std::string& name);

/// Bounds-checked read used by Device::load_tran_state implementations: a
/// checkpoint whose device-state blob is shorter than the netlist expects
/// must surface as a named error, never an out-of-range read.
inline double take_tran_state(const std::vector<double>& in, size_t& pos,
                              const char* device) {
    if (pos >= in.size())
        raise("checkpoint device-state underrun at device '%s'", device);
    return in[pos++];
}

class Device {
public:
    Device(std::string name, std::vector<NodeId> terminals)
        : name_(std::move(name)), terms_(std::move(terminals)) {}
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    const std::string& name() const { return name_; }

    /// Terminal nodes (for connectivity checks and net tracing).
    const std::vector<NodeId>& nodes() const { return terms_; }

    /// Rewrites every terminal id; used when merging netlists.
    void remap_nodes(const std::function<NodeId(NodeId)>& f) {
        for (auto& t : terms_) t = f(t);
    }

    /// Disabled devices are skipped by every analysis (open circuit);
    /// used for coupling-path ablation studies.
    void set_disabled(bool disabled) { disabled_ = disabled; }
    bool disabled() const { return disabled_; }

    /// Number of auxiliary unknowns (branch currents) this device needs.
    virtual size_t aux_count() const { return 0; }
    /// First auxiliary unknown index, assigned by Netlist::finalize().
    void set_aux_base(NodeId base) { aux_base_ = base; }
    NodeId aux_base() const { return aux_base_; }

    /// Newton stamp for the DC operating point at iterate `x`.
    virtual void stamp_dc(RealStamper& s, const std::vector<double>& x) const = 0;

    /// Newton stamp for a transient step ending at tp.time.  The default
    /// forwards to stamp_dc, correct for memoryless devices.
    virtual void stamp_tran(RealStamper& s, const std::vector<double>& x,
                            const TranParams& tp) {
        (void)tp;
        stamp_dc(s, x);
    }

    /// Initialises integration state from a converged DC solution.
    virtual void init_tran(const std::vector<double>& x) { (void)x; }

    /// Accepts the step: records state used by the next companion model.
    virtual void commit_tran(const std::vector<double>& x, const TranParams& tp) {
        (void)x;
        (void)tp;
    }

    /// Appends this device's transient integration state (the values
    /// init_tran/commit_tran maintain) to `out` as raw doubles, for
    /// checkpointing.  Memoryless devices append nothing.
    virtual void save_tran_state(std::vector<double>& out) const { (void)out; }

    /// Restores state written by save_tran_state, consuming values from
    /// `in` starting at `pos` (advanced past what was read).  Used by
    /// checkpoint resume INSTEAD of init_tran — the restored state must
    /// reproduce the killed run bit-for-bit.
    virtual void load_tran_state(const std::vector<double>& in, size_t& pos) {
        (void)in;
        (void)pos;
    }

    /// Small-signal stamp around operating point `xop` at angular
    /// frequency `omega`.
    virtual void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                          double omega) const = 0;

    /// Assembly partition of this device's stamps (see Partition).  The
    /// default suits memoryless linear devices; devices with companion
    /// models or iterate-dependent stamps must override.
    virtual Partition partition() const { return Partition::LinearStatic; }

    /// Derived from partition() — the single source of truth — so the two
    /// can never disagree.
    bool is_nonlinear() const { return partition() == Partition::Nonlinear; }

    /// SPICE-style card describing this device (used by the netlist writer).
    virtual std::string card(const NodeNamer& nn) const = 0;

protected:
    NodeId term(size_t i) const {
        SNIM_ASSERT(i < terms_.size(), "device '%s': bad terminal %zu", name_.c_str(), i);
        return terms_[i];
    }

private:
    std::string name_;
    std::vector<NodeId> terms_;
    NodeId aux_base_ = -1;
    bool disabled_ = false;
};

} // namespace snim::circuit
