// Linear controlled sources: VCCS (G element) and VCVS (E element).  Used by
// behavioural macromodels and tests.
#pragma once

#include "circuit/device.hpp"

namespace snim::circuit {

/// Voltage-controlled current source: i(out_p -> out_n) = gm * v(cp, cn).
class Vccs : public Device {
public:
    Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId cp, NodeId cn, double gm);

    double gm() const { return gm_; }
    void set_gm(double gm) { gm_ = gm; }

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    std::string card(const NodeNamer& nn) const override;

private:
    double gm_;
};

/// Voltage-controlled voltage source: v(out_p) - v(out_n) = gain * v(cp, cn).
class Vcvs : public Device {
public:
    Vcvs(std::string name, NodeId out_p, NodeId out_n, NodeId cp, NodeId cn,
         double gain);

    double gain() const { return gain_; }
    size_t aux_count() const override { return 1; }

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    std::string card(const NodeNamer& nn) const override;

private:
    double gain_;
};

} // namespace snim::circuit
