// Linear passive devices: resistor, capacitor, inductor (with optional
// series resistance, the way on-chip spiral inductors are modelled).
#pragma once

#include "circuit/device.hpp"

namespace snim::circuit {

class Resistor : public Device {
public:
    Resistor(std::string name, NodeId a, NodeId b, double resistance);

    double resistance() const { return r_; }
    void set_resistance(double r);

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    std::string card(const NodeNamer& nn) const override;

    /// Current flowing a -> b for solution `x`.
    double current(const std::vector<double>& x) const;

private:
    double r_;
};

class Capacitor : public Device {
public:
    Capacitor(std::string name, NodeId a, NodeId b, double capacitance);

    double capacitance() const { return c_; }
    void set_capacitance(double c);

    // Integration state, read by the incremental assembler's compiled
    // refresh plan (which recomputes the companion stamp values without
    // replaying stamp_tran).
    double tran_v_prev() const { return v_prev_; }
    double tran_i_prev() const { return i_prev_; }

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_tran(RealStamper& s, const std::vector<double>& x,
                    const TranParams& tp) override;
    void init_tran(const std::vector<double>& x) override;
    void commit_tran(const std::vector<double>& x, const TranParams& tp) override;
    void save_tran_state(std::vector<double>& out) const override;
    void load_tran_state(const std::vector<double>& in, size_t& pos) override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    Partition partition() const override { return Partition::LinearDynamic; }
    std::string card(const NodeNamer& nn) const override;

private:
    double c_;
    double v_prev_ = 0.0;
    double i_prev_ = 0.0;
};

/// Inductor with optional series resistance; adds one branch-current
/// unknown.  The branch equation is v_a - v_b - R i - L di/dt = 0.
class Inductor : public Device {
public:
    Inductor(std::string name, NodeId a, NodeId b, double inductance,
             double series_res = 0.0);

    double inductance() const { return l_; }
    double series_res() const { return rs_; }

    size_t aux_count() const override { return 1; }

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_tran(RealStamper& s, const std::vector<double>& x,
                    const TranParams& tp) override;
    void init_tran(const std::vector<double>& x) override;
    void commit_tran(const std::vector<double>& x, const TranParams& tp) override;
    void save_tran_state(std::vector<double>& out) const override;
    void load_tran_state(const std::vector<double>& in, size_t& pos) override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    Partition partition() const override { return Partition::LinearDynamic; }
    std::string card(const NodeNamer& nn) const override;

    /// Branch current for solution `x` (flows a -> b).
    double current(const std::vector<double>& x) const;

private:
    double l_;
    double rs_;
    double i_prev_ = 0.0;
    double v_prev_ = 0.0; // inductor voltage net of series resistance
};

} // namespace snim::circuit
