// SPICE-like netlist parser.
//
// Supported cards (case-insensitive, '*' comments, '+' continuations):
//   Rname a b value
//   Cname a b value
//   Lname a b value [rser=r]
//   Vname p n [dc] V [ac mag [phase_deg]] [sin(off amp freq [phase_deg [delay]])]
//                                         [pulse(v1 v2 td tr tf pw per)]
//                                         [pwl(t1 v1 t2 v2 ...)]
//   Iname p n  -- same value syntax as V
//   Mname d g s b model [w=..] [l=..] [m=..] [ad=..] [as=..] [pd=..] [ps=..]
//   Dname a c model [area]
//   Gname p n cp cn gm        (VCCS)
//   Ename p n cp cn gain      (VCVS)
//   Yname g w model area=..   (accumulation-mode varactor; snim extension)
//   .model name nmos|pmos|d ([param=value ...])
//   .subckt name port1 port2 ...   /  .ends   (one level of nesting)
//   Xname node1 node2 ... subcktname
//   .end
// The first line is treated as a title if it is not a card.
#pragma once

#include <string>

#include "circuit/netlist.hpp"
#include "tech/technology.hpp"

namespace snim::circuit {

struct ParseResult {
    Netlist netlist;
    std::string title;
};

/// Parses netlist text; throws snim::Error with a line number on bad input.
/// `tech` provides fallback model cards for M/Y devices whose model is not
/// defined by a .model card in the text (pass nullptr to require .model).
ParseResult parse_spice(const std::string& text, const tech::Technology* tech = nullptr);

} // namespace snim::circuit
