// Junction diode: exponential DC model with junction capacitance.  Used for
// well/substrate junctions and ESD structures in extracted netlists.
#pragma once

#include "circuit/device.hpp"

namespace snim::circuit {

struct DiodeModel {
    double is = 1e-16;  // saturation current [A]
    double n = 1.0;     // emission coefficient
    double cj0 = 0.0;   // zero-bias junction capacitance [F]
    double pb = 0.75;   // built-in potential [V]
    double mj = 0.4;    // grading coefficient
};

class Diode : public Device {
public:
    Diode(std::string name, NodeId anode, NodeId cathode, DiodeModel model,
          double area_scale = 1.0);

    double current(double v) const;
    double conductance(double v) const;
    double capacitance(double v) const;

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_tran(RealStamper& s, const std::vector<double>& x,
                    const TranParams& tp) override;
    void init_tran(const std::vector<double>& x) override;
    void commit_tran(const std::vector<double>& x, const TranParams& tp) override;
    void save_tran_state(std::vector<double>& out) const override;
    void load_tran_state(const std::vector<double>& in, size_t& pos) override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    Partition partition() const override { return Partition::Nonlinear; }
    std::string card(const NodeNamer& nn) const override;

private:
    DiodeModel model_;
    double scale_;
    double v_prev_ = 0.0;
    double i_prev_ = 0.0;
};

} // namespace snim::circuit
