#include "circuit/controlled.hpp"

#include "util/strings.hpp"

namespace snim::circuit {

namespace {
constexpr size_t kOutP = 0, kOutN = 1, kCp = 2, kCn = 3;
} // namespace

Vccs::Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId cp, NodeId cn, double gm)
    : Device(std::move(name), {out_p, out_n, cp, cn}), gm_(gm) {}

void Vccs::stamp_dc(RealStamper& s, const std::vector<double>&) const {
    s.transconductance(term(kOutP), term(kOutN), term(kCp), term(kCn), gm_);
}

void Vccs::stamp_ac(ComplexStamper& s, const std::vector<double>&, double) const {
    s.transconductance(term(kOutP), term(kOutN), term(kCp), term(kCn), {gm_, 0.0});
}

std::string Vccs::card(const NodeNamer& nn) const {
    return format("%s %s %s %s %s %s", spice_head('G', name()).c_str(), nn(term(kOutP)).c_str(),
                  nn(term(kOutN)).c_str(), nn(term(kCp)).c_str(),
                  nn(term(kCn)).c_str(), eng_format(gm_, 6).c_str());
}

Vcvs::Vcvs(std::string name, NodeId out_p, NodeId out_n, NodeId cp, NodeId cn,
           double gain)
    : Device(std::move(name), {out_p, out_n, cp, cn}), gain_(gain) {}

void Vcvs::stamp_dc(RealStamper& s, const std::vector<double>&) const {
    const NodeId br = aux_base();
    s.entry(term(kOutP), br, 1.0);
    s.entry(term(kOutN), br, -1.0);
    // Branch equation: v(out_p) - v(out_n) - gain * (v(cp) - v(cn)) = 0.
    s.entry(br, term(kOutP), 1.0);
    s.entry(br, term(kOutN), -1.0);
    s.entry(br, term(kCp), -gain_);
    s.entry(br, term(kCn), gain_);
}

void Vcvs::stamp_ac(ComplexStamper& s, const std::vector<double>&, double) const {
    const NodeId br = aux_base();
    s.entry(term(kOutP), br, {1.0, 0.0});
    s.entry(term(kOutN), br, {-1.0, 0.0});
    s.entry(br, term(kOutP), {1.0, 0.0});
    s.entry(br, term(kOutN), {-1.0, 0.0});
    s.entry(br, term(kCp), {-gain_, 0.0});
    s.entry(br, term(kCn), {gain_, 0.0});
}

std::string Vcvs::card(const NodeNamer& nn) const {
    return format("%s %s %s %s %s %s", spice_head('E', name()).c_str(), nn(term(kOutP)).c_str(),
                  nn(term(kOutN)).c_str(), nn(term(kCp)).c_str(),
                  nn(term(kCn)).c_str(), eng_format(gain_, 6).c_str());
}

} // namespace snim::circuit
