#include "circuit/varactor.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace snim::circuit {

namespace {
constexpr size_t kGate = 0, kWell = 1;

// log(cosh(x)) without overflow for large |x|.
double log_cosh(double x) {
    const double ax = std::fabs(x);
    if (ax > 20.0) return ax - std::log(2.0);
    return std::log(std::cosh(x));
}
} // namespace

Varactor::Varactor(std::string name, NodeId gate, NodeId well, tech::VaractorCard card,
                   double area_um2)
    : Device(std::move(name), {gate, well}), card_(std::move(card)), area_(area_um2) {
    SNIM_ASSERT(area_ > 0, "varactor '%s': non-positive area", this->name().c_str());
    cmax_ = card_.cmax_per_area * area_;
    cmin_ = cmax_ * card_.cmin_ratio;
    SNIM_ASSERT(cmin_ > 0 && cmin_ < cmax_, "varactor '%s': bad C-V card",
                this->name().c_str());
}

double Varactor::capacitance(double v) const {
    const double u = (v - card_.vmid) / card_.vslope;
    return cmin_ + (cmax_ - cmin_) * 0.5 * (1.0 + std::tanh(u));
}

double Varactor::charge(double v) const {
    // integral of C: Cmin v + (Cmax-Cmin)/2 [v + vslope ln cosh((v-vmid)/vs)]
    const double u = (v - card_.vmid) / card_.vslope;
    return cmin_ * v +
           0.5 * (cmax_ - cmin_) * (v + card_.vslope * log_cosh(u));
}

void Varactor::stamp_dc(RealStamper&, const std::vector<double>&) const {
    // Open at DC.
}

void Varactor::init_tran(const std::vector<double>& x) {
    const double v = volt(x, term(kGate)) - volt(x, term(kWell));
    q_prev_ = charge(v);
    i_prev_ = 0.0;
}

void Varactor::stamp_tran(RealStamper& s, const std::vector<double>& x,
                          const TranParams& tp) {
    // Charge-based companion: i = k (q(v) - q_n) - (order==2) i_n,
    // k = 2/dt (trap) or 1/dt (BE).  Newton linearisation in v:
    //   geq = k C(v),  ieq = i(v) - geq v.
    const double k = (tp.order == 2 ? 2.0 : 1.0) / tp.dt;
    const double v = volt(x, term(kGate)) - volt(x, term(kWell));
    const double i = k * (charge(v) - q_prev_) - (tp.order == 2 ? i_prev_ : 0.0);
    const double geq = k * capacitance(v);
    const double ieq = i - geq * v;
    s.admittance(term(kGate), term(kWell), geq);
    s.rhs_current(term(kGate), -ieq);
    s.rhs_current(term(kWell), ieq);
}

void Varactor::commit_tran(const std::vector<double>& x, const TranParams& tp) {
    const double k = (tp.order == 2 ? 2.0 : 1.0) / tp.dt;
    const double v = volt(x, term(kGate)) - volt(x, term(kWell));
    const double q = charge(v);
    const double i = k * (q - q_prev_) - (tp.order == 2 ? i_prev_ : 0.0);
    q_prev_ = q;
    i_prev_ = i;
}

void Varactor::save_tran_state(std::vector<double>& out) const {
    out.push_back(q_prev_);
    out.push_back(i_prev_);
}

void Varactor::load_tran_state(const std::vector<double>& in, size_t& pos) {
    q_prev_ = take_tran_state(in, pos, name().c_str());
    i_prev_ = take_tran_state(in, pos, name().c_str());
}

void Varactor::stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                        double omega) const {
    const double v = volt(xop, term(kGate)) - volt(xop, term(kWell));
    s.admittance(term(kGate), term(kWell), {0.0, omega * capacitance(v)});
}

std::string Varactor::card(const NodeNamer& nn) const {
    return format("%s %s %s %s area=%g", spice_head('Y', name()).c_str(), nn(term(kGate)).c_str(),
                  nn(term(kWell)).c_str(), card_.name.c_str(), area_);
}

} // namespace snim::circuit
