#include "circuit/diode.hpp"

#include <cmath>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace snim::circuit {

namespace {
constexpr size_t kAnode = 0, kCathode = 1;
constexpr double kMaxExpArg = 40.0; // current limiting for Newton robustness
constexpr double kFc = 0.5;
} // namespace

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeModel model,
             double area_scale)
    : Device(std::move(name), {anode, cathode}), model_(model), scale_(area_scale) {
    SNIM_ASSERT(scale_ > 0, "diode '%s': non-positive area", this->name().c_str());
}

double Diode::current(double v) const {
    const double nvt = model_.n * units::kVt300;
    const double a = v / nvt;
    if (a > kMaxExpArg) {
        // Linear extension beyond the exp-limit to avoid overflow.
        const double ie = model_.is * scale_ * (std::exp(kMaxExpArg) - 1.0);
        const double ge = model_.is * scale_ * std::exp(kMaxExpArg) / nvt;
        return ie + ge * (v - kMaxExpArg * nvt);
    }
    return model_.is * scale_ * (std::exp(a) - 1.0);
}

double Diode::conductance(double v) const {
    const double nvt = model_.n * units::kVt300;
    const double a = std::min(v / nvt, kMaxExpArg);
    return model_.is * scale_ * std::exp(a) / nvt;
}

double Diode::capacitance(double v) const {
    const double cj0 = model_.cj0 * scale_;
    if (cj0 <= 0) return 0.0;
    if (v < kFc * model_.pb) return cj0 * std::pow(1.0 - v / model_.pb, -model_.mj);
    const double f = std::pow(1.0 - kFc, -model_.mj);
    return cj0 * f *
           (1.0 + model_.mj * (v - kFc * model_.pb) / (model_.pb * (1.0 - kFc)));
}

void Diode::stamp_dc(RealStamper& s, const std::vector<double>& x) const {
    const double v = volt(x, term(kAnode)) - volt(x, term(kCathode));
    const double i = current(v);
    const double g = conductance(v);
    const double ieq = i - g * v;
    s.admittance(term(kAnode), term(kCathode), g);
    s.rhs_current(term(kAnode), -ieq);
    s.rhs_current(term(kCathode), ieq);
}

void Diode::init_tran(const std::vector<double>& x) {
    v_prev_ = volt(x, term(kAnode)) - volt(x, term(kCathode));
    i_prev_ = 0.0;
}

void Diode::stamp_tran(RealStamper& s, const std::vector<double>& x,
                       const TranParams& tp) {
    stamp_dc(s, x);
    const double c = capacitance(v_prev_);
    if (c <= 0) return;
    const double geq = (tp.order == 2 ? 2.0 : 1.0) * c / tp.dt;
    const double ieq = (tp.order == 2) ? (-geq * v_prev_ - i_prev_) : (-geq * v_prev_);
    s.admittance(term(kAnode), term(kCathode), geq);
    s.rhs_current(term(kAnode), -ieq);
    s.rhs_current(term(kCathode), ieq);
}

void Diode::commit_tran(const std::vector<double>& x, const TranParams& tp) {
    const double v = volt(x, term(kAnode)) - volt(x, term(kCathode));
    const double c = capacitance(v_prev_);
    if (c > 0) {
        const double geq = (tp.order == 2 ? 2.0 : 1.0) * c / tp.dt;
        i_prev_ = (tp.order == 2) ? geq * (v - v_prev_) - i_prev_ : geq * (v - v_prev_);
    } else {
        i_prev_ = 0.0;
    }
    v_prev_ = v;
}

void Diode::save_tran_state(std::vector<double>& out) const {
    out.push_back(v_prev_);
    out.push_back(i_prev_);
}

void Diode::load_tran_state(const std::vector<double>& in, size_t& pos) {
    v_prev_ = take_tran_state(in, pos, name().c_str());
    i_prev_ = take_tran_state(in, pos, name().c_str());
}

void Diode::stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                     double omega) const {
    const double v = volt(xop, term(kAnode)) - volt(xop, term(kCathode));
    s.admittance(term(kAnode), term(kCathode),
                 {conductance(v), omega * capacitance(v)});
}

std::string Diode::card(const NodeNamer& nn) const {
    return format("%s %s %s dmod area=%g", spice_head('D', name()).c_str(), nn(term(kAnode)).c_str(),
                  nn(term(kCathode)).c_str(), scale_);
}

} // namespace snim::circuit
