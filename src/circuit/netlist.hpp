// Netlist: the circuit container.  Owns devices, maps node names to MNA
// indices and assigns auxiliary (branch-current) unknowns.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "circuit/device.hpp"

namespace snim::circuit {

class Netlist {
public:
    Netlist() = default;
    Netlist(Netlist&&) = default;
    Netlist& operator=(Netlist&&) = default;

    /// Returns the node id for `name`, creating it if needed.  "0", "gnd"
    /// and "GND" alias the ground node (-1).
    NodeId node(std::string_view name);

    /// Node id or kGround; throws if the node does not exist.
    NodeId existing_node(std::string_view name) const;
    bool has_node(std::string_view name) const;

    const std::string& node_name(NodeId id) const;
    size_t node_count() const { return node_names_.size(); }

    /// Creates a device in place; returns a reference that stays valid for
    /// the netlist lifetime.
    template <class T, class... Args>
    T& add(Args&&... args) {
        auto dev = std::make_unique<T>(std::forward<Args>(args)...);
        T& ref = *dev;
        add_device(std::move(dev));
        return ref;
    }

    void add_device(std::unique_ptr<Device> dev);

    /// Removes the device by name (nodes stay); throws if absent.
    void remove(std::string_view name);

    Device* find(std::string_view name);
    const Device* find(std::string_view name) const;
    template <class T>
    T* find_as(std::string_view name) {
        return dynamic_cast<T*>(find(name));
    }

    const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }
    size_t device_count() const { return devices_.size(); }

    /// Per-partition device view (see circuit::Partition), the single
    /// source of truth analyses use to decide between linear and Newton
    /// solves and to split transient assembly.  Classifies every device —
    /// including disabled ones, which analyses skip at stamp time anyway —
    /// so the view stays valid across ablation toggles.  Netlist order is
    /// preserved within each class.
    struct PartitionView {
        std::vector<Device*> linear_static;
        std::vector<Device*> linear_dynamic;
        std::vector<Device*> nonlinear;
        bool has_nonlinear() const { return !nonlinear.empty(); }
    };
    PartitionView partition() const;

    /// Assigns auxiliary unknown indices.  Called automatically by analyses;
    /// idempotent until a device or node is added.
    void finalize();
    bool finalized() const { return finalized_; }

    /// Total unknowns (nodes + branch currents); requires finalize().
    size_t unknown_count() const;

    /// Creates a fresh unique node (used by extractors for internal nodes).
    NodeId fresh_node(const std::string& prefix);

    /// All node names (index = NodeId).
    const std::vector<std::string>& node_names() const { return node_names_; }

    /// Moves every device and node of `other` into this netlist, renaming
    /// nodes with `node_prefix` except those listed in `shared` (which merge
    /// with same-named nodes here).  Used to stitch extracted models
    /// (substrate, interconnect, package) onto the circuit.
    void absorb(Netlist&& other, const std::string& node_prefix,
                const std::vector<std::string>& shared);

private:
    std::vector<std::unique_ptr<Device>> devices_;
    std::vector<std::string> node_names_;
    std::unordered_map<std::string, NodeId> node_index_;
    size_t aux_total_ = 0;
    bool finalized_ = false;
    int fresh_counter_ = 0;
};

} // namespace snim::circuit
