#include "circuit/spice_parser.hpp"

#include <cctype>
#include <map>

#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/varactor.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace snim::circuit {

namespace {

[[noreturn]] void fail(int line, const char* what, const std::string& detail = "") {
    raise("spice parse error at line %d: %s%s%s", line, what,
          detail.empty() ? "" : ": ", detail.c_str());
}

// Tokenises a logical line, keeping function-call groups like
// "sin(0 0.1 10meg)" as a single token.
std::vector<std::string> tokenize(const std::string& line, int lineno) {
    std::vector<std::string> toks;
    size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
        if (i >= line.size()) break;
        size_t j = i;
        int depth = 0;
        while (j < line.size()) {
            const char c = line[j];
            if (c == '(') ++depth;
            if (c == ')') {
                if (depth == 0) fail(lineno, "unbalanced ')'");
                --depth;
            }
            if (depth == 0 && std::isspace(static_cast<unsigned char>(c)) &&
                // allow "sin (" style with space before '(' only when depth>0
                !(j + 1 < line.size() && line[j + 1] == '('))
                break;
            ++j;
        }
        if (depth != 0) fail(lineno, "unbalanced '('");
        toks.push_back(line.substr(i, j - i));
        i = j;
    }
    return toks;
}

struct KeyVal {
    std::map<std::string, std::string> kv;
    bool has(const std::string& k) const { return kv.count(k) > 0; }
    double num(const std::string& k, double fallback) const {
        auto it = kv.find(k);
        if (it == kv.end()) return fallback;
        return parse_spice_number(it->second);
    }
};

// Splits trailing "key=value" tokens; returns remaining positional tokens.
std::vector<std::string> split_kv(const std::vector<std::string>& toks, size_t start,
                                  KeyVal& out) {
    std::vector<std::string> pos;
    for (size_t i = start; i < toks.size(); ++i) {
        const auto eq = toks[i].find('=');
        if (eq != std::string::npos) {
            out.kv[to_lower(toks[i].substr(0, eq))] = toks[i].substr(eq + 1);
        } else {
            pos.push_back(toks[i]);
        }
    }
    return pos;
}

// Parses the argument list of fn-call tokens like "sin(a b c)".
std::vector<double> fn_args(const std::string& tok, int lineno) {
    const auto open = tok.find('(');
    const auto close = tok.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
        fail(lineno, "malformed function token", tok);
    std::vector<double> args;
    for (const auto& a : split(tok.substr(open + 1, close - open - 1), " \t,"))
        args.push_back(parse_spice_number(a));
    return args;
}

// Parses the source value spec shared by V and I cards starting at toks[3].
void parse_source_spec(const std::vector<std::string>& toks, int lineno, Waveform& wave,
                       AcSpec& ac) {
    double dc = 0.0;
    bool have_tran = false;
    size_t i = 3;
    while (i < toks.size()) {
        const std::string low = to_lower(toks[i]);
        if (low == "dc") {
            if (i + 1 >= toks.size()) fail(lineno, "dc needs a value");
            dc = parse_spice_number(toks[++i]);
        } else if (low == "ac") {
            if (i + 1 >= toks.size()) fail(lineno, "ac needs a magnitude");
            ac.mag = parse_spice_number(toks[++i]);
            if (i + 1 < toks.size() && is_spice_number(toks[i + 1]))
                ac.phase_rad = parse_spice_number(toks[++i]) * units::kPi / 180.0;
        } else if (starts_with_nocase(low, "sin(")) {
            auto a = fn_args(toks[i], lineno);
            if (a.size() < 3) fail(lineno, "sin needs (offset amp freq)");
            const double ph = a.size() > 3 ? a[3] * units::kPi / 180.0 : 0.0;
            const double del = a.size() > 4 ? a[4] : 0.0;
            wave = Waveform::sin(a[0], a[1], a[2], ph, del);
            have_tran = true;
        } else if (starts_with_nocase(low, "pulse(")) {
            auto a = fn_args(toks[i], lineno);
            if (a.size() < 7) fail(lineno, "pulse needs 7 arguments");
            wave = Waveform::pulse(a[0], a[1], a[2], a[3], a[4], a[5], a[6]);
            have_tran = true;
        } else if (starts_with_nocase(low, "pwl(")) {
            auto a = fn_args(toks[i], lineno);
            if (a.size() < 2 || a.size() % 2 != 0) fail(lineno, "pwl needs t,v pairs");
            std::vector<std::pair<double, double>> pts;
            for (size_t k = 0; k < a.size(); k += 2) pts.emplace_back(a[k], a[k + 1]);
            wave = Waveform::pwl(std::move(pts));
            have_tran = true;
        } else if (is_spice_number(toks[i])) {
            dc = parse_spice_number(toks[i]);
        } else {
            fail(lineno, "unrecognised source token", toks[i]);
        }
        ++i;
    }
    if (!have_tran) wave = Waveform::dc(dc);
}

struct ModelDefs {
    std::map<std::string, tech::MosModelCard> mos;
    std::map<std::string, DiodeModel> diode;
    std::map<std::string, tech::VaractorCard> var;
};

void parse_model(const std::vector<std::string>& toks, int lineno, ModelDefs& defs) {
    if (toks.size() < 3) fail(lineno, ".model needs a name and a type");
    const std::string mname = to_lower(toks[1]);
    std::string type = to_lower(toks[2]);
    // Parameters may be inside parentheses attached to the type token or as
    // trailing key=value tokens.
    KeyVal kv;
    const auto open = type.find('(');
    if (open != std::string::npos) {
        std::string args = type.substr(open + 1);
        if (!args.empty() && args.back() == ')') args.pop_back();
        type = type.substr(0, open);
        for (const auto& p : split(args, " \t,")) {
            const auto eq = p.find('=');
            if (eq == std::string::npos) fail(lineno, "bad model parameter", p);
            kv.kv[to_lower(p.substr(0, eq))] = p.substr(eq + 1);
        }
    }
    split_kv(toks, 3, kv);

    if (type == "nmos" || type == "pmos") {
        tech::MosModelCard c;
        c.name = mname;
        c.is_nmos = (type == "nmos");
        c.vt0 = kv.num("vto", kv.num("vt0", c.vt0));
        c.kp = kv.num("kp", c.kp);
        c.gamma = kv.num("gamma", c.gamma);
        c.phi = kv.num("phi", c.phi);
        c.lambda = kv.num("lambda", c.lambda);
        c.cox = kv.num("cox", c.cox);
        c.cj = kv.num("cj", c.cj);
        c.cjsw = kv.num("cjsw", c.cjsw);
        c.pb = kv.num("pb", c.pb);
        c.mj = kv.num("mj", c.mj);
        c.cgso = kv.num("cgso", c.cgso);
        c.cgdo = kv.num("cgdo", c.cgdo);
        defs.mos[mname] = c;
    } else if (type == "d") {
        DiodeModel d;
        d.is = kv.num("is", d.is);
        d.n = kv.num("n", d.n);
        d.cj0 = kv.num("cjo", kv.num("cj0", d.cj0));
        d.pb = kv.num("pb", d.pb);
        d.mj = kv.num("mj", d.mj);
        defs.diode[mname] = d;
    } else if (type == "nvar") {
        tech::VaractorCard v;
        v.name = mname;
        v.cmax_per_area = kv.num("cmax_area", v.cmax_per_area);
        v.cmin_ratio = kv.num("cmin_ratio", v.cmin_ratio);
        v.vmid = kv.num("vmid", v.vmid);
        v.vslope = kv.num("vslope", v.vslope);
        defs.var[mname] = v;
    } else {
        fail(lineno, "unsupported model type", type);
    }
}

struct SubcktDef {
    std::string name;
    std::vector<std::string> ports;
    std::vector<std::pair<int, std::string>> body; // (lineno, card text)
};

/// Which token positions of a card are node names (for subckt expansion).
std::pair<size_t, size_t> node_token_range(const std::string& head, size_t ntokens) {
    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(head[0])));
    switch (kind) {
        case 'r':
        case 'c':
        case 'l':
        case 'v':
        case 'i':
        case 'd':
        case 'y': return {1, 2};
        case 'm':
        case 'g':
        case 'e': return {1, 4};
        case 'x': return {1, ntokens - 2}; // all but head and subckt name
        default: return {0, 0};
    }
}

/// Expands X cards against the collected subckt definitions (textual macro
/// expansion with hierarchical node/device prefixes).
void expand_instance(const std::vector<std::string>& toks, int lineno,
                     const std::map<std::string, SubcktDef>& defs,
                     std::vector<std::pair<int, std::string>>& out, int depth) {
    if (depth > 8) fail(lineno, "subckt nesting too deep");
    if (toks.size() < 2) fail(lineno, "X card needs a subckt name");
    const std::string inst = to_lower(toks[0]).substr(1);
    const std::string subname = to_lower(toks.back());
    auto it = defs.find(subname);
    if (it == defs.end()) fail(lineno, "unknown subckt", subname);
    const SubcktDef& def = it->second;
    if (toks.size() - 2 != def.ports.size())
        fail(lineno, "subckt port count mismatch", subname);

    std::map<std::string, std::string> node_map;
    for (size_t i = 0; i < def.ports.size(); ++i)
        node_map[to_lower(def.ports[i])] = toks[i + 1];

    auto map_node = [&](const std::string& n) -> std::string {
        const std::string low = to_lower(n);
        if (low == "0" || low == "gnd") return n;
        auto m = node_map.find(low);
        if (m != node_map.end()) return m->second;
        return "x" + inst + "." + n;
    };

    for (const auto& [bline, btext] : def.body) {
        auto btoks = tokenize(btext, bline);
        if (btoks.empty()) continue;
        // Rename the device and its node tokens.
        std::string head = btoks[0];
        btoks[0] = std::string(1, head[0]) + "x" + inst + "." + head.substr(1);
        const auto [lo, hi] = node_token_range(head, btoks.size());
        for (size_t p = lo; p > 0 && p <= hi && p < btoks.size(); ++p)
            btoks[p] = map_node(btoks[p]);
        if (std::tolower(static_cast<unsigned char>(head[0])) == 'x') {
            expand_instance(btoks, bline, defs, out, depth + 1);
        } else {
            std::string joined;
            for (const auto& t : btoks) {
                if (!joined.empty()) joined += ' ';
                joined += t;
            }
            out.emplace_back(bline, joined);
        }
    }
}

} // namespace

ParseResult parse_spice(const std::string& text, const tech::Technology* tech) {
    ParseResult out;
    ModelDefs defs;

    // Standard SPICE: the first line is always the title.
    const auto raw_lines = split_keep(text, '\n');
    if (!raw_lines.empty()) out.title = trim(raw_lines[0]);

    // Join continuations, strip comments, keep line numbers of card starts.
    std::vector<std::pair<int, std::string>> lines;
    {
        int lineno = 1;
        for (size_t li = 1; li < raw_lines.size(); ++li) {
            const auto& raw = raw_lines[li];
            ++lineno;
            std::string s = trim(raw);
            const auto semi = s.find(';');
            if (semi != std::string::npos) s = trim(s.substr(0, semi));
            if (s.empty() || s[0] == '*') continue;
            if (s[0] == '+') {
                if (lines.empty()) fail(lineno, "continuation with no previous card");
                lines.back().second += " " + trim(s.substr(1));
            } else {
                lines.emplace_back(lineno, s);
            }
        }
    }

    // Collect .subckt definitions and expand X instances textually.
    {
        std::map<std::string, SubcktDef> subckts;
        std::vector<std::pair<int, std::string>> main_lines;
        SubcktDef* open_def = nullptr;
        for (const auto& [lineno, line] : lines) {
            auto toks = tokenize(line, lineno);
            if (toks.empty()) continue;
            if (equals_nocase(toks[0], ".subckt")) {
                if (open_def) fail(lineno, "nested .subckt definitions not supported");
                if (toks.size() < 3) fail(lineno, ".subckt needs a name and ports");
                SubcktDef def;
                def.name = to_lower(toks[1]);
                def.ports.assign(toks.begin() + 2, toks.end());
                open_def = &subckts.emplace(def.name, std::move(def)).first->second;
            } else if (equals_nocase(toks[0], ".ends")) {
                if (!open_def) fail(lineno, ".ends without .subckt");
                open_def = nullptr;
            } else if (open_def) {
                open_def->body.emplace_back(lineno, line);
            } else {
                main_lines.emplace_back(lineno, line);
            }
        }
        if (open_def) raise("spice parse error: unterminated .subckt '%s'",
                            open_def->name.c_str());
        lines.clear();
        for (const auto& [lineno, line] : main_lines) {
            auto toks = tokenize(line, lineno);
            if (!toks.empty() &&
                std::tolower(static_cast<unsigned char>(toks[0][0])) == 'x' &&
                toks[0][0] != '.') {
                expand_instance(toks, lineno, subckts, lines, 0);
            } else {
                lines.emplace_back(lineno, line);
            }
        }
    }

    // First pass: model cards (they may appear after their use).
    const size_t start = 0;
    for (size_t li = start; li < lines.size(); ++li) {
        const auto& [lineno, line] = lines[li];
        auto toks = tokenize(line, lineno);
        if (!toks.empty() && equals_nocase(toks[0], ".model")) parse_model(toks, lineno, defs);
    }

    Netlist& nl = out.netlist;
    for (size_t li = start; li < lines.size(); ++li) {
        const auto& [lineno, line] = lines[li];
        auto toks = tokenize(line, lineno);
        if (toks.empty()) continue;
        const std::string head = to_lower(toks[0]);
        if (head[0] == '.') {
            if (head == ".end" || head == ".model") continue;
            fail(lineno, "unsupported dot card", head);
        }
        // The full lower-cased card head is the device name ("r1", "cload"),
        // so different device types can never collide.
        const std::string& devname = head;
        const char kind = head[0];
        auto need = [&](size_t n) {
            if (toks.size() < n) fail(lineno, "too few fields", line);
        };
        switch (kind) {
            case 'r': {
                need(4);
                nl.add<Resistor>(devname, nl.node(toks[1]), nl.node(toks[2]),
                                 parse_spice_number(toks[3]));
                break;
            }
            case 'c': {
                need(4);
                nl.add<Capacitor>(devname, nl.node(toks[1]), nl.node(toks[2]),
                                  parse_spice_number(toks[3]));
                break;
            }
            case 'l': {
                need(4);
                KeyVal kv;
                auto pos = split_kv(toks, 3, kv);
                if (pos.empty()) fail(lineno, "inductor needs a value");
                nl.add<Inductor>(devname, nl.node(toks[1]), nl.node(toks[2]),
                                 parse_spice_number(pos[0]), kv.num("rser", 0.0));
                break;
            }
            case 'v':
            case 'i': {
                need(4);
                Waveform w = Waveform::dc(0.0);
                AcSpec ac;
                parse_source_spec(toks, lineno, w, ac);
                if (kind == 'v')
                    nl.add<VSource>(devname, nl.node(toks[1]), nl.node(toks[2]), w, ac);
                else
                    nl.add<ISource>(devname, nl.node(toks[1]), nl.node(toks[2]), w, ac);
                break;
            }
            case 'm': {
                need(6);
                const std::string mname = to_lower(toks[5]);
                tech::MosModelCard card;
                if (defs.mos.count(mname)) {
                    card = defs.mos[mname];
                } else if (tech) {
                    card = tech->mos_model(mname);
                } else {
                    fail(lineno, "unknown MOS model", mname);
                }
                KeyVal kv;
                split_kv(toks, 6, kv);
                MosGeometry g;
                g.w = kv.num("w", g.w * 1e-6) * 1e6; // values carry SI suffixes
                g.l = kv.num("l", g.l * 1e-6) * 1e6;
                g.m = static_cast<int>(kv.num("m", 1));
                g.ad = kv.num("ad", 0.0) * 1e12;
                g.as = kv.num("as", 0.0) * 1e12;
                g.pd = kv.num("pd", 0.0) * 1e6;
                g.ps = kv.num("ps", 0.0) * 1e6;
                nl.add<Mosfet>(devname, nl.node(toks[1]), nl.node(toks[2]),
                               nl.node(toks[3]), nl.node(toks[4]), card, g);
                break;
            }
            case 'd': {
                need(4);
                const std::string mname = to_lower(toks[3]);
                if (!defs.diode.count(mname)) fail(lineno, "unknown diode model", mname);
                const double area = toks.size() > 4 ? parse_spice_number(toks[4]) : 1.0;
                nl.add<Diode>(devname, nl.node(toks[1]), nl.node(toks[2]),
                              defs.diode[mname], area);
                break;
            }
            case 'g': {
                need(6);
                nl.add<Vccs>(devname, nl.node(toks[1]), nl.node(toks[2]),
                             nl.node(toks[3]), nl.node(toks[4]),
                             parse_spice_number(toks[5]));
                break;
            }
            case 'e': {
                need(6);
                nl.add<Vcvs>(devname, nl.node(toks[1]), nl.node(toks[2]),
                             nl.node(toks[3]), nl.node(toks[4]),
                             parse_spice_number(toks[5]));
                break;
            }
            case 'y': {
                need(4);
                const std::string mname = to_lower(toks[3]);
                KeyVal kv;
                split_kv(toks, 4, kv);
                tech::VaractorCard card;
                if (defs.var.count(mname)) {
                    card = defs.var[mname];
                } else if (tech) {
                    card = tech->varactor_model(mname);
                } else {
                    fail(lineno, "unknown varactor model", mname);
                }
                nl.add<Varactor>(devname, nl.node(toks[1]), nl.node(toks[2]), card,
                                 kv.num("area", 100.0));
                break;
            }
            default:
                fail(lineno, "unsupported device card", head);
        }
    }
    return out;
}

} // namespace snim::circuit
