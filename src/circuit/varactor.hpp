// Accumulation-mode NMOS varactor: a two-terminal nonlinear capacitor with a
// smooth tanh C-V transition between depletion (Cmin) and accumulation
// (Cmax).  The charge formulation is exact (Q is the integral of C), so
// transient simulation conserves charge -- essential for a VCO tank where the
// varactor sets the oscillation frequency.
#pragma once

#include "circuit/device.hpp"
#include "tech/technology.hpp"

namespace snim::circuit {

class Varactor : public Device {
public:
    /// `gate` and `well` are the tank node and the tuning node; `area_um2`
    /// scales the card's per-area capacitances.
    Varactor(std::string name, NodeId gate, NodeId well, tech::VaractorCard card,
             double area_um2);

    /// C(v) with v = V(gate) - V(well).
    double capacitance(double v) const;
    /// Q(v), the exact integral of C.
    double charge(double v) const;
    double cmax() const { return cmax_; }
    double cmin() const { return cmin_; }

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_tran(RealStamper& s, const std::vector<double>& x,
                    const TranParams& tp) override;
    void init_tran(const std::vector<double>& x) override;
    void commit_tran(const std::vector<double>& x, const TranParams& tp) override;
    void save_tran_state(std::vector<double>& out) const override;
    void load_tran_state(const std::vector<double>& in, size_t& pos) override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    Partition partition() const override { return Partition::Nonlinear; }
    std::string card(const NodeNamer& nn) const override;

private:
    tech::VaractorCard card_;
    double area_;
    double cmax_, cmin_;
    // Transient state: charge and current at the last accepted step.
    double q_prev_ = 0.0;
    double i_prev_ = 0.0;
};

} // namespace snim::circuit
