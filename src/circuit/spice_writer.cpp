#include "circuit/spice_writer.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace snim::circuit {

std::string write_spice(const Netlist& netlist, const std::string& title) {
    // The first line of a SPICE deck is always the title.
    std::string out = (title.empty() ? "* snim netlist" : title) + "\n";
    const NodeNamer nn = [&](NodeId id) { return netlist.node_name(id); };
    for (const auto& d : netlist.devices()) {
        out += d->card(nn);
        out += '\n';
    }
    out += ".end\n";
    return out;
}

void save_spice(const Netlist& netlist, const std::string& path,
                const std::string& title) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) raise("cannot open '%s' for writing", path.c_str());
    const std::string s = write_spice(netlist, title);
    const size_t n = std::fwrite(s.data(), 1, s.size(), f);
    std::fclose(f);
    if (n != s.size()) raise("short write to '%s'", path.c_str());
}

} // namespace snim::circuit
