#include "circuit/passives.hpp"

#include "util/strings.hpp"

namespace snim::circuit {

namespace {
constexpr size_t kA = 0;
constexpr size_t kB = 1;
} // namespace

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Device(std::move(name), {a, b}), r_(resistance) {
    SNIM_ASSERT(r_ > 0, "resistor '%s': non-positive resistance %g",
                this->name().c_str(), r_);
}

void Resistor::set_resistance(double r) {
    SNIM_ASSERT(r > 0, "resistor '%s': non-positive resistance %g", name().c_str(), r);
    r_ = r;
}

void Resistor::stamp_dc(RealStamper& s, const std::vector<double>&) const {
    s.admittance(term(kA), term(kB), 1.0 / r_);
}

void Resistor::stamp_ac(ComplexStamper& s, const std::vector<double>&, double) const {
    s.admittance(term(kA), term(kB), {1.0 / r_, 0.0});
}

double Resistor::current(const std::vector<double>& x) const {
    return (volt(x, term(kA)) - volt(x, term(kB))) / r_;
}

std::string Resistor::card(const NodeNamer& nn) const {
    return format("%s %s %s %s", spice_head('R', name()).c_str(),
                  nn(term(kA)).c_str(), nn(term(kB)).c_str(),
                  eng_format(r_, 6).c_str());
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance)
    : Device(std::move(name), {a, b}), c_(capacitance) {
    SNIM_ASSERT(c_ > 0, "capacitor '%s': non-positive capacitance %g",
                this->name().c_str(), c_);
}

void Capacitor::set_capacitance(double c) {
    SNIM_ASSERT(c > 0, "capacitor '%s': non-positive capacitance %g", name().c_str(), c);
    c_ = c;
}

void Capacitor::stamp_dc(RealStamper&, const std::vector<double>&) const {
    // Open circuit at DC.
}

void Capacitor::init_tran(const std::vector<double>& x) {
    v_prev_ = volt(x, term(kA)) - volt(x, term(kB));
    i_prev_ = 0.0;
}

void Capacitor::stamp_tran(RealStamper& s, const std::vector<double>&,
                           const TranParams& tp) {
    // Companion model: trapezoidal  i = (2C/dt)(v - v_n) - i_n
    //                  BE           i = (C/dt)(v - v_n)
    const double geq = (tp.order == 2 ? 2.0 : 1.0) * c_ / tp.dt;
    const double ieq = (tp.order == 2) ? (-geq * v_prev_ - i_prev_) : (-geq * v_prev_);
    s.admittance(term(kA), term(kB), geq);
    // ieq is the history current of the Norton companion (flows a -> b).
    s.rhs_current(term(kA), -ieq);
    s.rhs_current(term(kB), ieq);
}

void Capacitor::commit_tran(const std::vector<double>& x, const TranParams& tp) {
    const double v = volt(x, term(kA)) - volt(x, term(kB));
    const double geq = (tp.order == 2 ? 2.0 : 1.0) * c_ / tp.dt;
    const double i = (tp.order == 2) ? geq * (v - v_prev_) - i_prev_ : geq * (v - v_prev_);
    v_prev_ = v;
    i_prev_ = i;
}

void Capacitor::save_tran_state(std::vector<double>& out) const {
    out.push_back(v_prev_);
    out.push_back(i_prev_);
}

void Capacitor::load_tran_state(const std::vector<double>& in, size_t& pos) {
    v_prev_ = take_tran_state(in, pos, name().c_str());
    i_prev_ = take_tran_state(in, pos, name().c_str());
}

void Capacitor::stamp_ac(ComplexStamper& s, const std::vector<double>&,
                         double omega) const {
    s.admittance(term(kA), term(kB), {0.0, omega * c_});
}

std::string Capacitor::card(const NodeNamer& nn) const {
    return format("%s %s %s %s", spice_head('C', name()).c_str(),
                  nn(term(kA)).c_str(), nn(term(kB)).c_str(),
                  eng_format(c_, 6).c_str());
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance,
                   double series_res)
    : Device(std::move(name), {a, b}), l_(inductance), rs_(series_res) {
    SNIM_ASSERT(l_ > 0, "inductor '%s': non-positive inductance %g",
                this->name().c_str(), l_);
    SNIM_ASSERT(rs_ >= 0, "inductor '%s': negative series resistance", this->name().c_str());
}

void Inductor::stamp_dc(RealStamper& s, const std::vector<double>&) const {
    const NodeId br = aux_base();
    // KCL: branch current leaves a, enters b.
    s.entry(term(kA), br, 1.0);
    s.entry(term(kB), br, -1.0);
    // Branch equation: v_a - v_b - R i = 0 (short at DC through R).
    s.entry(br, term(kA), 1.0);
    s.entry(br, term(kB), -1.0);
    s.entry(br, br, -rs_);
}

void Inductor::init_tran(const std::vector<double>& x) {
    i_prev_ = volt(x, aux_base());
    v_prev_ = 0.0; // at DC the inductor voltage (net of R) is zero
}

void Inductor::stamp_tran(RealStamper& s, const std::vector<double>&,
                          const TranParams& tp) {
    const NodeId br = aux_base();
    s.entry(term(kA), br, 1.0);
    s.entry(term(kB), br, -1.0);
    // Trapezoidal: vL = (2L/dt)(i - i_n) - vL_n, with vL = v_a - v_b - R i.
    const double req = (tp.order == 2 ? 2.0 : 1.0) * l_ / tp.dt;
    const double veq = (tp.order == 2) ? (-req * i_prev_ - v_prev_) : (-req * i_prev_);
    s.entry(br, term(kA), 1.0);
    s.entry(br, term(kB), -1.0);
    s.entry(br, br, -(rs_ + req));
    s.rhs_entry(br, veq);
}

void Inductor::commit_tran(const std::vector<double>& x, const TranParams& tp) {
    const double i = volt(x, aux_base());
    const double req = (tp.order == 2 ? 2.0 : 1.0) * l_ / tp.dt;
    const double vl = (tp.order == 2) ? req * (i - i_prev_) - v_prev_ : req * (i - i_prev_);
    i_prev_ = i;
    v_prev_ = vl;
}

void Inductor::save_tran_state(std::vector<double>& out) const {
    out.push_back(i_prev_);
    out.push_back(v_prev_);
}

void Inductor::load_tran_state(const std::vector<double>& in, size_t& pos) {
    i_prev_ = take_tran_state(in, pos, name().c_str());
    v_prev_ = take_tran_state(in, pos, name().c_str());
}

void Inductor::stamp_ac(ComplexStamper& s, const std::vector<double>&,
                        double omega) const {
    const NodeId br = aux_base();
    s.entry(term(kA), br, {1.0, 0.0});
    s.entry(term(kB), br, {-1.0, 0.0});
    s.entry(br, term(kA), {1.0, 0.0});
    s.entry(br, term(kB), {-1.0, 0.0});
    s.entry(br, br, {-rs_, -omega * l_});
}

double Inductor::current(const std::vector<double>& x) const {
    return volt(x, aux_base());
}

std::string Inductor::card(const NodeNamer& nn) const {
    if (rs_ > 0)
        return format("%s %s %s %s rser=%s", spice_head('L', name()).c_str(),
                      nn(term(kA)).c_str(), nn(term(kB)).c_str(),
                      eng_format(l_, 6).c_str(), eng_format(rs_, 6).c_str());
    return format("%s %s %s %s", spice_head('L', name()).c_str(),
                  nn(term(kA)).c_str(), nn(term(kB)).c_str(),
                  eng_format(l_, 6).c_str());
}

} // namespace snim::circuit
