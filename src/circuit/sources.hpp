// Independent sources with DC, AC and transient (SIN / PULSE / PWL)
// specifications -- the substrate noise injector of the paper is a SIN
// current/voltage source attached to the SUB contact.
#pragma once

#include <optional>

#include "circuit/device.hpp"

namespace snim::circuit {

/// Time-domain waveform description.
class Waveform {
public:
    /// Constant value.
    static Waveform dc(double value);
    /// offset + amp * sin(2 pi freq (t - delay) + phase_rad) for t >= delay.
    static Waveform sin(double offset, double amp, double freq, double phase_rad = 0.0,
                        double delay = 0.0);
    static Waveform pulse(double v1, double v2, double delay, double rise, double fall,
                          double width, double period);
    /// Piecewise linear (time, value) points; constant extrapolation.
    static Waveform pwl(std::vector<std::pair<double, double>> points);

    double value(double t) const;
    /// Value at t = 0 (the DC operating-point value).
    double dc_value() const { return value(0.0); }
    std::string describe() const;

private:
    enum class Kind { Dc, Sin, Pulse, Pwl };
    Kind kind_ = Kind::Dc;
    double p_[7] = {0, 0, 0, 0, 0, 0, 0};
    std::vector<std::pair<double, double>> pwl_;
};

/// Small-signal excitation (magnitude & phase) for AC analysis.
struct AcSpec {
    double mag = 0.0;
    double phase_rad = 0.0;
    std::complex<double> phasor() const {
        return {mag * std::cos(phase_rad), mag * std::sin(phase_rad)};
    }
};

/// Independent voltage source; adds one branch-current unknown.
class VSource : public Device {
public:
    VSource(std::string name, NodeId plus, NodeId minus, Waveform wave,
            AcSpec ac = {});

    size_t aux_count() const override { return 1; }

    const Waveform& waveform() const { return wave_; }
    void set_waveform(Waveform w) { wave_ = std::move(w); }
    void set_ac(AcSpec ac) { ac_ = ac; }
    const AcSpec& ac() const { return ac_; }

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_tran(RealStamper& s, const std::vector<double>& x,
                    const TranParams& tp) override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    std::string card(const NodeNamer& nn) const override;

    /// Source branch current (flows plus -> minus inside the source is
    /// negative convention; this returns the current delivered out of +).
    double current(const std::vector<double>& x) const;

private:
    void stamp_value(RealStamper& s, double value) const;

    Waveform wave_;
    AcSpec ac_;
};

/// Independent current source: current flows from `from` through the source
/// into `to` (i.e. injects into `to`).
class ISource : public Device {
public:
    ISource(std::string name, NodeId from, NodeId to, Waveform wave, AcSpec ac = {});

    const Waveform& waveform() const { return wave_; }
    void set_waveform(Waveform w) { wave_ = std::move(w); }
    void set_ac(AcSpec ac) { ac_ = ac; }
    const AcSpec& ac() const { return ac_; }

    void stamp_dc(RealStamper& s, const std::vector<double>& x) const override;
    void stamp_tran(RealStamper& s, const std::vector<double>& x,
                    const TranParams& tp) override;
    void stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                  double omega) const override;
    std::string card(const NodeNamer& nn) const override;

private:
    Waveform wave_;
    AcSpec ac_;
};

} // namespace snim::circuit
