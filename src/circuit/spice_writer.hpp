// Writes a Netlist back out as SPICE-like text (the extracted-model dump the
// paper's flow would hand to Spectre RF).
#pragma once

#include <string>

#include "circuit/netlist.hpp"

namespace snim::circuit {

std::string write_spice(const Netlist& netlist, const std::string& title = "");

/// Writes to a file; throws snim::Error on I/O failure.
void save_spice(const Netlist& netlist, const std::string& path,
                const std::string& title = "");

} // namespace snim::circuit
