#include "circuit/sources.hpp"

#include <cmath>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace snim::circuit {

namespace {
constexpr size_t kPlus = 0;
constexpr size_t kMinus = 1;
} // namespace

// ---------------------------------------------------------------- Waveform

Waveform Waveform::dc(double value) {
    Waveform w;
    w.kind_ = Kind::Dc;
    w.p_[0] = value;
    return w;
}

Waveform Waveform::sin(double offset, double amp, double freq, double phase_rad,
                       double delay) {
    SNIM_ASSERT(freq > 0, "sin waveform needs positive frequency");
    Waveform w;
    w.kind_ = Kind::Sin;
    w.p_[0] = offset;
    w.p_[1] = amp;
    w.p_[2] = freq;
    w.p_[3] = phase_rad;
    w.p_[4] = delay;
    return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise, double fall,
                         double width, double period) {
    SNIM_ASSERT(period > 0 && rise > 0 && fall > 0, "bad pulse timing");
    Waveform w;
    w.kind_ = Kind::Pulse;
    w.p_[0] = v1;
    w.p_[1] = v2;
    w.p_[2] = delay;
    w.p_[3] = rise;
    w.p_[4] = fall;
    w.p_[5] = width;
    w.p_[6] = period;
    return w;
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
    SNIM_ASSERT(!points.empty(), "pwl needs points");
    for (size_t i = 1; i < points.size(); ++i)
        SNIM_ASSERT(points[i].first > points[i - 1].first, "pwl times must increase");
    Waveform w;
    w.kind_ = Kind::Pwl;
    w.pwl_ = std::move(points);
    return w;
}

double Waveform::value(double t) const {
    switch (kind_) {
        case Kind::Dc:
            return p_[0];
        case Kind::Sin: {
            if (t < p_[4]) return p_[0] + p_[1] * std::sin(p_[3]);
            return p_[0] +
                   p_[1] * std::sin(units::kTwoPi * p_[2] * (t - p_[4]) + p_[3]);
        }
        case Kind::Pulse: {
            if (t < p_[2]) return p_[0];
            const double tp = std::fmod(t - p_[2], p_[6]);
            if (tp < p_[3]) return p_[0] + (p_[1] - p_[0]) * tp / p_[3];
            if (tp < p_[3] + p_[5]) return p_[1];
            if (tp < p_[3] + p_[5] + p_[4])
                return p_[1] + (p_[0] - p_[1]) * (tp - p_[3] - p_[5]) / p_[4];
            return p_[0];
        }
        case Kind::Pwl: {
            if (t <= pwl_.front().first) return pwl_.front().second;
            if (t >= pwl_.back().first) return pwl_.back().second;
            for (size_t i = 1; i < pwl_.size(); ++i) {
                if (t <= pwl_[i].first) {
                    const double f = (t - pwl_[i - 1].first) /
                                     (pwl_[i].first - pwl_[i - 1].first);
                    return pwl_[i - 1].second +
                           f * (pwl_[i].second - pwl_[i - 1].second);
                }
            }
            return pwl_.back().second;
        }
    }
    return 0.0;
}

std::string Waveform::describe() const {
    switch (kind_) {
        case Kind::Dc: return format("dc %s", eng_format(p_[0]).c_str());
        case Kind::Sin:
            return format("sin(%s %s %s)", eng_format(p_[0]).c_str(),
                          eng_format(p_[1]).c_str(), eng_format(p_[2]).c_str());
        case Kind::Pulse:
            return format("pulse(%s %s %s %s %s %s %s)", eng_format(p_[0]).c_str(),
                          eng_format(p_[1]).c_str(), eng_format(p_[2]).c_str(),
                          eng_format(p_[3]).c_str(), eng_format(p_[4]).c_str(),
                          eng_format(p_[5]).c_str(), eng_format(p_[6]).c_str());
        case Kind::Pwl: return format("pwl(%zu points)", pwl_.size());
    }
    return "?";
}

// ----------------------------------------------------------------- VSource

VSource::VSource(std::string name, NodeId plus, NodeId minus, Waveform wave, AcSpec ac)
    : Device(std::move(name), {plus, minus}), wave_(std::move(wave)), ac_(ac) {}

void VSource::stamp_value(RealStamper& s, double value) const {
    const NodeId br = aux_base();
    s.entry(term(kPlus), br, 1.0);
    s.entry(term(kMinus), br, -1.0);
    s.entry(br, term(kPlus), 1.0);
    s.entry(br, term(kMinus), -1.0);
    s.rhs_entry(br, value);
}

void VSource::stamp_dc(RealStamper& s, const std::vector<double>&) const {
    stamp_value(s, s.source_scale() * wave_.dc_value());
}

void VSource::stamp_tran(RealStamper& s, const std::vector<double>&,
                         const TranParams& tp) {
    stamp_value(s, wave_.value(tp.time));
}

void VSource::stamp_ac(ComplexStamper& s, const std::vector<double>&, double) const {
    const NodeId br = aux_base();
    s.entry(term(kPlus), br, {1.0, 0.0});
    s.entry(term(kMinus), br, {-1.0, 0.0});
    s.entry(br, term(kPlus), {1.0, 0.0});
    s.entry(br, term(kMinus), {-1.0, 0.0});
    s.rhs_entry(br, ac_.phasor());
}

double VSource::current(const std::vector<double>& x) const {
    // The aux unknown is the current entering the + terminal from the
    // network; the source delivers -that.
    return -volt(x, aux_base());
}

std::string VSource::card(const NodeNamer& nn) const {
    std::string c = format("%s %s %s %s", spice_head('V', name()).c_str(), nn(term(kPlus)).c_str(),
                           nn(term(kMinus)).c_str(), wave_.describe().c_str());
    if (ac_.mag != 0.0) c += format(" ac %s", eng_format(ac_.mag).c_str());
    return c;
}

// ----------------------------------------------------------------- ISource

ISource::ISource(std::string name, NodeId from, NodeId to, Waveform wave, AcSpec ac)
    : Device(std::move(name), {from, to}), wave_(std::move(wave)), ac_(ac) {}

void ISource::stamp_dc(RealStamper& s, const std::vector<double>&) const {
    const double i = s.source_scale() * wave_.dc_value();
    s.rhs_current(term(kPlus), -i);
    s.rhs_current(term(kMinus), i);
}

void ISource::stamp_tran(RealStamper& s, const std::vector<double>&,
                         const TranParams& tp) {
    const double i = wave_.value(tp.time);
    s.rhs_current(term(kPlus), -i);
    s.rhs_current(term(kMinus), i);
}

void ISource::stamp_ac(ComplexStamper& s, const std::vector<double>&, double) const {
    const auto i = ac_.phasor();
    s.rhs_current(term(kPlus), -i);
    s.rhs_current(term(kMinus), i);
}

std::string ISource::card(const NodeNamer& nn) const {
    std::string c = format("%s %s %s %s", spice_head('I', name()).c_str(), nn(term(kPlus)).c_str(),
                           nn(term(kMinus)).c_str(), wave_.describe().c_str());
    if (ac_.mag != 0.0) c += format(" ac %s", eng_format(ac_.mag).c_str());
    return c;
}

} // namespace snim::circuit
