#include "circuit/netlist.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace snim::circuit {

namespace {
bool is_ground_name(std::string_view name) {
    return name == "0" || equals_nocase(name, "gnd");
}
} // namespace

NodeId Netlist::node(std::string_view name) {
    SNIM_ASSERT(!name.empty(), "empty node name");
    if (is_ground_name(name)) return kGround;
    auto it = node_index_.find(std::string(name));
    if (it != node_index_.end()) return it->second;
    const NodeId id = static_cast<NodeId>(node_names_.size());
    node_names_.emplace_back(name);
    node_index_.emplace(std::string(name), id);
    finalized_ = false;
    return id;
}

NodeId Netlist::existing_node(std::string_view name) const {
    if (is_ground_name(name)) return kGround;
    auto it = node_index_.find(std::string(name));
    if (it == node_index_.end()) raise("no node named '%.*s'", int(name.size()), name.data());
    return it->second;
}

bool Netlist::has_node(std::string_view name) const {
    return is_ground_name(name) || node_index_.count(std::string(name)) > 0;
}

const std::string& Netlist::node_name(NodeId id) const {
    static const std::string ground = "0";
    if (id == kGround) return ground;
    SNIM_ASSERT(id >= 0 && static_cast<size_t>(id) < node_names_.size(),
                "bad node id %d", id);
    return node_names_[static_cast<size_t>(id)];
}

void Netlist::add_device(std::unique_ptr<Device> dev) {
    SNIM_ASSERT(dev != nullptr, "null device");
    SNIM_ASSERT(find(dev->name()) == nullptr, "duplicate device '%s'",
                dev->name().c_str());
    devices_.push_back(std::move(dev));
    finalized_ = false;
}

Netlist::PartitionView Netlist::partition() const {
    PartitionView v;
    for (const auto& d : devices_) {
        switch (d->partition()) {
            case Partition::LinearStatic: v.linear_static.push_back(d.get()); break;
            case Partition::LinearDynamic: v.linear_dynamic.push_back(d.get()); break;
            case Partition::Nonlinear: v.nonlinear.push_back(d.get()); break;
        }
    }
    return v;
}

void Netlist::remove(std::string_view name) {
    for (auto it = devices_.begin(); it != devices_.end(); ++it) {
        if (equals_nocase((*it)->name(), name)) {
            devices_.erase(it);
            finalized_ = false;
            return;
        }
    }
    raise("remove: no device named '%.*s'", int(name.size()), name.data());
}

Device* Netlist::find(std::string_view name) {
    for (auto& d : devices_)
        if (equals_nocase(d->name(), name)) return d.get();
    return nullptr;
}

const Device* Netlist::find(std::string_view name) const {
    for (const auto& d : devices_)
        if (equals_nocase(d->name(), name)) return d.get();
    return nullptr;
}

void Netlist::finalize() {
    if (finalized_) return;
    NodeId next = static_cast<NodeId>(node_names_.size());
    aux_total_ = 0;
    for (auto& d : devices_) {
        if (d->aux_count() > 0) {
            d->set_aux_base(next);
            next += static_cast<NodeId>(d->aux_count());
            aux_total_ += d->aux_count();
        }
    }
    finalized_ = true;
}

size_t Netlist::unknown_count() const {
    SNIM_ASSERT(finalized_, "netlist not finalized");
    return node_names_.size() + aux_total_;
}

NodeId Netlist::fresh_node(const std::string& prefix) {
    std::string name;
    do {
        name = format("%s#%d", prefix.c_str(), fresh_counter_++);
    } while (node_index_.count(name));
    return node(name);
}

void Netlist::absorb(Netlist&& other, const std::string& node_prefix,
                     const std::vector<std::string>& shared) {
    // Build the node-name translation for the incoming netlist.
    std::unordered_map<std::string, std::string> rename;
    for (const auto& n : other.node_names_) {
        bool is_shared = false;
        for (const auto& s : shared)
            if (equals_nocase(n, s)) {
                is_shared = true;
                break;
            }
        rename[n] = is_shared ? n : node_prefix + n;
    }

    // Devices keep their NodeIds internally, so translation must happen at
    // the name level: rebuild the id -> new-id map.
    std::vector<NodeId> idmap(other.node_names_.size());
    for (size_t i = 0; i < other.node_names_.size(); ++i)
        idmap[i] = node(rename[other.node_names_[i]]);

    for (auto& d : other.devices_) {
        d->remap_nodes([&](NodeId id) { return id == kGround ? kGround : idmap[static_cast<size_t>(id)]; });
        add_device(std::move(d));
    }
    other.devices_.clear();
    other.node_names_.clear();
    other.node_index_.clear();
    finalized_ = false;
}

} // namespace snim::circuit
