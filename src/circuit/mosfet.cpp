#include "circuit/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace snim::circuit {

namespace {
constexpr size_t kD = 0, kG = 1, kS = 2, kB = 3;
// Forward-bias junction linearisation point (fraction of pb).
constexpr double kFc = 0.5;
// Smoothing half-width for Meyer region transitions [V].
constexpr double kSmooth = 0.05;

double lerp(double a, double b, double f) { return a + (b - a) * f; }
} // namespace

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
               tech::MosModelCard model, MosGeometry geom)
    : Device(std::move(name), {d, g, s, b}), model_(std::move(model)), geom_(geom) {
    SNIM_ASSERT(geom_.w > 0 && geom_.l > 0, "mosfet '%s': bad W/L", this->name().c_str());
    SNIM_ASSERT(geom_.m >= 1, "mosfet '%s': bad multiplier", this->name().c_str());
    // Default junction geometry: 0.48 um deep drain/source fingers.
    const double ext = 0.48;
    if (geom_.ad <= 0) geom_.ad = geom_.w * ext;
    if (geom_.as <= 0) geom_.as = geom_.w * ext;
    if (geom_.pd <= 0) geom_.pd = 2.0 * (geom_.w + ext);
    if (geom_.ps <= 0) geom_.ps = 2.0 * (geom_.w + ext);
}

double Mosfet::junction_cap(double cj0_area, double cj0_perim, double v) const {
    // v is the junction forward voltage (bulk-to-diffusion for NMOS).
    const double cj0 = cj0_area + cj0_perim;
    const double pb = model_.pb, mj = model_.mj;
    if (v < kFc * pb) {
        return cj0 * std::pow(1.0 - v / pb, -mj);
    }
    // Linear extension beyond fc*pb (standard SPICE treatment).
    const double f = std::pow(1.0 - kFc, -mj);
    return cj0 * f * (1.0 + mj * (v - kFc * pb) / (pb * (1.0 - kFc)));
}

Mosfet::SmallSignal Mosfet::small_signal(const std::vector<double>& x) const {
    const double sgn = model_.is_nmos ? 1.0 : -1.0;
    const double vd = sgn * volt(x, term(kD));
    const double vg = sgn * volt(x, term(kG));
    const double vs = sgn * volt(x, term(kS));
    const double vb = sgn * volt(x, term(kB));

    // Source/drain swap so vds >= 0 in the effective frame.
    const bool swapped = vd < vs;
    const double veff_d = swapped ? vs : vd;
    const double veff_s = swapped ? vd : vs;

    SmallSignal out;
    out.vds = veff_d - veff_s;
    out.vgs = vg - veff_s;
    out.vbs = vb - veff_s;

    // Threshold with body effect; clamp the sqrt argument to keep Newton
    // derivatives finite under forward body bias.
    const double phi = model_.phi;
    const double arg = std::max(phi - out.vbs, 0.04);
    const bool clamped = (phi - out.vbs) < 0.04;
    const double sq = std::sqrt(arg);
    out.vt = model_.vt0 + model_.gamma * (sq - std::sqrt(phi));

    const double wl = geom_.w * geom_.m / geom_.l;
    const double beta = model_.kp * wl;
    const double vov = out.vgs - out.vt;
    const double lam = model_.lambda;

    double ids = 0.0, gm = 0.0, gds = 0.0;
    if (vov <= 0.0) {
        // Subthreshold treated as off; a tiny conductance keeps the matrix
        // regular (analyses also add a global gmin).
        out.on = false;
        out.saturated = false;
        ids = 0.0;
        gm = 0.0;
        gds = 1e-12;
    } else if (out.vds >= vov) {
        out.on = true;
        out.saturated = true;
        const double clm = 1.0 + lam * out.vds;
        ids = 0.5 * beta * vov * vov * clm;
        gm = beta * vov * clm;
        gds = 0.5 * beta * vov * vov * lam;
    } else {
        out.on = true;
        out.saturated = false;
        const double clm = 1.0 + lam * out.vds;
        ids = beta * (vov * out.vds - 0.5 * out.vds * out.vds) * clm;
        gm = beta * out.vds * clm;
        gds = beta * (vov - out.vds) * clm +
              beta * (vov * out.vds - 0.5 * out.vds * out.vds) * lam;
    }
    const double dvt_dvbs = clamped ? 0.0 : -model_.gamma / (2.0 * sq);
    const double gmb = gm * (-dvt_dvbs);

    // Map back to terminal polarity: current into the *actual drain node*;
    // when swapped the channel current enters the source terminal instead.
    out.ids = sgn * (swapped ? -ids : ids);
    out.gm = gm;
    out.gds = gds;
    out.gmb = gmb;

    // --- capacitances (effective frame) ---------------------------------
    const double w_total = geom_.w * geom_.m;
    const double cox_wl = model_.cox * w_total * geom_.l;
    const double covs = model_.cgso * w_total;
    const double covd = model_.cgdo * w_total;

    double cgs_i, cgd_i, cgb_i; // intrinsic channel caps
    if (vov <= -kSmooth) {
        cgs_i = 0.0;
        cgd_i = 0.0;
        cgb_i = cox_wl; // accumulation/depletion lump
    } else if (vov <= kSmooth) {
        const double f = (vov + kSmooth) / (2.0 * kSmooth);
        const double sat_cgs = (2.0 / 3.0) * cox_wl;
        cgs_i = lerp(0.0, sat_cgs, f);
        cgd_i = 0.0;
        cgb_i = lerp(cox_wl, 0.0, f);
    } else if (out.vds >= vov + kSmooth) {
        cgs_i = (2.0 / 3.0) * cox_wl;
        cgd_i = 0.0;
        cgb_i = 0.0;
    } else if (out.vds >= vov - kSmooth) {
        const double f = (vov + kSmooth - out.vds) / (2.0 * kSmooth);
        cgs_i = lerp((2.0 / 3.0) * cox_wl, 0.5 * cox_wl, f);
        cgd_i = lerp(0.0, 0.5 * cox_wl, f);
        cgb_i = 0.0;
    } else {
        cgs_i = 0.5 * cox_wl;
        cgd_i = 0.5 * cox_wl;
        cgb_i = 0.0;
    }

    // Junction caps evaluated at the *actual terminal* bias (bulk minus
    // diffusion); multiplier scales areas.
    const double m = static_cast<double>(geom_.m);
    const double vbd = sgn * (volt(x, term(kB)) - volt(x, term(kD)));
    const double vbs_j = sgn * (volt(x, term(kB)) - volt(x, term(kS)));
    out.cdb = junction_cap(model_.cj * geom_.ad * m, model_.cjsw * geom_.pd * m, vbd);
    out.csb = junction_cap(model_.cj * geom_.as * m, model_.cjsw * geom_.ps * m, vbs_j);

    // Swap channel caps back to terminal frame.
    if (swapped) std::swap(cgs_i, cgd_i);
    out.cgs = cgs_i + covs;
    out.cgd = cgd_i + covd;
    out.cgb = cgb_i;
    return out;
}

void Mosfet::stamp_channel(RealStamper& s, const std::vector<double>& x) const {
    const SmallSignal ss = small_signal(x);
    const double sgn = model_.is_nmos ? 1.0 : -1.0;

    // Determine effective drain/source terminals in actual node space.
    const double vd = sgn * volt(x, term(kD));
    const double vs = sgn * volt(x, term(kS));
    const bool swapped = vd < vs;
    const NodeId nD = swapped ? term(kS) : term(kD);
    const NodeId nS = swapped ? term(kD) : term(kS);
    const NodeId nG = term(kG);
    const NodeId nB = term(kB);

    // Channel current into effective drain (actual polarity):
    //   i = gm (vG - vS') + gds (vD' - vS') + gmb (vB - vS') + Ieq
    // with all conductances positive regardless of polarity.
    s.transconductance(nD, nS, nG, nS, ss.gm);
    s.admittance(nD, nS, ss.gds);
    s.transconductance(nD, nS, nB, nS, ss.gmb);

    const double vgs_a = volt(x, nG) - volt(x, nS);
    const double vds_a = volt(x, nD) - volt(x, nS);
    const double vbs_a = volt(x, nB) - volt(x, nS);
    const double i_d = swapped ? -ss.ids : ss.ids; // into effective drain
    const double ieq = i_d - ss.gm * vgs_a - ss.gds * vds_a - ss.gmb * vbs_a;
    s.rhs_current(nD, -ieq);
    s.rhs_current(nS, ieq);
}

void Mosfet::stamp_dc(RealStamper& s, const std::vector<double>& x) const {
    stamp_channel(s, x);
}

double Mosfet::junction_cap0(double v, double cj0) const {
    const double pb = model_.pb, mj = model_.mj;
    if (v < kFc * pb) return cj0 * std::pow(1.0 - v / pb, -mj);
    const double f = std::pow(1.0 - kFc, -mj);
    return cj0 * f * (1.0 + mj * (v - kFc * pb) / (pb * (1.0 - kFc)));
}

double Mosfet::junction_charge(double v, double cj0) const {
    // Exact integral of junction_cap0; continuous at v = fc*pb.
    const double pb = model_.pb, mj = model_.mj;
    if (v < kFc * pb) {
        return cj0 * pb / (1.0 - mj) * (1.0 - std::pow(1.0 - v / pb, 1.0 - mj));
    }
    const double qfc = cj0 * pb / (1.0 - mj) * (1.0 - std::pow(1.0 - kFc, 1.0 - mj));
    const double f = std::pow(1.0 - kFc, -mj);
    const double dv = v - kFc * pb;
    return qfc + cj0 * f * (dv + 0.5 * mj * dv * dv / (pb * (1.0 - kFc)));
}

double Mosfet::cap_charge(const CapState& st, double v) const {
    return st.junction ? junction_charge(v, st.cj0) : st.c * v;
}

double Mosfet::cap_value(const CapState& st, double v) const {
    return st.junction ? junction_cap0(v, st.cj0) : st.c;
}

void Mosfet::init_tran(const std::vector<double>& x) {
    const SmallSignal ss = small_signal(x);
    const double m = static_cast<double>(geom_.m);
    auto init = [&](CapState& st, NodeId a, NodeId b, double c, bool junction,
                    double cj0) {
        st.junction = junction;
        st.c = c;
        st.cj0 = cj0;
        st.q = cap_charge(st, volt(x, a) - volt(x, b));
        st.i = 0.0;
    };
    init(cgs_st_, term(kG), term(kS), ss.cgs, false, 0.0);
    init(cgd_st_, term(kG), term(kD), ss.cgd, false, 0.0);
    init(cgb_st_, term(kG), term(kB), ss.cgb, false, 0.0);
    // Junction caps live between bulk (anode) and diffusion.
    init(cdb_st_, term(kB), term(kD), 0.0, true,
         model_.cj * geom_.ad * m + model_.cjsw * geom_.pd * m);
    init(csb_st_, term(kB), term(kS), 0.0, true,
         model_.cj * geom_.as * m + model_.cjsw * geom_.ps * m);
}

void Mosfet::stamp_cap(RealStamper& s, NodeId a, NodeId b, CapState& st,
                       const std::vector<double>& x, const TranParams& tp) const {
    const double v = volt(x, a) - volt(x, b);
    const double c = cap_value(st, v);
    if (c <= 0.0) return;
    // Charge-based companion: i = k (q(v) - q_n) - (trap) i_n.
    const double k = (tp.order == 2 ? 2.0 : 1.0) / tp.dt;
    const double i = k * (cap_charge(st, v) - st.q) - (tp.order == 2 ? st.i : 0.0);
    const double geq = k * c;
    const double ieq = i - geq * v;
    s.admittance(a, b, geq);
    s.rhs_current(a, -ieq);
    s.rhs_current(b, ieq);
}

void Mosfet::commit_cap(const std::vector<double>& x, NodeId a, NodeId b, CapState& st,
                        const TranParams& tp) const {
    const double v = volt(x, a) - volt(x, b);
    const double k = (tp.order == 2 ? 2.0 : 1.0) / tp.dt;
    const double q = cap_charge(st, v);
    st.i = k * (q - st.q) - (tp.order == 2 ? st.i : 0.0);
    st.q = q;
}

void Mosfet::stamp_tran(RealStamper& s, const std::vector<double>& x,
                        const TranParams& tp) {
    stamp_channel(s, x);
    stamp_cap(s, term(kG), term(kS), cgs_st_, x, tp);
    stamp_cap(s, term(kG), term(kD), cgd_st_, x, tp);
    stamp_cap(s, term(kG), term(kB), cgb_st_, x, tp);
    stamp_cap(s, term(kB), term(kD), cdb_st_, x, tp);
    stamp_cap(s, term(kB), term(kS), csb_st_, x, tp);
}

void Mosfet::commit_tran(const std::vector<double>& x, const TranParams& tp) {
    commit_cap(x, term(kG), term(kS), cgs_st_, tp);
    commit_cap(x, term(kG), term(kD), cgd_st_, tp);
    commit_cap(x, term(kG), term(kB), cgb_st_, tp);
    commit_cap(x, term(kB), term(kD), cdb_st_, tp);
    commit_cap(x, term(kB), term(kS), csb_st_, tp);
}

void Mosfet::save_tran_state(std::vector<double>& out) const {
    // The full CapState is serialised — c/junction/cj0 are normally set by
    // init_tran from the DC point, which a checkpoint resume skips.
    for (const CapState* st : {&cgs_st_, &cgd_st_, &cgb_st_, &cdb_st_, &csb_st_}) {
        out.push_back(st->q);
        out.push_back(st->i);
        out.push_back(st->c);
        out.push_back(st->junction ? 1.0 : 0.0);
        out.push_back(st->cj0);
    }
}

void Mosfet::load_tran_state(const std::vector<double>& in, size_t& pos) {
    for (CapState* st : {&cgs_st_, &cgd_st_, &cgb_st_, &cdb_st_, &csb_st_}) {
        st->q = take_tran_state(in, pos, name().c_str());
        st->i = take_tran_state(in, pos, name().c_str());
        st->c = take_tran_state(in, pos, name().c_str());
        st->junction = take_tran_state(in, pos, name().c_str()) != 0.0;
        st->cj0 = take_tran_state(in, pos, name().c_str());
    }
}

void Mosfet::stamp_ac(ComplexStamper& s, const std::vector<double>& xop,
                      double omega) const {
    const SmallSignal ss = small_signal(xop);
    const double sgn = model_.is_nmos ? 1.0 : -1.0;
    const double vd = sgn * volt(xop, term(kD));
    const double vs = sgn * volt(xop, term(kS));
    const bool swapped = vd < vs;
    const NodeId nD = swapped ? term(kS) : term(kD);
    const NodeId nS = swapped ? term(kD) : term(kS);
    const NodeId nG = term(kG);
    const NodeId nB = term(kB);

    s.transconductance(nD, nS, nG, nS, {ss.gm, 0.0});
    s.admittance(nD, nS, {ss.gds, 0.0});
    s.transconductance(nD, nS, nB, nS, {ss.gmb, 0.0});

    s.admittance(term(kG), term(kS), {0.0, omega * ss.cgs});
    s.admittance(term(kG), term(kD), {0.0, omega * ss.cgd});
    s.admittance(term(kG), term(kB), {0.0, omega * ss.cgb});
    s.admittance(term(kD), term(kB), {0.0, omega * ss.cdb});
    s.admittance(term(kS), term(kB), {0.0, omega * ss.csb});
}

double Mosfet::cdb_zero_bias() const {
    return junction_cap(model_.cj * geom_.ad * geom_.m, model_.cjsw * geom_.pd * geom_.m,
                        0.0);
}

double Mosfet::csb_zero_bias() const {
    return junction_cap(model_.cj * geom_.as * geom_.m, model_.cjsw * geom_.ps * geom_.m,
                        0.0);
}

std::string Mosfet::card(const NodeNamer& nn) const {
    return format("%s %s %s %s %s %s w=%gu l=%gu m=%d", spice_head('M', name()).c_str(),
                  nn(term(kD)).c_str(), nn(term(kG)).c_str(), nn(term(kS)).c_str(),
                  nn(term(kB)).c_str(), model_.name.c_str(), geom_.w, geom_.l, geom_.m);
}

} // namespace snim::circuit
