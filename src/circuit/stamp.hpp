// MNA stamping interfaces.
//
// Analyses build a matrix/RHS pair by asking every device to stamp itself.
// NodeId -1 is ground; stamps touching ground are silently dropped, which
// keeps device code free of special cases.
//
// Repeated assembly (Newton iterations, transient steps, AC points) can run
// in compiled mode: the first pass is recorded as a triplet sequence, the
// Stamper learns a one-time triplet->CSC index map, and every later pass
// scatters values straight into the CSC value array — no triplet rebuild,
// sort, or duplicate merge.  Device stamp sequences are value-independent
// (same entry() calls in the same order every pass), which is what makes the
// fixed map valid; a sequence that deviates anyway demotes the pass back to
// triplet assembly and relearns, so compiled mode is always correct, just
// fast when the precondition holds.  The compiled image is bit-identical to
// the triplet-built CSC: the CSC constructor merges duplicates in insertion
// order (stable sort) and the scatter path assigns the first duplicate and
// accumulates the rest in the same stamp order.
#pragma once

#include <algorithm>
#include <complex>

#include "numeric/sparse.hpp"
#include "obs/registry.hpp"

namespace snim::circuit {

using NodeId = int;
inline constexpr NodeId kGround = -1;

/// Voltage of node `n` in solution vector `x` (ground reads as 0).
inline double volt(const std::vector<double>& x, NodeId n) {
    return n < 0 ? 0.0 : x[static_cast<size_t>(n)];
}

template <class T>
class Stamper {
public:
    explicit Stamper(size_t n_unknowns) : a_(n_unknowns), b_(n_unknowns, T{}) {}

    size_t size() const { return b_.size(); }

    void clear() {
        if (mapped_) {
            // Compiled mode: the CSC values are overwritten in place by the
            // next pass (assign-on-first-write), so only the sequence cursor
            // and RHS reset here.
            cursor_ = 0;
            rhs_cursor_ = 0;
        } else {
            a_.clear();
            if (rhs_tape_) {
                rhs_nodes_seq_.clear();
                rhs_vals_seq_.clear();
            }
        }
        std::fill(b_.begin(), b_.end(), T{});
    }

    /// Opts this stamper into compiled assembly: the next csc() call learns
    /// the triplet->CSC map from the pass assembled so far, and later passes
    /// scatter in place.  Must be called before the first assembly so the
    /// learned pattern keeps structural zeros (a stamp value that happens to
    /// be zero on the learning pass can be nonzero later).
    void enable_compiled_assembly() {
        compile_enabled_ = true;
        a_.set_keep_zeros(true);
    }
    bool compiled_mode() const { return mapped_; }

    /// Additionally records the RHS call sequence (node per rhs_current /
    /// rhs_entry call) alongside the matrix tape, so the incremental
    /// transient assembler can rebuild RHS baselines call-by-call.  Must be
    /// enabled before the first assembly, like compiled mode.
    void enable_rhs_tape() { rhs_tape_ = true; }
    /// False once a pass's RHS call sequence deviated from the learned one
    /// (the recorded values are then stale); reset by the next relearn.
    bool rhs_tape_ok() const { return rhs_tape_ok_; }

    /// Raw matrix entry A(row, col) += v; ground rows/cols dropped.
    void entry(NodeId row, NodeId col, T v) {
        if (row < 0 || col < 0) return;
        if (mapped_) {
            if (overlay_ && overlay_failed_) return;
            if (cursor_ < rows_seq_.size() && rows_seq_[cursor_] == row &&
                cols_seq_[cursor_] == col) {
                seq_vals_[cursor_] = v;
                T& slot = csc_.values_mut()[static_cast<size_t>(map_[cursor_])];
                if (first_[cursor_])
                    slot = v;
                else
                    slot += v;
                ++cursor_;
                return;
            }
            if (overlay_) {
                // A partial re-stamp cannot demote (the rest of the pass is
                // a restored baseline, not replayable triplets): flag the
                // deviation and let the assembler rebuild from scratch.
                overlay_failed_ = true;
                return;
            }
            demote(); // stamp sequence deviated from the learned pattern
        }
        a_.add(static_cast<size_t>(row), static_cast<size_t>(col), v);
    }

    /// Two-terminal admittance stamp between nodes a and b.
    void admittance(NodeId a, NodeId b, T y) {
        entry(a, a, y);
        entry(b, b, y);
        entry(a, b, -y);
        entry(b, a, -y);
    }

    /// Transconductance: current y*(v(cp)-v(cn)) flows from `to` out of `from`
    /// (i.e. a VCCS with output current from -> to through the element).
    void transconductance(NodeId from, NodeId to, NodeId cp, NodeId cn, T y) {
        entry(from, cp, y);
        entry(from, cn, -y);
        entry(to, cp, -y);
        entry(to, cn, y);
    }

    /// RHS: current `i` flowing INTO node `n` from an independent source.
    void rhs_current(NodeId n, T i) {
        if (n < 0) return;
        if (rhs_tape_) {
            if (overlay_) {
                if (overlay_failed_) return;
                if (rhs_cursor_ < rhs_nodes_seq_.size() &&
                    rhs_nodes_seq_[rhs_cursor_] == n) {
                    rhs_vals_seq_[rhs_cursor_] = i;
                    ++rhs_cursor_;
                    b_[static_cast<size_t>(n)] += i;
                } else {
                    overlay_failed_ = true;
                }
                return;
            }
            if (mapped_) {
                if (rhs_cursor_ < rhs_nodes_seq_.size() &&
                    rhs_nodes_seq_[rhs_cursor_] == n) {
                    rhs_vals_seq_[rhs_cursor_] = i;
                    ++rhs_cursor_;
                } else {
                    rhs_tape_ok_ = false; // relearned on the next demote/reset
                }
            } else {
                rhs_nodes_seq_.push_back(n);
                rhs_vals_seq_.push_back(i);
            }
        }
        b_[static_cast<size_t>(n)] += i;
    }

    /// RHS entry for a branch (auxiliary) equation row.
    void rhs_entry(NodeId row, T v) { rhs_current(row, v); }

    const Triplets<T>& matrix() const { return a_; }
    Triplets<T>& matrix() { return a_; }
    const std::vector<T>& rhs() const { return b_; }

    /// CSC image of the pass assembled since the last clear().  With
    /// compiled assembly enabled, the first call (and any call after a
    /// pattern deviation) builds it from the triplets and learns the scatter
    /// map; later passes return the image entry() already filled in place.
    const SparseCSC<T>& csc() {
        if (mapped_) {
            if (cursor_ == rows_seq_.size()) {
                // A pass that made fewer RHS calls than the learned sequence
                // leaves stale values in the tape tail; flag it for the
                // incremental assembler (plain consumers read b_ directly).
                if (rhs_tape_ && rhs_cursor_ != rhs_nodes_seq_.size())
                    rhs_tape_ok_ = false;
                return csc_;
            }
            demote(); // pass ended short of the learned sequence
        }
        csc_ = SparseCSC<T>(a_);
        if (compile_enabled_) learn_map();
        return csc_;
    }

    // --- partitioned incremental assembly ------------------------------
    // The transient assembler restores a precomputed linear baseline into
    // the CSC value array / RHS, then re-stamps only the nonlinear devices
    // ("overlay"): each device's calls are verified against the learned
    // tape from its recorded span position.  A deviation (a value-dependent
    // stamp sequence) sets overlay_failed_ instead of demoting — the rest
    // of the pass is a restored image, not replayable triplets — and the
    // assembler falls back to a full relearn pass.

    /// Enters overlay mode.  Requires a learned map; returns false (and
    /// stays out of overlay mode) otherwise.
    bool begin_overlay() {
        if (!mapped_) return false;
        overlay_ = true;
        overlay_failed_ = false;
        return true;
    }
    /// Positions the matrix/RHS cursors at a recorded device span so the
    /// device's stamp calls overwrite exactly its learned tape positions.
    void overlay_seek(size_t mat_pos, size_t rhs_pos) {
        cursor_ = mat_pos;
        rhs_cursor_ = rhs_pos;
    }
    size_t mat_cursor() const { return cursor_; }
    size_t rhs_cursor() const { return rhs_cursor_; }
    bool overlay_failed() const { return overlay_failed_; }
    /// Leaves overlay mode; on a clean overlay the pass is marked complete
    /// (csc() returns the image without a demotion).  Returns success.
    bool end_overlay() {
        overlay_ = false;
        if (overlay_failed_) return false;
        cursor_ = rows_seq_.size();
        rhs_cursor_ = rhs_nodes_seq_.size();
        return true;
    }

    /// Drops the learned map, tapes and triplets entirely (back to the
    /// pre-learning state); the next full pass relearns everything.  Used
    /// by the incremental assembler when a device's stamp sequence turned
    /// out to be value-dependent.
    void reset_compiled() {
        mapped_ = false;
        overlay_ = false;
        overlay_failed_ = false;
        cursor_ = 0;
        rows_seq_.clear();
        cols_seq_.clear();
        seq_vals_.clear();
        map_.clear();
        first_.clear();
        rhs_nodes_seq_.clear();
        rhs_vals_seq_.clear();
        rhs_cursor_ = 0;
        rhs_tape_ok_ = true;
        a_.clear();
        std::fill(b_.begin(), b_.end(), T{});
    }

    // Tape/scatter introspection for the incremental assembler.  All views
    // are only meaningful in compiled mode with a learned map.
    const std::vector<int>& tape_rows() const { return rows_seq_; }
    const std::vector<int>& tape_cols() const { return cols_seq_; }
    const std::vector<T>& tape_values() const { return seq_vals_; }
    /// Stamp call -> CSC value slot.
    const std::vector<int>& tape_slots() const { return map_; }
    /// Nonzero when the call is the first landing in its slot (assign
    /// instead of accumulate).
    const std::vector<char>& tape_assigns() const { return first_; }
    const std::vector<int>& rhs_tape_nodes() const { return rhs_nodes_seq_; }
    const std::vector<T>& rhs_tape_values() const { return rhs_vals_seq_; }
    /// Mutable per-call tape values, for the assembler's compiled refresh
    /// plans: a device whose stamp layout is value-independent can rewrite
    /// its recorded call values in place instead of replaying the stamp
    /// through overlay mode.  The call sequence itself must not change.
    std::vector<T>& tape_values_mut() { return seq_vals_; }
    std::vector<T>& rhs_tape_values_mut() { return rhs_vals_seq_; }
    /// Direct value-image access for baseline restore (memcpy of a
    /// precomputed linear image); the pattern must not change.
    std::vector<T>& csc_values_mut() { return csc_.values_mut(); }
    std::vector<T>& rhs_mut() { return b_; }

    /// Multiplier independent sources apply to their excitation value.
    /// 1.0 everywhere except during the op solver's source-stepping
    /// homotopy rung, which ramps it from ~0 to 1 (sim::assemble_dc sets
    /// it; nonlinear companion stamps must NOT scale by it).
    void set_source_scale(double scale) { source_scale_ = scale; }
    double source_scale() const { return source_scale_; }

private:
    /// Leaves compiled mode: replays the values scattered so far this pass
    /// back into the triplet accumulator so assembly continues seamlessly.
    /// The next csc() call relearns the map from the new sequence.
    void demote() {
        mapped_ = false;
        if (obs::enabled()) obs::count("circuit/stamp_map_fallbacks");
        a_.clear();
        for (size_t i = 0; i < cursor_; ++i)
            a_.add(static_cast<size_t>(rows_seq_[i]), static_cast<size_t>(cols_seq_[i]),
                   seq_vals_[i]);
        cursor_ = 0;
        if (rhs_tape_) {
            // Keep the RHS calls verified so far this pass; the rest of the
            // pass appends, and the next csc() relearns from the new tape.
            rhs_nodes_seq_.resize(rhs_cursor_);
            rhs_vals_seq_.resize(rhs_cursor_);
        }
    }

    void learn_map() {
        const auto& rows = a_.rows();
        const auto& cols = a_.cols();
        const auto& vals = a_.values();
        const size_t nz = rows.size();
        rows_seq_.assign(rows.begin(), rows.end());
        cols_seq_.assign(cols.begin(), cols.end());
        seq_vals_.assign(vals.begin(), vals.end());
        map_.resize(nz);
        first_.assign(nz, 0);
        std::vector<char> seen(csc_.nnz(), 0);
        const auto& cp = csc_.col_ptr();
        const auto& ri = csc_.row_idx();
        for (size_t k = 0; k < nz; ++k) {
            const size_t c = static_cast<size_t>(cols[k]);
            const int* lo = ri.data() + cp[c];
            const int* hi = ri.data() + cp[c + 1];
            const int* it = std::lower_bound(lo, hi, rows[k]);
            SNIM_ASSERT(it != hi && *it == rows[k], "stamp map: slot (%d,%d) missing",
                        rows[k], cols[k]);
            const size_t slot = static_cast<size_t>(it - ri.data());
            map_[k] = static_cast<int>(slot);
            if (!seen[slot]) {
                seen[slot] = 1;
                first_[k] = 1;
            }
        }
        mapped_ = true;
        cursor_ = nz; // the learning pass itself is complete and consistent
        rhs_cursor_ = rhs_nodes_seq_.size();
        rhs_tape_ok_ = true;
    }

    Triplets<T> a_;
    std::vector<T> b_;
    double source_scale_ = 1.0;

    bool compile_enabled_ = false;
    bool mapped_ = false;
    size_t cursor_ = 0;          // position in the learned stamp sequence
    SparseCSC<T> csc_;           // compiled image (values of the current pass)
    std::vector<int> rows_seq_;  // learned sequence: row per stamp call
    std::vector<int> cols_seq_;  // learned sequence: col per stamp call
    std::vector<T> seq_vals_;    // values of the current pass (for demote)
    std::vector<int> map_;       // stamp call -> CSC value slot
    std::vector<char> first_;    // first stamp landing in its slot -> assign

    bool rhs_tape_ = false;          // record the RHS call sequence
    bool rhs_tape_ok_ = true;        // tape matches the last full pass
    bool overlay_ = false;           // partial re-stamp against the tape
    bool overlay_failed_ = false;    // overlay deviated; image is suspect
    size_t rhs_cursor_ = 0;          // position in the learned RHS sequence
    std::vector<int> rhs_nodes_seq_; // learned sequence: node per rhs call
    std::vector<T> rhs_vals_seq_;    // RHS values of the current pass
};

using RealStamper = Stamper<double>;
using ComplexStamper = Stamper<std::complex<double>>;

/// Transient integration context handed to stamp_tran/commit_tran.
struct TranParams {
    double time = 0.0; // end of the step being solved
    double dt = 0.0;
    /// 1 = backward Euler, 2 = trapezoidal.
    int order = 2;
};

} // namespace snim::circuit
