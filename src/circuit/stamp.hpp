// MNA stamping interfaces.
//
// Analyses build a matrix/RHS pair by asking every device to stamp itself.
// NodeId -1 is ground; stamps touching ground are silently dropped, which
// keeps device code free of special cases.
#pragma once

#include <complex>

#include "numeric/sparse.hpp"

namespace snim::circuit {

using NodeId = int;
inline constexpr NodeId kGround = -1;

/// Voltage of node `n` in solution vector `x` (ground reads as 0).
inline double volt(const std::vector<double>& x, NodeId n) {
    return n < 0 ? 0.0 : x[static_cast<size_t>(n)];
}

template <class T>
class Stamper {
public:
    explicit Stamper(size_t n_unknowns) : a_(n_unknowns), b_(n_unknowns, T{}) {}

    size_t size() const { return b_.size(); }

    void clear() {
        a_.clear();
        std::fill(b_.begin(), b_.end(), T{});
    }

    /// Raw matrix entry A(row, col) += v; ground rows/cols dropped.
    void entry(NodeId row, NodeId col, T v) {
        if (row < 0 || col < 0) return;
        a_.add(static_cast<size_t>(row), static_cast<size_t>(col), v);
    }

    /// Two-terminal admittance stamp between nodes a and b.
    void admittance(NodeId a, NodeId b, T y) {
        entry(a, a, y);
        entry(b, b, y);
        entry(a, b, -y);
        entry(b, a, -y);
    }

    /// Transconductance: current y*(v(cp)-v(cn)) flows from `to` out of `from`
    /// (i.e. a VCCS with output current from -> to through the element).
    void transconductance(NodeId from, NodeId to, NodeId cp, NodeId cn, T y) {
        entry(from, cp, y);
        entry(from, cn, -y);
        entry(to, cp, -y);
        entry(to, cn, y);
    }

    /// RHS: current `i` flowing INTO node `n` from an independent source.
    void rhs_current(NodeId n, T i) {
        if (n < 0) return;
        b_[static_cast<size_t>(n)] += i;
    }

    /// RHS entry for a branch (auxiliary) equation row.
    void rhs_entry(NodeId row, T v) { rhs_current(row, v); }

    const Triplets<T>& matrix() const { return a_; }
    Triplets<T>& matrix() { return a_; }
    const std::vector<T>& rhs() const { return b_; }

    /// Multiplier independent sources apply to their excitation value.
    /// 1.0 everywhere except during the op solver's source-stepping
    /// homotopy rung, which ramps it from ~0 to 1 (sim::assemble_dc sets
    /// it; nonlinear companion stamps must NOT scale by it).
    void set_source_scale(double scale) { source_scale_ = scale; }
    double source_scale() const { return source_scale_; }

private:
    Triplets<T> a_;
    std::vector<T> b_;
    double source_scale_ = 1.0;
};

using RealStamper = Stamper<double>;
using ComplexStamper = Stamper<std::complex<double>>;

/// Transient integration context handed to stamp_tran/commit_tran.
struct TranParams {
    double time = 0.0; // end of the step being solved
    double dt = 0.0;
    /// 1 = backward Euler, 2 = trapezoidal.
    int order = 2;
};

} // namespace snim::circuit
