// Wire fracturing: projects the connection points of a rectangular wire
// shape onto its long axis and cuts the shape into series segments.  Each
// segment becomes a resistance (sheet_res * length / width) and a
// distributed capacitance in the extractor.
#pragma once

#include <vector>

#include "geom/rect.hpp"

namespace snim::interconnect {

/// A connection event on a wire shape, tagged with a caller-defined id.
struct Attach {
    geom::Point at;
    int id = -1;
};

struct Segment {
    /// Indices into the fracture's node list.
    int node_a = 0;
    int node_b = 0;
    double length = 0.0; // um along the wire axis
    double width = 0.0;  // um across
    geom::Rect footprint; // for substrate-coupling lookup
};

struct Fracture {
    /// One internal node per distinct axial position; node i sits at
    /// positions[i] (in axis coordinates).
    std::vector<double> positions;
    /// attach_node[k] = node index for attaches[k].
    std::vector<int> attach_node;
    std::vector<Segment> segments;
    bool horizontal = true;
};

/// Fractures `shape` at the given attach points.  Positions closer than
/// `merge_tol` um collapse into one node.  With fewer than one attach the
/// fracture degenerates to a single node at the shape centre.
Fracture fracture_shape(const geom::Rect& shape, const std::vector<Attach>& attaches,
                        double merge_tol = 0.05);

} // namespace snim::interconnect
