#include "interconnect/fracture.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace snim::interconnect {

Fracture fracture_shape(const geom::Rect& shape, const std::vector<Attach>& attaches,
                        double merge_tol) {
    SNIM_ASSERT(!shape.empty(), "cannot fracture an empty shape");
    Fracture out;
    out.horizontal = shape.width() >= shape.height();
    const double lo = out.horizontal ? shape.x0 : shape.y0;
    const double hi = out.horizontal ? shape.x1 : shape.y1;
    const double width = out.horizontal ? shape.height() : shape.width();

    // Project and clamp attach positions onto the axis.
    std::vector<std::pair<double, int>> pos; // (axis position, attach index)
    for (size_t k = 0; k < attaches.size(); ++k) {
        const double p = out.horizontal ? attaches[k].at.x : attaches[k].at.y;
        pos.emplace_back(std::clamp(p, lo, hi), static_cast<int>(k));
    }
    if (pos.empty()) pos.emplace_back(0.5 * (lo + hi), -1);
    std::sort(pos.begin(), pos.end());

    // Merge nearby positions into nodes.
    out.attach_node.assign(attaches.size(), -1);
    for (const auto& [p, k] : pos) {
        if (out.positions.empty() || p - out.positions.back() > merge_tol) {
            out.positions.push_back(p);
        }
        if (k >= 0) out.attach_node[static_cast<size_t>(k)] =
            static_cast<int>(out.positions.size()) - 1;
    }

    // Series segments between consecutive nodes.
    for (size_t i = 0; i + 1 < out.positions.size(); ++i) {
        Segment s;
        s.node_a = static_cast<int>(i);
        s.node_b = static_cast<int>(i) + 1;
        s.length = out.positions[i + 1] - out.positions[i];
        s.width = width;
        s.footprint = out.horizontal
                          ? geom::Rect(out.positions[i], shape.y0, out.positions[i + 1],
                                       shape.y1)
                          : geom::Rect(shape.x0, out.positions[i], shape.x1,
                                       out.positions[i + 1]);
        out.segments.push_back(s);
    }
    return out;
}

} // namespace snim::interconnect
