// Interconnect extractor: the paper's key addition to the classical flow.
// Produces a resistive + capacitive model of the on-chip wiring so that
// substrate noise coupling INTO the interconnect (and the voltage drop over
// its parasitic resistance) is part of the impact simulation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "layout/connectivity.hpp"
#include "layout/layout.hpp"
#include "tech/technology.hpp"

namespace snim::interconnect {

/// A point where the schematic (device terminal, pad, probe) attaches to
/// the wiring.  The extractor guarantees a node with exactly `node_name`
/// exists in the produced netlist at this location.
struct WirePin {
    std::string node_name;
    std::string layer;
    geom::Point at;
};

struct ExtractOptions {
    /// Extract wire resistance (false models ideal interconnect -- the
    /// classical-flow ablation of the paper).
    bool extract_resistance = true;
    /// Extract wire-to-substrate capacitance.
    bool extract_capacitance = true;
    /// Resistance of a merge/touch link between overlapping shapes [ohm].
    double touch_resistance = 1e-3;
    /// Capacitances below this are dropped [F].
    double cap_floor = 0.005e-15;
    /// Assumed via cut pitch for multi-cut via arrays [um].
    double cut_pitch = 0.5;
    /// Maps a wire segment footprint + net name to the circuit node that
    /// represents the local substrate surface (capacitive coupling target).
    /// Null -> couple to ground (the classical simplification).
    std::function<std::string(const geom::Rect&, const std::string& net)> substrate_node;
};

struct NetStats {
    std::string name;
    double resistance_squares = 0.0; // total drawn squares over all segments
    double capacitance_total = 0.0;  // F
    size_t segment_count = 0;
};

struct InterconnectModel {
    circuit::Netlist netlist;
    std::vector<NetStats> stats;
    double extract_seconds = 0.0;

    const NetStats* stats_for(const std::string& net) const;
};

/// Runs the extraction over flattened shapes with known connectivity.
InterconnectModel extract_interconnect(const std::vector<layout::Shape>& shapes,
                                       const layout::ExtractedNets& nets,
                                       const tech::Technology& tech,
                                       const std::vector<WirePin>& pins,
                                       const ExtractOptions& opt = {});

} // namespace snim::interconnect
