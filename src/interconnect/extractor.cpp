#include "interconnect/extractor.hpp"

#include <map>
#include <unordered_map>

#include "circuit/passives.hpp"
#include "geom/grid_index.hpp"
#include "interconnect/fracture.hpp"
#include "obs/trace.hpp"
#include "substrate/ports.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace snim::interconnect {

const NetStats* InterconnectModel::stats_for(const std::string& net) const {
    for (const auto& s : stats)
        if (equals_nocase(s.name, net)) return &s;
    return nullptr;
}

namespace {

// A global attach event: where some connection lands on a routing shape.
struct Event {
    enum class Kind { Pin, ViaBottom, ViaTop, Touch, SubTap } kind;
    size_t aux = 0;    // pin index / via shape index / touch pair index
};

struct TouchPair {
    size_t shape_a, shape_b;
    circuit::NodeId node_a = circuit::kGround, node_b = circuit::kGround;
    bool a_set = false, b_set = false;
};

struct ViaLink {
    size_t via_shape;
    circuit::NodeId bottom = circuit::kGround, top = circuit::kGround;
    bool bottom_set = false, top_set = false;
};

} // namespace

InterconnectModel extract_interconnect(const std::vector<layout::Shape>& shapes,
                                       const layout::ExtractedNets& nets,
                                       const tech::Technology& tech,
                                       const std::vector<WirePin>& pins,
                                       const ExtractOptions& opt) {
    SNIM_ASSERT(shapes.size() == nets.shape_net.size(), "shapes/nets size mismatch");
    // Always times: extract_seconds is a public result field.
    obs::ScopedTimer obs_timer("flow/interconnect_extract", obs::Timing::Always,
                               obs::Rss::Track);

    InterconnectModel out;
    circuit::Netlist& nl = out.netlist;

    // --- indices ----------------------------------------------------------
    std::unordered_map<std::string, geom::GridIndex> routing_index;
    for (size_t i = 0; i < shapes.size(); ++i) {
        const tech::Layer* layer = tech.find_layer(shapes[i].layer);
        if (!layer || layer->kind != tech::LayerKind::Routing) continue;
        if (nets.shape_net[i] < 0) continue;
        auto [it, ins] = routing_index.try_emplace(shapes[i].layer, 10.0);
        it->second.insert(i, shapes[i].rect);
    }

    // --- phase A: attach events per routing shape -------------------------
    std::vector<std::vector<Attach>> attaches(shapes.size());
    std::vector<Event> events;
    std::vector<TouchPair> touches;
    std::vector<ViaLink> vias;
    std::vector<std::string> subtap_names; // per SubTap event

    // Tap clusters give each contact shape the substrate-port name shared
    // with the substrate extractor.
    std::unordered_map<size_t, std::string> tap_name_of_shape;
    for (const auto& cluster : substrate::cluster_taps(shapes, nets, tech, opt.cut_pitch))
        for (size_t idx : cluster.shape_indices) tap_name_of_shape[idx] = cluster.name;

    auto add_event = [&](size_t shape, geom::Point at, Event e) {
        events.push_back(e);
        attaches[shape].push_back({at, static_cast<int>(events.size()) - 1});
    };

    // Pins attach to the first containing shape on their layer.
    for (size_t p = 0; p < pins.size(); ++p) {
        auto it = routing_index.find(pins[p].layer);
        if (it == routing_index.end())
            raise("pin '%s': no routed shapes on layer '%s'", pins[p].node_name.c_str(),
                  pins[p].layer.c_str());
        bool placed = false;
        const geom::Rect probe(pins[p].at.x, pins[p].at.y, pins[p].at.x, pins[p].at.y);
        for (size_t i : it->second.candidates(probe.inflated(0.01))) {
            if (!shapes[i].rect.contains(pins[p].at)) continue;
            add_event(i, pins[p].at, {Event::Kind::Pin, p});
            placed = true;
            break;
        }
        if (!placed)
            raise("pin '%s' at (%g,%g) on '%s' lands on no wire", pins[p].node_name.c_str(),
                  pins[p].at.x, pins[p].at.y, pins[p].layer.c_str());
    }

    // Same-layer touching shapes of one net.
    for (const auto& [layer_name, index] : routing_index) {
        (void)layer_name;
        for (size_t i = 0; i < shapes.size(); ++i) {
            if (shapes[i].layer != layer_name || nets.shape_net[i] < 0) continue;
            for (size_t j : index.candidates(shapes[i].rect)) {
                if (j <= i) continue;
                if (nets.shape_net[j] != nets.shape_net[i]) continue;
                if (!shapes[i].rect.touches(shapes[j].rect)) continue;
                const geom::Rect ov = shapes[i].rect.intersection(shapes[j].rect);
                geom::Point at = ov.empty()
                                     ? geom::Point{std::max(shapes[i].rect.x0, shapes[j].rect.x0),
                                                   std::max(shapes[i].rect.y0, shapes[j].rect.y0)}
                                     : ov.center();
                const size_t pair = touches.size();
                touches.push_back({i, j, circuit::kGround, circuit::kGround, false, false});
                add_event(i, at, {Event::Kind::Touch, pair});
                add_event(j, at, {Event::Kind::Touch, pair});
            }
        }
    }

    // Vias and contacts.
    for (size_t v = 0; v < shapes.size(); ++v) {
        const tech::Layer* layer = tech.find_layer(shapes[v].layer);
        if (!layer) continue;
        if (layer->kind != tech::LayerKind::Via && layer->kind != tech::LayerKind::Contact)
            continue;
        const geom::Point at = shapes[v].rect.center();

        if (layer->connects_bottom == "substrate") {
            // Substrate tap: the top-layer wire node must carry the
            // substrate macromodel's port name for this net.
            auto it = routing_index.find(layer->connects_top);
            if (it == routing_index.end()) continue;
            auto name_it = tap_name_of_shape.find(v);
            if (name_it == tap_name_of_shape.end()) continue;
            for (size_t i : it->second.candidates(shapes[v].rect)) {
                if (!shapes[i].rect.touches(shapes[v].rect)) continue;
                if (nets.shape_net[i] < 0) continue;
                const size_t idx = subtap_names.size();
                subtap_names.push_back(name_it->second);
                add_event(i, at, {Event::Kind::SubTap, idx});
                break;
            }
            continue;
        }

        const size_t link = vias.size();
        vias.push_back({v, circuit::kGround, circuit::kGround, false, false});
        bool used = false;
        for (const auto& [side, kind] :
             std::initializer_list<std::pair<std::string, Event::Kind>>{
                 {layer->connects_bottom, Event::Kind::ViaBottom},
                 {layer->connects_top, Event::Kind::ViaTop}}) {
            auto it = routing_index.find(side);
            if (it == routing_index.end()) continue;
            for (size_t i : it->second.candidates(shapes[v].rect)) {
                if (!shapes[i].rect.touches(shapes[v].rect)) continue;
                add_event(i, at, {kind, link});
                used = true;
                break;
            }
        }
        if (!used) vias.pop_back();
    }

    // --- phase B: fracture each routing shape, name nodes, emit R & C -----
    std::map<int, NetStats> stats; // by net id
    for (size_t i = 0; i < shapes.size(); ++i) {
        const tech::Layer* layer = tech.find_layer(shapes[i].layer);
        if (!layer || layer->kind != tech::LayerKind::Routing) continue;
        const int net = nets.shape_net[i];
        if (net < 0) continue;
        const std::string& net_name = nets.net_names[static_cast<size_t>(net)];
        auto& st = stats[net];
        st.name = net_name;

        const Fracture frac = fracture_shape(shapes[i].rect, attaches[i]);

        // Assign circuit nodes: pins and subtaps claim their names, the
        // rest are fresh.
        std::vector<circuit::NodeId> node_of(frac.positions.size(), circuit::kGround);
        std::vector<bool> assigned(frac.positions.size(), false);
        std::vector<std::pair<circuit::NodeId, circuit::NodeId>> extra_links;
        for (size_t k = 0; k < attaches[i].size(); ++k) {
            const Event& ev = events[static_cast<size_t>(attaches[i][k].id)];
            const int fn = frac.attach_node[k];
            if (ev.kind != Event::Kind::Pin && ev.kind != Event::Kind::SubTap) continue;
            const std::string& want =
                ev.kind == Event::Kind::Pin ? pins[ev.aux].node_name : subtap_names[ev.aux];
            const circuit::NodeId id = nl.node(want);
            if (!assigned[static_cast<size_t>(fn)]) {
                node_of[static_cast<size_t>(fn)] = id;
                assigned[static_cast<size_t>(fn)] = true;
            } else if (node_of[static_cast<size_t>(fn)] != id) {
                extra_links.emplace_back(node_of[static_cast<size_t>(fn)], id);
            }
        }
        for (size_t k = 0; k < frac.positions.size(); ++k) {
            if (!assigned[k]) node_of[k] = nl.fresh_node("w:" + net_name);
        }
        for (auto [a, b] : extra_links)
            nl.add<circuit::Resistor>(format("tie:%s#%zu", net_name.c_str(),
                                             nl.device_count()),
                                      a, b, opt.touch_resistance);

        // Record nodes for touch pairs and via links.
        for (size_t k = 0; k < attaches[i].size(); ++k) {
            const Event& ev = events[static_cast<size_t>(attaches[i][k].id)];
            const circuit::NodeId id = node_of[static_cast<size_t>(frac.attach_node[k])];
            switch (ev.kind) {
                case Event::Kind::Touch: {
                    auto& tp = touches[ev.aux];
                    if (i == tp.shape_a) {
                        tp.node_a = id;
                        tp.a_set = true;
                    } else {
                        tp.node_b = id;
                        tp.b_set = true;
                    }
                    break;
                }
                case Event::Kind::ViaBottom:
                    vias[ev.aux].bottom = id;
                    vias[ev.aux].bottom_set = true;
                    break;
                case Event::Kind::ViaTop:
                    vias[ev.aux].top = id;
                    vias[ev.aux].top_set = true;
                    break;
                default:
                    break;
            }
        }

        // Segment resistances.
        for (const auto& seg : frac.segments) {
            const circuit::NodeId a = node_of[static_cast<size_t>(seg.node_a)];
            const circuit::NodeId b = node_of[static_cast<size_t>(seg.node_b)];
            if (a == b) continue;
            const double squares = seg.length / seg.width;
            const double r = opt.extract_resistance
                                 ? std::max(layer->sheet_res * squares, 1e-6)
                                 : opt.touch_resistance;
            nl.add<circuit::Resistor>(
                format("%s#%zu", net_name.c_str(), nl.device_count()), a, b, r);
            st.resistance_squares += squares;
            ++st.segment_count;
        }

        // Capacitance to the substrate, distributed over segments (single
        // node shapes lump everything on that node).
        if (opt.extract_capacitance && (layer->cap_area > 0 || layer->cap_fringe > 0)) {
            auto emit_cap = [&](const geom::Rect& foot, circuit::NodeId node, double frac_of) {
                const double c =
                    (layer->cap_area * foot.area() + layer->cap_fringe * foot.perimeter()) *
                    frac_of;
                if (c < opt.cap_floor) return;
                const std::string target =
                    opt.substrate_node ? opt.substrate_node(foot, net_name) : "0";
                nl.add<circuit::Capacitor>(
                    format("c:%s#%zu", net_name.c_str(), nl.device_count()), node,
                    nl.node(target), c);
                st.capacitance_total += c;
            };
            if (frac.segments.empty()) {
                emit_cap(shapes[i].rect, node_of[0], 1.0);
            } else {
                for (const auto& seg : frac.segments) {
                    const circuit::NodeId a = node_of[static_cast<size_t>(seg.node_a)];
                    const circuit::NodeId b = node_of[static_cast<size_t>(seg.node_b)];
                    emit_cap(seg.footprint, a, 0.5);
                    emit_cap(seg.footprint, b, 0.5);
                }
            }
        }
    }

    // --- phase C: inter-shape links ---------------------------------------
    for (size_t t = 0; t < touches.size(); ++t) {
        const auto& tp = touches[t];
        if (!tp.a_set || !tp.b_set || tp.node_a == tp.node_b) continue;
        nl.add<circuit::Resistor>(format("touch#%zu", t), tp.node_a, tp.node_b,
                                  opt.touch_resistance);
    }
    for (size_t v = 0; v < vias.size(); ++v) {
        const auto& link = vias[v];
        if (!link.bottom_set || !link.top_set || link.bottom == link.top) continue;
        const tech::Layer& layer = tech.layer(shapes[link.via_shape].layer);
        const double cuts = std::max(
            1.0, shapes[link.via_shape].rect.area() / (opt.cut_pitch * opt.cut_pitch));
        const double r = opt.extract_resistance ? std::max(layer.via_res / cuts, 1e-6)
                                                : opt.touch_resistance;
        nl.add<circuit::Resistor>(format("via#%zu", v), link.bottom, link.top, r);
    }

    for (auto& [net, st] : stats) out.stats.push_back(std::move(st));
    out.extract_seconds = obs_timer.stop();
    if (obs::enabled()) {
        obs::count("interconnect/devices", nl.device_count());
        obs::count("interconnect/nets", out.stats.size());
        for (const auto& st : out.stats)
            obs::count("interconnect/segments", static_cast<uint64_t>(st.segment_count));
    }
    log_info("interconnect: %zu devices, %zu nets in %.2fs", nl.device_count(),
             out.stats.size(), out.extract_seconds);
    return out;
}

} // namespace snim::interconnect
