#include "package/package.hpp"

#include "circuit/passives.hpp"
#include "util/strings.hpp"

namespace snim::package {

void PackageModel::instantiate(circuit::Netlist& target) const {
    int idx = 0;
    for (const auto& w : wires) {
        SNIM_ASSERT(!w.pad_node.empty() && !w.board_node.empty(),
                    "bondwire needs both end nodes");
        const auto pad = target.node(w.pad_node);
        const auto board = target.node(w.board_node);
        target.add<circuit::Inductor>(format("pkg:l%d", idx), pad, board, w.inductance,
                                      w.resistance);
        if (w.pad_cap > 0) {
            target.add<circuit::Capacitor>(format("pkg:c%d", idx), pad,
                                           target.node(w.pad_cap_node), w.pad_cap);
        }
        ++idx;
    }
}

PackageModel default_rf_package(const std::vector<std::string>& pad_nodes) {
    PackageModel pkg;
    for (const auto& pad : pad_nodes) {
        BondwireSpec w;
        w.pad_node = pad;
        w.board_node = "0";
        w.inductance = 1.2e-9;
        w.resistance = 0.15;
        w.pad_cap = 120e-15;
        pkg.wires.push_back(std::move(w));
    }
    return pkg;
}

} // namespace snim::package
