// Package model: bondwire + lead parasitics between on-chip pads and the
// off-chip reference.  Classical substrate-noise flows [2,3,4] already
// include this; the ground bondwire inductance matters because it separates
// the on-chip ground from the clean off-chip ground.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace snim::package {

struct BondwireSpec {
    std::string pad_node;   // on-chip pad node
    std::string board_node; // off-chip node ("0" for the clean reference)
    double inductance = 1e-9;  // [H] ~1 nH/mm of bondwire
    double resistance = 0.1;   // [ohm]
    double pad_cap = 100e-15;  // pad + ESD capacitance to substrate/ground [F]
    /// Node the pad capacitance refers to (usually the local substrate
    /// port or ground).
    std::string pad_cap_node = "0";
};

struct PackageModel {
    std::vector<BondwireSpec> wires;

    /// Instantiates all bondwires into `target` (device names prefixed
    /// "pkg:").
    void instantiate(circuit::Netlist& target) const;
};

/// Chip-on-board style default package for the paper's test chip: supply,
/// ground, tune and output bondwires of ~1 mm.
PackageModel default_rf_package(const std::vector<std::string>& pad_nodes);

} // namespace snim::package
