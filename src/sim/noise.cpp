#include "sim/noise.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/passives.hpp"
#include "numeric/sparse_lu.hpp"
#include "sim/mna.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::sim {

double NoiseResult::total_rms(double f_lo, double f_hi) const {
    SNIM_ASSERT(freq.size() >= 2, "need at least two frequency points");
    // Trapezoidal integration of the PSD over [f_lo, f_hi].
    double power = 0.0;
    for (size_t k = 1; k < freq.size(); ++k) {
        const double a = std::max(freq[k - 1], f_lo);
        const double b = std::min(freq[k], f_hi);
        if (b <= a) continue;
        power += 0.5 * (total_psd[k - 1] + total_psd[k]) * (b - a);
    }
    return std::sqrt(power);
}

namespace {

/// One physical noise generator mapped onto the MNA unknowns.
struct Source {
    const circuit::Device* device;
    circuit::NodeId a = circuit::kGround; // current injected a -> b
    circuit::NodeId b = circuit::kGround;
    circuit::NodeId branch = -1;          // or a branch-row voltage source
    double psd = 0.0;                     // A^2/Hz (nodes) or V^2/Hz (branch)
};

} // namespace

NoiseResult noise_analysis(circuit::Netlist& netlist, const std::string& output_node,
                           const std::vector<double>& freqs,
                           const std::vector<double>& xop, const NoiseOptions& opt) {
    using circuit::Diode;
    using circuit::Inductor;
    using circuit::Mosfet;
    using circuit::Resistor;

    netlist.finalize();
    const size_t n = netlist.unknown_count();
    SNIM_ASSERT(xop.size() == n, "operating point size mismatch");
    const auto out_id = netlist.existing_node(output_node);
    SNIM_ASSERT(out_id >= 0, "cannot take noise at the ground node");
    const double fourkt = 4.0 * units::kBoltzmann * opt.temperature;

    // Collect noise generators.
    std::vector<Source> sources;
    for (const auto& d : netlist.devices()) {
        if (d->disabled()) continue;
        if (const auto* r = dynamic_cast<const Resistor*>(d.get())) {
            Source s;
            s.device = d.get();
            s.a = d->nodes()[0];
            s.b = d->nodes()[1];
            s.psd = fourkt / r->resistance();
            sources.push_back(s);
        } else if (const auto* m = dynamic_cast<const Mosfet*>(d.get())) {
            const auto ss = m->small_signal(xop);
            if (!ss.on) continue;
            Source s;
            s.device = d.get();
            s.a = d->nodes()[0]; // drain
            s.b = d->nodes()[2]; // source
            s.psd = fourkt * (ss.saturated ? opt.mos_gamma * ss.gm : ss.gds);
            sources.push_back(s);
        } else if (const auto* dd = dynamic_cast<const Diode*>(d.get())) {
            const double v = circuit::volt(xop, d->nodes()[0]) -
                             circuit::volt(xop, d->nodes()[1]);
            const double i = std::fabs(dd->current(v));
            if (i < 1e-18) continue;
            Source s;
            s.device = d.get();
            s.a = d->nodes()[0];
            s.b = d->nodes()[1];
            s.psd = 2.0 * units::kQ * i; // shot noise
            sources.push_back(s);
        } else if (const auto* l = dynamic_cast<const Inductor*>(d.get())) {
            if (l->series_res() <= 0) continue;
            // Series resistance noise enters as a branch-row voltage source.
            Source s;
            s.device = d.get();
            s.branch = d->aux_base();
            s.psd = fourkt * l->series_res();
            sources.push_back(s);
        }
    }

    NoiseResult out;
    out.freq = freqs;
    out.total_psd.reserve(freqs.size());
    std::vector<double> last_contrib(sources.size(), 0.0);

    circuit::ComplexStamper st(n);
    st.enable_compiled_assembly();
    // The AC stamp sequence is frequency-independent in shape, so one
    // symbolic analysis serves the whole sweep (pivot-health guarded).
    ReusableLU<std::complex<double>> rlu;
    for (double f : freqs) {
        st.clear();
        assemble_ac(netlist, st, xop, units::kTwoPi * f, opt.gmin);
        rlu.factor(st.csc());
        // Adjoint solve: y = A^-T e_out gives every transfer impedance at once.
        std::vector<std::complex<double>> e(n, {0.0, 0.0});
        e[static_cast<size_t>(out_id)] = {1.0, 0.0};
        const auto y = rlu.solve_transpose(e);

        double total = 0.0;
        for (size_t k = 0; k < sources.size(); ++k) {
            const auto& s = sources[k];
            std::complex<double> z;
            if (s.branch >= 0) {
                z = y[static_cast<size_t>(s.branch)];
            } else {
                const auto ya = s.a >= 0 ? y[static_cast<size_t>(s.a)]
                                         : std::complex<double>{0, 0};
                const auto yb = s.b >= 0 ? y[static_cast<size_t>(s.b)]
                                         : std::complex<double>{0, 0};
                z = ya - yb;
            }
            const double c = std::norm(z) * s.psd;
            total += c;
            last_contrib[k] = c;
        }
        out.total_psd.push_back(total);
    }

    // Rank contributors at the last frequency.
    std::vector<size_t> order(sources.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return last_contrib[a] > last_contrib[b]; });
    for (size_t i = 0; i < std::min(opt.max_contributors, order.size()); ++i) {
        out.contributors.push_back(
            {sources[order[i]].device->name(), last_contrib[order[i]]});
    }
    return out;
}

} // namespace snim::sim
