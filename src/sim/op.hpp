// DC operating point: damped Newton iteration with gmin stepping fallback.
#pragma once

#include "circuit/netlist.hpp"

namespace snim::sim {

struct OpOptions {
    int max_iter = 300;
    double reltol = 1e-6;
    double vntol = 1e-9;   // absolute voltage tolerance [V]
    double gmin = 1e-12;   // final gmin [S]
    double dv_max = 0.5;   // Newton step clamp [V]
    bool gmin_stepping = true;
    /// Starting point; empty means all-zeros.
    std::vector<double> initial;
    /// Write a snim_diag_*.json failure diagnosis bundle (per-iteration
    /// residual history, worst nodes, LU pivot health) when the operating
    /// point fails; the thrown snim::Error names the bundle path.
    bool diag_bundle = true;
    /// Bundle directory; empty -> sim::default_diag_dir() -> current dir.
    std::string diag_dir;
    /// Last-N Newton iterations of telemetry kept for the bundle.
    int diag_tail = 64;
};

/// Solves the DC operating point; returns the full unknown vector
/// (node voltages then branch currents).  Throws snim::Error if Newton
/// fails to converge even with gmin stepping.
std::vector<double> operating_point(circuit::Netlist& netlist, const OpOptions& opt = {});

} // namespace snim::sim
