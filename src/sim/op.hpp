// DC operating point: a homotopy ladder of increasingly robust solvers.
//
// Rungs, tried in order until one converges:
//   1. "newton"  — damped Newton from the caller's initial point,
//   2. "gmin"    — gmin stepping: solve at a large node-to-ground gmin and
//                  continue the solution down to OpOptions::gmin,
//   3. "source"  — source stepping: ramp every independent source value
//                  from ~0 to 100% in source_steps continuation points,
//   4. "ptran"   — pseudo-transient continuation: anchor every node through
//                  a conductance g to the previous pseudo-state (backward-
//                  Euler integration of artificial node capacitors) and
//                  relax g from ptran_g0 toward 0 until plain Newton holds.
// Per-rung attempt/win counters land in the obs registry under
// sim/op/rung/<name>/..., and the failure bundle records the whole ladder.
#pragma once

#include <string>

#include "circuit/netlist.hpp"
#include "obs/certify.hpp"

namespace snim::sim {

struct OpOptions {
    int max_iter = 300;
    double reltol = 1e-6;
    double vntol = 1e-9;   // absolute voltage tolerance [V]
    double gmin = 1e-12;   // final gmin [S]
    double dv_max = 0.5;   // Newton step clamp [V]
    bool gmin_stepping = true;
    /// Starting point; empty means all-zeros.
    std::vector<double> initial;
    /// Write a snim_diag_*.json failure diagnosis bundle (per-iteration
    /// residual history, worst nodes, LU pivot health, the rung ladder)
    /// when the operating point fails; the thrown snim::Error names the
    /// bundle path.
    bool diag_bundle = true;
    /// Bundle directory; empty -> sim::default_diag_dir() -> current dir.
    std::string diag_dir;
    /// Last-N Newton iterations of telemetry kept for the bundle.
    int diag_tail = 64;

    // --- homotopy ladder (rungs past gmin stepping) ---------------------
    /// Try source stepping when damped Newton and gmin stepping fail.
    bool source_stepping = true;
    /// Continuation points of the source ramp (scale = k / source_steps).
    int source_steps = 8;
    /// Try pseudo-transient continuation as the last rung.
    bool pseudo_transient = true;
    /// Initial node-anchor conductance [S] (the pseudo dt starts small).
    double ptran_g0 = 1.0;
    /// Geometric anchor relaxation per accepted pseudo-step (> 1).
    double ptran_growth = 3.1622776601683795; // sqrt(10)
    /// Pseudo-step budget before the rung gives up.
    int ptran_steps = 80;
    /// Anchor level treated as "free": once g falls below this and the
    /// pseudo-state stops moving, the rung locks in with plain Newton.
    double ptran_g_floor = 1e-9;

    /// Reuse one symbolic LU analysis (pattern + pivot sequence) across the
    /// Newton iterations of each solve, refreshing only the numeric values
    /// (pivot-health guarded).  OFF forces a full factorization per
    /// iteration.
    bool reuse_lu = true;

    /// Per-solve certificate on the converged verification solve of each
    /// Newton run (backward error, condition estimate, counted refinement).
    /// Active only while the obs registry is enabled.  The stride knob is
    /// ignored here: op solves are rare, every one is certified.
    obs::CertifyOptions certify;
};

/// The operating point plus how it was won.
struct OpResult {
    std::vector<double> x;        // node voltages then branch currents
    std::string rung;             // "newton" | "gmin" | "source" | "ptran"
    long newton_iters = 0;        // total Newton iterations over the ladder
};

/// Solves the DC operating point; returns the full unknown vector
/// (node voltages then branch currents).  Throws snim::Error once every
/// enabled homotopy rung has failed.
std::vector<double> operating_point(circuit::Netlist& netlist, const OpOptions& opt = {});

/// As operating_point(), also reporting the winning rung and the total
/// Newton iteration count (tests and sweep drivers read these).
OpResult operating_point_ex(circuit::Netlist& netlist, const OpOptions& opt = {});

} // namespace snim::sim
