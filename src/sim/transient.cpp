#include "sim/transient.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse_lu.hpp"
#include "numeric/vecops.hpp"
#include "obs/trace.hpp"
#include "sim/mna.hpp"
#include "sim/op.hpp"
#include "util/log.hpp"

namespace snim::sim {

const std::vector<double>& TranResult::wave(const std::string& probe) const {
    for (size_t i = 0; i < probe_names.size(); ++i)
        if (probe_names[i] == probe) return waves[i];
    raise("no probe named '%s'", probe.c_str());
}

TranResult transient(circuit::Netlist& netlist, const std::vector<std::string>& probes,
                     const TranOptions& opt) {
    SNIM_ASSERT(opt.tstop > 0 && opt.dt > 0, "transient needs tstop and dt");
    SNIM_ASSERT(opt.order == 1 || opt.order == 2, "order must be 1 or 2");
    SNIM_ASSERT(opt.record_stride >= 1, "record_stride must be >= 1");
    if (opt.observe) obs::set_enabled(true);
    obs::ScopedTimer obs_run("sim/transient");
    netlist.finalize();
    const size_t n = netlist.unknown_count();

    std::vector<double> x = opt.initial;
    if (x.empty()) {
        OpOptions oo;
        oo.gmin = opt.gmin;
        x = operating_point(netlist, oo);
    }
    SNIM_ASSERT(x.size() == n, "initial point size mismatch");

    for (const auto& d : netlist.devices()) d->init_tran(x);

    TranResult out;
    out.probe_names = probes;
    out.waves.resize(probes.size());
    out.dt_sample = opt.dt * opt.record_stride;
    std::vector<circuit::NodeId> probe_ids;
    probe_ids.reserve(probes.size());
    for (const auto& p : probes) probe_ids.push_back(netlist.existing_node(p));

    const long nsteps = static_cast<long>(std::ceil(opt.tstop / opt.dt));
    const size_t est = static_cast<size_t>(
        std::max(0.0, (opt.tstop - opt.record_start) / out.dt_sample)) + 2;
    out.time.reserve(est);
    for (auto& w : out.waves) w.reserve(est);

    circuit::RealStamper s(n);
    std::vector<double> xit = x;
    long recorded = 0;
    long averaged = 0;
    if (opt.accumulate_average) out.average.assign(n, 0.0);

    // Dense fast path: for the node counts typical of a reduced impact
    // model (< ~160 unknowns) a dense LU beats the sparse solver's per-step
    // allocation cost by a wide margin.
    const bool use_dense = n <= 160;
    DenseMatrix<double> dense(use_dense ? n : 0, use_dense ? n : 0);
    for (long step = 1; step <= nsteps; ++step) {
        circuit::TranParams tp;
        tp.dt = opt.dt;
        tp.time = static_cast<double>(step) * opt.dt;
        tp.order = (step <= opt.be_startup_steps) ? 1 : opt.order;

        obs::ScopedTimer obs_step("sim/transient/step");

        // Newton iteration, starting from the previous accepted solution.
        bool converged = false;
        int newton_iters = 0;
        for (int it = 0; it < opt.max_newton; ++it) {
            obs::ScopedTimer obs_newton("sim/transient/newton");
            newton_iters = it + 1;
            s.clear();
            assemble_tran(netlist, s, xit, tp, opt.gmin);
            std::vector<double> xn;
            if (use_dense) {
                for (size_t i = 0; i < n; ++i)
                    for (size_t j = 0; j < n; ++j) dense(i, j) = 0.0;
                const auto& tri = s.matrix();
                const auto& rows = tri.rows();
                const auto& cols = tri.cols();
                const auto& vals = tri.values();
                for (size_t e = 0; e < rows.size(); ++e)
                    dense(static_cast<size_t>(rows[e]), static_cast<size_t>(cols[e])) +=
                        vals[e];
                xn = DenseLU<double>(dense).solve(s.rhs());
            } else {
                SparseLU<double> lu(s.matrix());
                xn = lu.solve(s.rhs());
            }
            double max_dx = 0.0;
            for (size_t i = 0; i < n; ++i) {
                double dx = xn[i] - xit[i];
                if (i < netlist.node_count()) dx = std::clamp(dx, -opt.dv_max, opt.dv_max);
                max_dx = std::max(max_dx, std::fabs(dx));
                xit[i] += dx;
            }
            if (!std::isfinite(max_dx))
                raise("transient diverged at t=%.4g", tp.time);
            if (max_dx < opt.vntol + opt.reltol * norm_inf(xit)) {
                converged = true;
                break;
            }
        }
        if (obs::enabled()) {
            obs::count("sim/transient/steps");
            obs::record_value("sim/transient/newton_per_step", newton_iters);
            if (!converged) obs::count("sim/transient/convergence_failures");
        }
        if (!converged)
            raise("transient Newton did not converge at t=%.4g (dt=%.3g)", tp.time,
                  opt.dt);

        for (const auto& d : netlist.devices()) d->commit_tran(xit, tp);

        if (tp.time >= opt.record_start) {
            if (recorded % opt.record_stride == 0) {
                out.time.push_back(tp.time);
                for (size_t p = 0; p < probe_ids.size(); ++p)
                    out.waves[p].push_back(circuit::volt(xit, probe_ids[p]));
            }
            ++recorded;
            if (opt.accumulate_average) {
                for (size_t i = 0; i < n; ++i) out.average[i] += xit[i];
                ++averaged;
            }
        }
    }
    if (averaged > 0)
        for (auto& v : out.average) v /= static_cast<double>(averaged);
    return out;
}

} // namespace snim::sim
