#include "sim/transient.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>

#include "numeric/certify.hpp"
#include "numeric/newton_guard.hpp"
#include "numeric/sparse_lu.hpp"
#include "sim/assembly.hpp"
#include "numeric/vecops.hpp"
#include "obs/events.hpp"
#include "obs/progress.hpp"
#include "obs/provenance.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/diagnostics.hpp"
#include "sim/mna.hpp"
#include "sim/op.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace snim::sim {

const std::vector<double>& TranResult::wave(const std::string& probe) const {
    for (size_t i = 0; i < probe_names.size(); ++i)
        if (probe_names[i] == probe) return waves[i];
    raise("no probe named '%s'", probe.c_str());
}

namespace {

/// Serialised into the failure bundle so a post-mortem sees the exact
/// solver configuration.
obs::JsonObject tran_options_json(const TranOptions& opt) {
    obs::JsonObject o;
    o.emplace("tstop", opt.tstop);
    o.emplace("dt", opt.dt);
    o.emplace("order", opt.order);
    o.emplace("gmin", opt.gmin);
    o.emplace("max_newton", opt.max_newton);
    o.emplace("reltol", opt.reltol);
    o.emplace("vntol", opt.vntol);
    o.emplace("dv_max", opt.dv_max);
    o.emplace("record_start", opt.record_start);
    o.emplace("record_stride", opt.record_stride);
    o.emplace("be_startup_steps", opt.be_startup_steps);
    o.emplace("adaptive", opt.adaptive);
    o.emplace("dt_min", opt.dt_min);
    o.emplace("max_step_retries", opt.max_step_retries);
    o.emplace("dt_recovery_accepts", opt.dt_recovery_accepts);
    o.emplace("lte_control", opt.lte_control);
    o.emplace("reuse_lu", opt.reuse_lu);
    o.emplace("dense_crossover", opt.dense_crossover);
    o.emplace("incremental_assembly", opt.incremental_assembly);
    o.emplace("newton_reuse_jacobian", opt.newton_reuse_jacobian);
    o.emplace("newton_predictor", opt.newton_predictor);
    o.emplace("jacobian_stall_theta", opt.jacobian_stall_theta);
    o.emplace("jacobian_max_age", opt.jacobian_max_age);
    o.emplace("certify_enabled", opt.certify.enabled);
    o.emplace("certify_omega_max", opt.certify.omega_max);
    o.emplace("certify_rcond_min", opt.certify.rcond_min);
    o.emplace("certify_refine", opt.certify.refine);
    o.emplace("certify_stride", opt.certify.stride);
    o.emplace("kcl_max", opt.kcl_max);
    return o;
}

/// Post-accept KCL conservation audit: the worst per-node current-sum
/// residual |A x - b|_i over the node rows of the freshly assembled system
/// at the accepted solution.  In MNA companion form that residual IS the
/// net device current left sitting on the node, so a healthy accepted step
/// reads near the Newton tolerance and a drifting charge model reads hot.
/// Returns the worst residual and its node index through the out-params.
/// Mat is SparseCSC<double> or DenseMatrix<double> (the legacy dense path).
template <class Mat>
void kcl_audit(const circuit::Netlist& netlist, const Mat& a,
               const std::vector<double>& b, const std::vector<double>& x,
               double& worst, int& worst_node) {
    const std::vector<double> ax = a.multiply(x);
    worst = 0.0;
    worst_node = -1;
    for (size_t i = 0; i < netlist.node_count(); ++i) {
        const double r = std::fabs(ax[i] - b[i]);
        if (!(r <= worst)) { // NaN ranks worst
            worst = std::isfinite(r) ? r : std::numeric_limits<double>::infinity();
            worst_node = static_cast<int>(i);
        }
    }
}

/// Bounded FIFO of retry events for the diagnosis bundle.
class RetryLog {
public:
    explicit RetryLog(size_t capacity) : cap_(std::max<size_t>(1, capacity)) {}

    void push(RetryEvent e) {
        if (events_.size() == cap_) events_.erase(events_.begin());
        events_.push_back(std::move(e));
        ++total_;
    }
    const std::vector<RetryEvent>& events() const { return events_; }
    long total() const { return total_; }

private:
    size_t cap_;
    std::vector<RetryEvent> events_;
    long total_ = 0;
};

[[noreturn]] void fail_transient(const circuit::Netlist& netlist,
                                 const TranOptions& opt, const TranResult& partial,
                                 const StepTelemetryRing& ring,
                                 const std::vector<double>& last_dx,
                                 const RetryLog& retries, const char* reason,
                                 long step, long nsteps, double time) {
    std::string bundle;
    std::string worst;
    if (!last_dx.empty()) {
        const auto nodes = worst_unknowns(netlist, last_dx, 5);
        if (!nodes.empty())
            worst = format("; worst node '%s' (dv=%.3g)", nodes.front().first.c_str(),
                           nodes.front().second);
        if (opt.diag_bundle) {
            FailureDiagnosis d;
            d.engine = "transient";
            d.reason = reason;
            d.fail_time = time;
            d.fail_step = step;
            d.telemetry = ring.tail();
            d.worst_nodes = nodes;
            d.options = tran_options_json(opt);
            d.partial = &partial;
            d.wave_tail = static_cast<size_t>(opt.diag_wave_tail);
            d.retries = retries.events();
            d.total_retries = retries.total();
            bundle = write_diagnosis_bundle(d, opt.diag_dir);
        }
    }
    std::string retried;
    if (retries.total() > 0)
        retried = format(" after %ld rejected attempts", retries.total());
    raise("transient Newton %s at t=%.4g (step %ld of %ld, dt=%.3g, %zu samples "
          "recorded)%s%s%s%s",
          reason, time, step, nsteps, opt.dt, partial.time.size(), retried.c_str(),
          worst.c_str(), bundle.empty() ? "" : "; diagnosis bundle: ",
          bundle.empty() ? "" : bundle.c_str());
}

/// Why one step attempt was rejected.
enum class Reject { none, no_convergence, nonfinite, singular };

const char* reject_name(Reject r) {
    switch (r) {
        case Reject::no_convergence: return "no_convergence";
        case Reject::nonfinite: return "nonfinite_update";
        case Reject::singular: return "singular_system";
        default: return "none";
    }
}

/// Merges the per-run checkpoint knobs with the process-default policy and
/// fills the cadence/tag defaults.  Returned dir empty <=> checkpointing
/// off for this run.
CheckpointOptions resolve_checkpoint(const TranOptions& opt) {
    CheckpointOptions c = opt.checkpoint;
    if (c.dir.empty()) {
        const CheckpointOptions& def = default_checkpoint();
        if (def.dir.empty()) {
            if (c.resume)
                raise("transient: checkpoint.resume requested but no "
                      "checkpoint dir is configured (set checkpoint.dir or "
                      "sim::set_default_checkpoint)");
            return c;
        }
        c.dir = def.dir;
        if (c.every_steps <= 0) c.every_steps = def.every_steps;
        if (c.every_s <= 0.0) c.every_s = def.every_s;
        c.resume = c.resume || def.resume;
        if (c.tag.empty()) c.tag = def.tag;
    }
    if (c.every_steps <= 0 && c.every_s <= 0.0) c.every_s = 5.0;
    if (c.tag.empty()) c.tag = "tran";
    return c;
}

/// Resume-time consistency checks beyond the config digest: the snapshot
/// must describe THIS netlist and probe set, under the same RNG seed.
void validate_resume(const TranCheckpoint& c, size_t n,
                     const std::vector<std::string>& probes,
                     const std::string& path) {
    if (c.x_acc.size() != n || c.x_prev.size() != n)
        raise("checkpoint '%s' holds %zu unknowns but the netlist has %zu — "
              "refusing to resume",
              path.c_str(), c.x_acc.size(), n);
    if (c.probe_names != probes || c.waves.size() != probes.size())
        raise("checkpoint '%s' was recorded with different probes — refusing "
              "to resume",
              path.c_str());
    const uint64_t seed = default_rng_seed();
    if (c.rng_seed != seed)
        raise("checkpoint '%s' was written under RNG seed %llu but the "
              "current seed is %llu — refusing to resume",
              path.c_str(), static_cast<unsigned long long>(c.rng_seed),
              static_cast<unsigned long long>(seed));
}

} // namespace

TranResult transient(circuit::Netlist& netlist, const std::vector<std::string>& probes,
                     const TranOptions& opt) {
    validate_tran_options(opt);
    if (opt.observe) obs::set_enabled(true);
    obs::ScopedTimer obs_run("sim/transient", obs::Timing::WhenEnabled,
                             obs::Rss::Track);
    netlist.finalize();
    const size_t n = netlist.unknown_count();

    // Checkpoint policy + resume load happen BEFORE the operating point:
    // a resumed run restores the accepted state instead of re-solving DC.
    const CheckpointOptions cko = resolve_checkpoint(opt);
    const bool ckpt_on = !cko.dir.empty();
    uint64_t ckpt_digest = 0;
    std::string ckpt_file;
    std::optional<TranCheckpoint> res;
    if (ckpt_on) {
        obs::ConfigDigest cd;
        digest_options(cd, opt);
        ckpt_digest = cd.value64();
        ckpt_file = checkpoint_path(cko.dir, cko.tag);
        if (cko.resume) {
            res = load_checkpoint(ckpt_file, ckpt_digest);
            if (res) validate_resume(*res, n, probes, ckpt_file);
        }
    }
    const bool resuming = res.has_value();

    std::vector<double> x;
    if (resuming) {
        x = res->x_acc;
    } else {
        x = opt.initial;
        if (x.empty()) {
            OpOptions oo;
            oo.gmin = opt.gmin;
            // The embedded op inherits the transient's certificate policy so a
            // caller that relaxes thresholds (ablation runs) relaxes both solves.
            oo.certify = opt.certify;
            x = operating_point(netlist, oo);
        }
    }
    SNIM_ASSERT(x.size() == n, "initial point size mismatch");

    if (resuming) {
        // Device state comes from the snapshot, NOT init_tran — the restored
        // values must reproduce the killed run bit-for-bit.
        size_t pos = 0;
        for (const auto& d : netlist.devices()) d->load_tran_state(res->device_state, pos);
        if (pos != res->device_state.size())
            raise("checkpoint '%s' carries %zu device-state values but this "
                  "netlist consumed %zu — refusing to resume",
                  ckpt_file.c_str(), res->device_state.size(), pos);
    } else {
        for (const auto& d : netlist.devices()) d->init_tran(x);
    }

    TranResult out;
    out.probe_names = probes;
    out.waves.resize(probes.size());
    out.dt_sample = opt.dt * opt.record_stride;
    std::vector<circuit::NodeId> probe_ids;
    probe_ids.reserve(probes.size());
    for (const auto& p : probes) probe_ids.push_back(netlist.existing_node(p));

    const long nsteps = static_cast<long>(std::ceil(opt.tstop / opt.dt));
    const size_t est = static_cast<size_t>(
        std::max(0.0, (opt.tstop - opt.record_start) / out.dt_sample)) + 2;
    out.time.reserve(est);
    for (auto& w : out.waves) w.reserve(est);

    // The dt backoff ladder subdivides the nominal grid by powers of two:
    // at `level`, micro-steps are dt / 2^level and a nominal step is 2^level
    // micro-positions wide.  dt_min (0 -> dt/4096) bounds the subdivision.
    int max_level = 0;
    if (opt.adaptive) {
        const double floor_dt = opt.dt_min > 0.0 ? opt.dt_min : opt.dt / 4096.0;
        while (opt.dt / static_cast<double>(1L << (max_level + 1)) >= floor_dt &&
               max_level < 30)
            ++max_level;
    }

    circuit::RealStamper s(n);
    std::vector<double> x_acc = x;       // last accepted (committed) state
    std::vector<double> x_prev = x;      // accepted state one micro-step back
    std::vector<double> xit = x;         // Newton iterate of the attempt
    std::vector<double> last_dx(n, 0.0); // per-unknown update of the last iteration
    std::vector<double> xn;              // tentative Newton iterate
    std::vector<double> lu_tmp, resid;   // solve_into / residual scratch
    StepTelemetryRing ring(static_cast<size_t>(opt.diag_tail));
    RetryLog retries(static_cast<size_t>(opt.retry_history));
    long recorded = 0;
    long averaged = 0;
    if (opt.accumulate_average) out.average.assign(n, 0.0);
    if (resuming) {
        // Replay the recorded prefix and the accumulator state; `average`
        // holds RAW sums until the final divide.
        x_prev = res->x_prev;
        recorded = static_cast<long>(res->recorded);
        averaged = static_cast<long>(res->averaged);
        if (opt.accumulate_average) out.average = res->average;
        out.time = res->time;
        out.waves = res->waves;
        out.step_retries = static_cast<long>(res->step_retries);
    }

    // Default engine: one symbolic analysis + pivot sequence computed on
    // the first iteration, then numeric-only refactors fed by the stamper's
    // compiled in-place CSC scatter.  The dense fast path (which used to win
    // below ~160 unknowns purely on the sparse path's per-iteration rebuild
    // cost) is kept for the reuse_lu=off legacy configuration.
    const bool use_dense =
        !opt.reuse_lu && n <= static_cast<size_t>(opt.dense_crossover);
    DenseMatrix<double> dense(use_dense ? n : 0, use_dense ? n : 0);
    ReusableLU<double>::Options lu_opt;
    lu_opt.reuse = opt.reuse_lu;
    ReusableLU<double> rlu(lu_opt);
    if (!use_dense) s.enable_compiled_assembly();

    // Incremental assembly and modified Newton only run on the sparse
    // engine; the legacy dense configuration keeps its historical path
    // untouched.  The assembler is only constructed when enabled so the
    // feature-off stamper does not even record the RHS tape.
    const bool use_incremental = opt.incremental_assembly && !use_dense;
    const bool reuse_jac = opt.newton_reuse_jacobian && !use_dense;
    std::optional<TranAssembler> assembler;
    if (use_incremental) assembler.emplace(netlist, s, opt.gmin);
    JacobianReuseGuard guard(
        {opt.jacobian_stall_theta, opt.jacobian_max_age});

    const double lte_reltol = opt.lte_reltol > 0.0 ? opt.lte_reltol : opt.reltol;
    const double lte_abstol = opt.lte_abstol > 0.0 ? opt.lte_abstol : opt.vntol;

    long attempt_no = 0;       // global step-attempt counter (telemetry "step")
    long be_steps_done = 0;    // accepted steps integrated with BE so far
    int level = 0;             // current subdivision depth (0 = nominal dt)
    int consecutive_accepts = 0;
    double dt_prev = 0.0;      // accepted step before the current one (LTE)
    bool lte_ok = true;        // last accepted step passed the LTE gate
    if (resuming) {
        attempt_no = static_cast<long>(res->attempt_no);
        be_steps_done = static_cast<long>(res->be_steps_done);
        level = static_cast<int>(res->level);
        consecutive_accepts = static_cast<int>(res->consecutive_accepts);
        dt_prev = res->dt_prev;
        lte_ok = res->lte_ok;
    }

    // Live progress over the nominal grid (heartbeats/ETA); inert unless
    // the event journal or a heartbeat observer is active.
    obs::ProgressScope progress("sim/transient", static_cast<uint64_t>(nsteps));

    const long start_step = resuming ? static_cast<long>(res->step) + 1 : 1;
    if (resuming) {
        if (res->step > nsteps)
            raise("checkpoint '%s' is %lld steps in but this run has only %ld "
                  "— refusing to resume",
                  ckpt_file.c_str(), static_cast<long long>(res->step), nsteps);
        // The ledger merge is monotone, so restoring a later state of the
        // same execution path reproduces the uninterrupted ledger exactly.
        obs::budget_restore(res->budget);
        obs::count("sim/ckpt_resumes");
        obs::event(obs::EventLevel::Info, "ckpt", "ckpt_resume",
                   {{"path", ckpt_file},
                    {"step", static_cast<long>(res->step)},
                    {"of", nsteps},
                    {"samples", static_cast<uint64_t>(out.time.size())}});
        log_info("transient: resumed from '%s' at step %lld of %ld (%zu "
                 "samples replayed)",
                 ckpt_file.c_str(), static_cast<long long>(res->step), nsteps,
                 out.time.size());
        progress.advance(static_cast<uint64_t>(res->step));
    }

    // Snapshot machinery: writing copies state, never mutates it, so the
    // cadence (wall-clock included) cannot change numeric results.
    auto ckpt_last_write = std::chrono::steady_clock::now();
    auto write_snapshot = [&](long steps_done) {
        TranCheckpoint c;
        c.config_digest = ckpt_digest;
        c.rng_seed = default_rng_seed();
        c.step = steps_done;
        c.attempt_no = attempt_no;
        c.be_steps_done = be_steps_done;
        c.level = level;
        c.consecutive_accepts = consecutive_accepts;
        c.step_retries = out.step_retries;
        c.recorded = recorded;
        c.averaged = averaged;
        c.dt_prev = dt_prev;
        c.lte_ok = lte_ok;
        c.x_acc = x_acc;
        c.x_prev = x_prev;
        for (const auto& d : netlist.devices()) d->save_tran_state(c.device_state);
        c.average = out.average;
        c.probe_names = out.probe_names;
        c.time = out.time;
        c.waves = out.waves;
        c.budget = obs::budget_state();
        try {
            const size_t bytes = write_checkpoint(ckpt_file, c);
            obs::count("sim/ckpt_writes");
            obs::count("sim/ckpt_bytes", bytes);
            obs::event(obs::EventLevel::Info, "ckpt", "ckpt_write",
                       {{"path", ckpt_file},
                        {"step", steps_done},
                        {"of", nsteps},
                        {"bytes", static_cast<uint64_t>(bytes)}});
        } catch (const Error& e) {
            // A failed snapshot must never kill the run: the last-good pair
            // stays on disk and integration continues.
            obs::count("sim/ckpt_write_failures");
            obs::event(obs::EventLevel::Warn, "ckpt", "ckpt_write_failed",
                       {{"path", ckpt_file},
                        {"step", steps_done},
                        {"error", e.what()}});
            log_warn("transient: checkpoint write failed (%s); continuing on "
                     "the last good snapshot",
                     e.what());
        }
        ckpt_last_write = std::chrono::steady_clock::now();
    };

    for (long step = start_step; step <= nsteps; ++step) {
        // Factor reuse stops at nominal-step boundaries: a checkpoint resume
        // restarts exactly here with an empty factor cache, so the
        // uninterrupted run must drop its factors too or the two would walk
        // different iterate sequences (resume bit-identity is a hard
        // contract, and it keeps waveforms independent of snapshot cadence,
        // which is wall-clock driven).
        if (reuse_jac) guard.invalidate();
        // Position within the nominal step in units of dt / 2^level.  The
        // step completes when k reaches 2^level; regrowth halves both the
        // numerator and the denominator, so alignment is exact.
        long k = 0;
        int step_retries = 0;
        const double t_base = static_cast<double>(step - 1) * opt.dt;

        while (k < (1L << level)) {
            const double dt_cur = opt.dt / static_cast<double>(1L << level);
            circuit::TranParams tp;
            tp.dt = dt_cur;
            // The last micro-step lands on the nominal boundary *exactly*
            // (computed as step * dt, not t_base + k * dt_cur) so source
            // evaluation and recording stay bit-identical to the fixed-step
            // loop whenever no retry fired.
            tp.time = (k + 1 == (1L << level))
                          ? static_cast<double>(step) * opt.dt
                          : t_base + static_cast<double>(k + 1) * dt_cur;
            tp.order = (be_steps_done < opt.be_startup_steps) ? 1 : opt.order;

            obs::ScopedTimer obs_step("sim/transient/step");

            // Newton iteration, starting from the last accepted solution —
            // or, on the incremental engine, from the LTE gate's linear
            // predictor, which starts close enough that most steps converge
            // in two quadratic iterations instead of three.  x_acc, x_prev
            // and dt_prev are all checkpointed, so a resumed run predicts
            // the exact same starting iterate.
            StepTelemetry tel;
            tel.step = ++attempt_no;
            tel.time = tp.time;
            tel.dt = dt_cur;
            Reject reject = Reject::none;
            bool converged = false;
            double max_dx = 0.0;
            if (use_incremental && opt.newton_predictor && dt_prev > 0.0) {
                const double r = dt_cur / dt_prev;
                for (size_t i = 0; i < n; ++i)
                    xit[i] = x_acc[i] + r * (x_acc[i] - x_prev[i]);
            } else {
                xit = x_acc;
            }
            if (use_incremental) {
                obs::ScopedTimer obs_ba("sim/transient/begin_attempt");
                assembler->begin_attempt(xit, tp);
            }
            if (reuse_jac) guard.begin_attempt();
            // ||xit||_inf as of the last completed iteration; feeds the
            // guard's endgame prediction.  Iteration 0 never predicts
            // (begin_attempt cleared the contraction history), so the
            // stale initial value is never read.
            double xit_norm = 0.0;
            for (int it = 0; it < opt.max_newton; ++it) {
                obs::ScopedTimer obs_newton("sim/transient/newton");
                tel.newton_iters = it + 1;
                {
                    obs::ScopedTimer obs_asm("sim/transient/newton/assemble");
                    if (use_incremental) {
                        assembler->assemble(xit, tp);
                    } else {
                        s.clear();
                        assemble_tran(netlist, s, xit, tp, opt.gmin);
                    }
                }
                // Which system the factors made this solve belong to: dt,
                // order and the assembler's pattern epoch (a relearn makes
                // old factors structurally wrong, not merely stale).
                JacobianReuseGuard::Key jkey;
                jkey.order = tp.order;
                std::memcpy(&jkey.dt_bits, &tp.dt, sizeof(jkey.dt_bits));
                if (use_incremental) jkey.epoch = assembler->epoch();
                // Incremental assembly guarantees the matrix outside the
                // nonlinear columns is the cached linear image, so factors
                // taken under the same (dt, order, epoch) key can be
                // refreshed by a partial refactorization of just those
                // columns' elimination closure.  order >= 1 keeps the key
                // nonzero, which is what arms the partial path.
                ReusableLU<double>::RefactorHint hint;
                // Cost model for the stale path: reusing factors saves one
                // refactor but converges linearly, costing extra iterations.
                // With the partial path armed and the nonlinear columns a
                // small fraction of the matrix, a refresh costs about one
                // extra triangular sweep — cheaper than the stale solve's
                // own residual multiply — so fresh quadratic steps win
                // outright and the guard skips stale reuse entirely.
                bool prefer_fresh = false;
                if (use_incremental && assembler->learned()) {
                    hint.key[0] = jkey.dt_bits;
                    hint.key[1] = static_cast<std::uint64_t>(jkey.order);
                    hint.key[2] = jkey.epoch;
                    hint.changed_cols = &assembler->nonlinear_cols();
                    prefer_fresh =
                        8 * assembler->nonlinear_cols().size() <= n;
                }
                bool solved_stale = false;
                try {
                    obs::ScopedTimer obs_solve("sim/transient/newton/solve");
                    if (fault::fires("tran.lu.singular"))
                        raise("fault injected: tran.lu.singular");
                    if (use_dense) {
                        dense.fill(0.0);
                        const auto& tri = s.matrix();
                        const auto& rows = tri.rows();
                        const auto& cols = tri.cols();
                        const auto& vals = tri.values();
                        for (size_t e = 0; e < rows.size(); ++e)
                            dense(static_cast<size_t>(rows[e]),
                                  static_cast<size_t>(cols[e])) += vals[e];
                        DenseLU<double> lu(dense);
                        xn = lu.solve(s.rhs());
                        tel.lu_min_pivot = lu.min_pivot();
                        tel.lu_fill_growth = 1.0; // in-place, no fill
                    } else if (!reuse_jac || prefer_fresh ||
                               guard.should_refactor(jkey) ||
                               guard.endgame(opt.vntol + opt.reltol * xit_norm)) {
                        rlu.factor(s.csc(), hint);
                        if (reuse_jac) guard.on_refactor(jkey);
                        rlu.lu().solve_into(s.rhs(), xn, lu_tmp);
                        tel.lu_min_pivot = rlu.factor_stats().min_pivot;
                        tel.lu_fill_growth = rlu.factor_stats().fill_growth;
                    } else {
                        // Modified Newton on stale factors: the residual
                        // form dx = -LU^{-1}(A x - b) converges to the same
                        // discrete solution (dx = 0 forces A x = b no
                        // matter which factors produced it) and skips the
                        // refactor entirely.
                        solved_stale = true;
                        obs::count("sim/jacobian_reuse");
                        s.csc().multiply_into(xit, resid);
                        const auto& b = s.rhs();
                        for (size_t i = 0; i < n; ++i) resid[i] = b[i] - resid[i];
                        rlu.lu().solve_into(resid, xn, lu_tmp);
                        for (size_t i = 0; i < n; ++i) xn[i] += xit[i];
                        tel.lu_min_pivot = rlu.factor_stats().min_pivot;
                        tel.lu_fill_growth = rlu.factor_stats().fill_growth;
                    }
                } catch (const Error&) {
                    if (reuse_jac) guard.invalidate(); // rlu is empty now
                    reject = Reject::singular;
                    break;
                }
                int clamp_hits = 0;
                bool nonfinite = false;
                auto eval_update = [&](const std::vector<double>& cand) {
                    max_dx = 0.0;
                    tel.worst_unknown = -1;
                    clamp_hits = 0;
                    nonfinite = false;
                    for (size_t i = 0; i < n; ++i) {
                        double dx = cand[i] - xit[i];
                        // A NaN never wins a '>' comparison, so test
                        // finiteness explicitly — a poisoned update must
                        // trip the recovery ladder, not silently spin until
                        // max_newton runs out.
                        if (!std::isfinite(dx)) nonfinite = true;
                        if (i < netlist.node_count()) {
                            const double clamped =
                                std::clamp(dx, -opt.dv_max, opt.dv_max);
                            if (clamped != dx) ++clamp_hits;
                            dx = clamped;
                        }
                        last_dx[i] = dx;
                        if (std::fabs(dx) > max_dx) {
                            max_dx = std::fabs(dx);
                            tel.worst_unknown = static_cast<int>(i);
                        }
                    }
                };
                eval_update(xn);
                bool stale_refresh = false;
                if (solved_stale) {
                    // Would this stale update converge?  Same predicate as
                    // the post-apply check, evaluated on the tentative
                    // iterate: the ACCEPTED iteration must always come from
                    // fresh factors, so certificates, KCL audits and the
                    // committed state have the exact solve quality of the
                    // refactor-every-iteration engine (obs-gated
                    // refinement then never fires, keeping instrumented
                    // runs bit-identical to bare ones).
                    double norm_after = 0.0;
                    for (size_t i = 0; i < n; ++i)
                        norm_after =
                            std::max(norm_after, std::fabs(xit[i] + last_dx[i]));
                    const bool would_converge =
                        !nonfinite &&
                        max_dx < opt.vntol + opt.reltol * norm_after;
                    const bool stalled =
                        nonfinite || guard.stalled(max_dx) ||
                        fault::fires("tran.newton.stale_jacobian");
                    if (stalled) obs::count("sim/jacobian_stale_fallbacks");
                    else if (would_converge)
                        obs::count("sim/jacobian_refresh_on_accept");
                    stale_refresh = stalled || would_converge;
                }
                if (stale_refresh) {
                    // Refresh the factors against the matrix still in the
                    // stamper and redo this iteration as standard Newton —
                    // either because the stale factors stopped contracting
                    // (or poisoned the update), or as the final polish of a
                    // converging attempt.
                    try {
                        obs::ScopedTimer obs_solve("sim/transient/newton/solve");
                        rlu.factor(s.csc(), hint);
                        guard.on_refactor(jkey);
                        rlu.lu().solve_into(s.rhs(), xn, lu_tmp);
                        tel.lu_min_pivot = rlu.factor_stats().min_pivot;
                        tel.lu_fill_growth = rlu.factor_stats().fill_growth;
                    } catch (const Error&) {
                        guard.invalidate();
                        reject = Reject::singular;
                        break;
                    }
                    solved_stale = false;
                    eval_update(xn);
                }
                // Injected after the stale fallback on purpose: the fault
                // simulates a non-finite FINAL update, which must reach the
                // retry ladder, not be absorbed by a factor refresh.
                if (fault::fires("tran.newton.nonfinite")) {
                    xn[0] = std::numeric_limits<double>::quiet_NaN();
                    eval_update(xn);
                }
                if (reuse_jac) guard.on_iteration(max_dx, solved_stale);
                tel.clamp_hits += clamp_hits;
                {
                    // Apply the update and compute ||xit||_inf in one pass
                    // (max is order-independent, so this matches norm_inf).
                    double nrm = 0.0;
                    for (size_t i = 0; i < n; ++i) {
                        xit[i] += last_dx[i];
                        nrm = std::max(nrm, std::fabs(xit[i]));
                    }
                    xit_norm = nrm;
                }
                if (nonfinite) {
                    reject = Reject::nonfinite;
                    break;
                }
                if (max_dx < opt.vntol + opt.reltol * xit_norm) {
                    converged = true;
                    break;
                }
            }
            if (converged && fault::fires("tran.step.fail")) {
                converged = false;
                reject = Reject::no_convergence;
            }
            if (!converged && reject == Reject::none) reject = Reject::no_convergence;
            tel.residual = max_dx;
            tel.converged = converged;

            // Numerical-health audit of accepted attempts, every
            // certify.stride-th accepted micro-step (be_steps_done counts
            // accepts, so the gate is deterministic).  The certificate covers
            // the final Newton solve whose system is still in the stamper —
            // refinement (if it fires) lands before the LTE gate and commit.
            // Entirely obs-gated: an unobserved run does no extra work.
            if (converged && opt.certify.enabled && obs::enabled() &&
                be_steps_done % opt.certify.stride == 0) {
                obs::ScopedTimer obs_cert("sim/transient/certify");
                obs::SolveCertificate cert;
                if (use_dense) {
                    // Legacy path: the factor was loop-local, so certify on a
                    // fresh factorization of the last assembled matrix
                    // (n <= dense_crossover, stride-gated — cheap enough).
                    DenseLU<double> clu(dense);
                    cert = certify_solve(clu, dense, xit, s.rhs(), opt.certify);
                } else {
                    cert = certify_solve(rlu.lu(), s.csc(), xit, s.rhs(),
                                         opt.certify);
                }
                tel.cert_omega = cert.omega;
                tel.cert_rcond = cert.rcond;
                obs::record_certificate("transient", cert, opt.certify);

                // Conservation audit at the (possibly refined) accepted
                // solution: re-assemble there and read the node-row residual.
                if (use_incremental) {
                    assembler->assemble(xit, tp);
                } else {
                    s.clear();
                    assemble_tran(netlist, s, xit, tp, opt.gmin);
                }
                double kcl = 0.0;
                int kcl_node = -1;
                if (use_dense) {
                    dense.fill(0.0);
                    const auto& tri = s.matrix();
                    for (size_t e = 0; e < tri.rows().size(); ++e)
                        dense(static_cast<size_t>(tri.rows()[e]),
                              static_cast<size_t>(tri.cols()[e])) += tri.values()[e];
                    kcl_audit(netlist, dense, s.rhs(), xit, kcl, kcl_node);
                } else {
                    kcl_audit(netlist, s.csc(), s.rhs(), xit, kcl, kcl_node);
                }
                tel.kcl_residual = kcl;
                obs::ts_append("sim/transient/kcl_residual", tp.time, kcl, "A");
                obs::record_value("sim/kcl_worst_residual", kcl);
                obs::budget_update("sim/kcl", kcl, opt.kcl_max, "A",
                                   /*higher_is_worse=*/true,
                                   unknown_name(netlist, kcl_node));
            }
            ring.push(tel);
            // A fired slow-step fault marks the attempt as pathologically
            // slow in the health lanes (queried unconditionally so firing
            // positions don't depend on whether the registry is on) and
            // actually stalls the thread, so watchdog tests can induce a
            // real hang.  Sleeping cannot change numeric results.
            if (fault::fires("tran.slow_step")) {
                obs::record_value("sim/transient/slow_step_s", 1.0);
                const double stall_s = fault::slow_step_seconds();
                if (stall_s > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(stall_s));
            }
            if (obs::enabled()) {
                obs::count("sim/transient/steps");
                obs::record_value("sim/transient/newton_per_step", tel.newton_iters);
                if (!converged) obs::count("sim/transient/convergence_failures");
                // Solver-health time-series: the per-step view of how hard
                // the engine worked, exported to VCD and Perfetto lanes.
                obs::ts_append("sim/transient/newton_iters", tp.time, tel.newton_iters,
                               "iters");
                obs::ts_append("sim/transient/residual", tp.time,
                               std::isfinite(max_dx) ? max_dx : 0.0, "V");
                obs::ts_append("sim/transient/clamp_hits", tp.time, tel.clamp_hits, "1");
                obs::ts_append("sim/transient/lu_min_pivot", tp.time, tel.lu_min_pivot,
                               "1");
                obs::ts_append("sim/transient/lu_fill_growth", tp.time,
                               tel.lu_fill_growth, "x");
                obs::ts_append("sim/transient/dt", tp.time, dt_cur, "s");
            }

            if (!converged) {
                // Reject the attempt.  Device state only advances in
                // commit_tran, so restoring the iterate to the last accepted
                // solution is the entire rollback.
                const bool can_halve = opt.adaptive && level < max_level &&
                                       step_retries < opt.max_step_retries;
                if (!can_halve) {
                    // Budget exhausted (or recovery disabled): report the
                    // failure against the nominal grid the caller knows.
                    const char* why =
                        reject == Reject::nonfinite ? "produced a non-finite update"
                        : reject == Reject::singular ? "hit a singular system"
                                                     : "did not converge";
                    fail_transient(netlist, opt, out, ring, last_dx, retries, why,
                                   step, nsteps,
                                   static_cast<double>(step) * opt.dt);
                }
                RetryEvent ev;
                ev.step = step;
                ev.time = tp.time;
                ev.dt_from = dt_cur;
                ev.dt_to = dt_cur / 2.0;
                ev.newton_iters = tel.newton_iters;
                ev.reason = reject_name(reject);
                retries.push(ev);
                ++out.step_retries;
                ++step_retries;
                obs::count("sim/transient/step_retries");
                log_info("transient: step %ld rejected (%s) at t=%.4g, retrying "
                         "with dt=%.3g",
                         step, ev.reason.c_str(), tp.time, ev.dt_to);
                ++level;
                k *= 2; // same position, finer units
                consecutive_accepts = 0;
                continue;
            }

            // Accept: the LTE gate compares the corrector against a linear
            // predictor extrapolated from the last two accepted states; a
            // large error keeps dt from regrowing (it never rejects).
            if (opt.lte_control && dt_prev > 0.0) {
                double err = 0.0;
                const double r = dt_cur / dt_prev;
                for (size_t i = 0; i < n; ++i) {
                    const double pred = x_acc[i] + r * (x_acc[i] - x_prev[i]);
                    err = std::max(err, std::fabs(xit[i] - pred));
                }
                lte_ok = err < lte_reltol * norm_inf(xit) + lte_abstol;
                if (obs::enabled())
                    obs::ts_append("sim/transient/lte", tp.time, err, "V");
            }
            // commit_tran is a no-op for LinearStatic devices, so the
            // assembler's partitioned list commits the identical state while
            // skipping the static majority of the netlist.
            if (use_incremental) assembler->commit(xit, tp);
            else for (const auto& d : netlist.devices()) d->commit_tran(xit, tp);
            x_prev = x_acc;
            x_acc = xit;
            dt_prev = dt_cur;
            ++be_steps_done;
            ++k;
            ++consecutive_accepts;

            // Regrow dt (level--) only on even positions, so the coarser
            // grid still lands exactly on the nominal boundary.
            if (level > 0 && consecutive_accepts >= opt.dt_recovery_accepts &&
                k % 2 == 0 && lte_ok) {
                --level;
                k /= 2;
                consecutive_accepts = 0;
            }
        }

        // Nominal boundary reached: record on the uniform grid exactly as
        // the fixed-step loop did.
        const double t_nominal = static_cast<double>(step) * opt.dt;
        if (t_nominal >= opt.record_start) {
            if (recorded % opt.record_stride == 0) {
                out.time.push_back(t_nominal);
                for (size_t p = 0; p < probe_ids.size(); ++p)
                    out.waves[p].push_back(circuit::volt(x_acc, probe_ids[p]));
            }
            ++recorded;
            if (opt.accumulate_average) {
                for (size_t i = 0; i < n; ++i) out.average[i] += x_acc[i];
                ++averaged;
            }
        }
        progress.advance();

        if (ckpt_on && step < nsteps) {
            const bool due_steps =
                cko.every_steps > 0 && step % cko.every_steps == 0;
            const bool due_wall =
                cko.every_s > 0.0 &&
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              ckpt_last_write)
                        .count() >= cko.every_s;
            if (due_steps || due_wall) write_snapshot(step);
        }
    }
    // Final snapshot: a finished run leaves a step==nsteps checkpoint, so a
    // blanket --resume over a corner sweep replays completed corners
    // instantly and only integrates the unfinished ones.
    if (ckpt_on) write_snapshot(nsteps);
    if (averaged > 0)
        for (auto& v : out.average) v /= static_cast<double>(averaged);
    return out;
}

TranResult resume_transient(circuit::Netlist& netlist,
                            const std::vector<std::string>& probes,
                            const TranOptions& opt) {
    TranOptions o = opt;
    o.checkpoint.resume = true;
    return transient(netlist, probes, o);
}

} // namespace snim::sim
