#include "sim/transient.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse_lu.hpp"
#include "numeric/vecops.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/diagnostics.hpp"
#include "sim/mna.hpp"
#include "sim/op.hpp"
#include "util/log.hpp"

namespace snim::sim {

const std::vector<double>& TranResult::wave(const std::string& probe) const {
    for (size_t i = 0; i < probe_names.size(); ++i)
        if (probe_names[i] == probe) return waves[i];
    raise("no probe named '%s'", probe.c_str());
}

namespace {

/// Serialised into the failure bundle so a post-mortem sees the exact
/// solver configuration.
obs::JsonObject tran_options_json(const TranOptions& opt) {
    obs::JsonObject o;
    o.emplace("tstop", opt.tstop);
    o.emplace("dt", opt.dt);
    o.emplace("order", opt.order);
    o.emplace("gmin", opt.gmin);
    o.emplace("max_newton", opt.max_newton);
    o.emplace("reltol", opt.reltol);
    o.emplace("vntol", opt.vntol);
    o.emplace("dv_max", opt.dv_max);
    o.emplace("record_start", opt.record_start);
    o.emplace("record_stride", opt.record_stride);
    o.emplace("be_startup_steps", opt.be_startup_steps);
    return o;
}

[[noreturn]] void fail_transient(const circuit::Netlist& netlist,
                                 const TranOptions& opt, const TranResult& partial,
                                 const StepTelemetryRing& ring,
                                 const std::vector<double>& last_dx,
                                 const char* reason, long step, long nsteps,
                                 double time) {
    std::string bundle;
    std::string worst;
    if (!last_dx.empty()) {
        const auto nodes = worst_unknowns(netlist, last_dx, 5);
        if (!nodes.empty())
            worst = format("; worst node '%s' (dv=%.3g)", nodes.front().first.c_str(),
                           nodes.front().second);
        if (opt.diag_bundle) {
            FailureDiagnosis d;
            d.engine = "transient";
            d.reason = reason;
            d.fail_time = time;
            d.fail_step = step;
            d.telemetry = ring.tail();
            d.worst_nodes = nodes;
            d.options = tran_options_json(opt);
            d.partial = &partial;
            d.wave_tail = static_cast<size_t>(opt.diag_wave_tail);
            bundle = write_diagnosis_bundle(d, opt.diag_dir);
        }
    }
    raise("transient Newton %s at t=%.4g (step %ld of %ld, dt=%.3g, %zu samples "
          "recorded)%s%s%s",
          reason, time, step, nsteps, opt.dt, partial.time.size(), worst.c_str(),
          bundle.empty() ? "" : "; diagnosis bundle: ",
          bundle.empty() ? "" : bundle.c_str());
}

} // namespace

TranResult transient(circuit::Netlist& netlist, const std::vector<std::string>& probes,
                     const TranOptions& opt) {
    validate_tran_options(opt);
    if (opt.observe) obs::set_enabled(true);
    obs::ScopedTimer obs_run("sim/transient");
    netlist.finalize();
    const size_t n = netlist.unknown_count();

    std::vector<double> x = opt.initial;
    if (x.empty()) {
        OpOptions oo;
        oo.gmin = opt.gmin;
        x = operating_point(netlist, oo);
    }
    SNIM_ASSERT(x.size() == n, "initial point size mismatch");

    for (const auto& d : netlist.devices()) d->init_tran(x);

    TranResult out;
    out.probe_names = probes;
    out.waves.resize(probes.size());
    out.dt_sample = opt.dt * opt.record_stride;
    std::vector<circuit::NodeId> probe_ids;
    probe_ids.reserve(probes.size());
    for (const auto& p : probes) probe_ids.push_back(netlist.existing_node(p));

    const long nsteps = static_cast<long>(std::ceil(opt.tstop / opt.dt));
    const size_t est = static_cast<size_t>(
        std::max(0.0, (opt.tstop - opt.record_start) / out.dt_sample)) + 2;
    out.time.reserve(est);
    for (auto& w : out.waves) w.reserve(est);

    circuit::RealStamper s(n);
    std::vector<double> xit = x;
    std::vector<double> last_dx(n, 0.0); // per-unknown update of the last iteration
    StepTelemetryRing ring(static_cast<size_t>(opt.diag_tail));
    long recorded = 0;
    long averaged = 0;
    if (opt.accumulate_average) out.average.assign(n, 0.0);

    // Dense fast path: for the node counts typical of a reduced impact
    // model (< ~160 unknowns) a dense LU beats the sparse solver's per-step
    // allocation cost by a wide margin.
    const bool use_dense = n <= 160;
    DenseMatrix<double> dense(use_dense ? n : 0, use_dense ? n : 0);
    for (long step = 1; step <= nsteps; ++step) {
        circuit::TranParams tp;
        tp.dt = opt.dt;
        tp.time = static_cast<double>(step) * opt.dt;
        tp.order = (step <= opt.be_startup_steps) ? 1 : opt.order;

        obs::ScopedTimer obs_step("sim/transient/step");

        // Newton iteration, starting from the previous accepted solution.
        StepTelemetry tel;
        tel.step = step;
        tel.time = tp.time;
        bool converged = false;
        bool nonfinite = false;
        double max_dx = 0.0;
        for (int it = 0; it < opt.max_newton; ++it) {
            obs::ScopedTimer obs_newton("sim/transient/newton");
            tel.newton_iters = it + 1;
            s.clear();
            assemble_tran(netlist, s, xit, tp, opt.gmin);
            std::vector<double> xn;
            if (use_dense) {
                for (size_t i = 0; i < n; ++i)
                    for (size_t j = 0; j < n; ++j) dense(i, j) = 0.0;
                const auto& tri = s.matrix();
                const auto& rows = tri.rows();
                const auto& cols = tri.cols();
                const auto& vals = tri.values();
                for (size_t e = 0; e < rows.size(); ++e)
                    dense(static_cast<size_t>(rows[e]), static_cast<size_t>(cols[e])) +=
                        vals[e];
                DenseLU<double> lu(dense);
                xn = lu.solve(s.rhs());
                tel.lu_min_pivot = lu.min_pivot();
            } else {
                SparseLU<double> lu(s.matrix());
                xn = lu.solve(s.rhs());
                tel.lu_min_pivot = lu.factor_stats().min_pivot;
                tel.lu_fill_growth = lu.factor_stats().fill_growth;
            }
            max_dx = 0.0;
            tel.worst_unknown = -1;
            for (size_t i = 0; i < n; ++i) {
                double dx = xn[i] - xit[i];
                // A NaN never wins a '>' comparison, so test finiteness
                // explicitly — a poisoned update must trip the diagnosis,
                // not silently spin until max_newton runs out.
                if (!std::isfinite(dx)) nonfinite = true;
                if (i < netlist.node_count()) {
                    const double clamped = std::clamp(dx, -opt.dv_max, opt.dv_max);
                    if (clamped != dx) ++tel.clamp_hits;
                    dx = clamped;
                }
                last_dx[i] = dx;
                if (std::fabs(dx) > max_dx) {
                    max_dx = std::fabs(dx);
                    tel.worst_unknown = static_cast<int>(i);
                }
                xit[i] += dx;
            }
            if (nonfinite) break;
            if (max_dx < opt.vntol + opt.reltol * norm_inf(xit)) {
                converged = true;
                break;
            }
        }
        tel.residual = max_dx;
        tel.converged = converged;
        ring.push(tel);
        if (obs::enabled()) {
            obs::count("sim/transient/steps");
            obs::record_value("sim/transient/newton_per_step", tel.newton_iters);
            if (!converged) obs::count("sim/transient/convergence_failures");
            // Solver-health time-series: the per-step view of how hard the
            // engine worked, exported to VCD and Perfetto counter lanes.
            obs::ts_append("sim/transient/newton_iters", tp.time, tel.newton_iters,
                           "iters");
            obs::ts_append("sim/transient/residual", tp.time,
                           std::isfinite(max_dx) ? max_dx : 0.0, "V");
            obs::ts_append("sim/transient/clamp_hits", tp.time, tel.clamp_hits, "1");
            obs::ts_append("sim/transient/lu_min_pivot", tp.time, tel.lu_min_pivot, "1");
            if (!use_dense)
                obs::ts_append("sim/transient/lu_fill_growth", tp.time,
                               tel.lu_fill_growth, "x");
        }
        if (nonfinite)
            fail_transient(netlist, opt, out, ring, last_dx, "produced a non-finite "
                           "update", step, nsteps, tp.time);
        if (!converged)
            fail_transient(netlist, opt, out, ring, last_dx, "did not converge", step,
                           nsteps, tp.time);

        for (const auto& d : netlist.devices()) d->commit_tran(xit, tp);

        if (tp.time >= opt.record_start) {
            if (recorded % opt.record_stride == 0) {
                out.time.push_back(tp.time);
                for (size_t p = 0; p < probe_ids.size(); ++p)
                    out.waves[p].push_back(circuit::volt(xit, probe_ids[p]));
            }
            ++recorded;
            if (opt.accumulate_average) {
                for (size_t i = 0; i < n; ++i) out.average[i] += xit[i];
                ++averaged;
            }
        }
    }
    if (averaged > 0)
        for (auto& v : out.average) v /= static_cast<double>(averaged);
    return out;
}

} // namespace snim::sim
