#include "sim/assembly.hpp"

#include <cstring>

#include "circuit/passives.hpp"
#include "obs/registry.hpp"
#include "sim/mna.hpp"

namespace snim::sim {

namespace {
std::uint64_t dt_key(double dt) {
    // The retry ladder only visits power-of-two fractions of the nominal
    // dt, so keying on the exact bit pattern keeps the cache tiny while
    // never conflating two steps that stamp different companion values.
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(dt));
    std::memcpy(&bits, &dt, sizeof(bits));
    return bits;
}
} // namespace

TranAssembler::TranAssembler(const circuit::Netlist& netlist,
                             circuit::RealStamper& s, double gmin)
    : netlist_(netlist), s_(s), gmin_(gmin) {
    s_.enable_compiled_assembly();
    s_.enable_rhs_tape();
    // partition() is a structural constant per device, so the commit list
    // can be fixed up front; disabled devices stay on it (the reference
    // loop calls commit_tran unconditionally).
    for (const auto& d : netlist_.devices())
        if (d->partition() != circuit::Partition::LinearStatic)
            commit_list_.push_back(d.get());
}

void TranAssembler::full_pass(const std::vector<double>& x,
                              const circuit::TranParams& tp) {
    obs::count("sim/assemble_full");
    s_.reset_compiled();
    s_.set_source_scale(1.0);
    const auto& devices = netlist_.devices();
    spans_.assign(devices.size(), Span{});
    disabled_at_learn_.assign(devices.size(), 0);
    for (size_t i = 0; i < devices.size(); ++i) {
        Span& sp = spans_[i];
        sp.mat_begin = static_cast<std::uint32_t>(s_.matrix().rows().size());
        sp.rhs_begin = static_cast<std::uint32_t>(s_.rhs_tape_nodes().size());
        disabled_at_learn_[i] = devices[i]->disabled() ? 1 : 0;
        if (!devices[i]->disabled()) devices[i]->stamp_tran(s_, x, tp);
        sp.mat_end = static_cast<std::uint32_t>(s_.matrix().rows().size());
        sp.rhs_end = static_cast<std::uint32_t>(s_.rhs_tape_nodes().size());
    }
    gmin_span_.mat_begin = static_cast<std::uint32_t>(s_.matrix().rows().size());
    gmin_span_.rhs_begin = static_cast<std::uint32_t>(s_.rhs_tape_nodes().size());
    stamp_gmin(netlist_, s_, gmin_);
    gmin_span_.mat_end = static_cast<std::uint32_t>(s_.matrix().rows().size());
    gmin_span_.rhs_end = static_cast<std::uint32_t>(s_.rhs_tape_nodes().size());
    s_.csc(); // learns the scatter map; the pass above becomes the tape
    compile(tp);
    learned_ = true;
    ++epoch_;
    // Baselines for the remaining iterations of this attempt come straight
    // from the freshly recorded tape.
    image_ = &key_image(tp);
    build_rhs_base();
}

void TranAssembler::compile(const circuit::TranParams& tp) {
    const auto& devices = netlist_.devices();
    const size_t ncalls = s_.tape_rows().size();
    const size_t nrhs = s_.rhs_tape_nodes().size();

    std::vector<char> nl_call(ncalls, 0);
    std::vector<char> nl_rhs(nrhs, 0);
    nonlinear_.clear();
    refresh_.clear();
    for (size_t i = 0; i < devices.size(); ++i) {
        if (disabled_at_learn_[i]) continue;
        const Span& sp = spans_[i];
        switch (devices[i]->partition()) {
            case circuit::Partition::Nonlinear:
                nonlinear_.push_back(static_cast<std::uint32_t>(i));
                for (std::uint32_t k = sp.mat_begin; k < sp.mat_end; ++k)
                    nl_call[k] = 1;
                for (std::uint32_t k = sp.rhs_begin; k < sp.rhs_end; ++k)
                    nl_rhs[k] = 1;
                break;
            case circuit::Partition::LinearDynamic:
                refresh_.push_back(static_cast<std::uint32_t>(i));
                break;
            case circuit::Partition::LinearStatic:
                // Static matrix entries never move, but source waveforms
                // live on the RHS: any static device that made an RHS call
                // must be re-evaluated once per attempt for tp.time.
                if (sp.rhs_end > sp.rhs_begin)
                    refresh_.push_back(static_cast<std::uint32_t>(i));
                break;
        }
    }

    linear_calls_.clear();
    linear_rhs_calls_.clear();
    for (size_t k = 0; k < ncalls; ++k)
        if (!nl_call[k]) linear_calls_.push_back(static_cast<std::int32_t>(k));
    for (size_t k = 0; k < nrhs; ++k)
        if (!nl_rhs[k]) linear_rhs_calls_.push_back(static_cast<std::int32_t>(k));

    // Mixed slots: a linear stamp landing after a nonlinear one in the same
    // CSC slot (the trailing gmin diagonal on a transistor node is the
    // canonical case).  Baseline-then-overlay would reorder the sum there,
    // so those slots are replayed call-by-call instead.
    const size_t nnz = s_.csc_values_mut().size();
    std::vector<std::vector<std::int32_t>> by_slot(nnz);
    const auto& slots = s_.tape_slots();
    for (size_t k = 0; k < ncalls; ++k)
        by_slot[static_cast<size_t>(slots[k])].push_back(static_cast<std::int32_t>(k));
    mixed_slots_.clear();
    for (size_t slot = 0; slot < nnz; ++slot) {
        const auto& calls = by_slot[slot];
        bool seen_nl = false, mixed = false;
        for (const std::int32_t k : calls) {
            if (nl_call[static_cast<size_t>(k)]) seen_nl = true;
            else if (seen_nl) { mixed = true; break; }
        }
        if (mixed)
            mixed_slots_.push_back({static_cast<std::int32_t>(slot), calls});
    }

    // Seed set for partial refactorization: every CSC column holding at
    // least one nonlinear stamp call.  Mixed slots are covered too — a slot
    // is only "mixed" because a nonlinear call lands in it.  The slot list
    // itself doubles as the sparse-restore dirty set.
    nonlinear_cols_.clear();
    nl_slots_.clear();
    {
        const auto& cp = s_.csc().col_ptr();
        std::vector<char> colhit(s_.size(), 0);
        std::vector<char> slothit(nnz, 0);
        std::vector<std::int32_t> col_of(nnz);
        for (size_t j = 0; j < s_.size(); ++j)
            for (int p = cp[j]; p < cp[j + 1]; ++p)
                col_of[static_cast<size_t>(p)] = static_cast<std::int32_t>(j);
        for (size_t k = 0; k < ncalls; ++k)
            if (nl_call[k]) {
                const auto slot = static_cast<size_t>(slots[k]);
                slothit[slot] = 1;
                colhit[static_cast<size_t>(col_of[slot])] = 1;
            }
        for (size_t j = 0; j < s_.size(); ++j)
            if (colhit[j]) nonlinear_cols_.push_back(static_cast<int>(j));
        for (size_t p = 0; p < nnz; ++p)
            if (slothit[p]) nl_slots_.push_back(static_cast<std::int32_t>(p));
    }
    nl_rhs_nodes_.clear();
    {
        std::vector<char> nodehit(s_.size(), 0);
        const auto& rn = s_.rhs_tape_nodes();
        for (size_t k = 0; k < nrhs; ++k)
            if (nl_rhs[k]) nodehit[static_cast<size_t>(rn[k])] = 1;
        for (size_t i = 0; i < s_.size(); ++i)
            if (nodehit[i]) nl_rhs_nodes_.push_back(static_cast<std::int32_t>(i));
    }

    std::vector<std::vector<std::int32_t>> by_node(s_.size());
    const auto& rnodes = s_.rhs_tape_nodes();
    for (size_t k = 0; k < nrhs; ++k)
        by_node[static_cast<size_t>(rnodes[k])].push_back(static_cast<std::int32_t>(k));
    mixed_nodes_.clear();
    for (size_t node = 0; node < by_node.size(); ++node) {
        const auto& calls = by_node[node];
        bool seen_nl = false, mixed = false;
        for (const std::int32_t k : calls) {
            if (nl_rhs[static_cast<size_t>(k)]) seen_nl = true;
            else if (seen_nl) { mixed = true; break; }
        }
        if (mixed)
            mixed_nodes_.push_back({static_cast<std::int32_t>(node), calls});
    }

    // Compiled capacitor refreshes: a capacitor's stamp layout never
    // depends on values, and every recorded call is exactly ±geq (matrix)
    // or ±ieq (RHS), so the per-attempt refresh reduces to direct tape
    // writes.  Signs come from the stamp structure (admittance order
    // (a,a) (b,b) (a,b) (b,a), RHS order -ieq@a +ieq@b, ground dropped)
    // and are cross-checked bitwise against the learned tape; any
    // surprise leaves the device on the slow overlay path.
    cap_plans_.clear();
    slow_refresh_.clear();
    const double kord = (tp.order == 2 ? 2.0 : 1.0);
    for (const std::uint32_t i : refresh_) {
        const auto* cap = dynamic_cast<const circuit::Capacitor*>(devices[i].get());
        if (cap == nullptr) {
            slow_refresh_.push_back(i);
            continue;
        }
        const Span& sp = spans_[i];
        const circuit::NodeId a = cap->nodes()[0];
        const circuit::NodeId b = cap->nodes()[1];
        const double geq = kord * cap->capacitance() / tp.dt;
        const double ieq = (tp.order == 2)
                               ? (-geq * cap->tran_v_prev() - cap->tran_i_prev())
                               : (-geq * cap->tran_v_prev());
        CapPlan plan;
        plan.cap = cap;
        bool ok = true;
        if (a >= 0 && b >= 0) {
            ok = sp.mat_end - sp.mat_begin == 4;
            for (int j = 0; ok && j < 4; ++j)
                plan.mat.emplace_back(static_cast<std::int32_t>(sp.mat_begin + j),
                                      static_cast<std::int8_t>(j < 2 ? 1 : -1));
        } else if (a >= 0 || b >= 0) {
            ok = sp.mat_end - sp.mat_begin == 1;
            plan.mat.emplace_back(static_cast<std::int32_t>(sp.mat_begin),
                                  static_cast<std::int8_t>(1));
        } else {
            ok = sp.mat_end == sp.mat_begin;
        }
        std::uint32_t r = sp.rhs_begin;
        if (a >= 0)
            plan.rhs.emplace_back(static_cast<std::int32_t>(r++),
                                  static_cast<std::int8_t>(-1));
        if (b >= 0)
            plan.rhs.emplace_back(static_cast<std::int32_t>(r++),
                                  static_cast<std::int8_t>(1));
        ok = ok && r == sp.rhs_end;
        const auto& tvals = s_.tape_values();
        for (const auto& [k, sign] : plan.mat)
            ok = ok && tvals[static_cast<size_t>(k)] == (sign > 0 ? geq : -geq);
        const auto& rvals = s_.rhs_tape_values();
        const auto& rnodes = s_.rhs_tape_nodes();
        for (const auto& [k, sign] : plan.rhs) {
            ok = ok && rvals[static_cast<size_t>(k)] == (sign > 0 ? ieq : -ieq);
            ok = ok && rnodes[static_cast<size_t>(k)] == (sign > 0 ? b : a);
        }
        if (ok)
            cap_plans_.push_back(std::move(plan));
        else
            slow_refresh_.push_back(i);
    }

    cache_.clear();
    image_ = nullptr;
    restore_full_ = true;
}

void TranAssembler::relearn(const std::vector<double>& x,
                            const circuit::TranParams& tp) {
    obs::count("sim/assemble_relearn");
    learned_ = false;
    full_pass(x, tp);
}

bool TranAssembler::refresh_tapes(const std::vector<double>& x,
                                  const circuit::TranParams& tp) {
    // Planned capacitors: recompute ±geq/±ieq straight into the tape.  The
    // arithmetic is copied from Capacitor::stamp_tran, so the written
    // values are bit-identical to an overlay replay; the CSC/RHS
    // write-through the overlay would also do is skipped because the next
    // assemble restores the full baseline anyway.
    if (!cap_plans_.empty()) {
        auto& tv = s_.tape_values_mut();
        auto& rv = s_.rhs_tape_values_mut();
        const double kord = (tp.order == 2 ? 2.0 : 1.0);
        for (const CapPlan& p : cap_plans_) {
            const double geq = kord * p.cap->capacitance() / tp.dt;
            const double ieq =
                (tp.order == 2)
                    ? (-geq * p.cap->tran_v_prev() - p.cap->tran_i_prev())
                    : (-geq * p.cap->tran_v_prev());
            for (const auto& [k, sign] : p.mat)
                tv[static_cast<size_t>(k)] = sign > 0 ? geq : -geq;
            for (const auto& [k, sign] : p.rhs)
                rv[static_cast<size_t>(k)] = sign > 0 ? ieq : -ieq;
        }
    }
    if (slow_refresh_.empty()) return true;
    if (!s_.begin_overlay()) return false;
    const auto& devices = netlist_.devices();
    bool ok = true;
    for (const std::uint32_t i : slow_refresh_) {
        const Span& sp = spans_[i];
        s_.overlay_seek(sp.mat_begin, sp.rhs_begin);
        devices[i]->stamp_tran(s_, x, tp);
        if (s_.overlay_failed() || s_.mat_cursor() != sp.mat_end ||
            s_.rhs_cursor() != sp.rhs_end) {
            ok = false;
            break;
        }
    }
    if (!s_.end_overlay()) ok = false;
    return ok;
}

const std::vector<double>& TranAssembler::key_image(const circuit::TranParams& tp) {
    const std::uint64_t bits = dt_key(tp.dt);
    for (const auto& e : cache_)
        if (e.dt_bits == bits && e.order == tp.order) {
            obs::count("sim/assemble_cache_hits");
            return e.values;
        }
    obs::count("sim/assemble_cache_misses");
    if (cache_.size() >= 96) cache_.clear(); // ladder keys never get near this
    KeyImage img;
    img.dt_bits = bits;
    img.order = tp.order;
    img.values.assign(s_.csc_values_mut().size(), 0.0);
    const auto& slots = s_.tape_slots();
    const auto& assigns = s_.tape_assigns();
    const auto& vals = s_.tape_values();
    for (const std::int32_t k : linear_calls_) {
        const size_t slot = static_cast<size_t>(slots[static_cast<size_t>(k)]);
        if (assigns[static_cast<size_t>(k)])
            img.values[slot] = vals[static_cast<size_t>(k)];
        else
            img.values[slot] += vals[static_cast<size_t>(k)];
    }
    cache_.push_back(std::move(img));
    return cache_.back().values;
}

void TranAssembler::build_rhs_base() {
    rhs_base_.assign(s_.size(), 0.0);
    const auto& nodes = s_.rhs_tape_nodes();
    const auto& vals = s_.rhs_tape_values();
    for (const std::int32_t k : linear_rhs_calls_)
        rhs_base_[static_cast<size_t>(nodes[static_cast<size_t>(k)])] +=
            vals[static_cast<size_t>(k)];
}

void TranAssembler::begin_attempt(const std::vector<double>& x,
                                  const circuit::TranParams& tp) {
    if (!learned_) return;
    const auto& devices = netlist_.devices();
    for (size_t i = 0; i < devices.size(); ++i)
        if ((devices[i]->disabled() ? 1 : 0) != disabled_at_learn_[i]) {
            // An ablation toggle mid-run invalidates every span; relearn.
            learned_ = false;
            s_.reset_compiled();
            return;
        }
    if (!refresh_tapes(x, tp)) {
        learned_ = false;
        s_.reset_compiled();
        return;
    }
    image_ = &key_image(tp);
    build_rhs_base();
    // The tape refresh above wrote through to the stamper's CSC/RHS at
    // linear positions, so the first assemble of this attempt must restore
    // the whole baseline, not just the nonlinear dirty set.
    restore_full_ = true;
}

void TranAssembler::assemble(const std::vector<double>& x,
                             const circuit::TranParams& tp) {
    if (!learned_ || image_ == nullptr) {
        full_pass(x, tp);
        return;
    }
    if (restore_full_) {
        s_.csc_values_mut() = *image_;
        s_.rhs_mut() = rhs_base_;
        restore_full_ = false;
    } else {
        // Everything outside the nonlinear dirty set still holds its
        // baseline value from the previous iteration's restore.
        auto& vals = s_.csc_values_mut();
        const auto& img = *image_;
        for (const std::int32_t p : nl_slots_)
            vals[static_cast<size_t>(p)] = img[static_cast<size_t>(p)];
        auto& b = s_.rhs_mut();
        for (const std::int32_t i : nl_rhs_nodes_)
            b[static_cast<size_t>(i)] = rhs_base_[static_cast<size_t>(i)];
    }
    bool ok = s_.begin_overlay();
    if (ok) {
        const auto& devices = netlist_.devices();
        for (const std::uint32_t i : nonlinear_) {
            const Span& sp = spans_[i];
            s_.overlay_seek(sp.mat_begin, sp.rhs_begin);
            devices[i]->stamp_tran(s_, x, tp);
            if (s_.overlay_failed() || s_.mat_cursor() != sp.mat_end ||
                s_.rhs_cursor() != sp.rhs_end) {
                ok = false;
                break;
            }
        }
        if (!s_.end_overlay()) ok = false;
    }
    if (!ok) {
        relearn(x, tp);
        return;
    }
    auto& csc_vals = s_.csc_values_mut();
    const auto& tvals = s_.tape_values();
    for (const auto& m : mixed_slots_) {
        double v = 0.0;
        bool first = true;
        for (const std::int32_t k : m.calls) {
            if (first) {
                v = tvals[static_cast<size_t>(k)];
                first = false;
            } else {
                v += tvals[static_cast<size_t>(k)];
            }
        }
        csc_vals[static_cast<size_t>(m.target)] = v;
    }
    auto& b = s_.rhs_mut();
    const auto& rvals = s_.rhs_tape_values();
    for (const auto& m : mixed_nodes_) {
        double v = 0.0;
        for (const std::int32_t k : m.calls) v += rvals[static_cast<size_t>(k)];
        b[static_cast<size_t>(m.target)] = v;
    }
    obs::count("sim/assemble_incremental");
}

} // namespace snim::sim
