#include "sim/dc_sweep.hpp"

#include "circuit/sources.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace snim::sim {

DcSweepResult dc_sweep(circuit::Netlist& netlist, const std::string& source_name,
                       const std::vector<double>& values, const OpOptions& opt) {
    auto* src = netlist.find_as<circuit::VSource>(source_name);
    if (!src) raise("dc_sweep: no voltage source named '%s'", source_name.c_str());
    const circuit::Waveform saved = src->waveform();

    DcSweepResult out;
    out.values = values;
    out.x.reserve(values.size());
    OpOptions o = opt;
    obs::ProgressScope progress("sim/dc_sweep", values.size());
    try {
        for (size_t k = 0; k < values.size(); ++k) {
            src->set_waveform(circuit::Waveform::dc(values[k]));
            std::vector<double> x;
            try {
                x = operating_point(netlist, o);
            } catch (const Error& e) {
                // The continuation guess itself can poison Newton near a
                // fold: retry once from a cold start before giving up.
                if (o.initial.empty()) throw;
                log_warn("dc_sweep: point %zu (value %g) failed warm-started "
                         "(%s); retrying cold",
                         k, values[k], e.what());
                obs::count("sim/dc_sweep/retries");
                out.retried_points.push_back(k);
                OpOptions cold = o;
                cold.initial.clear();
                x = operating_point(netlist, cold);
            }
            o.initial = x; // continuation
            out.x.push_back(std::move(x));
            progress.advance();
        }
    } catch (...) {
        src->set_waveform(saved);
        throw;
    }
    src->set_waveform(saved);
    return out;
}

} // namespace snim::sim
