#include "sim/dc_sweep.hpp"

#include "circuit/sources.hpp"
#include "util/error.hpp"

namespace snim::sim {

DcSweepResult dc_sweep(circuit::Netlist& netlist, const std::string& source_name,
                       const std::vector<double>& values, const OpOptions& opt) {
    auto* src = netlist.find_as<circuit::VSource>(source_name);
    if (!src) raise("dc_sweep: no voltage source named '%s'", source_name.c_str());
    const circuit::Waveform saved = src->waveform();

    DcSweepResult out;
    out.values = values;
    out.x.reserve(values.size());
    OpOptions o = opt;
    for (double v : values) {
        src->set_waveform(circuit::Waveform::dc(v));
        auto x = operating_point(netlist, o);
        o.initial = x; // continuation
        out.x.push_back(std::move(x));
    }
    src->set_waveform(saved);
    return out;
}

} // namespace snim::sim
