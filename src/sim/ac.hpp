// Small-signal AC sweep around a DC operating point.
#pragma once

#include <complex>

#include "circuit/netlist.hpp"
#include "obs/certify.hpp"

namespace snim::sim {

struct AcResult {
    std::vector<double> freq;                              // [Hz]
    std::vector<std::vector<std::complex<double>>> x;      // per-freq full solution

    /// Complex node voltage at sweep point `k`.
    std::complex<double> at(size_t k, circuit::NodeId node) const;
};

struct AcOptions {
    double gmin = 1e-12;
    /// Devices skipped during assembly (coupling-path ablation).
    const std::vector<const circuit::Device*>* exclude = nullptr;
    /// Worker threads for the frequency sweep; 0 -> util::default_thread_count()
    /// (the SNIM_THREADS environment override).  Results and recorded obs
    /// metrics are bit-identical for every thread count.
    int threads = 0;
    /// Reuse the first frequency point's symbolic LU analysis (pattern +
    /// pivot sequence) across the sweep, refreshing numeric values per point
    /// (pivot-health guarded).  OFF forces a full factorization per point.
    bool reuse_lu = true;

    /// Per-solve certificates on every certify.stride-th frequency point
    /// (backward error on the complex system, condition estimate, counted
    /// refinement).  Active only while the obs registry is enabled; workers
    /// certify their own points, the ledger aggregation is commutative so
    /// results stay thread-count independent.
    obs::CertifyOptions certify;
};

/// Runs the AC sweep; `xop` is a converged operating point from
/// operating_point().  Sources stamp their AcSpec excitations.
AcResult ac_sweep(circuit::Netlist& netlist, const std::vector<double>& freqs,
                  const std::vector<double>& xop, const AcOptions& opt = {});

} // namespace snim::sim
