// Small-signal AC sweep around a DC operating point.
#pragma once

#include <complex>

#include "circuit/netlist.hpp"

namespace snim::sim {

struct AcResult {
    std::vector<double> freq;                              // [Hz]
    std::vector<std::vector<std::complex<double>>> x;      // per-freq full solution

    /// Complex node voltage at sweep point `k`.
    std::complex<double> at(size_t k, circuit::NodeId node) const;
};

struct AcOptions {
    double gmin = 1e-12;
    /// Devices skipped during assembly (coupling-path ablation).
    const std::vector<const circuit::Device*>* exclude = nullptr;
};

/// Runs the AC sweep; `xop` is a converged operating point from
/// operating_point().  Sources stamp their AcSpec excitations.
AcResult ac_sweep(circuit::Netlist& netlist, const std::vector<double>& freqs,
                  const std::vector<double>& xop, const AcOptions& opt = {});

} // namespace snim::sim
