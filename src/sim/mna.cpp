#include "sim/mna.hpp"

#include <algorithm>

namespace snim::sim {

namespace {
template <class Stamper>
void add_gmin(const Netlist& netlist, Stamper& s, double gmin) {
    if (gmin <= 0) return;
    for (size_t i = 0; i < netlist.node_count(); ++i)
        s.entry(static_cast<NodeId>(i), static_cast<NodeId>(i), gmin);
}
} // namespace

void stamp_gmin(const Netlist& netlist, circuit::RealStamper& s, double gmin) {
    add_gmin(netlist, s, gmin);
}

void assemble_dc(const Netlist& netlist, circuit::RealStamper& s,
                 const std::vector<double>& x, double gmin, double source_scale) {
    s.set_source_scale(source_scale);
    for (const auto& d : netlist.devices())
        if (!d->disabled()) d->stamp_dc(s, x);
    s.set_source_scale(1.0);
    add_gmin(netlist, s, gmin);
}

void assemble_tran(const Netlist& netlist, circuit::RealStamper& s,
                   const std::vector<double>& x, const circuit::TranParams& tp,
                   double gmin) {
    s.set_source_scale(1.0);
    for (const auto& d : netlist.devices())
        if (!d->disabled()) d->stamp_tran(s, x, tp);
    add_gmin(netlist, s, gmin);
}

void assemble_ac(const Netlist& netlist, circuit::ComplexStamper& s,
                 const std::vector<double>& xop, double omega, double gmin,
                 const std::vector<const circuit::Device*>* exclude) {
    for (const auto& d : netlist.devices()) {
        if (d->disabled()) continue;
        if (exclude && std::find(exclude->begin(), exclude->end(), d.get()) !=
                           exclude->end())
            continue;
        d->stamp_ac(s, xop, omega);
    }
    add_gmin(netlist, s, gmin);
}

} // namespace snim::sim
