// DC sweep: repeated operating points while stepping a source value.
#pragma once

#include "circuit/netlist.hpp"
#include "sim/op.hpp"

namespace snim::sim {

struct DcSweepResult {
    std::vector<double> values;               // swept source values
    std::vector<std::vector<double>> x;       // per-point full solution
};

/// Sweeps the DC value of voltage source `source_name` over `values`,
/// reusing each converged point as the next initial guess (continuation).
DcSweepResult dc_sweep(circuit::Netlist& netlist, const std::string& source_name,
                       const std::vector<double>& values, const OpOptions& opt = {});

} // namespace snim::sim
