// DC sweep: repeated operating points while stepping a source value.
#pragma once

#include "circuit/netlist.hpp"
#include "sim/op.hpp"

namespace snim::sim {

struct DcSweepResult {
    std::vector<double> values;               // swept source values
    std::vector<std::vector<double>> x;       // per-point full solution
    /// Indices into `values` whose warm-started solve failed and had to be
    /// retried cold (full homotopy ladder from zeros).  Empty on a clean
    /// sweep; mirrored in the obs counter sim/dc_sweep/retries.
    std::vector<size_t> retried_points;
};

/// Sweeps the DC value of voltage source `source_name` over `values`,
/// reusing each converged point as the next initial guess (continuation).
/// A point whose warm-started solve fails is retried once from a cold
/// start before the failure propagates (the continuation guess itself can
/// be the problem near a fold).
DcSweepResult dc_sweep(circuit::Netlist& netlist, const std::string& source_name,
                       const std::vector<double>& values, const OpOptions& opt = {});

} // namespace snim::sim
