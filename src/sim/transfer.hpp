// Small-signal transfer functions from one independent source to circuit
// nodes.  This is the workhorse of the impact flow: H_sub(f) from the
// substrate noise injector to every entry point of the victim circuit.
#pragma once

#include <complex>
#include <string>

#include "circuit/netlist.hpp"

namespace snim::sim {

struct TransferResult {
    std::vector<double> freq;
    std::vector<std::complex<double>> h; // V(node)/excitation per frequency

    double mag_db(size_t k) const;
};

/// Transfer from source `source_name` (V or I source; excited with unit AC)
/// to node `node_name`.  All other sources' AC excitations are suppressed
/// for the duration of the computation and restored afterwards.
TransferResult transfer(circuit::Netlist& netlist, const std::string& source_name,
                        const std::string& node_name, const std::vector<double>& freqs,
                        const std::vector<double>& xop);

/// Same sweep for several observation nodes at once (single factorisation
/// per frequency).  `exclude` (optional) lists devices skipped during AC
/// assembly -- coupling-path ablation.
std::vector<TransferResult> transfer_multi(
    circuit::Netlist& netlist, const std::string& source_name,
    const std::vector<std::string>& node_names, const std::vector<double>& freqs,
    const std::vector<double>& xop,
    const std::vector<const circuit::Device*>* exclude = nullptr);

} // namespace snim::sim
