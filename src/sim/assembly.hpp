// Incremental transient assembly (DESIGN.md §14).
//
// The transient Newton loop re-stamps every device each iteration even
// though most stamps never change: resistor and controlled-source entries
// are constant for the whole run, and companion (C/L) entries are a pure
// function of the step size and integration order.  TranAssembler splits
// the netlist by circuit::Partition and rebuilds only what moved:
//
//   * one full learning pass records the stamp-call tape and each device's
//     span in it (the Stamper's compiled scatter map supplies the
//     call -> CSC-slot mapping);
//   * linear matrix images are cached per (dt, order) key — the retry
//     ladder only ever visits power-of-two fractions of the nominal dt, so
//     the key set stays tiny;
//   * per step attempt, companion and source stamps are refreshed into the
//     tape and the linear RHS baseline is rebuilt (it depends on time and
//     integration state);
//   * per Newton iteration, the CSC value image and RHS are restored from
//     the baselines (two vector copies) and only nonlinear devices
//     re-stamp, overlaying their recorded tape spans.
//
// Bit-identity with the full pass is a hard invariant, not a tolerance:
// CSC slot values are per-slot left-associated sums over the slot's stamp
// calls in pass order, so a slot whose linear calls all precede its
// nonlinear calls ("clean") gets the exact same sum from
// baseline-then-overlay.  Slots and RHS nodes where a linear call follows
// a nonlinear one ("mixed" — e.g. the trailing gmin diagonal stamp on a
// MOSFET node) are recomputed from the tape call-by-call after the
// overlay.  Devices whose stamp sequence turns out to be value-dependent
// (a MOSFET crossing its drain/source swap) break the overlay mid-pass;
// the assembler then discards the compiled state and relearns with a full
// pass, counted in sim/assemble_relearn.
//
// Registry counters: sim/assemble_full, sim/assemble_incremental,
// sim/assemble_relearn, sim/assemble_cache_hits, sim/assemble_cache_misses.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "circuit/netlist.hpp"

namespace snim::circuit {
class Capacitor;
} // namespace snim::circuit

namespace snim::sim {

class TranAssembler {
public:
    /// Binds to the netlist/stamper pair for one transient run.  The
    /// stamper must have compiled assembly enabled; the assembler enables
    /// its RHS tape.  `gmin` must match what assemble_tran would stamp.
    TranAssembler(const circuit::Netlist& netlist, circuit::RealStamper& s,
                  double gmin);

    /// Called once per step attempt, before the Newton loop: refreshes the
    /// companion/source tape values for `tp`, looks up (or builds) the
    /// (dt, order) linear matrix image and rebuilds the linear RHS
    /// baseline.  A no-op until the first full pass has learned the tape.
    void begin_attempt(const std::vector<double>& x, const circuit::TranParams& tp);

    /// Assembles the Newton system at iterate `x` into the stamper,
    /// equivalent bit-for-bit to `s.clear(); assemble_tran(...)`.  Falls
    /// back to a full learning pass on the first call and whenever an
    /// overlay deviates.
    void assemble(const std::vector<double>& x, const circuit::TranParams& tp);

    /// Bumped by every full pass (learn/relearn).  The Jacobian-reuse guard
    /// keys on it: stale LU factors must not survive a pattern change.
    std::uint64_t epoch() const { return epoch_; }

    bool learned() const { return learned_; }

    /// Original CSC columns the nonlinear overlay can move: between two
    /// assembles under the same (dt, order, epoch) the matrix is
    /// bit-identical outside these columns (everything else comes from the
    /// cached linear image).  This is the changed-column seed set for
    /// ReusableLU's partial refactorization.  Valid after the first learn.
    const std::vector<int>& nonlinear_cols() const { return nonlinear_cols_; }

    /// Commits the accepted step into device state, equivalent to calling
    /// commit_tran on every device: only non-LinearStatic devices override
    /// it (the partition/commit pairing is asserted by the netlist tests),
    /// so the static majority is skipped.
    void commit(const std::vector<double>& x, const circuit::TranParams& tp) const {
        for (circuit::Device* d : commit_list_) d->commit_tran(x, tp);
    }

private:
    struct Span {
        std::uint32_t mat_begin = 0, mat_end = 0;
        std::uint32_t rhs_begin = 0, rhs_end = 0;
    };
    /// A matrix slot (or RHS node) whose call sequence interleaves linear
    /// and nonlinear stamps; recomputed from the tape after each overlay.
    struct Replay {
        std::int32_t target = 0;          // CSC slot / RHS node
        std::vector<std::int32_t> calls;  // tape indices, in pass order
    };
    struct KeyImage {
        std::uint64_t dt_bits = 0;
        int order = 0;
        std::vector<double> values; // linear CSC baseline for this key
    };

    /// Compiled per-attempt refresh for a capacitor: its stamp layout is
    /// value-independent and every recorded call value is exactly ±geq or
    /// ±ieq, so the refresh is a handful of direct tape writes instead of a
    /// stamp_tran replay through overlay mode.  Built (and sign-validated
    /// bitwise against the learned tape) in compile(); any mismatch leaves
    /// the device on the slow overlay path.
    struct CapPlan {
        const circuit::Capacitor* cap = nullptr;
        // (tape index, +1/-1) pairs; matrix entries scale geq, RHS ieq.
        std::vector<std::pair<std::int32_t, std::int8_t>> mat;
        std::vector<std::pair<std::int32_t, std::int8_t>> rhs;
    };

    void full_pass(const std::vector<double>& x, const circuit::TranParams& tp);
    void compile(const circuit::TranParams& tp);
    void relearn(const std::vector<double>& x, const circuit::TranParams& tp);
    bool refresh_tapes(const std::vector<double>& x, const circuit::TranParams& tp);
    const std::vector<double>& key_image(const circuit::TranParams& tp);
    void build_rhs_base();

    const circuit::Netlist& netlist_;
    circuit::RealStamper& s_;
    const double gmin_;

    bool learned_ = false;
    std::uint64_t epoch_ = 0;

    std::vector<Span> spans_;          // per device, netlist order
    std::vector<char> disabled_at_learn_;
    Span gmin_span_;                   // trailing gmin diagonal stamps
    std::vector<std::uint32_t> nonlinear_;  // device indices, netlist order
    std::vector<std::uint32_t> refresh_;    // linear devices refreshed per attempt
    std::vector<std::uint32_t> slow_refresh_; // refresh_ minus planned capacitors
    std::vector<CapPlan> cap_plans_;        // compiled capacitor refreshes
    std::vector<std::int32_t> linear_calls_;     // tape indices of linear mat calls
    std::vector<std::int32_t> linear_rhs_calls_; // tape indices of linear rhs calls
    std::vector<Replay> mixed_slots_;
    std::vector<Replay> mixed_nodes_;

    std::vector<KeyImage> cache_;          // (dt, order) -> linear image
    const std::vector<double>* image_ = nullptr; // baseline for this attempt
    std::vector<double> rhs_base_;         // linear RHS baseline for this attempt

    std::vector<int> nonlinear_cols_;      // CSC columns the overlay can move
    std::vector<circuit::Device*> commit_list_; // devices with real commit_tran

    // Slots / RHS nodes the nonlinear overlay writes.  After the first
    // assemble of an attempt has done a full baseline copy, later
    // iterations only need to restore these (everything else still holds
    // its baseline value), which turns the per-iteration restore from
    // O(nnz) copies into O(|nonlinear stamp|).
    std::vector<std::int32_t> nl_slots_;
    std::vector<std::int32_t> nl_rhs_nodes_;
    bool restore_full_ = true; // begin_attempt/learn invalidate sparse restore
};

} // namespace snim::sim
