#include "sim/transfer.hpp"

#include "circuit/sources.hpp"
#include "sim/ac.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace snim::sim {

double TransferResult::mag_db(size_t k) const {
    SNIM_ASSERT(k < h.size(), "index out of range");
    return units::db20(std::abs(h[k]));
}

namespace {

/// RAII: suppress every source's AC spec except `keep`, excite `keep` with
/// unit magnitude; restore on destruction.
class AcIsolator {
public:
    AcIsolator(circuit::Netlist& netlist, const std::string& keep) {
        using circuit::ISource;
        using circuit::VSource;
        for (const auto& d : netlist.devices()) {
            if (auto* v = dynamic_cast<VSource*>(d.get())) {
                saved_v_.emplace_back(v, v->ac());
                v->set_ac({equals_nocase(v->name(), keep) ? 1.0 : 0.0, 0.0});
                found_ |= equals_nocase(v->name(), keep);
            } else if (auto* i = dynamic_cast<ISource*>(d.get())) {
                saved_i_.emplace_back(i, i->ac());
                i->set_ac({equals_nocase(i->name(), keep) ? 1.0 : 0.0, 0.0});
                found_ |= equals_nocase(i->name(), keep);
            }
        }
        if (!found_) raise("transfer: no source named '%s'", keep.c_str());
    }
    ~AcIsolator() {
        for (auto& [v, ac] : saved_v_) v->set_ac(ac);
        for (auto& [i, ac] : saved_i_) i->set_ac(ac);
    }

private:
    bool found_ = false;
    std::vector<std::pair<circuit::VSource*, circuit::AcSpec>> saved_v_;
    std::vector<std::pair<circuit::ISource*, circuit::AcSpec>> saved_i_;
};

} // namespace

std::vector<TransferResult> transfer_multi(
    circuit::Netlist& netlist, const std::string& source_name,
    const std::vector<std::string>& node_names, const std::vector<double>& freqs,
    const std::vector<double>& xop,
    const std::vector<const circuit::Device*>* exclude) {
    AcIsolator iso(netlist, source_name);
    AcOptions opt;
    opt.exclude = exclude;
    const AcResult ac = ac_sweep(netlist, freqs, xop, opt);

    std::vector<TransferResult> out(node_names.size());
    for (size_t p = 0; p < node_names.size(); ++p) {
        const circuit::NodeId node = netlist.existing_node(node_names[p]);
        out[p].freq = freqs;
        out[p].h.reserve(freqs.size());
        for (size_t k = 0; k < freqs.size(); ++k) out[p].h.push_back(ac.at(k, node));
    }
    return out;
}

TransferResult transfer(circuit::Netlist& netlist, const std::string& source_name,
                        const std::string& node_name, const std::vector<double>& freqs,
                        const std::vector<double>& xop) {
    return transfer_multi(netlist, source_name, {node_name}, freqs, xop)[0];
}

} // namespace snim::sim
