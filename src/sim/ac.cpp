#include "sim/ac.hpp"

#include <algorithm>

#include "numeric/certify.hpp"
#include "numeric/sparse_lu.hpp"
#include "obs/parallel.hpp"
#include "obs/progress.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/mna.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace snim::sim {

namespace {

/// Pivot-health guard for the sweep's shared symbolic analysis: a refactor
/// whose smallest pivot drops below this fraction of the reference
/// factorization's is discarded in favour of a fresh full factorization.
constexpr double kRepivotTol = 1e-3;

} // namespace

std::complex<double> AcResult::at(size_t k, circuit::NodeId node) const {
    SNIM_ASSERT(k < x.size(), "sweep index %zu out of %zu", k, x.size());
    if (node < 0) return {0.0, 0.0};
    SNIM_ASSERT(static_cast<size_t>(node) < x[k].size(), "bad node id %d", node);
    return x[k][static_cast<size_t>(node)];
}

AcResult ac_sweep(circuit::Netlist& netlist, const std::vector<double>& freqs,
                  const std::vector<double>& xop, const AcOptions& opt) {
    obs::validate_certify_options(opt.certify, "AcOptions");
    obs::ScopedTimer obs_run("sim/ac", obs::Timing::WhenEnabled, obs::Rss::Track);
    obs::count("sim/ac/points", freqs.size());
    netlist.finalize();
    const size_t n = netlist.unknown_count();
    SNIM_ASSERT(xop.size() == n, "operating point size mismatch");
    for (double f : freqs) SNIM_ASSERT(f >= 0, "negative frequency");

    AcResult out;
    out.freq = freqs;
    out.x.assign(freqs.size(), {});
    if (freqs.empty()) return out;

    // Serial prologue: fully factor the first point.  Its symbolic analysis
    // (pattern + pivot sequence) and min-pivot reference are shared by every
    // worker, which makes the per-point repivot decision a pure function of
    // the point's matrix values — independent of thread count and chunking.
    obs::ProgressScope progress("sim/ac", freqs.size());
    circuit::ComplexStamper s0(n);
    s0.enable_compiled_assembly();
    assemble_ac(netlist, s0, xop, units::kTwoPi * freqs[0], opt.gmin, opt.exclude);
    SparseLU<std::complex<double>> ref_lu(s0.csc());
    const double ref_min_pivot = ref_lu.factor_stats().min_pivot;
    out.x[0] = ref_lu.solve(s0.rhs());
    // The serial reference point is the sweep's only certificate site where
    // fault queries are allowed (fault order is part of the determinism
    // contract; worker scheduling is not).
    const bool certify = opt.certify.enabled && obs::enabled();
    if (certify) {
        const obs::SolveCertificate cert = certify_solve(
            ref_lu, s0.csc(), out.x[0], s0.rhs(), opt.certify);
        obs::record_certificate("ac", cert, opt.certify);
    }
    progress.advance();
    if (obs::enabled()) {
        // Per-point pivot health over the sweep: a dip flags the
        // frequency where the MNA system loses conditioning.
        obs::ts_append("sim/ac/lu_min_pivot", freqs[0], ref_min_pivot, "1");
        obs::ts_append("sim/ac/lu_fill_growth", freqs[0],
                       ref_lu.factor_stats().fill_growth, "x");
    }

    const size_t rest = freqs.size() - 1;
    if (rest == 0) return out;

    // One task per contiguous chunk of the remaining frequencies, so each
    // worker pays for its copy of the reference factorization once.  Chunk
    // boundaries depend on the thread count; per-point results and the
    // (index-order merged) obs sequence do not.
    util::ThreadPool pool(opt.threads);
    const size_t chunks = std::min<size_t>(pool.thread_count(), rest);
    obs::parallel_tasks(opt.threads, chunks, [&](size_t c) {
        const size_t lo = 1 + c * rest / chunks;
        const size_t hi = 1 + (c + 1) * rest / chunks;
        circuit::ComplexStamper s(n);
        s.enable_compiled_assembly();
        SparseLU<std::complex<double>> lu = ref_lu;
        for (size_t i = lo; i < hi; ++i) {
            s.clear();
            assemble_ac(netlist, s, xop, units::kTwoPi * freqs[i], opt.gmin,
                        opt.exclude);
            const auto& a = s.csc();
            double min_pivot = 0.0;
            double fill_growth = 1.0;
            bool reused = false;
            if (opt.reuse_lu) {
                if (obs::enabled()) obs::count("numeric/lu_refactor");
                const bool ok = lu.refactor(a);
                if (ok && lu.factor_stats().min_pivot >=
                              kRepivotTol * ref_min_pivot) {
                    if (obs::enabled()) obs::count("numeric/lu_symbolic_reuse");
                    out.x[i] = lu.solve(s.rhs());
                    min_pivot = lu.factor_stats().min_pivot;
                    fill_growth = lu.factor_stats().fill_growth;
                    reused = true;
                    if (certify && i % static_cast<size_t>(opt.certify.stride) == 0) {
                        const obs::SolveCertificate cert =
                            certify_solve(lu, a, out.x[i], s.rhs(), opt.certify,
                                          /*allow_fault=*/false);
                        obs::record_certificate("ac", cert, opt.certify);
                    }
                } else if (obs::enabled()) {
                    obs::count("numeric/lu_repivot_fallbacks");
                }
            }
            if (!reused) {
                // A fresh local factorization; the worker's reusable copy is
                // left alone — refactor() recomputes every value, so a
                // discarded pass leaves no numeric residue for later points.
                SparseLU<std::complex<double>> fresh(a);
                out.x[i] = fresh.solve(s.rhs());
                min_pivot = fresh.factor_stats().min_pivot;
                fill_growth = fresh.factor_stats().fill_growth;
                if (certify && i % static_cast<size_t>(opt.certify.stride) == 0) {
                    const obs::SolveCertificate cert =
                        certify_solve(fresh, a, out.x[i], s.rhs(), opt.certify,
                                      /*allow_fault=*/false);
                    obs::record_certificate("ac", cert, opt.certify);
                }
            }
            if (obs::enabled()) {
                obs::ts_append("sim/ac/lu_min_pivot", freqs[i], min_pivot, "1");
                obs::ts_append("sim/ac/lu_fill_growth", freqs[i], fill_growth, "x");
            }
            // Heartbeat bookkeeping only — never the obs registry, so the
            // merged observation sequence stays thread-count independent.
            progress.advance();
        }
    });
    return out;
}

} // namespace snim::sim
