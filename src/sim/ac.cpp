#include "sim/ac.hpp"

#include "numeric/sparse_lu.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/mna.hpp"
#include "util/units.hpp"

namespace snim::sim {

std::complex<double> AcResult::at(size_t k, circuit::NodeId node) const {
    SNIM_ASSERT(k < x.size(), "sweep index %zu out of %zu", k, x.size());
    if (node < 0) return {0.0, 0.0};
    SNIM_ASSERT(static_cast<size_t>(node) < x[k].size(), "bad node id %d", node);
    return x[k][static_cast<size_t>(node)];
}

AcResult ac_sweep(circuit::Netlist& netlist, const std::vector<double>& freqs,
                  const std::vector<double>& xop, const AcOptions& opt) {
    obs::ScopedTimer obs_run("sim/ac");
    obs::count("sim/ac/points", freqs.size());
    netlist.finalize();
    const size_t n = netlist.unknown_count();
    SNIM_ASSERT(xop.size() == n, "operating point size mismatch");

    AcResult out;
    out.freq = freqs;
    out.x.reserve(freqs.size());
    circuit::ComplexStamper s(n);
    for (double f : freqs) {
        SNIM_ASSERT(f >= 0, "negative frequency");
        s.clear();
        assemble_ac(netlist, s, xop, units::kTwoPi * f, opt.gmin, opt.exclude);
        SparseLU<std::complex<double>> lu(s.matrix());
        out.x.push_back(lu.solve(s.rhs()));
        if (obs::enabled()) {
            // Per-point pivot health over the sweep: a dip flags the
            // frequency where the MNA system loses conditioning.
            obs::ts_append("sim/ac/lu_min_pivot", f, lu.factor_stats().min_pivot, "1");
            obs::ts_append("sim/ac/lu_fill_growth", f, lu.factor_stats().fill_growth,
                           "x");
        }
    }
    return out;
}

} // namespace snim::sim
