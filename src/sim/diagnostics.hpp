// Failure diagnosis bundles: when a solver engine gives up (Newton refuses
// to converge, an update goes NaN/Inf), it no longer dies with a one-line
// message — it writes a snim_diag_*.json bundle holding everything needed
// for a post-mortem and names the bundle path in the thrown snim::Error:
//
//   * the engine options in effect,
//   * the last-N per-step telemetry (Newton iterations, worst residual,
//     dv_max clamp activations, LU pivot health) from a fixed-size ring,
//   * the unknowns with the largest final Newton update, by node name,
//   * the tail of every probed waveform recorded before the failure (the
//     partial result a non-converged transient used to discard),
//   * a snapshot of the obs registry (phase tree, counters, histograms).
//
// Bundle writing must never mask the original solver error: I/O failures
// degrade to "bundle unavailable" in the error message instead of throwing.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "circuit/netlist.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "sim/op.hpp"
#include "sim/transient.hpp"

namespace snim::sim {

/// Version of the snim_diag_*.json document layout.
/// v2: telemetry rows gained "dt", bundles gained "retry_history" /
/// "total_step_retries" (transient) and "rungs" (op).
/// v3: bundles gained "events" — the live event-journal tail (absent when
/// telemetry was off).
/// v4: telemetry rows gained the numerical-health certificate columns
/// "kcl_residual", "cert_omega", "cert_rcond" (-1 = site not audited).
inline constexpr int kDiagSchemaVersion = 4;

/// Telemetry of one solver step (a transient step attempt, a DC Newton
/// attempt, an AC frequency point).
struct StepTelemetry {
    long step = 0;            // 1-based attempt / iteration / point index
    double time = 0.0;        // abscissa: seconds, gmin level or frequency
    double dt = 0.0;          // step size of the attempt (transient only)
    int newton_iters = 0;     // Newton iterations spent on this step
    double residual = 0.0;    // final Newton update inf-norm (dv) [V]
    int worst_unknown = -1;   // unknown index with the largest final update
    int clamp_hits = 0;       // dv_max clamp activations over the step
    double lu_min_pivot = 0.0;   // pivot health of the step's last solve
    double lu_fill_growth = 0.0; // nnz(L+U)/nnz(A); 1 on the dense path
                                 // (in-place factorisation, no fill)
    bool converged = true;
    // Numerical-health certificate of the step, when the site was audited
    // (certify stride + obs enabled); -1 = not audited.
    double kcl_residual = -1.0; // worst per-node KCL current residual [A]
    double cert_omega = -1.0;   // componentwise backward error of the solve
    double cert_rcond = -1.0;   // reciprocal 1-norm condition estimate
};

/// One rejected transient step attempt: what failed and how dt backed off.
struct RetryEvent {
    long step = 0;        // nominal step being retried
    double time = 0.0;    // target time of the rejected attempt
    double dt_from = 0.0; // rejected attempt's step size
    double dt_to = 0.0;   // next attempt's step size
    int newton_iters = 0; // iterations burned by the rejected attempt
    std::string reason;   // "no_convergence" | "nonfinite_update" |
                          // "singular_system" | "fault_injected"
};

/// Fixed-capacity last-N ring of step telemetry.
class StepTelemetryRing {
public:
    explicit StepTelemetryRing(size_t capacity);

    void push(const StepTelemetry& t);
    size_t capacity() const { return buf_.size(); }
    /// Recorded telemetry, oldest to newest (at most capacity entries).
    std::vector<StepTelemetry> tail() const;

private:
    std::vector<StepTelemetry> buf_;
    size_t next_ = 0;
    uint64_t pushed_ = 0;
};

/// Everything a bundle serialises.
struct FailureDiagnosis {
    std::string engine;  // "transient" | "op" | "ac"
    std::string reason;  // "newton_no_convergence" | "nonfinite_update" | ...
    double fail_time = 0.0;
    long fail_step = -1;
    std::vector<StepTelemetry> telemetry;                    // oldest -> newest
    std::vector<std::pair<std::string, double>> worst_nodes; // name -> |dv|
    obs::JsonObject options;                                 // engine options
    /// Recorded waveform prefix of the failed run (nullptr when the engine
    /// has none); the writer keeps the last `wave_tail` samples per probe.
    const TranResult* partial = nullptr;
    size_t wave_tail = 256;
    /// Retry ladder history (transient): the last-N rejected attempts,
    /// oldest to newest, plus the run's total rejected-attempt count.
    std::vector<RetryEvent> retries;
    long total_retries = 0;
    /// Engine-specific extra top-level members (e.g. the op solver's
    /// per-rung ladder summary under "rungs"); merged into the document.
    obs::JsonObject extra;
};

/// Process-wide fallback directory for bundles, used when an engine's
/// options leave diag_dir empty ("" means the current directory).  The
/// bench harness points this at --diag-dir.
void set_default_diag_dir(std::string dir);
const std::string& default_diag_dir();

/// The bundle document (schema_version, options, telemetry, worst nodes,
/// wave tails, obs registry snapshot).
obs::Json diagnosis_json(const FailureDiagnosis& d);

/// Serialises the bundle to `<dir>/snim_diag_<engine>_<run>_<seq>.json`
/// where `<run>` is the current manifest's run id (or a process-unique
/// token when no manifest is set) — parallel sweeps in separate processes
/// cannot collide, and O_EXCL creation guards the remaining window (dir
/// empty -> default_diag_dir() -> ".").  Returns the path, or an empty
/// string when writing failed — never throws.
std::string write_diagnosis_bundle(const FailureDiagnosis& d,
                                   const std::string& dir = {});

/// The `count` unknowns with the largest |dv|, named: node unknowns use
/// their netlist name, branch-current unknowns are "branch:<k>".  The
/// netlist must be finalized.
std::vector<std::pair<std::string, double>> worst_unknowns(
    const circuit::Netlist& netlist, const std::vector<double>& dv, size_t count);

/// Unknown index -> diagnostic name (node name or "branch:<k>"); -1 -> "".
std::string unknown_name(const circuit::Netlist& netlist, int index);

/// Feeds every TranOptions field into a provenance config digest under
/// "tran.*" names.  Any option change — tolerance, integration order, the
/// retry ladder, LU reuse — changes the digest, so artifacts from different
/// configurations never compare as like-for-like.
void digest_options(obs::ConfigDigest& d, const TranOptions& opt);

/// Same for OpOptions under "op.*" names.
void digest_options(obs::ConfigDigest& d, const OpOptions& opt);

/// Validates every TranOptions field, raising an error that names the
/// offending field.  transient() calls this; it is exposed so callers can
/// vet options before an expensive model build.
void validate_tran_options(const TranOptions& opt);

/// Validates every OpOptions field the same way (gmin > 0, max_iter >= 1,
/// homotopy-ladder knobs in range, ...).  operating_point() calls this.
void validate_op_options(const OpOptions& opt);

} // namespace snim::sim
