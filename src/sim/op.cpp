#include "sim/op.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "numeric/sparse_lu.hpp"
#include "numeric/vecops.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/diagnostics.hpp"
#include "sim/mna.hpp"
#include "util/log.hpp"

namespace snim::sim {

namespace {

/// Telemetry shared across the gmin-stepping attempts of one operating
/// point so the failure bundle shows the whole search, not just the last
/// Newton run.
struct OpTelemetry {
    StepTelemetryRing ring;
    std::vector<double> last_dx;
    long total_iters = 0;

    explicit OpTelemetry(size_t tail, size_t n) : ring(tail), last_dx(n, 0.0) {}
};

/// One Newton solve at fixed gmin; returns true on convergence and leaves
/// the result in `x`.
bool newton_dc(circuit::Netlist& netlist, std::vector<double>& x, double gmin,
               const OpOptions& opt, OpTelemetry& diag) {
    const size_t n = netlist.unknown_count();
    bool nonlinear = false;
    for (const auto& d : netlist.devices()) nonlinear |= d->is_nonlinear();

    circuit::RealStamper s(n);
    for (int it = 0; it < opt.max_iter; ++it) {
        obs::ScopedTimer obs_newton("sim/op/newton");
        StepTelemetry tel;
        tel.step = ++diag.total_iters;
        tel.time = gmin; // abscissa: the gmin level this iteration ran at
        tel.newton_iters = it + 1;
        s.clear();
        assemble_dc(netlist, s, x, gmin);
        std::vector<double> xn;
        try {
            SparseLU<double> lu(s.matrix());
            xn = lu.solve(s.rhs());
            tel.lu_min_pivot = lu.factor_stats().min_pivot;
            tel.lu_fill_growth = lu.factor_stats().fill_growth;
        } catch (const Error&) {
            tel.converged = false;
            diag.ring.push(tel);
            return false; // singular at this gmin level
        }
        // Clamp voltage-like updates for stability (nonlinear circuits only;
        // a linear solve is exact and must not be truncated).
        double max_dx = 0.0;
        bool nonfinite = false;
        for (size_t i = 0; i < n; ++i) {
            double dx = xn[i] - x[i];
            if (!std::isfinite(dx)) nonfinite = true;
            const bool is_node = i < netlist.node_count();
            if (is_node && nonlinear) {
                const double clamped = std::clamp(dx, -opt.dv_max, opt.dv_max);
                if (clamped != dx) ++tel.clamp_hits;
                dx = clamped;
            }
            diag.last_dx[i] = dx;
            if (std::fabs(dx) > max_dx) {
                max_dx = std::fabs(dx);
                tel.worst_unknown = static_cast<int>(i);
            }
            x[i] += dx;
        }
        tel.residual = max_dx;
        tel.converged = false;
        if (obs::enabled()) {
            // Abscissa: Newton iterations cumulative over the process, so
            // the channel stays monotone across repeated op solves (one
            // scenario runs dozens: calibration, ablations, sweeps).
            static std::atomic<long> cumulative{0};
            obs::ts_append("sim/op/residual",
                           static_cast<double>(++cumulative),
                           std::isfinite(max_dx) ? max_dx : 0.0, "V");
        }
        if (!nonlinear) {
            tel.converged = !nonfinite && std::isfinite(max_dx);
            diag.ring.push(tel);
            return tel.converged;
        }
        if (nonfinite || !std::isfinite(max_dx)) {
            diag.ring.push(tel);
            return false;
        }
        if (max_dx < opt.vntol + opt.reltol * norm_inf(x)) {
            // One undamped verification pass: the iterate must reproduce
            // itself (companion models are exact at the fixpoint).
            s.clear();
            assemble_dc(netlist, s, x, gmin);
            try {
                SparseLU<double> lu(s.matrix());
                xn = lu.solve(s.rhs());
            } catch (const Error&) {
                diag.ring.push(tel);
                return false;
            }
            tel.converged =
                max_abs_diff(xn, x) < 10 * (opt.vntol + opt.reltol * norm_inf(x));
            diag.ring.push(tel);
            return tel.converged;
        }
        diag.ring.push(tel);
    }
    return false;
}

obs::JsonObject op_options_json(const OpOptions& opt) {
    obs::JsonObject o;
    o.emplace("max_iter", opt.max_iter);
    o.emplace("reltol", opt.reltol);
    o.emplace("vntol", opt.vntol);
    o.emplace("gmin", opt.gmin);
    o.emplace("dv_max", opt.dv_max);
    o.emplace("gmin_stepping", opt.gmin_stepping);
    return o;
}

} // namespace

std::vector<double> operating_point(circuit::Netlist& netlist, const OpOptions& opt) {
    if (opt.max_iter <= 0) raise("OpOptions.max_iter must be > 0 (got %d)", opt.max_iter);
    if (opt.diag_tail <= 0) raise("OpOptions.diag_tail must be > 0 (got %d)",
                                  opt.diag_tail);
    obs::ScopedTimer obs_run("sim/op");
    netlist.finalize();
    const size_t n = netlist.unknown_count();
    std::vector<double> x = opt.initial;
    if (x.empty()) x.assign(n, 0.0);
    SNIM_ASSERT(x.size() == n, "initial point size %zu != %zu", x.size(), n);

    OpTelemetry diag(static_cast<size_t>(opt.diag_tail), n);
    if (newton_dc(netlist, x, opt.gmin, opt, diag)) return x;

    if (opt.gmin_stepping) {
        log_info("operating point: direct Newton failed, gmin stepping");
        std::vector<double> xg(n, 0.0);
        bool ok = true;
        for (double g = 1e-2; g >= opt.gmin; g *= 0.1) {
            obs::count("sim/op/gmin_steps");
            if (!newton_dc(netlist, xg, g, opt, diag)) {
                ok = false;
                break;
            }
        }
        if (ok && newton_dc(netlist, xg, opt.gmin, opt, diag)) return xg;
    }

    std::string bundle;
    if (opt.diag_bundle) {
        FailureDiagnosis d;
        d.engine = "op";
        d.reason = "newton_no_convergence";
        d.fail_step = diag.total_iters;
        d.fail_time = 0.0;
        d.telemetry = diag.ring.tail();
        d.worst_nodes = worst_unknowns(netlist, diag.last_dx, 5);
        d.options = op_options_json(opt);
        bundle = write_diagnosis_bundle(d, opt.diag_dir);
    }
    raise("operating point did not converge (%zu unknowns, %ld Newton iterations%s)%s%s",
          n, diag.total_iters, opt.gmin_stepping ? " incl. gmin stepping" : "",
          bundle.empty() ? "" : "; diagnosis bundle: ",
          bundle.empty() ? "" : bundle.c_str());
}

} // namespace snim::sim
