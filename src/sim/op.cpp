#include "sim/op.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse_lu.hpp"
#include "numeric/vecops.hpp"
#include "obs/trace.hpp"
#include "sim/mna.hpp"
#include "util/log.hpp"

namespace snim::sim {

namespace {

/// One Newton solve at fixed gmin; returns true on convergence and leaves
/// the result in `x`.
bool newton_dc(circuit::Netlist& netlist, std::vector<double>& x, double gmin,
               const OpOptions& opt) {
    const size_t n = netlist.unknown_count();
    bool nonlinear = false;
    for (const auto& d : netlist.devices()) nonlinear |= d->is_nonlinear();

    circuit::RealStamper s(n);
    for (int it = 0; it < opt.max_iter; ++it) {
        obs::ScopedTimer obs_newton("sim/op/newton");
        s.clear();
        assemble_dc(netlist, s, x, gmin);
        std::vector<double> xn;
        try {
            SparseLU<double> lu(s.matrix());
            xn = lu.solve(s.rhs());
        } catch (const Error&) {
            return false; // singular at this gmin level
        }
        // Clamp voltage-like updates for stability (nonlinear circuits only;
        // a linear solve is exact and must not be truncated).
        double max_dx = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double dx = xn[i] - x[i];
            const bool is_node = i < netlist.node_count();
            if (is_node && nonlinear) dx = std::clamp(dx, -opt.dv_max, opt.dv_max);
            max_dx = std::max(max_dx, std::fabs(dx));
            x[i] += dx;
        }
        if (!nonlinear) return std::isfinite(max_dx);
        if (!std::isfinite(max_dx)) return false;
        if (max_dx < opt.vntol + opt.reltol * norm_inf(x)) {
            // One undamped verification pass: the iterate must reproduce
            // itself (companion models are exact at the fixpoint).
            s.clear();
            assemble_dc(netlist, s, x, gmin);
            try {
                SparseLU<double> lu(s.matrix());
                xn = lu.solve(s.rhs());
            } catch (const Error&) {
                return false;
            }
            return max_abs_diff(xn, x) < 10 * (opt.vntol + opt.reltol * norm_inf(x));
        }
    }
    return false;
}

} // namespace

std::vector<double> operating_point(circuit::Netlist& netlist, const OpOptions& opt) {
    obs::ScopedTimer obs_run("sim/op");
    netlist.finalize();
    const size_t n = netlist.unknown_count();
    std::vector<double> x = opt.initial;
    if (x.empty()) x.assign(n, 0.0);
    SNIM_ASSERT(x.size() == n, "initial point size %zu != %zu", x.size(), n);

    if (newton_dc(netlist, x, opt.gmin, opt)) return x;

    if (opt.gmin_stepping) {
        log_info("operating point: direct Newton failed, gmin stepping");
        std::vector<double> xg(n, 0.0);
        bool ok = true;
        for (double g = 1e-2; g >= opt.gmin; g *= 0.1) {
            obs::count("sim/op/gmin_steps");
            if (!newton_dc(netlist, xg, g, opt)) {
                ok = false;
                break;
            }
        }
        if (ok && newton_dc(netlist, xg, opt.gmin, opt)) return xg;
    }
    raise("operating point did not converge (%zu unknowns)", n);
}

} // namespace snim::sim
